/**
 * @file
 * Cross-module property tests: physical and statistical invariants
 * that must hold across whole parameter sweeps, not just at spot
 * points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/ac.hh"
#include "cpu/fast_core.hh"
#include "pdn/droop_analysis.hh"
#include "pdn/ladder.hh"
#include "pdn/second_order.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

/**
 * Property: the PDN is a linear circuit — the deviation response to
 * the sum of two load waveforms equals the sum of the individual
 * deviation responses (superposition), up to integration rounding.
 */
TEST(PdnProperties, Superposition)
{
    pdn::SecondOrderParams params;
    const Seconds dt{0.5e-9};

    auto loadA = [](int i) {
        return 5.0 + 3.0 * ((i / 40) % 2); // square wave
    };
    auto loadB = [](int i) {
        return 2.0 + 2.0 * std::sin(i * 0.05);
    };

    pdn::SecondOrderPdn pa(params, dt), pb(params, dt), pab(params, dt);
    pa.reset(0.0);
    pb.reset(0.0);
    pab.reset(0.0);
    const double vdd = params.vdd.value();
    for (int i = 0; i < 5000; ++i) {
        const double da = pa.step(loadA(i)) - vdd;
        const double db = pb.step(loadB(i)) - vdd;
        const double dab = pab.step(loadA(i) + loadB(i)) - vdd;
        ASSERT_NEAR(dab, da + db, 1e-9) << "cycle " << i;
    }
}

/** Property sweep: ladder and reduced model agree on the resonance
 *  frequency for every decap fraction. */
class DecapSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DecapSweep, LadderMatchesReducedModelResonance)
{
    const auto cfg =
        pdn::PackageConfig::core2duo().withDecapFraction(GetParam());
    pdn::SecondOrderPdn fast(cfg, Seconds(0.5e-9));
    auto net = pdn::buildLadder(cfg, 1);
    const auto peak = circuit::resonancePeak(circuit::impedanceSweep(
        net.net, net.dieNode, Hertz(20e6), Hertz(400e6), 80));
    EXPECT_NEAR(fast.resonanceFrequency().value(), peak.frequencyHz,
                peak.frequencyHz * 0.2);
}

TEST_P(DecapSweep, ImpedancePeakNeverBelowCharacteristic)
{
    // |Z|peak >= sqrt(L/C): the resonance peak cannot undershoot the
    // tank's characteristic impedance (Q >= 1 for our damping).
    const auto cfg =
        pdn::PackageConfig::core2duo().withDecapFraction(GetParam());
    auto net = pdn::buildLadder(cfg, 1);
    const auto peak = circuit::resonancePeak(circuit::impedanceSweep(
        net.net, net.dieNode, Hertz(20e6), Hertz(400e6), 80));
    EXPECT_GE(peak.magnitude(),
              cfg.characteristicImpedance().value() * 0.9);
}

TEST_P(DecapSweep, ResetWaveformSettlesBackToIdle)
{
    const auto cfg =
        pdn::PackageConfig::core2duo().withDecapFraction(GetParam());
    const auto wf = pdn::simulateReset(cfg);
    // The tail of the waveform must return near the pre-reset level.
    const double last = wf.samples.back();
    EXPECT_NEAR(last, wf.vNominal, wf.vNominal * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Fractions, DecapSweep,
                         ::testing::Values(1.0, 0.75, 0.5, 0.25, 0.1,
                                           0.03, 0.0));

/** Property sweep: every benchmark in the suite realizes a stall
 *  ratio close to its design value, and droop rate grows with it. */
class SuiteSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SuiteSweep, RealizedStallNearDesignAndDroopsPositive)
{
    const auto &bench = workload::specCpu2006().at(GetParam());
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(bench, 300'000, true), 77 + GetParam()));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 78));
    sys.run(300'000);

    // Phase multipliers move the instantaneous target around the
    // nominal, so allow a wide but bounded band.
    EXPECT_NEAR(sys.core(0).counters().stallRatio(), bench.stallRatio,
                0.15)
        << bench.name;
    EXPECT_GT(sys.scope().fractionBelow(-sim::kIdleMargin), 0.0)
        << bench.name;
    EXPECT_GT(sys.core(0).counters().ipc(), 0.05) << bench.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteSweep,
                         ::testing::Range<std::size_t>(0, 29));

/** Property: deviation samples never escape the scope's physical
 *  range for any decap fraction under a heavy pair. */
class TailSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TailSweep, DeviationsPhysicallyBounded)
{
    sim::SystemConfig cfg;
    cfg.package =
        pdn::PackageConfig::core2duo().withDecapFraction(GetParam());
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("lbm"), 200'000,
                              true),
        1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 200'000,
                              true),
        2));
    sys.run(200'000);
    EXPECT_LT(sys.scope().maxDroop(), 0.25);
    EXPECT_LT(sys.scope().maxOvershoot(), 0.15);
    EXPECT_GT(sys.dieVoltage(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, TailSweep,
                         ::testing::Values(1.0, 0.25, 0.03));

/** Property: at a fixed margin, emergencies grow monotonically (with
 *  slack for event-merging) as decap shrinks. */
TEST(PdnProperties, EmergenciesGrowAsDecapShrinks)
{
    auto count = [](double frac) {
        sim::SystemConfig cfg;
        cfg.package =
            pdn::PackageConfig::core2duo().withDecapFraction(frac);
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  300'000, true),
            1));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("milc"),
                                  300'000, true),
            2));
        sys.run(300'000);
        return sys.droopBank().eventCountForMargin(0.04);
    };
    const auto c100 = count(1.0);
    const auto c25 = count(0.25);
    const auto c3 = count(0.03);
    EXPECT_LT(c100, c25);
    EXPECT_LT(c25, c3 * 2); // allow merging slack at the deep end
}
