/** @file Tests for workload generators: suite, PARSEC, microbench. */

#include <gtest/gtest.h>

#include <set>

#include "workload/microbench.hh"
#include "workload/parsec.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::workload;

TEST(SpecSuite, HasTwentyNineBenchmarks)
{
    EXPECT_EQ(specCpu2006().size(), 29u);
}

TEST(SpecSuite, NamesUniqueAndSorted)
{
    std::set<std::string> names;
    std::string prev;
    for (const auto &b : specCpu2006()) {
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
        EXPECT_GT(b.name, prev);
        prev = b.name;
    }
}

TEST(SpecSuite, LookupByName)
{
    EXPECT_EQ(specByName("mcf").name, "mcf");
    EXPECT_DOUBLE_EQ(specByName("sphinx").stallRatio, 0.75);
}

TEST(SpecSuiteDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(specByName("doom3"), ::testing::ExitedWithCode(1),
                "unknown SPEC benchmark");
}

TEST(SpecSuite, ParametersInRange)
{
    for (const auto &b : specCpu2006()) {
        EXPECT_GT(b.stallRatio, 0.0) << b.name;
        EXPECT_LT(b.stallRatio, 0.95) << b.name;
        EXPECT_GE(b.memoryBoundness, 0.0) << b.name;
        EXPECT_LE(b.memoryBoundness, 1.0) << b.name;
        EXPECT_GT(b.ipcRunning, 0.0) << b.name;
        EXPECT_GT(b.relativeLength, 0.0) << b.name;
    }
}

TEST(SpecSuite, Fig14ShapesPresent)
{
    EXPECT_EQ(specByName("sphinx").pattern, PhasePattern::Flat);
    EXPECT_EQ(specByName("gamess").pattern, PhasePattern::Steps);
    EXPECT_EQ(specByName("gamess").stepMultipliers.size(), 4u);
    EXPECT_EQ(specByName("tonto").pattern, PhasePattern::Oscillating);
}

TEST(SpecSuite, ScheduleDurationsScale)
{
    const auto &b = specByName("hmmer"); // relativeLength 1.0
    const auto sched = scheduleFor(b, 100'000);
    EXPECT_EQ(sched.totalDuration(), 100'000u);
    EXPECT_FALSE(sched.loop);
    const auto looped = scheduleFor(b, 100'000, true);
    EXPECT_TRUE(looped.loop);
}

TEST(SpecSuite, StepScheduleHasOnePhasePerStep)
{
    const auto sched = scheduleFor(specByName("gamess"), 400'000);
    EXPECT_EQ(sched.phases.size(), 4u);
    // Alternating high/low stall phases -> alternating event rates.
    double r0 = 0.0, r1 = 0.0;
    for (double r : sched.phases[0].eventRatesPer1k)
        r0 += r;
    for (double r : sched.phases[1].eventRatesPer1k)
        r1 += r;
    EXPECT_GT(r0, r1);
}

TEST(SpecSuite, OscillatingScheduleAlternates)
{
    const auto sched = scheduleFor(specByName("tonto"), 700'000);
    ASSERT_GE(sched.phases.size(), 4u);
    EXPECT_EQ(sched.phases.size(),
              static_cast<std::size_t>(specByName("tonto").oscSegments));
}

TEST(SpecSuite, MakePhaseRatesHitStallBudget)
{
    const auto phase = makeSpecPhase(0.5, 0.5, 1.5, 1000);
    EXPECT_NEAR(phase.expectedStallRatio(), 0.5, 0.03);
    for (double r : phase.eventRatesPer1k)
        EXPECT_GE(r, 0.0);
}

TEST(SpecSuite, MemoryBoundnessShiftsMix)
{
    const auto mem = makeSpecPhase(0.5, 1.0, 1.0, 1000);
    const auto cpu_ = makeSpecPhase(0.5, 0.0, 1.0, 1000);
    // Memory-bound: more L2; compute-bound: more branch events.
    EXPECT_GT(mem.eventRatesPer1k[1] / (cpu_.eventRatesPer1k[1] + 1e-9),
              1.0);
    EXPECT_GT(cpu_.eventRatesPer1k[3], mem.eventRatesPer1k[3]);
}

TEST(SpecSuiteDeath, BadStallRatio)
{
    EXPECT_EXIT(makeSpecPhase(0.99, 0.5, 1.0, 1000),
                ::testing::ExitedWithCode(1), "stall ratio");
}

TEST(Parsec, HasElevenPrograms)
{
    EXPECT_EQ(parsecSuite().size(), 11u);
}

TEST(Parsec, LookupAndValidation)
{
    EXPECT_EQ(parsecByName("canneal").name, "canneal");
    EXPECT_EXIT(parsecByName("nginx"), ::testing::ExitedWithCode(1),
                "unknown PARSEC");
}

TEST(Parsec, ThreadSchedulesSkewed)
{
    const auto &b = parsecByName("streamcluster");
    const auto t0 = parsecThreadSchedule(b, 0, 160'000);
    const auto t1 = parsecThreadSchedule(b, 1, 160'000);
    // Thread 1 gets a leading skew phase.
    EXPECT_EQ(t1.phases.size(), t0.phases.size() + 1);
}

TEST(Microbench, NamesMatchFigureLabels)
{
    EXPECT_EQ(microbenchName(MicrobenchKind::L1Miss), "L1");
    EXPECT_EQ(microbenchName(MicrobenchKind::BranchMispredict), "BR");
    EXPECT_EQ(microbenchName(MicrobenchKind::Exception), "EXCP");
    EXPECT_EQ(microbenchName(MicrobenchKind::PowerVirus), "VIRUS");
}

TEST(Microbench, StreamsAreInfinite)
{
    for (auto kind : kEventMicrobenchmarks) {
        auto stream = makeMicrobenchmark(kind, 1);
        for (int i = 0; i < 100; ++i)
            stream->next();
        EXPECT_FALSE(stream->finished());
    }
}

TEST(Microbench, BranchStreamHasBranches)
{
    auto stream =
        makeMicrobenchmark(MicrobenchKind::BranchMispredict, 1);
    int branches = 0;
    for (int i = 0; i < 1000; ++i)
        branches += stream->next().isBranch;
    EXPECT_GT(branches, 10);
    EXPECT_LT(branches, 500);
}

TEST(Microbench, StridedStreamsTouchMemory)
{
    auto stream = makeMicrobenchmark(MicrobenchKind::L2Miss, 1);
    int loads = 0;
    cpu::Addr first = 0, last = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto instr = stream->next();
        if (instr.isMemory) {
            if (!loads)
                first = instr.memAddr;
            last = instr.memAddr;
            ++loads;
        }
    }
    EXPECT_GT(loads, 50);
    EXPECT_NE(first, last);
}

TEST(Microbench, FastScheduleLooping)
{
    const auto sched =
        microbenchmarkSchedule(MicrobenchKind::TlbMiss, 1000);
    EXPECT_TRUE(sched.loop);
    ASSERT_EQ(sched.phases.size(), 1u);
    EXPECT_GT(sched.phases[0].eventRatesPer1k[2], 0.0);
}

TEST(Microbench, IdleScheduleIsQuiet)
{
    const auto sched = idleSchedule(1000);
    ASSERT_EQ(sched.phases.size(), 1u);
    EXPECT_LT(sched.phases[0].baseActivity, 0.2);
    for (double r : sched.phases[0].eventRatesPer1k)
        EXPECT_DOUBLE_EQ(r, 0.0);
}
