/** @file Tests for the online (counter-driven) batch scheduler. */

#include <gtest/gtest.h>

#include "sched/online_scheduler.hh"

using namespace vsmooth;
using namespace vsmooth::sched;

namespace {

std::vector<const workload::SpecBenchmark *>
mixedBatch()
{
    // Two copies of each so StallBalance can act on learned
    // estimates for the second copy.
    std::vector<const workload::SpecBenchmark *> batch;
    for (const char *name : {"mcf", "hmmer", "sphinx", "povray"}) {
        batch.push_back(&workload::specByName(name));
        batch.push_back(&workload::specByName(name));
    }
    return batch;
}

OnlineConfig
futureNodeConfig()
{
    OnlineConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.system.emergencyMargin = 0.07;
    cfg.system.recoveryCostCycles = 1000;
    cfg.jobLength = 150'000;
    cfg.schedulingInterval = 25'000;
    cfg.system.osTickInterval = sim::kCompressedOsTick;
    return cfg;
}

} // namespace

TEST(OnlineScheduler, PolicyNames)
{
    EXPECT_EQ(onlinePolicyName(OnlinePolicy::Fcfs), "FCFS");
    EXPECT_EQ(onlinePolicyName(OnlinePolicy::StallBalance),
              "StallBalance");
}

TEST(OnlineScheduler, DrainsTheWholeBatch)
{
    const auto batch = mixedBatch();
    const auto result =
        runOnlineBatch(batch, futureNodeConfig(), OnlinePolicy::Fcfs);
    EXPECT_EQ(result.jobsCompleted, batch.size());
    EXPECT_GT(result.makespan, 0u);
    EXPECT_GT(result.droopsPer1k, 0.0);
}

TEST(OnlineScheduler, MakespanBoundedByTwoCoreParallelism)
{
    const auto batch = mixedBatch();
    OnlineConfig cfg = futureNodeConfig();
    cfg.system.emergencyMargin = 0.0; // no recovery inflation
    cfg.system.recoveryCostCycles = 0;
    const auto result = runOnlineBatch(batch, cfg, OnlinePolicy::Fcfs);
    // Jobs may run longer than jobLength (relativeLength scaling and
    // recovery stalls), but two cores must beat fully serial
    // execution by a wide margin.
    Cycles serial = 0;
    for (const auto *b : batch) {
        serial += static_cast<Cycles>(
            b->relativeLength * static_cast<double>(cfg.jobLength));
    }
    EXPECT_LT(result.makespan, serial);
    EXPECT_GT(result.makespan, serial / 4);
}

TEST(OnlineScheduler, ObservedStallRatiosTrackDesign)
{
    const auto batch = mixedBatch();
    const auto result =
        runOnlineBatch(batch, futureNodeConfig(), OnlinePolicy::Fcfs);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_NEAR(result.observedStallRatios[i], batch[i]->stallRatio,
                    0.2)
            << batch[i]->name;
    }
}

TEST(OnlineScheduler, StallBalanceDoesNotHurtNoise)
{
    // The counter-driven policy should keep chip noise at or below
    // the FCFS baseline (it cannot always win on a small batch, but
    // it must not be materially worse).
    const auto batch = mixedBatch();
    const auto cfg = futureNodeConfig();
    const auto fcfs = runOnlineBatch(batch, cfg, OnlinePolicy::Fcfs);
    const auto bal =
        runOnlineBatch(batch, cfg, OnlinePolicy::StallBalance);
    EXPECT_EQ(bal.jobsCompleted, batch.size());
    EXPECT_LT(bal.droopsPer1k, fcfs.droopsPer1k * 1.08);
}

TEST(OnlineScheduler, DeterministicForSeed)
{
    const auto batch = mixedBatch();
    const auto cfg = futureNodeConfig();
    const auto a =
        runOnlineBatch(batch, cfg, OnlinePolicy::StallBalance);
    const auto b =
        runOnlineBatch(batch, cfg, OnlinePolicy::StallBalance);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.emergencies, b.emergencies);
}

TEST(OnlineSchedulerDeath, EmptyBatch)
{
    EXPECT_EXIT(
        runOnlineBatch({}, futureNodeConfig(), OnlinePolicy::Fcfs),
        ::testing::ExitedWithCode(1), "empty batch");
}
