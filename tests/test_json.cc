/**
 * @file
 * Tests for the JSON value/writer/parser and the Result schema that
 * back the golden-result regression harness.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "common/result.hh"

using namespace vsmooth;

TEST(Json, ScalarsRoundTripThroughText)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");

    std::string error;
    const Json j = Json::parse("{\"a\": [1, 2.5, \"x\"], \"b\": null}",
                               &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(j.at("a").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(j.at("a").asArray()[1].asNumber(), 2.5);
    EXPECT_TRUE(j.at("b").isNull());
}

TEST(Json, DoublesRoundTripExactly)
{
    // The writer must emit enough digits that parse(dump(x)) == x bit
    // for bit — golden comparisons rely on it.
    for (double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                     -2.2250738585072014e-308, 123456789.123456789}) {
        std::string error;
        const Json back = Json::parse(Json(v).dump(), &error);
        EXPECT_TRUE(error.empty()) << error;
        EXPECT_EQ(back.asNumber(), v);
    }
}

TEST(Json, IntegralDoublesPrintWithoutExponent)
{
    EXPECT_EQ(Json(1e6).dump(), "1000000");
    EXPECT_EQ(Json(-3.0).dump(), "-3");
}

TEST(Json, NonFiniteBecomesNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("mango", 3);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
    obj.set("apple", 9); // overwrite keeps the slot
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, StringEscapes)
{
    const Json j("tab\there \"quoted\" back\\slash\n");
    std::string error;
    const Json back = Json::parse(j.dump(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.asString(), j.asString());

    const Json uni = Json::parse("\"\\u00e9\\u0041\"", &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(uni.asString(), "\xc3\xa9"
                              "A");
}

TEST(Json, ParseErrorsNameTheOffset)
{
    std::string error;
    Json j = Json::parse("{\"a\": }", &error);
    EXPECT_TRUE(j.isNull());
    EXPECT_FALSE(error.empty());

    j = Json::parse("[1, 2,]", &error);
    EXPECT_FALSE(error.empty());

    j = Json::parse("[1] trailing", &error);
    EXPECT_FALSE(error.empty());
}

TEST(Json, PrettyPrintParsesBack)
{
    Json obj = Json::object();
    obj.set("metrics", Json::object());
    Json arr = Json::array();
    arr.push(1.5);
    arr.push(2.5);
    obj.set("series", std::move(arr));
    std::ostringstream os;
    obj.write(os, 2);
    std::string error;
    const Json back = Json::parse(os.str(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(), obj.dump());
}

TEST(Json, Uint64CountsRoundTripLosslessly)
{
    // Counters near UINT64_MAX differ in bits a double cannot hold:
    // both values below round to the same double, so a %.17g detour
    // collapses them. Integer tokens must survive bit-for-bit.
    const std::uint64_t a = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t b = a - 1;
    ASSERT_EQ(static_cast<double>(a), static_cast<double>(b));

    for (std::uint64_t v : {a, b}) {
        std::string error;
        const Json back = Json::parse(Json(v).dump(), &error);
        ASSERT_TRUE(error.empty()) << error;
        ASSERT_TRUE(back.isUint());
        EXPECT_EQ(back.asUint64(), v);
    }
    EXPECT_NE(Json(a).dump(), Json(b).dump());

    // Negative integer tokens take the signed path.
    const std::int64_t n = std::numeric_limits<std::int64_t>::min();
    const Json backN = Json::parse(Json(n).dump());
    ASSERT_TRUE(backN.isInt());
    EXPECT_EQ(backN.dump(), std::to_string(n));
}

TEST(Json, ExactUint64Accessor)
{
    std::uint64_t out = 0;

    // Integer-kind values in range.
    EXPECT_TRUE(Json(std::uint64_t{1} << 60).exactUint64(&out));
    EXPECT_EQ(out, std::uint64_t{1} << 60);
    EXPECT_TRUE(Json(std::int64_t{42}).exactUint64(&out));
    EXPECT_EQ(out, 42u);
    EXPECT_FALSE(Json(std::int64_t{-1}).exactUint64(&out));

    // Doubles: integral and <= 2^53 only.
    EXPECT_TRUE(Json(9007199254740992.0).exactUint64(&out));
    EXPECT_EQ(out, 9007199254740992ull);
    EXPECT_FALSE(Json(9007199254740994.0).exactUint64(&out));
    EXPECT_FALSE(Json(2.5).exactUint64(&out));
    EXPECT_FALSE(Json(-1.0).exactUint64(&out));
    EXPECT_FALSE(Json("42").exactUint64(&out));
}

TEST(Json, IntegerTokensKeepLegacyByteLayout)
{
    // Pre-existing goldens were written via %.0f; the integer path
    // must emit identical bytes so checked-in files stay stable.
    EXPECT_EQ(Json(std::uint64_t{0}).dump(), "0");
    EXPECT_EQ(Json(std::int64_t{-17}).dump(), "-17");
    EXPECT_EQ(Json::parse("1000000").dump(), "1000000");
    // "-0" has no exact integer reading that preserves its sign;
    // it stays a double and keeps printing as -0.
    EXPECT_EQ(Json::parse("-0").dump(), "-0");
    EXPECT_FALSE(Json::parse("-0").isInt());
}

TEST(Result, JsonRoundTrip)
{
    Result r("fig99_example");
    r.setSeed(12345);
    r.setJobs(4);
    r.setGitDescribe("abc1234");
    r.metric("pearson_r", 0.97);
    r.metric("max_droop_pct", 9.6);
    r.series("droops_per_1k", {40.0, 80.5, 120.25});

    Result back;
    std::string error;
    ASSERT_TRUE(Result::fromJson(
        Json::parse(r.toJson().dump(2), &error), back, &error))
        << error;
    EXPECT_EQ(back.experiment(), "fig99_example");
    EXPECT_EQ(back.seed(), 12345u);
    EXPECT_EQ(back.jobs(), 4u);
    EXPECT_EQ(back.gitDescribe(), "abc1234");
    EXPECT_DOUBLE_EQ(back.metricValue("pearson_r"), 0.97);
    ASSERT_EQ(back.allSeries().size(), 1u);
    EXPECT_EQ(back.allSeries()[0].second.size(), 3u);
    EXPECT_EQ(back.allSeries()[0].second[1], 80.5);
}

TEST(Result, CountMetricsRoundTripExactly)
{
    const std::uint64_t big =
        std::numeric_limits<std::uint64_t>::max() - 2;
    Result r("counts");
    r.metricCount("total_cycles", big);
    r.metric("tail_fraction", 1e-12);

    Result back;
    std::string error;
    ASSERT_TRUE(Result::fromJson(
        Json::parse(r.toJson().dump(2), &error), back, &error))
        << error;
    ASSERT_TRUE(back.hasCount("total_cycles"));
    EXPECT_EQ(back.countValue("total_cycles"), big);
    EXPECT_FALSE(back.hasCount("tail_fraction"));
    EXPECT_DOUBLE_EQ(back.metricValue("tail_fraction"), 1e-12);

    // Re-assigning a count as a plain double demotes it.
    back.metric("total_cycles", 3.5);
    EXPECT_FALSE(back.hasCount("total_cycles"));
}

TEST(Result, CompareTreatsCountsExactly)
{
    // Above 2^53 these two counters round to the same double, so the
    // old double-band comparison could not tell them apart; and even
    // below 2^53 the default rel = 1e-6 band would allow a 1e9-event
    // counter to drift by 1000. Counts must compare as integers.
    const std::uint64_t base = std::uint64_t{1} << 60;
    Result golden("exp");
    golden.metricCount("emergencies", base);
    Result actual("exp");
    actual.metricCount("emergencies", base + 1);
    ASSERT_EQ(static_cast<double>(base),
              static_cast<double>(base + 1));

    auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 1u);
    EXPECT_EQ(report.diffs[0].name, "emergencies");
    EXPECT_NE(report.diffs[0].note.find("exact count"),
              std::string::npos);

    // Equal counts pass.
    actual = golden;
    EXPECT_TRUE(compareResults(golden, actual).pass);

    // A small drift is still exact-failed by default...
    golden = Result("exp");
    golden.metricCount("emergencies", 1'000'000'000ull);
    actual = Result("exp");
    actual.metricCount("emergencies", 1'000'000'500ull);
    EXPECT_FALSE(compareResults(golden, actual).pass);

    // ... but an explicit golden tolerance entry widens it.
    std::string error;
    const Json tol =
        Json::parse("{\"emergencies\": {\"abs\": 1000}}", &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_TRUE(compareResults(golden, actual, &tol).pass);

    // A sampled-execution bound widens it too.
    Result sampled = actual;
    ResultSampling sampling;
    sampling.mode = "phase";
    sampling.simulatedFraction = 0.25;
    sampling.bounds.emplace_back("emergencies", 1000.0);
    sampled.setSampling(sampling);
    EXPECT_TRUE(compareResults(golden, sampled).pass);
}

TEST(Result, CountOnOneSideOnlyFallsBackToDoubles)
{
    // A golden written before counts existed (plain double) compared
    // against a count-producing run keeps the old tolerance path.
    Result golden("exp");
    golden.metric("events", 1000.0);
    Result actual("exp");
    actual.metricCount("events", 1000);
    EXPECT_TRUE(compareResults(golden, actual).pass);
}

TEST(Result, FromJsonRejectsMalformedSchemas)
{
    std::string error;
    Result out;
    EXPECT_FALSE(Result::fromJson(Json::parse("[]"), out, &error));
    EXPECT_FALSE(Result::fromJson(
        Json::parse("{\"metrics\": {}}"), out, &error)); // no experiment
    EXPECT_FALSE(Result::fromJson(
        Json::parse("{\"experiment\": \"x\", \"metrics\": 3}"), out,
        &error));
    EXPECT_FALSE(Result::fromJson(
        Json::parse("{\"experiment\": \"x\","
                    " \"series\": {\"s\": [1, \"two\"]}}"),
        out, &error));
}

TEST(Result, CompareDetectsDriftAndHonorsTolerances)
{
    Result golden("exp");
    golden.metric("a", 100.0);
    golden.metric("b", 0.5);
    Result actual = golden;

    // Identical: passes with default (tight) tolerances.
    EXPECT_TRUE(compareResults(golden, actual).pass);

    // Drift one metric beyond the default band.
    actual = golden;
    actual.metric("a", 100.001);
    auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 1u);
    EXPECT_EQ(report.diffs[0].name, "a");
    EXPECT_DOUBLE_EQ(report.diffs[0].golden, 100.0);
    EXPECT_DOUBLE_EQ(report.diffs[0].actual, 100.001);

    // A per-metric tolerance from the golden file lets it through.
    std::string error;
    const Json tol =
        Json::parse("{\"a\": {\"abs\": 0.01}}", &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(compareResults(golden, actual, &tol).pass);

    // ... but does not loosen other metrics.
    actual.metric("b", 0.6);
    EXPECT_FALSE(compareResults(golden, actual, &tol).pass);
}

TEST(Result, CompareFlagsMissingAndExtraMetrics)
{
    Result golden("exp");
    golden.metric("a", 1.0);
    golden.series("s", {1.0, 2.0});

    Result actual("exp"); // metric + series missing
    auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);

    actual = golden;
    actual.metric("extra", 7.0); // extra metric also fails
    EXPECT_FALSE(compareResults(golden, actual).pass);

    actual = golden;
    actual.series("s", {1.0, 2.0, 3.0}); // length mismatch
    report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_FALSE(report.diffs.empty());
    EXPECT_FALSE(report.diffs[0].note.empty());
}

TEST(Result, CompareChecksSeriesElementwise)
{
    Result golden("exp");
    golden.series("s", {1.0, 2.0, 3.0});
    Result actual = golden;
    actual.series("s", {1.0, 2.5, 3.0});
    const auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 1u);
    EXPECT_EQ(report.diffs[0].name, "s[1]");
}

TEST(Result, CompareRejectsNanEvenWhenBothSidesAreNan)
{
    // NaN-vs-NaN used to compare equal, hiding a broken producer
    // behind an equally broken golden. It must now fail loudly, as a
    // named structural diff with a diagnostic note.
    const double nan = std::nan("");
    Result golden("exp");
    golden.metric("droop", nan);
    Result actual("exp");
    actual.metric("droop", nan);

    const auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 1u);
    EXPECT_EQ(report.diffs[0].name, "droop");
    EXPECT_NE(report.diffs[0].note.find("non-finite"),
              std::string::npos);
}

TEST(Result, CompareRejectsNonFiniteMetricsOnEitherSide)
{
    const double inf = std::numeric_limits<double>::infinity();
    Result golden("exp");
    golden.metric("a", 1.0);
    golden.metric("b", inf);
    Result actual("exp");
    actual.metric("a", std::nan(""));
    actual.metric("b", inf); // Inf == Inf must not pass either

    const auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 2u);
    for (const auto &d : report.diffs)
        EXPECT_NE(d.note.find("non-finite"), std::string::npos) << d.name;
}

TEST(Result, CompareReportsFirstNonFiniteSeriesElementOnly)
{
    // A fully-NaN series reports one named structural failure, not one
    // diff per element.
    const double nan = std::nan("");
    Result golden("exp");
    golden.series("s", {1.0, nan, nan, nan});
    Result actual = golden;

    const auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.diffs.size(), 1u);
    EXPECT_EQ(report.diffs[0].name, "s[1]");
    EXPECT_NE(report.diffs[0].note.find("non-finite"),
              std::string::npos);
}

TEST(Result, CompareStillPassesFiniteValuesAfterHardening)
{
    Result golden("exp");
    golden.metric("a", 1.0);
    golden.series("s", {0.0, -0.5, 1e308});
    Result actual = golden;
    EXPECT_TRUE(compareResults(golden, actual).pass);
}
