/** @file Tests for the top-level System coupling. */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/fast_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::sim;

namespace {

std::unique_ptr<cpu::FastCore>
sphinxCore(std::uint64_t seed)
{
    return std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 200'000,
                              true),
        seed);
}

std::unique_ptr<cpu::FastCore>
idleCore(std::uint64_t seed)
{
    return std::make_unique<cpu::FastCore>(workload::idleSchedule(1000),
                                           seed);
}

} // namespace

TEST(System, TicksAndCounts)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(idleCore(1));
    sys.run(1000);
    EXPECT_EQ(sys.cycles(), 1000u);
    EXPECT_EQ(sys.numCores(), 1u);
    EXPECT_EQ(sys.scope().histogram().totalCount(), 1000u);
}

TEST(System, DieVoltageNearNominalAtIdle)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(idleCore(1));
    sys.addCore(idleCore(2));
    sys.run(100'000);
    EXPECT_NEAR(sys.deviation(), 0.0, 0.025);
    EXPECT_NEAR(sys.dieVoltage(), cfg.package.vddNominal.value(), 0.04);
    // Idle machines stay within the paper's 2.3% idle margin.
    EXPECT_LT(sys.scope().maxDroop(), kIdleMargin);
}

TEST(System, BusyCoreDrawsMoreCurrent)
{
    SystemConfig cfg;
    System a(cfg), b(cfg);
    a.addCore(idleCore(1));
    a.addCore(idleCore(2));
    b.addCore(sphinxCore(1));
    b.addCore(sphinxCore(2));
    a.run(50'000);
    b.run(50'000);
    EXPECT_GT(b.totalCurrent(), a.totalCurrent());
}

TEST(System, DeterministicForSeeds)
{
    SystemConfig cfg;
    System a(cfg), b(cfg);
    a.addCore(sphinxCore(7));
    b.addCore(sphinxCore(7));
    for (int i = 0; i < 20'000; ++i) {
        a.tick();
        b.tick();
        ASSERT_DOUBLE_EQ(a.deviation(), b.deviation());
    }
}

TEST(System, EmergencyTriggersGlobalRecovery)
{
    SystemConfig cfg;
    // A margin tight enough that a busy machine violates it quickly.
    cfg.emergencyMargin = 0.012;
    cfg.recoveryCostCycles = 200;
    System sys(cfg);
    sys.addCore(sphinxCore(3));
    sys.addCore(sphinxCore(4));
    sys.run(200'000);
    EXPECT_GT(sys.emergencies(), 0u);
    // Recovery stalls must appear on BOTH cores (shared supply ->
    // global rollback).
    EXPECT_GT(sys.core(0).counters().stallCycles(
                  cpu::StallCause::Recovery),
              0u);
    EXPECT_GT(sys.core(1).counters().stallCycles(
                  cpu::StallCause::Recovery),
              0u);
}

TEST(System, RecoveriesCostPerformance)
{
    SystemConfig base;
    System without(base);
    without.addCore(sphinxCore(3));
    without.addCore(sphinxCore(4));
    without.run(300'000);

    SystemConfig cfg;
    cfg.emergencyMargin = 0.012;
    cfg.recoveryCostCycles = 2000;
    System with(cfg);
    with.addCore(sphinxCore(3));
    with.addCore(sphinxCore(4));
    with.run(300'000);

    EXPECT_LT(with.core(0).counters().instructions(),
              without.core(0).counters().instructions());
}

TEST(System, TimelineProducesIntervals)
{
    SystemConfig cfg;
    cfg.enableTimeline = true;
    cfg.timelineInterval = 10'000;
    System sys(cfg);
    sys.addCore(sphinxCore(5));
    sys.run(50'000);
    EXPECT_EQ(sys.timelineSeries().size(), 5u);
}

TEST(System, DetectorBankSeesDeepMarginsMuchLess)
{
    // Event counts are not strictly monotone across margins (one
    // shallow excursion can contain several deep re-armed events),
    // but the deep end of the sweep must see far fewer events than
    // the shallow end.
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(sphinxCore(5));
    sys.addCore(sphinxCore(6));
    sys.run(300'000);
    const auto &bank = sys.droopBank();
    EXPECT_GT(bank.eventCountAt(0), 0u);
    EXPECT_LT(bank.eventCountAt(bank.size() - 1),
              bank.eventCountAt(0) / 10 + 1);
}

TEST(System, RunUntilFinishedStopsEarly)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("hmmer"), 10'000),
        1));
    const Cycles executed = sys.runUntilFinished(1'000'000);
    EXPECT_LT(executed, 30'000u);
    EXPECT_TRUE(sys.core(0).finished());
}

TEST(SystemDeath, TickWithoutCores)
{
    SystemConfig cfg;
    System sys(cfg);
    EXPECT_EXIT(sys.tick(), ::testing::ExitedWithCode(1), "no cores");
}

TEST(SystemDeath, AddCoreAfterStart)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(idleCore(1));
    sys.tick();
    EXPECT_EXIT(sys.addCore(idleCore(2)), ::testing::ExitedWithCode(1),
                "before the first tick");
}

TEST(SystemDeath, EmergencyMarginNeedsCost)
{
    SystemConfig cfg;
    cfg.emergencyMargin = 0.05;
    cfg.recoveryCostCycles = 0;
    EXPECT_EXIT(System sys(cfg), ::testing::ExitedWithCode(1),
                "recovery cost");
}

TEST(SystemDeath, TimelineNotEnabled)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addCore(idleCore(1));
    EXPECT_EXIT(sys.timelineSeries(), ::testing::ExitedWithCode(1),
                "timeline");
}

namespace {

/** Core stub that records the cycle index of every platform
 *  interrupt it receives (cycle = ticks seen so far, since the System
 *  injects before advancing the cores for that cycle). */
class InjectionRecorder : public cpu::CoreModel
{
  public:
    double tick() override
    {
        ++ticks_;
        return 0.3;
    }
    const cpu::PerfCounters &counters() const override
    { return counters_; }
    void injectRecoveryStall(std::uint32_t) override {}
    void injectPlatformInterrupt() override
    { injections_.push_back(ticks_); }
    bool finished() const override { return false; }

    const std::vector<Cycles> &injections() const { return injections_; }

  private:
    std::uint64_t ticks_ = 0;
    cpu::PerfCounters counters_;
    std::vector<Cycles> injections_;
};

std::vector<Cycles>
expectedInjectionCycles(std::size_t coreIdx, Cycles interval, Cycles n)
{
    // The documented staggering contract: core i takes its tick on
    // every cycle c with (c + i * 517) % interval == interval - 1.
    std::vector<Cycles> cycles;
    for (Cycles c = 0; c < n; ++c) {
        if ((c + coreIdx * 517) % interval == interval - 1)
            cycles.push_back(c);
    }
    return cycles;
}

} // namespace

TEST(System, OsTickInjectionCyclesMatchStaggerFormula)
{
    // The countdown-counter implementation must inject on exactly the
    // cycles the old per-cycle modulo selected, on both execution
    // paths. 300 is deliberately not a divisor or multiple of the
    // 256-cycle block so injections land mid-block.
    constexpr Cycles kInterval = 300;
    constexpr Cycles kRun = 5000;
    constexpr std::size_t kCores = 4;

    for (const bool blockedPath : {true, false}) {
        SystemConfig cfg;
        cfg.osTickInterval = kInterval;
        cfg.enableBlockedExecution = blockedPath;
        System sys(cfg);
        std::vector<const InjectionRecorder *> recorders;
        for (std::size_t i = 0; i < kCores; ++i) {
            auto core = std::make_unique<InjectionRecorder>();
            recorders.push_back(core.get());
            sys.addCore(std::move(core));
        }
        EXPECT_EQ(sys.blockedExecutionActive(), blockedPath);
        sys.run(kRun);
        for (std::size_t i = 0; i < kCores; ++i) {
            EXPECT_EQ(recorders[i]->injections(),
                      expectedInjectionCycles(i, kInterval, kRun))
                << "core " << i << " blocked=" << blockedPath;
        }
    }
}
