/**
 * @file
 * Differential tests of the scenario-lane engine: any mix of plans
 * drained through a LaneGroup must leave every System bit-identical
 * to running the same plan standalone — at every lane width, at every
 * SIMD dispatch level the host supports, through retirement/refill,
 * and across lanes whose OS-tick and trace boundaries disagree.
 * Everything is compared exactly (no tolerances).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "common/simd.hh"
#include "cpu/fast_core.hh"
#include "sim/lane_group.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::sim;

namespace {

std::unique_ptr<cpu::FastCore>
benchCore(const char *name, std::uint64_t seed, bool loop,
          Cycles baseLength = 9'000)
{
    return std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(name), baseLength,
                              loop),
        seed);
}

/** One scenario: a config, cores, and a run shape. */
struct Scenario
{
    SystemConfig cfg;
    std::size_t nCores = 2;
    bool loop = true;
    std::uint64_t seed = 100;
    Cycles cycles = 20'000;
    bool untilFinished = false;
    Cycles padTo = 0;
};

std::unique_ptr<System>
buildSystem(const Scenario &sc)
{
    static const char *const kNames[] = {"sphinx", "mcf", "hmmer",
                                         "bzip2"};
    auto sys = std::make_unique<System>(sc.cfg);
    for (std::size_t i = 0; i < sc.nCores; ++i)
        sys->addCore(benchCore(kNames[i % 4], sc.seed + i, sc.loop));
    return sys;
}

void
expectHistogramsIdentical(const Histogram &a, const Histogram &b)
{
    ASSERT_EQ(a.numBins(), b.numBins());
    EXPECT_EQ(a.totalCount(), b.totalCount());
    EXPECT_EQ(a.underflowCount(), b.underflowCount());
    EXPECT_EQ(a.overflowCount(), b.overflowCount());
    EXPECT_EQ(a.minSample(), b.minSample());
    EXPECT_EQ(a.maxSample(), b.maxSample());
    for (std::size_t i = 0; i < a.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), b.binCount(i)) << "bin " << i;
}

void
expectSystemsIdentical(System &laned, System &solo)
{
    EXPECT_EQ(laned.cycles(), solo.cycles());
    EXPECT_EQ(laned.emergencies(), solo.emergencies());
    EXPECT_EQ(laned.dieVoltage(), solo.dieVoltage());
    EXPECT_EQ(laned.deviation(), solo.deviation());
    EXPECT_EQ(laned.totalCurrent(), solo.totalCurrent());

    expectHistogramsIdentical(laned.scope().histogram(),
                              solo.scope().histogram());

    const auto &bankA = laned.droopBank();
    const auto &bankB = solo.droopBank();
    ASSERT_EQ(bankA.size(), bankB.size());
    for (std::size_t i = 0; i < bankA.size(); ++i) {
        EXPECT_EQ(bankA.detector(i).eventCount(),
                  bankB.detector(i).eventCount())
            << "margin " << bankA.marginAt(i);
        EXPECT_EQ(bankA.detector(i).deepestEvent(),
                  bankB.detector(i).deepestEvent());
    }

    for (std::size_t i = 0; i < laned.numCores(); ++i) {
        const auto &ca = laned.core(i).counters();
        const auto &cb = solo.core(i).counters();
        EXPECT_EQ(ca.cycles(), cb.cycles());
        EXPECT_EQ(ca.instructions(), cb.instructions());
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses;
             ++c) {
            const auto cause = static_cast<cpu::StallCause>(c);
            EXPECT_EQ(ca.stallCycles(cause), cb.stallCycles(cause));
        }
    }

    if (laned.config().enableTrace) {
        const auto sa = laned.trace().chronological();
        const auto sb = solo.trace().chronological();
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].cycle, sb[i].cycle);
            EXPECT_EQ(sa[i].deviation, sb[i].deviation);
            EXPECT_EQ(sa[i].currentAmps, sb[i].currentAmps);
        }
    }
    if (laned.config().enableTimeline) {
        const auto &ta = laned.timelineSeries();
        const auto &tb = solo.timelineSeries();
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t i = 0; i < ta.size(); ++i)
            EXPECT_EQ(ta[i], tb[i]) << "interval " << i;
    }
}

/** Run every scenario laned (at `width`) and solo; compare exactly. */
void
runDifferential(const std::vector<Scenario> &scenarios,
                std::size_t width)
{
    std::vector<std::unique_ptr<System>> laned, solo;
    std::vector<LanePlan> plans;
    for (const Scenario &sc : scenarios) {
        laned.push_back(buildSystem(sc));
        solo.push_back(buildSystem(sc));
        LanePlan plan;
        plan.system = laned.back().get();
        plan.cycles = sc.cycles;
        plan.untilFinished = sc.untilFinished;
        plan.padTo = sc.padTo;
        plans.push_back(plan);
    }

    LaneGroup group(width);
    group.run(plans);

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &sc = scenarios[i];
        if (sc.untilFinished) {
            const Cycles executed =
                solo[i]->runUntilFinished(sc.cycles);
            if (sc.padTo > solo[i]->cycles())
                solo[i]->run(sc.padTo - solo[i]->cycles());
            EXPECT_EQ(plans[i].executed, executed) << "scenario " << i;
        } else {
            solo[i]->run(sc.cycles);
        }
        SCOPED_TRACE("scenario " + std::to_string(i) + " width " +
                     std::to_string(width));
        expectSystemsIdentical(*laned[i], *solo[i]);
    }
}

/** A population with non-uniform core counts, run lengths, OS-tick
 *  intervals, and sinks — the general fusion + retirement case. */
std::vector<Scenario>
mixedPopulation(int count = 7)
{
    std::vector<Scenario> out;
    for (int i = 0; i < count; ++i) {
        Scenario sc;
        sc.seed = 500 + 31ULL * static_cast<std::uint64_t>(i);
        sc.nCores = (i % 3 == 0) ? 1 : 2;
        sc.cycles = 12'000 + 1'731 * static_cast<Cycles>(i % 8);
        sc.cfg.osTickInterval = (i % 2 == 0) ? 997 : 1'543;
        out.push_back(sc);
    }
    return out;
}

/** Levels the host can actually run, narrowest first. */
std::vector<simd::IsaLevel>
hostLevels()
{
    std::vector<simd::IsaLevel> levels{simd::IsaLevel::Scalar};
    const int host = static_cast<int>(simd::detectHostLevel());
    if (host >= static_cast<int>(simd::IsaLevel::Sse2))
        levels.push_back(simd::IsaLevel::Sse2);
    if (host >= static_cast<int>(simd::IsaLevel::Avx2))
        levels.push_back(simd::IsaLevel::Avx2);
    if (host >= static_cast<int>(simd::IsaLevel::Avx512))
        levels.push_back(simd::IsaLevel::Avx512);
    return levels;
}

/** Restore the dispatch level after a test body that overrides it. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::activeLevel()) {}
    ~LevelGuard() { simd::setActiveLevel(saved_); }

  private:
    simd::IsaLevel saved_;
};

TEST(LaneGroup, AllWidthsAllLevelsBitIdentical)
{
    LevelGuard guard;
    const auto scenarios = mixedPopulation();
    for (const simd::IsaLevel level : hostLevels()) {
        simd::setActiveLevel(level);
        for (const std::size_t width : {1u, 2u, 3u, 4u, 5u, 8u, 11u,
                                        16u}) {
            SCOPED_TRACE(std::string("level ") +
                         simd::levelName(level));
            runDifferential(scenarios, width);
        }
    }
}

TEST(LaneGroup, PopulationNotDivisibleByWidth)
{
    // 7 plans through 4 lanes: a full group, retirements, and a final
    // partial group that exercises the padded kernel columns.
    runDifferential(mixedPopulation(), 4);
}

TEST(LaneGroup, WidePopulationNotDivisibleBySixteen)
{
    // 21 plans through 16 lanes: one full 16-wide group and a final
    // 5-lane partial one, so the widest configuration exercises both
    // the fully-packed and the heavily-padded kernel columns.
    runDifferential(mixedPopulation(21), 16);
}

TEST(LaneGroup, EarlyRetirementPastLaneEight)
{
    // 12 lanes of interleaved finite and looping schedules: finite
    // lanes at indices beyond the old 8-lane ceiling retire at
    // staggered cycles, so repacking shifts lanes 9..12 down through
    // positions no 8-lane group could ever populate.
    std::vector<Scenario> scenarios;
    for (int i = 0; i < 14; ++i) {
        Scenario sc;
        sc.seed = 1'300 + 19ULL * static_cast<std::uint64_t>(i);
        sc.loop = (i % 3 == 1);
        sc.untilFinished = true;
        sc.cycles = 40'000;
        sc.padTo = (i % 4 == 0) ? 45'000 : 0;
        sc.cfg.osTickInterval = 2'111;
        scenarios.push_back(sc);
    }
    runDifferential(scenarios, 12);
}

TEST(LaneGroup, WidthOneDegeneratesToBlockedPath)
{
    runDifferential(mixedPopulation(), 1);
}

TEST(LaneGroup, DifferingOsTickAndTraceBoundaries)
{
    // Lanes whose per-cycle fallbacks land on different cycles: prime
    // OS-tick intervals force lane-specific block truncation, and
    // small trace rings wrap at different times. The fused step must
    // truncate to the tightest lane without disturbing the others.
    std::vector<Scenario> scenarios;
    const Cycles ticks[] = {613, 997, 1'009, 25'000};
    for (int i = 0; i < 4; ++i) {
        Scenario sc;
        sc.seed = 900 + 17ULL * static_cast<std::uint64_t>(i);
        sc.cycles = 30'000;
        sc.cfg.osTickInterval = ticks[i];
        sc.cfg.enableTrace = true;
        sc.cfg.traceCapacity = 512u << i; // different wrap points
        sc.cfg.enableTimeline = true;
        sc.cfg.timelineInterval = 777 + 100 * static_cast<Cycles>(i);
        scenarios.push_back(sc);
    }
    runDifferential(scenarios, 4);
}

TEST(LaneGroup, MidSweepRetirementOnFiniteSchedules)
{
    // Finite and looping schedules interleaved: the finite lanes
    // finish at staggered cycles (then pad runParsec-style), freeing
    // lanes that refill from the queue mid-sweep.
    std::vector<Scenario> scenarios;
    for (int i = 0; i < 9; ++i) {
        Scenario sc;
        sc.seed = 40 + 13ULL * static_cast<std::uint64_t>(i);
        sc.loop = (i % 2 == 1);
        sc.untilFinished = true;
        sc.cycles = 40'000;
        sc.padTo = (i % 3 == 0) ? 45'000 : 0;
        sc.cfg.osTickInterval = 2'111;
        scenarios.push_back(sc);
    }
    runDifferential(scenarios, 4);
}

TEST(LaneGroup, IneligiblePlansRunSolo)
{
    // Mitigation feedback and split rails disqualify the block
    // pipeline; the group must route those plans through the
    // standalone scalar path and still match exactly.
    std::vector<Scenario> scenarios;
    Scenario plain;
    plain.seed = 7;
    scenarios.push_back(plain);

    Scenario mitigated;
    mitigated.seed = 8;
    mitigated.cfg.emergencyMargin = 0.033;
    mitigated.cfg.recoveryCostCycles = 160;
    scenarios.push_back(mitigated);

    Scenario split;
    split.seed = 9;
    split.cfg.splitSupplies = true;
    scenarios.push_back(split);

    runDifferential(scenarios, 4);
}

TEST(LaneGroup, ZeroCycleAndPrefinishedPlans)
{
    // run(0) must not even start the System (no PDN settling), and an
    // untilFinished plan whose cores are already done at entry must
    // execute nothing — both match the standalone semantics.
    std::vector<Scenario> scenarios;
    Scenario zero;
    zero.seed = 70;
    zero.cycles = 0;
    scenarios.push_back(zero);

    Scenario finite;
    finite.seed = 71;
    finite.loop = false;
    finite.untilFinished = true;
    finite.cycles = 0; // budget 0: executes nothing
    scenarios.push_back(finite);

    Scenario normal;
    normal.seed = 72;
    normal.cycles = 9'000;
    scenarios.push_back(normal);

    runDifferential(scenarios, 4);
}

TEST(LaneGroup, DefaultWidthHonoursLanesEnv)
{
    ASSERT_EQ(setenv("VSMOOTH_LANES", "3", 1), 0);
    EXPECT_EQ(LaneGroup().width(), 3u);
    ASSERT_EQ(setenv("VSMOOTH_LANES", "8", 1), 0);
    EXPECT_EQ(LaneGroup().width(), 8u);
    ASSERT_EQ(setenv("VSMOOTH_LANES", "16", 1), 0);
    EXPECT_EQ(LaneGroup().width(), 16u);
    ASSERT_EQ(unsetenv("VSMOOTH_LANES"), 0);
    EXPECT_GE(LaneGroup().width(), 4u);
}

struct CliResult
{
    int exitCode = -1;
    std::string output;
};

CliResult
runCli(const std::string &env, const std::string &args)
{
    const std::string cmd = env + " " + std::string(VSMOOTH_CLI_PATH) +
        " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    CliResult r;
    std::array<char, 4096> buf;
    while (pipe && fgets(buf.data(), buf.size(), pipe))
        r.output += buf.data();
    if (pipe) {
        const int status = pclose(pipe);
        r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return r;
}

TEST(SimdOverride, UnknownLevelIsFatalAndListsAccepted)
{
    const CliResult r =
        runCli("VSMOOTH_SIMD=avx999", "fuzz --iters 1 --seed 1");
    EXPECT_NE(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("scalar, sse2, avx2, avx512"),
              std::string::npos)
        << r.output;
}

TEST(SimdOverride, KnownLevelRoundTrips)
{
    const CliResult r =
        runCli("VSMOOTH_SIMD=scalar", "fuzz --iters 5 --seed 1");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("scalar"), std::string::npos) << r.output;
}

TEST(SimdOverride, Avx512RoundTripsOrIsFatalByHost)
{
    // A valid level name must round-trip where the host supports it
    // and die with the host's maximum where it does not — the same
    // spelled-out override behaves differently only by host capability,
    // never by accepted-set membership.
    const CliResult r =
        runCli("VSMOOTH_SIMD=avx512", "fuzz --iters 5 --seed 1");
    if (static_cast<int>(simd::detectHostLevel()) >=
        static_cast<int>(simd::IsaLevel::Avx512)) {
        EXPECT_EQ(r.exitCode, 0) << r.output;
        EXPECT_NE(r.output.find("avx512"), std::string::npos)
            << r.output;
    } else {
        EXPECT_NE(r.exitCode, 0) << r.output;
        EXPECT_NE(r.output.find("host maximum"), std::string::npos)
            << r.output;
    }
}

TEST(SimdOverride, BadLaneCountIsFatal)
{
    const CliResult r =
        runCli("VSMOOTH_LANES=17", "fuzz --iters 1 --seed 1");
    EXPECT_NE(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("VSMOOTH_LANES"), std::string::npos)
        << r.output;
}

} // namespace
