/**
 * @file
 * Differential tests of the batched block pipeline: a System run with
 * blocked execution enabled must be *bit-identical* to the same run
 * forced through the per-cycle scalar path. Every observable is
 * compared exactly (no tolerances): cycle counts, scope histogram
 * contents, droop-detector event counts, emergencies, timeline
 * series, and trace samples.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/fast_core.hh"
#include "cpu/trace_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::sim;

namespace {

std::unique_ptr<cpu::FastCore>
benchCore(const char *name, std::uint64_t seed, bool loop = true,
          Cycles baseLength = 200'000)
{
    return std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(name), baseLength,
                              loop),
        seed);
}

/** Build one system per config; cores chosen by index from a fixed
 *  spread of benchmarks with per-core seeds. */
void
addCores(System &sys, std::size_t nCores, bool loop = true)
{
    static const char *const kNames[] = {"sphinx", "mcf", "hmmer",
                                         "bzip2"};
    for (std::size_t i = 0; i < nCores; ++i)
        sys.addCore(benchCore(kNames[i % 4], 100 + i, loop));
}

void
expectHistogramsIdentical(const Histogram &a, const Histogram &b)
{
    ASSERT_EQ(a.numBins(), b.numBins());
    EXPECT_EQ(a.totalCount(), b.totalCount());
    EXPECT_EQ(a.underflowCount(), b.underflowCount());
    EXPECT_EQ(a.overflowCount(), b.overflowCount());
    EXPECT_EQ(a.minSample(), b.minSample());
    EXPECT_EQ(a.maxSample(), b.maxSample());
    for (std::size_t i = 0; i < a.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), b.binCount(i)) << "bin " << i;
}

/** Exact-equality comparison of every observable of two systems that
 *  ran the same workload through different execution paths. */
void
expectSystemsIdentical(System &blocked, System &scalar)
{
    EXPECT_EQ(blocked.cycles(), scalar.cycles());
    EXPECT_EQ(blocked.emergencies(), scalar.emergencies());
    EXPECT_EQ(blocked.dieVoltage(), scalar.dieVoltage());
    EXPECT_EQ(blocked.deviation(), scalar.deviation());
    EXPECT_EQ(blocked.totalCurrent(), scalar.totalCurrent());

    expectHistogramsIdentical(blocked.scope().histogram(),
                              scalar.scope().histogram());

    const auto &bankA = blocked.droopBank();
    const auto &bankB = scalar.droopBank();
    ASSERT_EQ(bankA.size(), bankB.size());
    for (std::size_t i = 0; i < bankA.size(); ++i) {
        EXPECT_EQ(bankA.marginAt(i), bankB.marginAt(i));
        EXPECT_EQ(bankA.detector(i).eventCount(),
                  bankB.detector(i).eventCount())
            << "margin " << bankA.marginAt(i);
        EXPECT_EQ(bankA.detector(i).deepestEvent(),
                  bankB.detector(i).deepestEvent());
    }

    for (std::size_t i = 0; i < blocked.numCores(); ++i) {
        const auto &ca = blocked.core(i).counters();
        const auto &cb = scalar.core(i).counters();
        EXPECT_EQ(ca.cycles(), cb.cycles());
        EXPECT_EQ(ca.instructions(), cb.instructions());
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses; ++c) {
            const auto cause = static_cast<cpu::StallCause>(c);
            EXPECT_EQ(ca.eventCount(cause), cb.eventCount(cause));
            EXPECT_EQ(ca.stallCycles(cause), cb.stallCycles(cause));
        }
    }
}

/** Run the same config/workload blocked and scalar; n == 0 means
 *  runUntilFinished(maxCycles) instead of run(n). */
void
runDifferential(SystemConfig cfg, std::size_t nCores, Cycles n,
                bool expectBlocked, bool loop = true,
                Cycles maxCycles = 0)
{
    cfg.enableBlockedExecution = true;
    System blocked(cfg);
    cfg.enableBlockedExecution = false;
    System scalar(cfg);
    addCores(blocked, nCores, loop);
    addCores(scalar, nCores, loop);

    EXPECT_EQ(blocked.blockedExecutionActive(), expectBlocked);
    EXPECT_FALSE(scalar.blockedExecutionActive());

    if (n > 0) {
        blocked.run(n);
        scalar.run(n);
    } else {
        EXPECT_EQ(blocked.runUntilFinished(maxCycles),
                  scalar.runUntilFinished(maxCycles));
    }
    expectSystemsIdentical(blocked, scalar);
}

TEST(BlockIdentity, SingleCore)
{
    SystemConfig cfg;
    runDifferential(cfg, 1, 60'000, true);
}

TEST(BlockIdentity, DualCore)
{
    SystemConfig cfg;
    runDifferential(cfg, 2, 60'000, true);
}

TEST(BlockIdentity, QuadCore)
{
    SystemConfig cfg;
    runDifferential(cfg, 4, 60'000, true);
}

TEST(BlockIdentity, OsTicksOnNonBlockAlignedInterval)
{
    // 997 is prime (not a multiple or divisor of the 256-cycle
    // block), so injections land mid-block and force truncated blocks
    // plus single-tick fallbacks on every interval.
    SystemConfig cfg;
    cfg.osTickInterval = 997;
    runDifferential(cfg, 4, 50'000, true);
}

TEST(BlockIdentity, TraceAndTimelineSinks)
{
    SystemConfig cfg;
    cfg.osTickInterval = 1009;
    cfg.enableTrace = true;
    cfg.traceCapacity = 1024; // small: exercises ring wrap-around
    cfg.enableTimeline = true;
    cfg.timelineInterval = 777; // non-aligned close points

    cfg.enableBlockedExecution = true;
    System blocked(cfg);
    cfg.enableBlockedExecution = false;
    System scalar(cfg);
    addCores(blocked, 2);
    addCores(scalar, 2);
    EXPECT_TRUE(blocked.blockedExecutionActive());

    blocked.run(40'000);
    scalar.run(40'000);
    expectSystemsIdentical(blocked, scalar);

    const auto &seriesA = blocked.timelineSeries();
    const auto &seriesB = scalar.timelineSeries();
    ASSERT_EQ(seriesA.size(), seriesB.size());
    for (std::size_t i = 0; i < seriesA.size(); ++i)
        EXPECT_EQ(seriesA[i], seriesB[i]) << "interval " << i;

    const auto samplesA = blocked.trace().chronological();
    const auto samplesB = scalar.trace().chronological();
    ASSERT_EQ(samplesA.size(), samplesB.size());
    for (std::size_t i = 0; i < samplesA.size(); ++i) {
        EXPECT_EQ(samplesA[i].cycle, samplesB[i].cycle);
        EXPECT_EQ(samplesA[i].deviation, samplesB[i].deviation);
        EXPECT_EQ(samplesA[i].currentAmps, samplesB[i].currentAmps);
    }
}

TEST(BlockIdentity, MitigationsDisqualifyButStayIdentical)
{
    // Emergency detector + predictor + damper: per-cycle feedback
    // consumers, so the blocked system must fall back to the scalar
    // path (blockedExecutionActive() == false) and trivially match.
    SystemConfig cfg;
    cfg.emergencyMargin = 0.033;
    cfg.recoveryCostCycles = 160;
    cfg.enableEmergencyPredictor = true;
    cfg.enableResonanceDamper = true;
    runDifferential(cfg, 2, 30'000, false);
}

TEST(BlockIdentity, SplitRailsDisqualify)
{
    SystemConfig cfg;
    cfg.splitSupplies = true;
    runDifferential(cfg, 2, 30'000, false);
}

TEST(BlockIdentity, RunUntilFinishedFiniteSchedules)
{
    // Non-looping schedules: runUntilFinished must stop at the exact
    // same cycle on both paths (the minTicksUntilFinished bound must
    // never overshoot a core's finish).
    SystemConfig cfg;
    cfg.osTickInterval = 4099;
    runDifferential(cfg, 2, 0, true, /*loop=*/false,
                    /*maxCycles=*/2'000'000);
}

TEST(BlockIdentity, RunUntilFinishedHitsMaxCycles)
{
    // Looping schedules never finish, so both paths must execute
    // exactly maxCycles.
    SystemConfig cfg;
    runDifferential(cfg, 2, 0, true, /*loop=*/true,
                    /*maxCycles=*/37'119);
}

TEST(BlockIdentity, TraceCoreBlocks)
{
    cpu::ActivityTrace trace;
    for (int i = 0; i < 5000; ++i)
        trace.activity.push_back(0.2 + 0.7 * ((i * 37) % 100) / 100.0);

    SystemConfig cfg;
    cfg.osTickInterval = 613;
    cfg.enableBlockedExecution = true;
    System blocked(cfg);
    cfg.enableBlockedExecution = false;
    System scalar(cfg);
    blocked.addCore(std::make_unique<cpu::TraceCore>(trace, false));
    scalar.addCore(std::make_unique<cpu::TraceCore>(trace, false));
    EXPECT_TRUE(blocked.blockedExecutionActive());

    EXPECT_EQ(blocked.runUntilFinished(20'000),
              scalar.runUntilFinished(20'000));
    expectSystemsIdentical(blocked, scalar);
}

TEST(BlockIdentity, ChunkedRunsMatchOneShot)
{
    // run() called in odd-sized pieces must land on the same state as
    // one big run: block truncation at call boundaries is harmless.
    SystemConfig cfg;
    cfg.osTickInterval = 997;
    System whole(cfg), pieces(cfg);
    addCores(whole, 2);
    addCores(pieces, 2);
    whole.run(30'000);
    for (Cycles step : {1u, 7u, 255u, 256u, 257u, 1000u, 28224u})
        pieces.run(step);
    expectSystemsIdentical(whole, pieces);
}

} // namespace
