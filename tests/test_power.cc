/** @file Tests for the activity-to-current model. */

#include <gtest/gtest.h>

#include "power/current_model.hh"

using namespace vsmooth;
using namespace vsmooth::power;

TEST(CurrentModel, SteadyCurrentComponents)
{
    CurrentModelParams p;
    p.leakage = Amps(2.0);
    p.idleClock = Amps(1.0);
    p.dynamicMax = Amps(4.0);
    CurrentModel model(p);
    // Activity 0: leakage + gated clock floor.
    EXPECT_NEAR(model.steadyCurrent(0.0), 2.0 + 0.25, 1e-12);
    // Activity 1: everything on.
    EXPECT_NEAR(model.steadyCurrent(1.0), 2.0 + 1.0 + 4.0, 1e-12);
    // Monotone in between.
    EXPECT_LT(model.steadyCurrent(0.3), model.steadyCurrent(0.7));
}

TEST(CurrentModel, ActivityClamped)
{
    CurrentModel model;
    EXPECT_DOUBLE_EQ(model.steadyCurrent(-1.0), model.steadyCurrent(0.0));
    // Burst headroom: activity clamps at 2.5 (restart in-rush).
    EXPECT_DOUBLE_EQ(model.steadyCurrent(5.0), model.steadyCurrent(2.5));
    EXPECT_GT(model.steadyCurrent(2.0), model.steadyCurrent(1.0));
}

TEST(CurrentModel, SmoothingDelaysEdges)
{
    CurrentModelParams p;
    p.smoothingTauCycles = 3.0;
    p.maxSlewPerCycle = 0.0;
    CurrentModel model(p);
    model.reset(0.0);
    const double target = model.steadyCurrent(1.0);
    const double start = model.steadyCurrent(0.0);
    // First cycle moves only a fraction of the way.
    const double first = model.currentFor(1.0);
    EXPECT_GT(first, start);
    EXPECT_LT(first, start + 0.5 * (target - start));
    // Converges eventually.
    double last = first;
    for (int i = 0; i < 100; ++i)
        last = model.currentFor(1.0);
    EXPECT_NEAR(last, target, 1e-6);
}

TEST(CurrentModel, SlewLimitBoundsStep)
{
    CurrentModelParams p;
    p.smoothingTauCycles = 0.0;
    p.maxSlewPerCycle = 0.5;
    CurrentModel model(p);
    model.reset(0.0);
    const double before = model.steadyCurrent(0.0);
    const double after = model.currentFor(1.0);
    EXPECT_NEAR(after - before, 0.5, 1e-12);
}

TEST(CurrentModel, NoShapingIsInstant)
{
    CurrentModelParams p;
    p.smoothingTauCycles = 0.0;
    p.maxSlewPerCycle = 0.0;
    CurrentModel model(p);
    model.reset(0.0);
    EXPECT_DOUBLE_EQ(model.currentFor(1.0), model.steadyCurrent(1.0));
}

TEST(CurrentModel, ResetSetsOperatingPoint)
{
    CurrentModel model;
    model.reset(0.7);
    // With no activity change there is no transient.
    EXPECT_NEAR(model.currentFor(0.7), model.steadyCurrent(0.7), 1e-12);
}

TEST(CurrentModel, IdleAndMaxHelpers)
{
    CurrentModel model;
    EXPECT_LT(model.idleCurrent(), model.maxCurrent());
    EXPECT_DOUBLE_EQ(model.maxCurrent(), model.steadyCurrent(1.0));
}

TEST(CurrentModelDeath, NegativeComponents)
{
    CurrentModelParams p;
    p.leakage = Amps(-1.0);
    EXPECT_EXIT({ CurrentModel model(p); }, ::testing::ExitedWithCode(1),
                "non-negative");
}
