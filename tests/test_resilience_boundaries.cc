/**
 * @file
 * Boundary-condition tests for the mitigation mechanisms: degenerate
 * damper throttle windows, the predictor's saturating confidence
 * counters and history-window edge, and detector thresholds hit
 * exactly on the margin.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/droop_detector.hh"
#include "resilience/emergency_predictor.hh"
#include "resilience/resonance_damper.hh"

using namespace vsmooth;
using namespace vsmooth::resilience;
using namespace vsmooth::noise;

namespace {

/** Drive `damper` with `cycles` samples of a resonance-frequency sine
 *  large enough to trigger it. */
void
driveResonance(ResonanceDamper &damper, std::uint32_t cycles,
               double amplitude = 0.05)
{
    const double period = damper.params().resonancePeriodCycles;
    for (std::uint32_t i = 0; i < cycles; ++i)
        damper.feed(amplitude * std::sin(2.0 * M_PI * i / period));
}

} // namespace

TEST(ResonanceDamperBoundary, ZeroCycleWindowTriggersButNeverThrottles)
{
    // throttleCycles = 0 is a "detect only" damper: the trigger
    // counter advances but no cycle is ever throttled and feed()
    // never requests a stall.
    ResonanceDamperParams p;
    p.throttleCycles = 0;
    ResonanceDamper damper(p);

    const double period = p.resonancePeriodCycles;
    bool throttled = false;
    for (std::uint32_t i = 0; i < 20 * p.resonancePeriodCycles; ++i)
        throttled |= damper.feed(0.05 * std::sin(2.0 * M_PI * i / period));

    EXPECT_GT(damper.triggers(), 0u);
    EXPECT_EQ(damper.throttledCycles(), 0u);
    EXPECT_FALSE(throttled);
}

TEST(ResonanceDamperBoundary, OneCycleWindowThrottlesExactlyOnePerTrigger)
{
    ResonanceDamperParams p;
    p.throttleCycles = 1;
    ResonanceDamper damper(p);

    driveResonance(damper, 40 * p.resonancePeriodCycles);

    EXPECT_GT(damper.triggers(), 0u);
    EXPECT_EQ(damper.throttledCycles(), damper.triggers());
}

TEST(ResonanceDamperBoundary, QuietInputNeverTriggers)
{
    ResonanceDamper damper;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        EXPECT_FALSE(damper.feed(0.0));
    EXPECT_EQ(damper.triggers(), 0u);
    EXPECT_EQ(damper.throttledCycles(), 0u);
}

TEST(ResonanceDamperDeath, PeriodBelowFourCyclesIsFatal)
{
    ResonanceDamperParams p;
    p.resonancePeriodCycles = 3;
    EXPECT_EXIT(ResonanceDamper{p}, ::testing::ExitedWithCode(1),
                "resonance period");
}

TEST(ResonanceDamperDeath, NonPositiveTriggerAmplitudeIsFatal)
{
    ResonanceDamperParams p;
    p.triggerAmplitude = 0.0;
    EXPECT_EXIT(ResonanceDamper{p}, ::testing::ExitedWithCode(1),
                "trigger amplitude");
}

namespace {

/** Drive the rolling signature to its fixed point: after
 *  `historyLength` identical events the signature no longer changes,
 *  so later observations index the same table entry. */
void
saturateSignature(EmergencyPredictor &p)
{
    for (std::uint32_t i = 0; i < p.params().historyLength; ++i)
        p.observeEvent(0, cpu::StallCause::L2Miss);
}

} // namespace

TEST(EmergencyPredictorBoundary, ConfidenceCountersSaturateAtThree)
{
    // The table stores 2-bit-style saturating counters capped at 3: a
    // threshold above the cap can never be reached, no matter how many
    // emergencies are learned on the same signature.
    EmergencyPredictorParams params;
    params.confidenceThreshold = 4;
    EmergencyPredictor predictor(params);

    saturateSignature(predictor);
    for (int i = 0; i < 100; ++i)
        predictor.observeEmergency();
    EXPECT_EQ(predictor.learned(), 100u);

    // Signature is at its fixed point, so this indexes the learned
    // entry — and must still not fire.
    predictor.observeEvent(0, cpu::StallCause::L2Miss);
    EXPECT_EQ(predictor.predictions(), 0u);
    EXPECT_FALSE(predictor.shouldThrottle());
}

TEST(EmergencyPredictorBoundary, ThresholdAtCapStillFires)
{
    // Threshold 3 == the saturation cap: reachable, fires.
    EmergencyPredictorParams params;
    params.confidenceThreshold = 3;
    EmergencyPredictor predictor(params);

    saturateSignature(predictor);
    for (int i = 0; i < 3; ++i)
        predictor.observeEmergency();

    predictor.observeEvent(0, cpu::StallCause::L2Miss);
    EXPECT_EQ(predictor.predictions(), 1u);

    // The armed window drains one cycle at a time, exactly
    // throttleCycles long.
    std::uint32_t drained = 0;
    while (predictor.shouldThrottle())
        ++drained;
    EXPECT_EQ(drained, params.throttleCycles);
    EXPECT_EQ(predictor.throttledCycles(), params.throttleCycles);
}

TEST(EmergencyPredictorBoundary, WideHistoryWindowUsesFullSignature)
{
    // historyLength = 16 puts the fold window at exactly 64 bits — the
    // "mask everything" branch. The predictor must still learn and
    // fire on a recurring signature.
    EmergencyPredictorParams params;
    params.historyLength = 16;
    EmergencyPredictor predictor(params);

    saturateSignature(predictor);
    predictor.observeEmergency();
    predictor.observeEmergency();

    predictor.observeEvent(0, cpu::StallCause::L2Miss);
    EXPECT_EQ(predictor.predictions(), 1u);
    EXPECT_TRUE(predictor.shouldThrottle());
}

TEST(EmergencyPredictorDeath, BadTableBitsIsFatal)
{
    EmergencyPredictorParams params;
    params.tableBits = 0;
    EXPECT_EXIT(EmergencyPredictor{params},
                ::testing::ExitedWithCode(1), "table bits");
    params.tableBits = 25;
    EXPECT_EXIT(EmergencyPredictor{params},
                ::testing::ExitedWithCode(1), "table bits");
}

TEST(EmergencyPredictorDeath, ZeroHistoryLengthIsFatal)
{
    EmergencyPredictorParams params;
    params.historyLength = 0;
    EXPECT_EXIT(EmergencyPredictor{params},
                ::testing::ExitedWithCode(1), "history length");
}

TEST(DroopDetectorBoundary, DeviationExactlyOnMarginDoesNotTrigger)
{
    // The event condition is strict: deviation < -margin. A sample
    // sitting exactly on the margin is still "inside" — the margin is
    // the last safe level, matching the emergency definition used by
    // the fail-safe.
    DroopDetector d(0.03);
    EXPECT_FALSE(d.feed(-0.03));
    EXPECT_EQ(d.eventCount(), 0u);
    EXPECT_FALSE(d.inEvent());

    // One ulp deeper does trigger.
    EXPECT_TRUE(d.feed(std::nextafter(-0.03, -1.0)));
    EXPECT_EQ(d.eventCount(), 1u);
    EXPECT_TRUE(d.inEvent());
}

TEST(DroopDetectorBoundary, ReleaseLevelIsAlsoStrict)
{
    DroopDetector d(0.03, 0.9);
    ASSERT_TRUE(d.feed(-0.05));

    // Exactly on the release level (-margin * 0.9): still in the
    // event (recovery requires deviation > release).
    EXPECT_FALSE(d.feed(-0.027));
    EXPECT_TRUE(d.inEvent());

    // One ulp above releases, and the event's depth is recorded.
    EXPECT_FALSE(d.feed(std::nextafter(-0.027, 1.0)));
    EXPECT_FALSE(d.inEvent());
    EXPECT_DOUBLE_EQ(d.deepestEvent(), -0.05);
}

TEST(DroopDetectorBankBoundary, ExactMarginLookupAndBlockEquivalence)
{
    const std::vector<double> margins{0.01, 0.02, 0.03};
    const std::vector<double> samples{
        0.0,   -0.02, // exactly on the middle margin: only 0.01 fires
        -0.05, 0.0,   // deep dip: everything fires, then releases
        -0.015,       // between the shallow margins
    };

    DroopDetectorBank bank(margins);
    for (double s : samples)
        bank.feed(s);

    EXPECT_EQ(bank.eventCountForMargin(0.01), 2u);
    EXPECT_EQ(bank.eventCountForMargin(0.02), 1u);
    EXPECT_EQ(bank.eventCountForMargin(0.03), 1u);

    // The block path must agree bit-for-bit, including the
    // exactly-on-margin samples its fast-skip compares against.
    DroopDetectorBank blockBank(margins);
    blockBank.feedBlock(samples.data(), samples.size());
    for (std::size_t i = 0; i < margins.size(); ++i)
        EXPECT_EQ(blockBank.eventCountAt(i), bank.eventCountAt(i)) << i;
}

TEST(DroopDetectorBankDeath, UnconfiguredMarginIsFatal)
{
    DroopDetectorBank bank({0.01, 0.02});
    EXPECT_EXIT(bank.eventCountForMargin(0.05),
                ::testing::ExitedWithCode(1), "not configured");
}
