/** @file Tests for the cache, TLB, and branch predictor structures. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "cpu/cache.hh"
#include "cpu/tlb.hh"
#include "common/rng.hh"

using namespace vsmooth;
using namespace vsmooth::cpu;

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 2, 64});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1004)); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, GeometryDerivation)
{
    Cache cache({32 * 1024, 8, 64});
    EXPECT_EQ(cache.numSets(), 64u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 8 sets of 64 B lines: addresses 0, 1024, 2048 map to
    // set 0. Access 0, 1024, then 2048 evicts 0 (LRU).
    Cache cache({1024, 2, 64});
    cache.access(0);
    cache.access(1024);
    cache.access(2048);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1024));
    EXPECT_TRUE(cache.contains(2048));
}

TEST(Cache, LruUpdatedOnHit)
{
    Cache cache({1024, 2, 64});
    cache.access(0);
    cache.access(1024);
    cache.access(0);    // refresh 0
    cache.access(2048); // evicts 1024 now
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1024));
}

TEST(Cache, ContainsDoesNotAllocate)
{
    Cache cache({1024, 2, 64});
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_FALSE(cache.access(0x40)); // still a miss
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache cache({1024, 2, 64});
    cache.access(0);
    cache.flush();
    EXPECT_FALSE(cache.contains(0));
}

TEST(Cache, CapacityMissPattern)
{
    // Stride through twice the capacity: second pass still misses.
    Cache cache(core2L1dGeometry());
    const std::uint64_t footprint = 64 * 1024;
    for (Addr a = 0; a < footprint; a += 64)
        cache.access(a);
    const auto misses_before = cache.misses();
    for (Addr a = 0; a < footprint; a += 64)
        cache.access(a);
    EXPECT_EQ(cache.misses(), misses_before + footprint / 64);
}

TEST(Cache, FitsWorkingSetAfterWarmup)
{
    Cache cache(core2L1dGeometry());
    const std::uint64_t footprint = 16 * 1024; // half of L1
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a = 0; a < footprint; a += 64)
            cache.access(a);
    EXPECT_NEAR(cache.missRate(), 0.25, 0.01); // only cold misses
}

TEST(CacheDeath, InvalidGeometry)
{
    EXPECT_EXIT(Cache({1000, 2, 60}), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Cache({1024, 0, 64}), ::testing::ExitedWithCode(1),
                "associativity");
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(4, 4096);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same page
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb(2, 4096);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);  // refresh page 0
    tlb.access(0x2000);  // evicts page 1
    EXPECT_TRUE(tlb.access(0x0000));
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, ThrashWhenWorkingSetExceedsEntries)
{
    Tlb tlb(256, 4096);
    // 384 pages cyclically with LRU: every access misses.
    for (int pass = 0; pass < 3; ++pass)
        for (Addr p = 0; p < 384; ++p)
            tlb.access(p * 4096);
    EXPECT_EQ(tlb.hits(), 0u);
}

TEST(Tlb, FlushClears)
{
    Tlb tlb(4, 4096);
    tlb.access(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(TlbDeath, InvalidConfig)
{
    EXPECT_EXIT(Tlb(0, 4096), ::testing::ExitedWithCode(1),
                "at least one");
    EXPECT_EXIT(Tlb(4, 1000), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(0x400, true);
    // After warmup, the counter saturates: final predictions correct.
    BranchPredictor warm(10);
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += !warm.predictAndTrain(0x400, true);
    EXPECT_LT(wrong, 25);
}

TEST(BranchPredictor, RandomBranchesNearFiftyPercent)
{
    BranchPredictor bp(14);
    Rng rng(3);
    std::uint64_t wrong = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        wrong += !bp.predictAndTrain(0x400, rng.bernoulli(0.5));
    EXPECT_NEAR(static_cast<double>(wrong) / n, 0.5, 0.05);
    EXPECT_NEAR(bp.mispredictRate(), static_cast<double>(wrong) / n,
                1e-12);
}

TEST(BranchPredictor, PatternLearnedThroughHistory)
{
    // Strict alternation is learnable via the global history register.
    BranchPredictor bp(12);
    bool taken = false;
    for (int i = 0; i < 2000; ++i) {
        bp.predictAndTrain(0x800, taken);
        taken = !taken;
    }
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        wrong += !bp.predictAndTrain(0x800, taken);
        taken = !taken;
    }
    EXPECT_LT(wrong, 50);
}

TEST(BranchPredictorDeath, BadTableBits)
{
    EXPECT_EXIT(BranchPredictor(0), ::testing::ExitedWithCode(1),
                "table bits");
    EXPECT_EXIT(BranchPredictor(30), ::testing::ExitedWithCode(1),
                "table bits");
}
