/** @file Tests for the text-table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace vsmooth;

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
    EXPECT_EQ(TextTable::num(std::uint64_t(42)), "42");
    EXPECT_EQ(TextTable::num(-7), "-7");
}

TEST(TextTable, PrintsHeaderSeparatorAndRows)
{
    TextTable t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "22"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t;
    t.setHeader({"x", "y"});
    t.addRow({"looooong", "1"});
    std::ostringstream os;
    t.print(os);
    // Header line must be padded to the widest cell + 2.
    std::istringstream is(os.str());
    std::string header_line;
    std::getline(is, header_line);
    EXPECT_GE(header_line.size(), std::string("looooong").size());
}

TEST(TextTable, CsvOutput)
{
    TextTable t("ignored title");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NoHeaderStillPrintsRows)
{
    TextTable t;
    t.addRow({"only", "row"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
    EXPECT_EQ(os.str().find("---"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.setHeader({"a"});
    t.addRow({"1", "2", "3"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}
