/** @file Tests for the PDN models: config, ladder, second-order. */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hh"
#include "pdn/droop_analysis.hh"
#include "pdn/ladder.hh"
#include "pdn/package_config.hh"
#include "pdn/second_order.hh"
#include "sim/calibration.hh"

using namespace vsmooth;
using namespace vsmooth::pdn;

TEST(PackageConfig, DecapScaling)
{
    const auto cfg = PackageConfig::core2duo();
    const auto proc25 = cfg.withDecapFraction(0.25);
    EXPECT_DOUBLE_EQ(proc25.decapFraction, 0.25);
    EXPECT_LT(proc25.effectiveCapacitance().value(),
              cfg.effectiveCapacitance().value());
    EXPECT_GT(proc25.resonanceFrequency().value(),
              cfg.resonanceFrequency().value());
    EXPECT_GT(proc25.characteristicImpedance().value(),
              cfg.characteristicImpedance().value());
}

TEST(PackageConfig, ResonanceInMeasuredBand)
{
    // The paper's Fig 4: resonance between ~75 and 250 MHz across
    // the decap range.
    for (double frac : sim::procDecapFractions()) {
        const auto cfg =
            PackageConfig::core2duo().withDecapFraction(frac);
        const double f = cfg.resonanceFrequency().value();
        EXPECT_GT(f, 60e6) << "frac " << frac;
        EXPECT_LT(f, 260e6) << "frac " << frac;
    }
}

TEST(PackageConfigDeath, RejectsBadFraction)
{
    EXPECT_EXIT(PackageConfig::core2duo().withDecapFraction(1.5),
                ::testing::ExitedWithCode(1), "fraction");
}

TEST(Ladder, HasPerCoreHandles)
{
    const auto net = buildLadder(PackageConfig::core2duo(), 2);
    EXPECT_EQ(net.coreNodes.size(), 2u);
    EXPECT_EQ(net.loadSources.size(), 2u);
    EXPECT_NE(net.dieNode, circuit::kGround);
}

TEST(Ladder, Proc0OmitsPackageCaps)
{
    const auto full = buildLadder(PackageConfig::core2duo(), 1);
    const auto none = buildLadder(
        PackageConfig::core2duo().withDecapFraction(0.0), 1);
    EXPECT_GT(full.net.elements().size(), none.net.elements().size());
}

TEST(Ladder, ImpedancePeakTracksConfigResonance)
{
    for (double frac : {1.0, 0.25, 0.03}) {
        const auto cfg =
            PackageConfig::core2duo().withDecapFraction(frac);
        const auto net = buildLadder(cfg, 1);
        const auto sweep = circuit::impedanceSweep(
            net.net, net.dieNode, Hertz(20e6), Hertz(400e6), 60);
        const auto peak = circuit::resonancePeak(sweep);
        EXPECT_NEAR(peak.frequencyHz, cfg.resonanceFrequency().value(),
                    cfg.resonanceFrequency().value() * 0.2)
            << "frac " << frac;
    }
}

TEST(Ladder, ReducedDecapRaisesPeakImpedance)
{
    auto peakOf = [](double frac) {
        const auto cfg =
            PackageConfig::core2duo().withDecapFraction(frac);
        const auto net = buildLadder(cfg, 1);
        return circuit::resonancePeak(
                   circuit::impedanceSweep(net.net, net.dieNode,
                                           Hertz(20e6), Hertz(400e6),
                                           60))
            .magnitude();
    };
    EXPECT_GT(peakOf(0.03), 2.0 * peakOf(1.0));
}

TEST(SecondOrder, SettlesToDcUnderConstantLoad)
{
    SecondOrderParams params;
    SecondOrderPdn pdn(params, Seconds(0.5e-9));
    for (int i = 0; i < 200000; ++i)
        pdn.step(10.0);
    EXPECT_NEAR(pdn.voltage(),
                params.vdd.value() - params.rSeries.value() * 10.0,
                1e-4);
    EXPECT_NEAR(pdn.inductorCurrent(), 10.0, 1e-3);
}

TEST(SecondOrder, StepExcitesRingNearResonance)
{
    SecondOrderParams params;
    SecondOrderPdn pdn(params, Seconds(0.5e-9));
    pdn.reset(5.0);
    // Step the load and measure the ring period via minima spacing.
    std::vector<double> trace;
    for (int i = 0; i < 200; ++i)
        trace.push_back(pdn.step(15.0));
    // Find first two local minima.
    std::vector<int> minima;
    for (int i = 1; i + 1 < static_cast<int>(trace.size()); ++i) {
        if (trace[i] < trace[i - 1] && trace[i] <= trace[i + 1])
            minima.push_back(i);
        if (minima.size() == 2)
            break;
    }
    ASSERT_EQ(minima.size(), 2u);
    const double period = (minima[1] - minima[0]) * 0.5e-9;
    EXPECT_NEAR(1.0 / period, pdn.resonanceFrequency().value(),
                pdn.resonanceFrequency().value() * 0.2);
}

TEST(SecondOrder, MatchesLadderResonance)
{
    // The reduced model and the ladder must agree on the resonance
    // frequency (integration invariant from DESIGN.md).
    const auto cfg = PackageConfig::core2duo();
    SecondOrderPdn fast(cfg, Seconds(0.5e-9));
    const auto net = buildLadder(cfg, 1);
    const auto peak = circuit::resonancePeak(circuit::impedanceSweep(
        net.net, net.dieNode, Hertz(20e6), Hertz(400e6), 80));
    EXPECT_NEAR(fast.resonanceFrequency().value(), peak.frequencyHz,
                peak.frequencyHz * 0.15);
}

TEST(SecondOrder, DroopScalesWithDecapRemoval)
{
    auto droopOf = [](double frac) {
        SecondOrderPdn pdn(
            PackageConfig::core2duo().withDecapFraction(frac),
            Seconds(0.5e-9));
        pdn.reset(5.0);
        double vmin = 1e9;
        for (int i = 0; i < 400; ++i)
            vmin = std::min(vmin, pdn.step(20.0));
        return pdn.vddNominal() - vmin;
    };
    const double d100 = droopOf(1.0);
    const double d3 = droopOf(0.03);
    // Paper Fig 6: roughly 2x between Proc100 and Proc3.
    EXPECT_GT(d3, 1.5 * d100);
    EXPECT_LT(d3, 3.5 * d100);
}

TEST(SecondOrder, RippleBoundedAndPeriodic)
{
    SecondOrderParams params;
    SecondOrderPdn pdn(params, Seconds(0.5e-9), 0.01, Hertz(1e6));
    double vmin = 1e9, vmax = -1e9;
    for (int i = 0; i < 20000; ++i) {
        const double v = pdn.step(0.0);
        vmin = std::min(vmin, v);
        vmax = std::max(vmax, v);
    }
    const double nominal = params.vdd.value();
    EXPECT_LT(vmax, nominal * 1.016);
    EXPECT_GT(vmin, nominal * 0.984);
    EXPECT_GT(vmax - vmin, nominal * 0.015); // ripple is present
}

TEST(SecondOrder, NoRippleIsFlatAtIdle)
{
    SecondOrderParams params;
    SecondOrderPdn pdn(params, Seconds(0.5e-9), 0.0);
    pdn.reset(3.0);
    for (int i = 0; i < 1000; ++i)
        pdn.step(3.0);
    EXPECT_NEAR(pdn.voltage(),
                params.vdd.value() - params.rSeries.value() * 3.0, 1e-9);
}

TEST(SecondOrder, DeviationSign)
{
    SecondOrderPdn pdn(PackageConfig::core2duo(), Seconds(0.5e-9));
    pdn.reset(0.0);
    for (int i = 0; i < 50; ++i)
        pdn.step(30.0); // heavy load -> droop
    EXPECT_LT(pdn.voltageDeviation(), 0.0);
}

TEST(SecondOrderDeath, RejectsBadParams)
{
    SecondOrderParams params;
    params.l = Henries(0.0);
    EXPECT_EXIT(SecondOrderPdn(params, Seconds(1e-9)),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(ResetSimulation, DroopGrowsMonotonicallyAsDecapShrinks)
{
    double prev = 0.0;
    for (double frac : sim::procDecapFractions()) {
        const auto wf = simulateReset(
            PackageConfig::core2duo().withDecapFraction(frac));
        EXPECT_GT(wf.maxDroop(), prev)
            << "droop should grow as decap shrinks (frac " << frac
            << ")";
        prev = wf.maxDroop();
    }
}

TEST(ResetSimulation, Proc100DroopNearPaperValue)
{
    const auto wf = simulateReset(PackageConfig::core2duo());
    EXPECT_GT(wf.maxDroop(), 0.100); // paper: ~150 mV
    EXPECT_LT(wf.maxDroop(), 0.220);
}

TEST(ResetSimulation, Proc0DroopNearPaperValue)
{
    const auto wf = simulateReset(
        PackageConfig::core2duo().withDecapFraction(0.0));
    EXPECT_GT(wf.maxDroop(), 0.250); // paper: ~350 mV
    EXPECT_LT(wf.maxDroop(), 0.450);
}

TEST(VoltageWaveform, TimeBelowAccounting)
{
    VoltageWaveform wf;
    wf.dt = Seconds(1e-9);
    wf.vNominal = 1.0;
    wf.samples = {1.0, 0.94, 0.94, 0.96, 1.0};
    EXPECT_NEAR(wf.timeBelow(0.95).value(), 2e-9, 1e-18);
    EXPECT_NEAR(wf.maxDroop(), 0.06, 1e-12);
    EXPECT_NEAR(wf.peakToPeak(), 0.06, 1e-12);
}
