/**
 * @file
 * Tests for the vsmooth::dsp primitive layer (DESIGN.md §12).
 *
 * The layer's whole contract is *exact* identity: each primitive is
 * the one implementation of a per-cycle recurrence, and every hot
 * path — CurrentModel, SecondOrderPdn, StallEngine, the cross-lane
 * SIMD kernel — must produce bit-for-bit the values the primitive
 * produces. All comparisons here are EXPECT_EQ on doubles (no
 * tolerances), across block sizes with ragged tails and across every
 * SIMD dispatch level the host supports.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "cpu/stall_engine.hh"
#include "dsp/primitives.hh"
#include "pdn/second_order.hh"
#include "power/current_model.hh"

using namespace vsmooth;

namespace {

/** Deterministic xorshift stream of doubles in [lo, hi). */
class Stream
{
  public:
    explicit Stream(std::uint64_t seed) : x_(seed | 1) {}

    double next(double lo, double hi)
    {
        x_ ^= x_ << 13;
        x_ ^= x_ >> 7;
        x_ ^= x_ << 17;
        const double u =
            static_cast<double>(x_ >> 11) * 0x1.0p-53; // [0, 1)
        return lo + (hi - lo) * u;
    }

    std::vector<double> block(std::size_t n, double lo, double hi)
    {
        std::vector<double> out(n);
        for (double &v : out)
            v = next(lo, hi);
        return out;
    }

  private:
    std::uint64_t x_;
};

/** Block sizes with ragged tails: single sample, one chunk, chunk+1,
 *  and a non-aligned prime. */
constexpr std::size_t kBlockSizes[] = {1, 256, 257, 301};

} // namespace

// ---------------------------------------------------------------------
// Free kernels vs the historical spelled-out forms
// ---------------------------------------------------------------------

TEST(Dsp, OnePoleMatchesDivideForm)
{
    // The resonance damper's historical form divided by 256; the
    // primitive multiplies by alpha = 1/256. Powers of two make the
    // two forms bit-identical.
    Stream rng(1);
    dsp::OnePoleSmoother smoother{1.0 / 256.0, 0.0};
    double mean = 0.0;
    for (int i = 0; i < 2'000; ++i) {
        const double x = rng.next(-0.2, 0.2);
        mean += (x - mean) / 256.0;
        EXPECT_EQ(smoother.sample(x), mean);
    }
}

TEST(Dsp, SlewLimiterMatchesBranchyReference)
{
    Stream rng(2);
    dsp::SlewLimiter limiter{0.35, 1.0};
    double prev = 1.0;
    for (int i = 0; i < 2'000; ++i) {
        const double target = rng.next(-3.0, 5.0);
        // Reference: the branchy spelling of the clamp.
        double delta = target - prev;
        if (delta > 0.35)
            delta = 0.35;
        if (delta < -0.35)
            delta = -0.35;
        prev += delta;
        EXPECT_EQ(limiter.sample(target), prev);
    }
}

TEST(Dsp, SmoothSlewMatchesCurrentModelCurrentFor)
{
    // The fused chain + activity map must reproduce the per-cycle
    // scalar entry point exactly, for every enable combination.
    const double taus[] = {0.0, 2.0};
    const double slews[] = {0.0, 0.4};
    for (const double tau : taus) {
        for (const double slew : slews) {
            SCOPED_TRACE("tau " + std::to_string(tau) + " slew " +
                         std::to_string(slew));
            power::CurrentModelParams params;
            params.smoothingTauCycles = tau;
            params.maxSlewPerCycle = slew;
            power::CurrentModel model(params);

            auto cur = model.cursor();
            dsp::SmoothSlew chain{cur.tau, cur.alpha, cur.slew,
                                  cur.prev};
            const dsp::ActivityMap map{cur.leak, cur.idleClk,
                                       cur.dynMax};

            Stream rng(3);
            for (int i = 0; i < 2'000; ++i) {
                const double a = rng.next(-0.1, 1.3);
                EXPECT_EQ(model.currentFor(a),
                          chain.sample(map.sample(a)));
            }
        }
    }
}

TEST(Dsp, ActivityMapBlockMatchesScalarSamples)
{
    // The SSE2 block body and the scalar tail must agree bitwise for
    // every element, whatever the block alignment (including the
    // clamp edge cases the stream covers: negative, > 2.5, -0.0).
    const dsp::ActivityMap map{3.0, 1.5, 4.2};
    Stream rng(4);
    for (const std::size_t n : kBlockSizes) {
        auto in = rng.block(n, -0.5, 3.0);
        if (n > 2)
            in[n / 2] = -0.0;
        std::vector<double> out(n);
        map.processBlock(in.data(), out.data(), n);
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(out[j], map.sample(in[j])) << "sample " << j;
    }
}

TEST(Dsp, SteadyBlockMatchesActivityMap)
{
    power::CurrentModel model;
    const auto cur = model.cursor();
    const dsp::ActivityMap map{cur.leak, cur.idleClk, cur.dynMax};
    Stream rng(5);
    for (const std::size_t n : kBlockSizes) {
        const auto in = rng.block(n, -0.2, 2.8);
        std::vector<double> a(n), b(n);
        model.steadyBlock(in.data(), a.data(), n);
        map.processBlock(in.data(), b.data(), n);
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(a[j], b[j]) << "sample " << j;
    }
}

TEST(Dsp, ProcessSumColumnsMatchesSequentialChains)
{
    // The lockstep K-chain sum must equal stepping the same chains
    // one sample at a time and summing in chain order.
    Stream rng(6);
    constexpr std::size_t kN = 301;
    const auto in0 = rng.block(kN, 3.0, 9.0);
    const auto in1 = rng.block(kN, 3.0, 9.0);

    dsp::SmoothSlew chains[2] = {{2.0, 1.0 / 3.0, 0.4, 5.0},
                                 {2.0, 1.0 / 3.0, 0.4, 6.0}};
    dsp::SmoothSlew refs[2] = {chains[0], chains[1]};

    std::vector<double> total(kN);
    const double *const cols[2] = {in0.data(), in1.data()};
    dsp::processSumColumns(chains, cols, total.data(), kN);

    for (std::size_t j = 0; j < kN; ++j) {
        double expected = 0.0;
        expected += refs[0].sample(in0[j]);
        expected += refs[1].sample(in1[j]);
        EXPECT_EQ(total[j], expected) << "sample " << j;
    }
    EXPECT_EQ(chains[0].prev, refs[0].prev);
    EXPECT_EQ(chains[1].prev, refs[1].prev);
}

TEST(Dsp, BiquadMatchesSecondOrderPdnStep)
{
    pdn::PackageConfig cfg;
    cfg.rippleFraction = 0.0; // BiquadRecurrence models constant drive
    pdn::SecondOrderPdn pdn(cfg, Seconds(1.0 / 1.86e9));
    pdn.reset(20.0);

    const auto bs = pdn.cursor();
    dsp::BiquadRecurrence biquad{bs.m00, bs.m01,    bs.m10, bs.m11,
                                 bs.n00, bs.n01,    bs.n10, bs.n11,
                                 bs.vdd, bs.rc,     bs.invVdd,
                                 bs.iL,  bs.vC,     bs.vDie};

    Stream rng(7);
    for (int i = 0; i < 2'000; ++i) {
        const double load = rng.next(10.0, 40.0);
        pdn.step(load);
        const double dev = biquad.sample(load);
        EXPECT_EQ(biquad.vDie, pdn.voltage());
        EXPECT_EQ(biquad.iL, pdn.inductorCurrent());
        EXPECT_EQ(dev, pdn.voltageDeviation());
    }
}

TEST(Dsp, RippleSingleDivisionMatchesTwoDivisionForm)
{
    // The primitive computes q = t/T once and reuses it for the
    // floor; the historical form divided twice. Same operand bits in,
    // same operation, same bits out.
    const dsp::RippleOscillator osc{0.011, 1e-6};
    Stream rng(8);
    for (int i = 0; i < 5'000; ++i) {
        const double t = rng.next(0.0, 1e-3);
        const double phase = t / 1e-6 - std::floor(t / 1e-6);
        const double tri = phase < 0.5 ? (1.0 - 4.0 * phase)
                                       : (4.0 * phase - 3.0);
        EXPECT_EQ(osc.at(t), 0.011 * tri);
    }
}

TEST(Dsp, RippleProcessBlockMatchesSerialEvaluation)
{
    const dsp::RippleOscillator osc{0.009, 1e-6};
    const double dt = 1.0 / 1.86e9;
    for (const std::size_t n : kBlockSizes) {
        std::vector<double> out(n);
        osc.processBlock(3.2e-7, dt, out.data(), n);
        double t = 3.2e-7;
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(out[j], osc.at(t)) << "sample " << j;
            t += dt;
        }
    }
}

TEST(Dsp, PdnStepBlockMatchesStepLoopWithRipple)
{
    // The block path's cached-ripple optimization (one oscillator
    // evaluation per cycle instead of two) must stay bit-identical to
    // per-cycle stepping, through chunk boundaries and ragged tails.
    for (const std::size_t n : {std::size_t{1}, std::size_t{256},
                                std::size_t{257}, std::size_t{301},
                                std::size_t{1'000}}) {
        pdn::PackageConfig cfg; // default rippleFraction = 0.009
        ASSERT_GT(cfg.rippleFraction, 0.0);
        pdn::SecondOrderPdn blocked(cfg, Seconds(1.0 / 1.86e9));
        pdn::SecondOrderPdn serial(cfg, Seconds(1.0 / 1.86e9));
        blocked.reset(15.0);
        serial.reset(15.0);

        Stream rng(9);
        const auto load = rng.block(n, 5.0, 45.0);
        std::vector<double> dev(n);
        blocked.stepBlock(load.data(), dev.data(), n);

        for (std::size_t j = 0; j < n; ++j) {
            serial.step(load[j]);
            EXPECT_EQ(dev[j], serial.voltageDeviation())
                << "n " << n << " sample " << j;
        }
        EXPECT_EQ(blocked.voltage(), serial.voltage());
        EXPECT_EQ(blocked.inductorCurrent(), serial.inductorCurrent());
        EXPECT_EQ(blocked.time().value(), serial.time().value());
    }
}

TEST(Dsp, PdnStepBlockMatchesStepLoopWithoutRipple)
{
    for (const std::size_t n : kBlockSizes) {
        pdn::PackageConfig cfg;
        cfg.rippleFraction = 0.0;
        pdn::SecondOrderPdn blocked(cfg, Seconds(1.0 / 1.86e9));
        pdn::SecondOrderPdn serial(cfg, Seconds(1.0 / 1.86e9));

        Stream rng(10);
        const auto load = rng.block(n, 5.0, 45.0);
        std::vector<double> dev(n);
        blocked.stepBlock(load.data(), dev.data(), n);

        for (std::size_t j = 0; j < n; ++j) {
            serial.step(load[j]);
            EXPECT_EQ(dev[j], serial.voltageDeviation())
                << "n " << n << " sample " << j;
        }
        EXPECT_EQ(blocked.voltage(), serial.voltage());
    }
}

TEST(Dsp, LinearRampMatchesStallEngineRampDown)
{
    cpu::StallEngine engine(0.9);
    cpu::PerfCounters ctr;
    cpu::EventTiming timing;
    timing.rampDownCycles = 7;
    timing.stallCycles = 3;
    timing.stallActivity = 0.05;
    engine.beginEvent(cpu::StallCause::L2Miss, timing);

    dsp::LinearRamp ramp{0.9, 0.05, 7, 7};
    for (int i = 0; i < 7; ++i) {
        ASSERT_FALSE(ramp.done());
        EXPECT_EQ(engine.tick(ctr), ramp.sample()) << "cycle " << i;
    }
    EXPECT_TRUE(ramp.done());
    EXPECT_EQ(engine.state(), cpu::EngineState::Stalled);
}

// ---------------------------------------------------------------------
// Block interface properties
// ---------------------------------------------------------------------

TEST(Dsp, ProcessBlockEqualsSampleLoopAndRunsInPlace)
{
    Stream rng(11);
    for (const std::size_t n : kBlockSizes) {
        const auto in = rng.block(n, 2.0, 10.0);

        dsp::SmoothSlew blockChain{2.0, 1.0 / 3.0, 0.4, 4.0};
        dsp::SmoothSlew sampleChain = blockChain;
        dsp::SmoothSlew inPlaceChain = blockChain;

        std::vector<double> out(n);
        blockChain.processBlock(in.data(), out.data(), n);

        std::vector<double> inPlace = in;
        inPlaceChain.processBlock(inPlace.data(), inPlace.data(), n);

        for (std::size_t j = 0; j < n; ++j) {
            const double expected = sampleChain.sample(in[j]);
            EXPECT_EQ(out[j], expected) << "sample " << j;
            EXPECT_EQ(inPlace[j], expected) << "sample " << j;
        }
        EXPECT_EQ(blockChain.prev, sampleChain.prev);
        EXPECT_EQ(inPlaceChain.prev, sampleChain.prev);
    }
}

TEST(Dsp, StateSaveRestoreRoundTripsExactly)
{
    // Copying a primitive snapshots the stream: replaying the same
    // inputs from a saved copy reproduces identical bits.
    Stream rng(12);
    const auto warm = rng.block(100, 2.0, 10.0);
    const auto tail = rng.block(50, 2.0, 10.0);

    dsp::SmoothSlew chain{2.0, 1.0 / 3.0, 0.4, 4.0};
    dsp::OnePoleSmoother pole{1.0 / 256.0, 0.0};
    dsp::BiquadRecurrence biquad{0.99, -0.01, 0.02, 0.98,
                                 0.1,  0.0,   0.0,  -0.1,
                                 1.15, 0.001, 1.0 / 1.15,
                                 20.0, 1.14,  1.14};
    dsp::LinearRamp ramp{0.9, 0.05, 200, 200};

    std::vector<double> scratch(warm.size());
    chain.processBlock(warm.data(), scratch.data(), warm.size());
    pole.processBlock(warm.data(), scratch.data(), warm.size());
    biquad.processBlock(warm.data(), scratch.data(), warm.size());
    ramp.processBlock(scratch.data(), warm.size());

    const dsp::SmoothSlew chainSaved = chain;
    const dsp::OnePoleSmoother poleSaved = pole;
    const dsp::BiquadRecurrence biquadSaved = biquad;
    const dsp::LinearRamp rampSaved = ramp;

    std::vector<double> first(tail.size()), replay(tail.size());
    auto runTail = [&](std::vector<double> &out) {
        for (std::size_t j = 0; j < tail.size(); ++j) {
            out[j] = chain.sample(tail[j]) + pole.sample(tail[j]) +
                     biquad.sample(tail[j]) + ramp.sample();
        }
    };
    runTail(first);
    chain = chainSaved;
    pole = poleSaved;
    biquad = biquadSaved;
    ramp = rampSaved;
    runTail(replay);

    for (std::size_t j = 0; j < tail.size(); ++j)
        EXPECT_EQ(first[j], replay[j]) << "sample " << j;
}

// ---------------------------------------------------------------------
// constexpr smoke: the kernels evaluate at compile time
// ---------------------------------------------------------------------

namespace {

constexpr double
constexprOnePole()
{
    double prev = 0.0;
    dsp::onePoleSample(prev, 1.0, 0.5);
    dsp::onePoleSample(prev, 1.0, 0.5);
    return prev;
}
static_assert(constexprOnePole() == 0.75);

constexpr double
constexprChain()
{
    dsp::SmoothSlew chain{2.0, 1.0 / 3.0, 0.25, 0.0};
    const double in[3] = {3.0, 3.0, 3.0};
    double out[3] = {};
    chain.processBlock(in, out, 3);
    return out[2];
}
static_assert(constexprChain() == 0.75); // slew-limited: 3 * 0.25

constexpr double
constexprBiquad()
{
    // Identity state matrix, zero input matrix: state holds, vDie
    // taps vC + rc * (iL - load).
    double iL = 2.0, vC = 1.0, vDie = 0.0;
    return dsp::biquadSample(iL, vC, vDie, 1.0, 0.0, 0.0, 1.0, 0.0,
                             0.0, 2.0, 0.5, 1.0);
}
static_assert(constexprBiquad() == 0.0); // vDie == vC == 1, 1*1 - 1

static_assert(dsp::LinearRamp::at(4, 4, 1.0, 0.0) == 0.8);
static_assert(dsp::activityToCurrentSample(0.0, 3.0, 1.5, 4.2) ==
              3.0 + 1.5 * 0.25);

} // namespace

// ---------------------------------------------------------------------
// Cross-lane kernel: every host SIMD level, every lane count, against
// the scalar dsp primitives
// ---------------------------------------------------------------------

namespace {

/** Restore the dispatch level after a test body that overrides it. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::activeLevel()) {}
    ~LevelGuard() { simd::setActiveLevel(saved_); }

  private:
    simd::IsaLevel saved_;
};

/** Levels the host can actually run, narrowest first. */
std::vector<simd::IsaLevel>
hostLevels()
{
    std::vector<simd::IsaLevel> levels{simd::IsaLevel::Scalar};
    if (static_cast<int>(simd::detectHostLevel()) >=
        static_cast<int>(simd::IsaLevel::Sse2))
        levels.push_back(simd::IsaLevel::Sse2);
    if (static_cast<int>(simd::detectHostLevel()) >=
        static_cast<int>(simd::IsaLevel::Avx2))
        levels.push_back(simd::IsaLevel::Avx2);
    if (simd::detectHostLevel() == simd::IsaLevel::Avx512)
        levels.push_back(simd::IsaLevel::Avx512);
    return levels;
}

/** All heap-side storage for one synthetic LaneStepArgs block. */
struct LaneFixture
{
    static constexpr std::size_t kCores = 2;
    static constexpr std::size_t kStride = simd::kMaxLanes;

    std::size_t n;
    std::size_t lanes;
    std::vector<double> steady; // [core][laneColumn][cycle]
    std::vector<double> total;
    std::vector<double> deviation;
    simd::LaneStepArgs args;

    LaneFixture(std::size_t cycles, std::size_t laneCount)
        : n(cycles),
          lanes(laneCount),
          steady(kCores * kStride * cycles),
          total(kStride * cycles),
          deviation(kStride * cycles)
    {
        Stream rng(77);
        for (double &v : steady)
            v = rng.next(4.0, 10.0);

        args.n = n;
        args.lanes = lanes;
        args.stride = kStride; // multiple of every vector width
        args.cores = kCores;
        for (std::size_t l = 0; l < kStride; ++l) {
            for (std::size_t c = 0; c < kCores; ++c)
                args.steady[c][l] =
                    steady.data() + (c * kStride + l) * n;
            args.total[l] = total.data() + l * n;
            args.deviation[l] = deviation.data() + l * n;
            args.ripplePeriod[l] = 1.0; // benign for pad lanes
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            const double s = static_cast<double>(l);
            args.tau[l] = (l % 2 == 0) ? 2.0 : 0.0;
            args.alpha[l] = 1.0 / (1.0 + args.tau[l]);
            args.slew[l] = (l % 3 == 0) ? 0.4 : 0.0;
            for (std::size_t c = 0; c < kCores; ++c)
                args.prev[c][l] = 5.0 + 0.25 * s;
            // A lightly damped but stable 2x2 update with small
            // input terms — representative magnitudes, exact values
            // irrelevant (both sides run the same arithmetic).
            args.m00[l] = 0.995 - 0.001 * s;
            args.m01[l] = -0.012;
            args.m10[l] = 0.018;
            args.m11[l] = 0.993 + 0.0005 * s;
            args.n00[l] = 0.006;
            args.n01[l] = 0.0004;
            args.n10[l] = 0.0002;
            args.n11[l] = -0.008;
            args.vdd[l] = 1.15;
            args.invVdd[l] = 1.0 / 1.15;
            args.rcDamp[l] = 0.0012;
            args.dtStep[l] = 1.0 / 1.86e9;
            args.rippleAmp[l] = (l % 2 == 0) ? 0.009 * 1.15 : 0.0;
            args.ripplePeriod[l] = 1e-6;
            args.iL[l] = 20.0 + s;
            args.vC[l] = 1.14;
            args.vDie[l] = 1.14;
            args.tTime[l] = 1.0e-7 * s;
        }
    }
};

/** The scalar dsp reference for one fixture: per lane, the smoothing
 *  chains summed in core order, the cached-ripple trapezoidal drive,
 *  and the biquad recurrence. */
void
referenceLaneStep(const LaneFixture &fx, std::vector<double> &total,
                  std::vector<double> &deviation,
                  simd::LaneStepArgs &state)
{
    for (std::size_t l = 0; l < fx.lanes; ++l) {
        dsp::SmoothSlew chains[LaneFixture::kCores];
        for (std::size_t c = 0; c < LaneFixture::kCores; ++c)
            chains[c] = dsp::SmoothSlew{state.tau[l], state.alpha[l],
                                        state.slew[l],
                                        state.prev[c][l]};
        const dsp::RippleOscillator osc{state.rippleAmp[l],
                                        state.ripplePeriod[l]};
        double iL = state.iL[l];
        double vC = state.vC[l];
        double vDie = state.vDie[l];
        double t = state.tTime[l];
        const double dt = state.dtStep[l];
        // LaneRipple::at has no zero-amp gate (amp * tri is ±0 for
        // pad-free zero-amp lanes), so mirror its raw arithmetic.
        const double q0 = t / osc.period;
        const double ph0 = q0 - std::floor(q0);
        const double tri0 = ph0 < 0.5 ? (1.0 - 4.0 * ph0)
                                      : (4.0 * ph0 - 3.0);
        double rPrev = osc.amp * tri0;
        for (std::size_t j = 0; j < fx.n; ++j) {
            double sum = 0.0;
            for (std::size_t c = 0; c < LaneFixture::kCores; ++c)
                sum = sum +
                      chains[c].sample(fx.args.steady[c][l][j]);
            const double tNext = t + dt;
            const double q = tNext / osc.period;
            const double ph = q - std::floor(q);
            const double tri = ph < 0.5 ? (1.0 - 4.0 * ph)
                                        : (4.0 * ph - 3.0);
            const double rNext = osc.amp * tri;
            const double vddEff =
                state.vdd[l] + 0.5 * (rPrev + rNext);
            deviation[l * fx.n + j] = dsp::biquadSample(
                iL, vC, vDie, state.m00[l], state.m01[l],
                state.m10[l], state.m11[l],
                dsp::biquadInput(state.n00[l], vddEff, state.n01[l],
                                 sum),
                dsp::biquadInput(state.n10[l], vddEff, state.n11[l],
                                 sum),
                sum, state.rcDamp[l], state.invVdd[l]);
            total[l * fx.n + j] = sum;
            t = tNext;
            rPrev = rNext;
        }
        for (std::size_t c = 0; c < LaneFixture::kCores; ++c)
            state.prev[c][l] = chains[c].prev;
        state.iL[l] = iL;
        state.vC[l] = vC;
        state.vDie[l] = vDie;
        state.tTime[l] = t;
    }
}

} // namespace

TEST(Dsp, LaneStepKernelMatchesScalarPrimitivesAtEveryLevel)
{
    LevelGuard guard;
    for (const simd::IsaLevel level : hostLevels()) {
        const simd::LaneStepFn step =
            simd::kernelsFor(level).laneStep;
        if (!step)
            continue;
        // 9 leaves seven pad lanes in the second 8-wide vector; 16
        // fills the widened LaneGroup ceiling exactly.
        for (const std::size_t lanes :
             {std::size_t{1}, std::size_t{4}, std::size_t{8},
              std::size_t{9}, std::size_t{16}}) {
            SCOPED_TRACE(std::string("level ") +
                         simd::levelName(level) + " lanes " +
                         std::to_string(lanes));
            LaneFixture fx(301, lanes);

            // Reference from the same initial state.
            simd::LaneStepArgs ref = fx.args;
            std::vector<double> refTotal(lanes * fx.n);
            std::vector<double> refDev(lanes * fx.n);
            referenceLaneStep(fx, refTotal, refDev, ref);

            step(fx.args);

            for (std::size_t l = 0; l < lanes; ++l) {
                for (std::size_t j = 0; j < fx.n; ++j) {
                    EXPECT_EQ(fx.args.total[l][j],
                              refTotal[l * fx.n + j])
                        << "lane " << l << " cycle " << j;
                    EXPECT_EQ(fx.args.deviation[l][j],
                              refDev[l * fx.n + j])
                        << "lane " << l << " cycle " << j;
                }
                for (std::size_t c = 0; c < LaneFixture::kCores; ++c)
                    EXPECT_EQ(fx.args.prev[c][l], ref.prev[c][l]);
                EXPECT_EQ(fx.args.iL[l], ref.iL[l]) << "lane " << l;
                EXPECT_EQ(fx.args.vC[l], ref.vC[l]) << "lane " << l;
                EXPECT_EQ(fx.args.vDie[l], ref.vDie[l])
                    << "lane " << l;
                EXPECT_EQ(fx.args.tTime[l], ref.tTime[l])
                    << "lane " << l;
            }
        }
    }
}

TEST(Dsp, BlockKernelsMatchScalarReferenceAtEveryLevel)
{
    // The steady-current and bin-classification kernels registered
    // per level (AVX2's 4-wide, AVX-512's 8-wide) must reproduce the
    // scalar arithmetic bit-for-bit on every element, including the
    // clamp edges, out-of-range sentinels, and ragged tails.
    for (const simd::IsaLevel level : hostLevels()) {
        const simd::KernelSet &ks = simd::kernelsFor(level);
        if (!ks.steady && !ks.binIndex)
            continue;
        SCOPED_TRACE(std::string("level ") + simd::levelName(level));
        Stream rng(88);
        for (const std::size_t n : kBlockSizes) {
            if (ks.steady) {
                auto in = rng.block(n, -0.5, 3.0);
                if (n > 2)
                    in[n / 2] = -0.0;
                std::vector<double> out(n);
                ks.steady(3.0, 1.5, 4.2, in.data(), out.data(), n);
                for (std::size_t j = 0; j < n; ++j) {
                    double a = in[j];
                    a = a < 0.0 ? 0.0 : a;
                    a = 2.5 < a ? 2.5 : a;
                    const double w = 1.0 < a ? 1.0 : a;
                    EXPECT_EQ(out[j],
                              3.0 + 1.5 * (0.25 + 0.75 * w) + 4.2 * a)
                        << "sample " << j;
                }
            }
            if (ks.binIndex) {
                // Range chosen so the stream strays below lo and at
                // or above hi, exercising both sentinels.
                const double lo = 0.0, hi = 1.0;
                const double invWidth = 32.0; // 32 bins
                const std::uint32_t last = 31;
                const auto xs = rng.block(n, -0.25, 1.25);
                std::vector<std::uint32_t> idx(n, 7u);
                ks.binIndex(xs.data(), n, lo, hi, invWidth, last,
                            idx.data());
                for (std::size_t j = 0; j < n; ++j) {
                    std::uint32_t want;
                    if (xs[j] < lo) {
                        want = simd::kBinUnderflow;
                    } else if (xs[j] >= hi) {
                        want = simd::kBinOverflow;
                    } else {
                        const auto raw = static_cast<std::uint32_t>(
                            (xs[j] - lo) * invWidth);
                        want = raw < last ? raw : last;
                    }
                    EXPECT_EQ(idx[j], want) << "sample " << j;
                }
            }
        }
    }
}
