/** @file Tests for the stall-engine activity waveform. */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/stall_engine.hh"

using namespace vsmooth;
using namespace vsmooth::cpu;

namespace {

/** Drain the full waveform of one event into a vector. */
std::vector<double>
captureEvent(StallEngine &engine, PerfCounters &ctr, std::size_t max = 500)
{
    std::vector<double> wave;
    for (std::size_t i = 0; i < max && engine.inEvent(); ++i)
        wave.push_back(engine.tick(ctr));
    return wave;
}

} // namespace

TEST(StallEngine, RunningProducesRunningActivity)
{
    StallEngine engine(0.8);
    PerfCounters ctr;
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(engine.tick(ctr), 0.8);
    EXPECT_EQ(ctr.cycles(), 10u);
    EXPECT_EQ(ctr.totalStallCycles(), 0u);
}

TEST(StallEngine, EventWaveformPhases)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    EventTiming timing;
    timing.rampDownCycles = 2;
    timing.stallCycles = 3;
    timing.stallActivity = 0.1;
    timing.surgeCycles = 2;
    timing.surgeActivity = 1.1;

    engine.beginEvent(StallCause::L2Miss, timing);
    EXPECT_TRUE(engine.inEvent());
    EXPECT_TRUE(engine.blocked());

    const auto wave = captureEvent(engine, ctr);
    ASSERT_EQ(wave.size(), 7u);
    // Ramp: decreasing from running toward the floor.
    EXPECT_LT(wave[0], 0.9);
    EXPECT_GT(wave[0], wave[1]);
    // Stall: at the floor.
    EXPECT_DOUBLE_EQ(wave[2], 0.1);
    EXPECT_DOUBLE_EQ(wave[4], 0.1);
    // Surge: above running.
    EXPECT_DOUBLE_EQ(wave[5], 1.1);
    EXPECT_DOUBLE_EQ(wave[6], 1.1);
    EXPECT_FALSE(engine.inEvent());
    // Ramp + stall cycles accounted as L2 stalls; surge is not.
    EXPECT_EQ(ctr.stallCycles(StallCause::L2Miss), 5u);
}

TEST(StallEngine, NoRampGoesStraightToStall)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    engine.beginEvent(StallCause::BranchMispredict);
    const auto &t = defaultTiming(StallCause::BranchMispredict);
    EXPECT_EQ(engine.state(), EngineState::Stalled);
    EXPECT_DOUBLE_EQ(engine.tick(ctr), t.stallActivity);
}

TEST(StallEngine, ShorterEventAbsorbedDuringStall)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    engine.beginEvent(StallCause::L2Miss); // long
    engine.tick(ctr);
    engine.beginEvent(StallCause::L1Miss); // shorter: absorbed
    EXPECT_EQ(engine.currentCause(), StallCause::L2Miss);
}

TEST(StallEngine, LongerEventPreempts)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    engine.beginEvent(StallCause::L1Miss);
    engine.tick(ctr);
    engine.beginEvent(StallCause::L2Miss); // longer: takes over
    EXPECT_EQ(engine.currentCause(), StallCause::L2Miss);
}

TEST(StallEngine, BurstySurgeAlternates)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    EventTiming timing;
    timing.stallCycles = 1;
    timing.stallActivity = 0.1;
    timing.surgeCycles = 24;
    timing.surgeActivity = 1.1;
    timing.burstySurge = true;
    timing.wavePeriod = 6;
    timing.waveLowActivity = 0.4;

    engine.beginEvent(StallCause::Exception, timing);
    engine.tick(ctr); // the stall cycle
    std::vector<double> surge;
    while (engine.inEvent())
        surge.push_back(engine.tick(ctr));
    ASSERT_EQ(surge.size(), 24u);
    // Waves: 6 high, 6 low, 6 high, 6 low.
    EXPECT_DOUBLE_EQ(surge[0], 1.1);
    EXPECT_DOUBLE_EQ(surge[5], 1.1);
    EXPECT_DOUBLE_EQ(surge[6], 0.4);
    EXPECT_DOUBLE_EQ(surge[11], 0.4);
    EXPECT_DOUBLE_EQ(surge[12], 1.1);
    EXPECT_DOUBLE_EQ(surge[18], 0.4);
}

TEST(StallEngine, DefaultTimingsExistForAllCauses)
{
    for (auto cause :
         {StallCause::L1Miss, StallCause::L2Miss, StallCause::TlbMiss,
          StallCause::BranchMispredict, StallCause::Exception,
          StallCause::Recovery}) {
        const auto &t = defaultTiming(cause);
        EXPECT_GE(t.stallActivity, 0.0);
        EXPECT_LE(t.stallActivity, 1.0);
    }
}

TEST(StallEngine, BranchFlushIsSharpestEdge)
{
    // The BR event must have no ramp (instant squash) — that is the
    // paper's explanation for it being the largest swing source.
    EXPECT_EQ(defaultTiming(StallCause::BranchMispredict).rampDownCycles,
              0u);
    EXPECT_GT(defaultTiming(StallCause::L2Miss).rampDownCycles, 0u);
}

TEST(StallEngine, RunningActivityAdjustable)
{
    StallEngine engine(0.9);
    PerfCounters ctr;
    engine.setRunningActivity(0.3);
    EXPECT_DOUBLE_EQ(engine.tick(ctr), 0.3);
}

TEST(StallEngineDeath, BeginEventWithNone)
{
    StallEngine engine(0.9);
    EventTiming timing;
    timing.stallCycles = 5;
    EXPECT_DEATH(engine.beginEvent(StallCause::None, timing), "None");
}

TEST(PerfCounters, IpcAndStallRatio)
{
    PerfCounters ctr;
    ctr.tickCycle(StallCause::None);
    ctr.tickCycle(StallCause::L1Miss);
    ctr.tickCycle(StallCause::L1Miss);
    ctr.tickCycle(StallCause::BranchMispredict);
    ctr.commitInstructions(6);
    EXPECT_DOUBLE_EQ(ctr.ipc(), 1.5);
    EXPECT_DOUBLE_EQ(ctr.stallRatio(), 0.75);
    EXPECT_EQ(ctr.stallCycles(StallCause::L1Miss), 2u);
    EXPECT_EQ(ctr.totalStallCycles(), 3u);
}

TEST(PerfCounters, EventCounting)
{
    PerfCounters ctr;
    ctr.recordEvent(StallCause::TlbMiss);
    ctr.recordEvent(StallCause::TlbMiss);
    ctr.recordEvent(StallCause::None); // ignored
    EXPECT_EQ(ctr.eventCount(StallCause::TlbMiss), 2u);
}

TEST(PerfCounters, ResetClearsEverything)
{
    PerfCounters ctr;
    ctr.tickCycle(StallCause::L2Miss);
    ctr.commitInstructions(3);
    ctr.recordEvent(StallCause::L2Miss);
    ctr.reset();
    EXPECT_EQ(ctr.cycles(), 0u);
    EXPECT_EQ(ctr.instructions(), 0u);
    EXPECT_EQ(ctr.eventCount(StallCause::L2Miss), 0u);
    EXPECT_DOUBLE_EQ(ctr.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(ctr.stallRatio(), 0.0);
}

TEST(PerfCounters, CauseNames)
{
    EXPECT_EQ(stallCauseName(StallCause::BranchMispredict), "BR");
    EXPECT_EQ(stallCauseName(StallCause::L2Miss), "L2");
    EXPECT_EQ(stallCauseName(StallCause::None), "none");
}
