/** @file Tests for the MNA circuit library: matrix, netlist, DC. */

#include <gtest/gtest.h>

#include <complex>

#include "circuit/dc.hh"
#include "circuit/dense_matrix.hh"
#include "circuit/netlist.hh"

using namespace vsmooth;
using namespace vsmooth::circuit;

TEST(DenseMatrix, SolvesKnownSystem)
{
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    ASSERT_TRUE(a.luFactor());
    std::vector<double> x;
    a.solve({5.0, 10.0}, x);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal)
{
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    ASSERT_TRUE(a.luFactor());
    std::vector<double> x;
    a.solve({2.0, 3.0}, x);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseMatrix, DetectsSingular)
{
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_FALSE(a.luFactor());
}

TEST(DenseMatrix, ComplexSolve)
{
    using C = std::complex<double>;
    DenseMatrix<C> a(2, 2);
    a(0, 0) = C{1, 1};
    a(0, 1) = C{0, 0};
    a(1, 0) = C{0, 0};
    a(1, 1) = C{0, 2};
    ASSERT_TRUE(a.luFactor());
    std::vector<C> x;
    a.solve({C{2, 0}, C{4, 0}}, x);
    EXPECT_NEAR(std::abs(x[0] - C{1, -1}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x[1] - C{0, -2}), 0.0, 1e-12);
}

TEST(DenseMatrix, LargerRandomRoundTrip)
{
    // Build a well-conditioned system and verify A * x ~= b.
    const std::size_t n = 12;
    DenseMatrix<double> a(n, n);
    DenseMatrix<double> copy(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double v =
                (i == j) ? 10.0 : 1.0 / (1.0 + double(i) + double(j));
            a(i, j) = v;
            copy(i, j) = v;
        }
    }
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<double>(i) - 3.0;
    ASSERT_TRUE(a.luFactor());
    std::vector<double> x;
    a.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            sum += copy(i, j) * x[j];
        EXPECT_NEAR(sum, b[i], 1e-9);
    }
}

TEST(Netlist, NodeAllocation)
{
    Netlist net;
    EXPECT_EQ(net.numNodes(), 1u); // ground
    const NodeId a = net.newNode();
    const NodeId b = net.newNode();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(net.numNodes(), 3u);
}

TEST(Netlist, SourceValueUpdates)
{
    Netlist net;
    const NodeId n = net.newNode();
    const SourceId v = net.addVoltageSource(n, kGround, Volts(1.0));
    const SourceId i = net.addCurrentSource(n, kGround, Amps(2.0));
    EXPECT_DOUBLE_EQ(net.voltageSourceValue(v), 1.0);
    EXPECT_DOUBLE_EQ(net.currentSourceValue(i), 2.0);
    net.setVoltageSource(v, Volts(1.5));
    net.setCurrentSource(i, Amps(-3.0));
    EXPECT_DOUBLE_EQ(net.voltageSourceValue(v), 1.5);
    EXPECT_DOUBLE_EQ(net.currentSourceValue(i), -3.0);
}

TEST(Netlist, ElementBookkeeping)
{
    Netlist net;
    const NodeId a = net.newNode();
    const NodeId b = net.newNode();
    net.addResistor(a, b, Ohms(1.0), "r1");
    net.addCapacitor(b, kGround, Farads(1e-9), "c1");
    net.addInductor(a, kGround, Henries(1e-9), "l1");
    ASSERT_EQ(net.elements().size(), 3u);
    EXPECT_EQ(net.elements()[0].kind, ElementKind::Resistor);
    EXPECT_EQ(net.elements()[1].kind, ElementKind::Capacitor);
    EXPECT_EQ(net.elements()[2].kind, ElementKind::Inductor);
    EXPECT_EQ(net.elements()[0].label, "r1");
}

TEST(NetlistDeath, RejectsNonPositiveValues)
{
    Netlist net;
    const NodeId a = net.newNode();
    EXPECT_EXIT(net.addResistor(a, kGround, Ohms(0.0)),
                ::testing::ExitedWithCode(1), "positive resistance");
    EXPECT_EXIT(net.addCapacitor(a, kGround, Farads(-1.0)),
                ::testing::ExitedWithCode(1), "positive capacitance");
    EXPECT_EXIT(net.addInductor(a, kGround, Henries(0.0)),
                ::testing::ExitedWithCode(1), "positive inductance");
}

TEST(NetlistDeath, RejectsUnknownNode)
{
    Netlist net;
    EXPECT_DEATH(net.addResistor(5, kGround, Ohms(1.0)), "out of range");
}

TEST(Dc, VoltageDivider)
{
    Netlist net;
    const NodeId top = net.newNode();
    const NodeId mid = net.newNode();
    net.addVoltageSource(top, kGround, Volts(10.0));
    net.addResistor(top, mid, Ohms(1.0));
    net.addResistor(mid, kGround, Ohms(3.0));
    const auto sol = dcOperatingPoint(net);
    EXPECT_NEAR(sol.nodeVoltages[top], 10.0, 1e-12);
    EXPECT_NEAR(sol.nodeVoltages[mid], 7.5, 1e-12);
}

TEST(Dc, CurrentSourceThroughResistor)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addResistor(n, kGround, Ohms(4.0));
    // Load draws 2 A out of the node -> node sits at -8 V.
    net.addCurrentSource(n, kGround, Amps(2.0));
    const auto sol = dcOperatingPoint(net);
    EXPECT_NEAR(sol.nodeVoltages[n], -8.0, 1e-12);
}

TEST(Dc, InductorIsShortAtDc)
{
    Netlist net;
    const NodeId a = net.newNode();
    const NodeId b = net.newNode();
    net.addVoltageSource(a, kGround, Volts(5.0));
    net.addInductor(a, b, Henries(1e-6));
    net.addResistor(b, kGround, Ohms(10.0));
    const auto sol = dcOperatingPoint(net);
    EXPECT_NEAR(sol.nodeVoltages[b], 5.0, 1e-9);
    ASSERT_EQ(sol.inductorCurrents.size(), 1u);
    EXPECT_NEAR(sol.inductorCurrents[0], 0.5, 1e-9);
}

TEST(Dc, CapacitorIsOpenAtDc)
{
    Netlist net;
    const NodeId a = net.newNode();
    const NodeId b = net.newNode();
    net.addVoltageSource(a, kGround, Volts(5.0));
    net.addResistor(a, b, Ohms(100.0));
    net.addCapacitor(b, kGround, Farads(1e-6));
    // A resistor to ground keeps b well-defined.
    net.addResistor(b, kGround, Ohms(100.0));
    const auto sol = dcOperatingPoint(net);
    EXPECT_NEAR(sol.nodeVoltages[b], 2.5, 1e-12);
}

TEST(DcDeath, FloatingNodeIsFatal)
{
    Netlist net;
    const NodeId a = net.newNode();
    const NodeId b = net.newNode();
    net.addVoltageSource(a, kGround, Volts(1.0));
    // b connects only through a capacitor: open at DC -> singular.
    net.addCapacitor(a, b, Farads(1e-9));
    EXPECT_EXIT(dcOperatingPoint(net), ::testing::ExitedWithCode(1),
                "singular");
}
