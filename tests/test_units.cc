/** @file Unit tests for the strong SI-unit types. */

#include <gtest/gtest.h>

#include "common/units.hh"

using namespace vsmooth;
using namespace vsmooth::units;

TEST(Units, SameUnitArithmetic)
{
    const Volts a{1.0}, b{0.25};
    EXPECT_DOUBLE_EQ((a + b).value(), 1.25);
    EXPECT_DOUBLE_EQ((a - b).value(), 0.75);
    EXPECT_DOUBLE_EQ((-b).value(), -0.25);
}

TEST(Units, ScalarScaling)
{
    const Amps i{2.0};
    EXPECT_DOUBLE_EQ((i * 3.0).value(), 6.0);
    EXPECT_DOUBLE_EQ((3.0 * i).value(), 6.0);
    EXPECT_DOUBLE_EQ((i / 4.0).value(), 0.5);
}

TEST(Units, RatioIsDimensionless)
{
    const Farads a{100e-9}, b{25e-9};
    EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, CompoundAssignment)
{
    Volts v{1.0};
    v += Volts{0.5};
    EXPECT_DOUBLE_EQ(v.value(), 1.5);
    v -= Volts{0.25};
    EXPECT_DOUBLE_EQ(v.value(), 1.25);
    v *= 2.0;
    EXPECT_DOUBLE_EQ(v.value(), 2.5);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(Volts{1.0}, Volts{1.2});
    EXPECT_GE(Amps{3.0}, Amps{3.0});
    EXPECT_NE(Ohms{1.0}, Ohms{2.0});
}

TEST(Units, OhmsLaw)
{
    const Volts v = Amps{2.0} * Ohms{3.0};
    EXPECT_DOUBLE_EQ(v.value(), 6.0);
    EXPECT_DOUBLE_EQ((Ohms{3.0} * Amps{2.0}).value(), 6.0);
    EXPECT_DOUBLE_EQ((Volts{6.0} / Ohms{3.0}).value(), 2.0);
    EXPECT_DOUBLE_EQ((Volts{6.0} / Amps{2.0}).value(), 3.0);
}

TEST(Units, Power)
{
    EXPECT_DOUBLE_EQ((Volts{1.325} * Amps{10.0}).value(), 13.25);
}

TEST(Units, FrequencyPeriodInverse)
{
    const Hertz f = gigahertz(1.86);
    const Seconds t = toPeriod(f);
    EXPECT_NEAR(t.value(), 5.376e-10, 1e-13);
    EXPECT_NEAR(toFrequency(t).value(), 1.86e9, 1.0);
}

TEST(Units, LiteralHelpers)
{
    EXPECT_DOUBLE_EQ(millivolts(150).value(), 0.15);
    EXPECT_DOUBLE_EQ(milliohms(2.5).value(), 2.5e-3);
    EXPECT_DOUBLE_EQ(nanofarads(390).value(), 390e-9);
    EXPECT_DOUBLE_EQ(picohenries(6).value(), 6e-12);
    EXPECT_DOUBLE_EQ(megahertz(100).value(), 1e8);
    EXPECT_DOUBLE_EQ(nanoseconds(1).value(), 1e-9);
    EXPECT_DOUBLE_EQ(microfarads(40).value(), 4e-5);
    EXPECT_DOUBLE_EQ(kilohertz(300).value(), 3e5);
    EXPECT_DOUBLE_EQ(picoseconds(537).value(), 5.37e-10);
    EXPECT_DOUBLE_EQ(watts(65).value(), 65.0);
}

TEST(Units, DefaultConstructedIsZero)
{
    EXPECT_DOUBLE_EQ(Volts{}.value(), 0.0);
}
