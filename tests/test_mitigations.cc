/** @file Tests for the hardware mitigation baselines and the
 *  split-supply topology. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cpu/fast_core.hh"
#include "resilience/emergency_predictor.hh"
#include "resilience/resonance_damper.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::resilience;

TEST(EmergencyPredictor, LearnsRecurringSignature)
{
    EmergencyPredictorParams p;
    p.confidenceThreshold = 1;
    // Window sized to the pattern, so its recurrence reproduces the
    // learned signature exactly.
    p.historyLength = 3;
    EmergencyPredictor pred(p);

    auto pattern = [&] {
        pred.observeEvent(0, cpu::StallCause::BranchMispredict);
        pred.observeEvent(1, cpu::StallCause::L2Miss);
        pred.observeEvent(0, cpu::StallCause::TlbMiss);
    };

    // First occurrence: no prediction, then an emergency teaches it.
    pattern();
    EXPECT_EQ(pred.predictions(), 0u);
    pred.observeEmergency();
    EXPECT_EQ(pred.learned(), 1u);

    // Same pattern recurs: the predictor fires.
    pattern();
    EXPECT_EQ(pred.predictions(), 1u);
    EXPECT_TRUE(pred.shouldThrottle());
}

TEST(EmergencyPredictor, ThrottleWindowCountsDown)
{
    EmergencyPredictorParams p;
    p.confidenceThreshold = 1;
    p.throttleCycles = 3;
    p.historyLength = 1; // signature = the last event alone
    EmergencyPredictor pred(p);
    pred.observeEvent(0, cpu::StallCause::L2Miss);
    pred.observeEmergency();
    pred.observeEvent(0, cpu::StallCause::L2Miss);
    EXPECT_TRUE(pred.shouldThrottle());
    EXPECT_TRUE(pred.shouldThrottle());
    EXPECT_TRUE(pred.shouldThrottle());
    EXPECT_FALSE(pred.shouldThrottle());
    EXPECT_EQ(pred.throttledCycles(), 3u);
}

TEST(EmergencyPredictor, UnseenSignatureDoesNotFire)
{
    EmergencyPredictor pred;
    for (int i = 0; i < 100; ++i)
        pred.observeEvent(i % 2, cpu::StallCause::L1Miss);
    EXPECT_EQ(pred.predictions(), 0u);
    EXPECT_FALSE(pred.shouldThrottle());
}

TEST(EmergencyPredictorDeath, BadParams)
{
    EmergencyPredictorParams p;
    p.tableBits = 0;
    EXPECT_EXIT({ EmergencyPredictor pred(p); },
                ::testing::ExitedWithCode(1), "table bits");
}

TEST(ResonanceDamper, TriggersOnGrowingOscillation)
{
    ResonanceDamperParams p;
    p.resonancePeriodCycles = 24;
    p.triggerAmplitude = 0.02;
    ResonanceDamper damper(p);
    // Feed a growing 24-cycle oscillation.
    std::uint64_t throttled = 0;
    for (int i = 0; i < 2000; ++i) {
        const double amp = 0.001 + 0.00005 * i; // grows past 0.02 p2p
        const double dev = amp * std::sin(2 * M_PI * i / 24.0);
        throttled += damper.feed(dev);
    }
    EXPECT_GT(damper.triggers(), 0u);
    EXPECT_GT(throttled, 0u);
}

TEST(ResonanceDamper, QuietSupplyNeverTriggers)
{
    ResonanceDamper damper;
    for (int i = 0; i < 10000; ++i)
        damper.feed(-0.005 + 0.001 * std::sin(i * 0.01));
    EXPECT_EQ(damper.triggers(), 0u);
}

TEST(ResonanceDamperDeath, BadParams)
{
    ResonanceDamperParams p;
    p.triggerAmplitude = 0.0;
    EXPECT_EXIT({ ResonanceDamper damper(p); },
                ::testing::ExitedWithCode(1), "amplitude");
}

namespace {

std::uint64_t
emergenciesWith(bool predictor, bool damper, std::uint64_t seed = 3)
{
    sim::SystemConfig cfg;
    cfg.emergencyMargin = 0.04;
    cfg.recoveryCostCycles = 500;
    cfg.enableEmergencyPredictor = predictor;
    cfg.enableResonanceDamper = damper;
    cfg.damperParams.triggerAmplitude = 0.022;
    cfg.throttleFactor = 0.75;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 400'000,
                              true),
        seed));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 400'000,
                              true),
        seed + 1));
    sys.run(400'000);
    return sys.emergencies();
}

} // namespace

TEST(Mitigations, PredictorThrottlesWithoutHurting)
{
    // The dominant deep-droop trigger in this model (timer interrupts
    // meeting the ripple trough) carries little microarchitectural
    // signature, so the predictor's coverage is limited — consistent
    // with the paper's preference for scheduling over prediction. It
    // must still fire and must not make things materially worse.
    sim::SystemConfig cfg;
    cfg.emergencyMargin = 0.04;
    cfg.recoveryCostCycles = 500;
    cfg.enableEmergencyPredictor = true;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 400'000,
                              true),
        3));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 400'000,
                              true),
        4));
    sys.run(400'000);
    ASSERT_NE(sys.predictor(), nullptr);
    EXPECT_GT(sys.predictor()->learned(), 0u);
    EXPECT_GT(sys.predictor()->predictions(), 0u);
    EXPECT_LT(sys.emergencies(),
              static_cast<std::uint64_t>(
                  1.15 * static_cast<double>(
                             emergenciesWith(false, false))));
}

TEST(Mitigations, DamperReducesEmergencies)
{
    EXPECT_LT(emergenciesWith(false, true), emergenciesWith(false, false));
}

TEST(Mitigations, AccessorsExposeState)
{
    sim::SystemConfig cfg;
    cfg.enableEmergencyPredictor = true;
    cfg.enableResonanceDamper = true;
    sim::System sys(cfg);
    EXPECT_NE(sys.predictor(), nullptr);
    EXPECT_NE(sys.damper(), nullptr);
    sim::System plain{sim::SystemConfig{}};
    EXPECT_EQ(plain.predictor(), nullptr);
    EXPECT_EQ(plain.damper(), nullptr);
}

TEST(SplitSupplies, SplitRailsSwingMore)
{
    // The paper's footnote 3 / James et al. ISSCC'07: split per-core
    // supplies see larger swings than one connected rail.
    auto tail = [](bool split) {
        sim::SystemConfig cfg;
        cfg.splitSupplies = split;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  400'000, true),
            5));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("milc"), 400'000,
                                  true),
            6));
        sys.run(400'000);
        return sys.scope().fractionBelow(-0.04);
    };
    EXPECT_GT(tail(true), 1.3 * tail(false));
}
