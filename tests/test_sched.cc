/** @file Tests for the scheduling study machinery. */

#include <gtest/gtest.h>

#include "sched/oracle_matrix.hh"
#include "sched/pass_analysis.hh"
#include "sched/policy.hh"
#include "sched/sliding_window.hh"

using namespace vsmooth;
using namespace vsmooth::sched;

namespace {

/** Small 6-benchmark matrix so the tests run fast. */
const OracleMatrix &
smallMatrix()
{
    static const OracleMatrix matrix = [] {
        std::vector<workload::SpecBenchmark> suite;
        for (const char *name :
             {"hmmer", "povray", "gamess", "sphinx", "mcf", "lbm"})
            suite.push_back(workload::specByName(name));
        OracleConfig cfg;
        cfg.cyclesPerPair = 120'000;
        return OracleMatrix(suite, cfg);
    }();
    return matrix;
}

std::vector<std::size_t>
twoCopiesPool(std::size_t n)
{
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < n; ++i) {
        pool.push_back(i);
        pool.push_back(i);
    }
    return pool;
}

} // namespace

TEST(OracleMatrix, SymmetricByConstruction)
{
    const auto &m = smallMatrix();
    for (std::size_t i = 0; i < m.size(); ++i) {
        for (std::size_t j = 0; j < m.size(); ++j) {
            EXPECT_DOUBLE_EQ(m.pair(i, j).droopsPer1k,
                             m.pair(j, i).droopsPer1k);
        }
    }
}

TEST(OracleMatrix, ProfilesPopulated)
{
    const auto &m = smallMatrix();
    EXPECT_EQ(m.size(), 6u);
    for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_GT(m.single(i).ipc, 0.0);
        EXPECT_GT(m.specRate(i).ipc, m.single(i).ipc);
        EXPECT_GT(m.pair(i, (i + 1) % m.size()).emergencies.cycles, 0u);
    }
}

TEST(OracleMatrix, NoisyPairsDroopMore)
{
    const auto &m = smallMatrix();
    // hmmer (low stall) self-pair vs mcf+sphinx (heavy).
    EXPECT_LT(m.pair(0, 0).droopsPer1k, m.pair(3, 4).droopsPer1k);
}

TEST(Policy, NamesStable)
{
    EXPECT_EQ(policyName(PolicyKind::Random), "Random");
    EXPECT_EQ(policyName(PolicyKind::Droop), "Droop");
    EXPECT_EQ(policyName(PolicyKind::Ipc), "IPC");
}

TEST(Policy, SchedulePairsEveryJobExactlyOnce)
{
    const auto &m = smallMatrix();
    Rng rng(1);
    for (auto kind : {PolicyKind::Random, PolicyKind::Ipc,
                      PolicyKind::Droop, PolicyKind::IpcOverDroopN}) {
        const auto sched =
            buildSchedule(twoCopiesPool(m.size()), m, kind, rng, 1.0);
        EXPECT_EQ(sched.size(), m.size());
        std::vector<int> uses(m.size(), 0);
        for (const auto &p : sched) {
            ++uses[p.a];
            ++uses[p.b];
        }
        for (int u : uses)
            EXPECT_EQ(u, 2);
    }
}

TEST(Policy, DroopPolicyMinimizesDroops)
{
    const auto &m = smallMatrix();
    Rng rng(2);
    const auto pool = twoCopiesPool(m.size());
    const auto droop_sched =
        buildSchedule(pool, m, PolicyKind::Droop, rng);
    const auto droop = evaluateSchedule(droop_sched, m).meanDroopsPer1k;

    double random_mean = 0.0;
    for (int k = 0; k < 20; ++k) {
        const auto r = buildSchedule(pool, m, PolicyKind::Random, rng);
        random_mean += evaluateSchedule(r, m).meanDroopsPer1k;
    }
    random_mean /= 20.0;
    EXPECT_LT(droop, random_mean);
}

TEST(Policy, IpcPolicyMaximizesThroughput)
{
    const auto &m = smallMatrix();
    Rng rng(3);
    const auto pool = twoCopiesPool(m.size());
    const auto ipc_sched = buildSchedule(pool, m, PolicyKind::Ipc, rng);
    const auto ipc = evaluateSchedule(ipc_sched, m).meanIpc;

    double random_mean = 0.0;
    for (int k = 0; k < 20; ++k) {
        const auto r = buildSchedule(pool, m, PolicyKind::Random, rng);
        random_mean += evaluateSchedule(r, m).meanIpc;
    }
    random_mean /= 20.0;
    EXPECT_GE(ipc, random_mean * 0.998);
}

TEST(Policy, HybridInterpolatesBetweenIpcAndDroop)
{
    const auto &m = smallMatrix();
    Rng rng(4);
    const auto pool = twoCopiesPool(m.size());
    const auto droopish = evaluateSchedule(
        buildSchedule(pool, m, PolicyKind::IpcOverDroopN, rng, 8.0), m);
    const auto ipcish = evaluateSchedule(
        buildSchedule(pool, m, PolicyKind::IpcOverDroopN, rng, 0.01), m);
    const auto pure_ipc = evaluateSchedule(
        buildSchedule(pool, m, PolicyKind::Ipc, rng), m);
    // Heavy exponent behaves like Droop (fewer droops); tiny exponent
    // like IPC.
    EXPECT_LE(droopish.meanDroopsPer1k, ipcish.meanDroopsPer1k + 1e-9);
    EXPECT_NEAR(ipcish.meanIpc, pure_ipc.meanIpc,
                0.15 * pure_ipc.meanIpc);
}

TEST(Policy, SpecRateScheduleSelfPairs)
{
    const auto &m = smallMatrix();
    const auto sched = specRateSchedule(m);
    ASSERT_EQ(sched.size(), m.size());
    for (std::size_t i = 0; i < sched.size(); ++i) {
        EXPECT_EQ(sched[i].a, i);
        EXPECT_EQ(sched[i].b, i);
    }
}

TEST(Policy, NormalizationAgainstSpecRateIsIdentityForSpecRate)
{
    const auto &m = smallMatrix();
    const auto norm = normalizeAgainstSpecRate(
        evaluateSchedule(specRateSchedule(m), m), m);
    EXPECT_NEAR(norm.droops, 1.0, 1e-12);
    EXPECT_NEAR(norm.performance, 1.0, 1e-12);
}

TEST(PolicyDeath, OddPoolRejected)
{
    const auto &m = smallMatrix();
    Rng rng(5);
    EXPECT_EXIT(buildSchedule({0, 1, 2}, m, PolicyKind::Random, rng),
                ::testing::ExitedWithCode(1), "odd");
}

TEST(PassAnalysis, AggregateProfileCoversAllCycles)
{
    const auto &m = smallMatrix();
    const auto agg = aggregateProfile(m);
    // 6 singles + 21 unique pairs, each 120k cycles.
    EXPECT_EQ(agg.cycles, (6 + 21) * 120'000u);
}

TEST(PassAnalysis, TableRowsBehaveLikePaper)
{
    const auto &m = smallMatrix();
    const auto rows = optimalMarginTable(m, {1, 100, 10'000});
    ASSERT_EQ(rows.size(), 3u);
    // Optimal margin relaxes (grows) and expected improvement falls
    // as recovery coarsens.
    EXPECT_LE(rows[0].optimalMargin, rows[2].optimalMargin);
    EXPECT_GE(rows[0].expectedImprovementPercent,
              rows[2].expectedImprovementPercent);
    for (const auto &row : rows) {
        EXPECT_GE(row.passingSpecRate, 0);
        EXPECT_LE(row.passingSpecRate, 6);
    }
}

TEST(PassAnalysis, CountPassingBounded)
{
    const auto &m = smallMatrix();
    const auto rows = optimalMarginTable(m, {100});
    const auto sched = specRateSchedule(m);
    const int n = countPassing(sched, m, rows[0].optimalMargin, 100,
                               rows[0].expectedImprovementPercent);
    EXPECT_EQ(n, rows[0].passingSpecRate);
}

TEST(SlidingWindow, SeriesShapes)
{
    sim::SystemConfig cfg;
    const auto result = slidingWindowExperiment(
        workload::specByName("astar"), workload::specByName("astar"),
        50'000, 400'000, cfg);
    EXPECT_EQ(result.windowCycles, 50'000u);
    EXPECT_GE(result.coScheduled.size(), 7u);
    EXPECT_NEAR(static_cast<double>(result.coScheduled.size()),
                static_cast<double>(result.singleCore.size()), 1.0);
}

TEST(SlidingWindow, CoScheduleIsNoisierOnAverage)
{
    sim::SystemConfig cfg;
    const auto result = slidingWindowExperiment(
        workload::specByName("sphinx"), workload::specByName("sphinx"),
        50'000, 400'000, cfg);
    double co = 0.0, single = 0.0;
    const std::size_t n =
        std::min(result.coScheduled.size(), result.singleCore.size());
    for (std::size_t i = 0; i < n; ++i) {
        co += result.coScheduled[i];
        single += result.singleCore[i];
    }
    EXPECT_GT(co, single);
}
