/**
 * @file
 * Tests for the phase-sampled execution engine (sim/sampler).
 *
 * The load-bearing guarantees: sampling Off is the default and
 * bit-identical to the pre-sampling simulator; schedules the detector
 * cannot stabilize on (sub-window phases, single-block phases,
 * never-settling oscillations) degrade to 100% exact execution and
 * terminate; when fast-forwards do happen, every extrapolated metric
 * lands within the error bound the run's own report declares; and the
 * Result metadata produced from a report round-trips and drives
 * compareResults' bound-widened tolerance checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "common/result.hh"
#include "cpu/fast_core.hh"
#include "sim/calibration.hh"
#include "sim/sampler.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::sim;

namespace {

/** Schedule alternating between two activity levels every `per`
 *  cycles, forever. */
cpu::PhaseSchedule
alternating(Cycles per, double loActivity, double hiActivity)
{
    cpu::PhaseSchedule s;
    s.loop = true;
    cpu::ActivityPhase lo;
    lo.duration = per;
    lo.baseActivity = loActivity;
    cpu::ActivityPhase hi;
    hi.duration = per;
    hi.baseActivity = hiActivity;
    s.phases = {lo, hi};
    return s;
}

/** One infinite flat phase (the maximally stationary workload). */
cpu::PhaseSchedule
flat(double activity)
{
    cpu::PhaseSchedule s;
    s.loop = true;
    cpu::ActivityPhase p;
    p.duration = 1 << 20;
    p.baseActivity = activity;
    s.phases = {p};
    return s;
}

/** Every observable we demand bit-equality on when the sampler
 *  reports zero extrapolated cycles. */
struct Observed
{
    Cycles cycles = 0;
    double deviation = 0.0;
    double dieVoltage = 0.0;
    std::uint64_t emergencies = 0;
    std::uint64_t histTotal = 0;
    std::uint64_t histUnder = 0;
    std::uint64_t histOver = 0;
    double histMin = 0.0;
    double histMax = 0.0;
    std::vector<std::uint64_t> bins;
    std::vector<std::uint64_t> bankEvents;
    std::vector<std::uint64_t> coreInstr;

    bool operator==(const Observed &) const = default;
};

Observed
observe(const System &sys)
{
    Observed o;
    o.cycles = sys.cycles();
    o.deviation = sys.deviation();
    o.dieVoltage = sys.dieVoltage();
    o.emergencies = sys.emergencies();
    const Histogram &h = sys.scope().histogram();
    o.histTotal = h.totalCount();
    o.histUnder = h.underflowCount();
    o.histOver = h.overflowCount();
    o.histMin = h.minSample();
    o.histMax = h.maxSample();
    for (std::size_t i = 0; i < h.numBins(); ++i)
        o.bins.push_back(h.binCount(i));
    const auto &bank = sys.droopBank();
    for (std::size_t i = 0; i < bank.size(); ++i)
        o.bankEvents.push_back(bank.detector(i).eventCount());
    for (std::size_t i = 0; i < sys.numCores(); ++i)
        o.coreInstr.push_back(sys.core(i).counters().instructions());
    return o;
}

/** Run one System over `schedule` with the given sampling mode. */
std::unique_ptr<System>
runSystem(const cpu::PhaseSchedule &schedule, SamplingConfig::Mode mode,
          Cycles n, std::size_t numCores = 2)
{
    SystemConfig cfg;
    cfg.sampling.mode = mode;
    auto sys = std::make_unique<System>(cfg);
    for (std::size_t i = 0; i < numCores; ++i)
        sys->addCore(std::make_unique<cpu::FastCore>(schedule, 7 + i));
    sys->run(n);
    return sys;
}

void
expectFiniteBounds(const SamplingReport &report)
{
    for (const auto &[name, bound] : report.namedBounds()) {
        EXPECT_TRUE(std::isfinite(bound)) << name;
        EXPECT_GE(bound, 0.0) << name;
    }
    EXPECT_TRUE(std::isfinite(report.simulatedFraction()));
    EXPECT_GT(report.simulatedFraction(), 0.0);
    EXPECT_LE(report.simulatedFraction(), 1.0);
}

} // namespace

TEST(Sampler, EnvModeDefaultsToOff)
{
    unsetenv("VSMOOTH_SAMPLING");
    auto sys = runSystem(flat(0.8), SamplingConfig::Mode::Env, 10'000);
    EXPECT_FALSE(sys->samplingActive());
    EXPECT_FALSE(sys->samplingReport().active);
}

TEST(Sampler, ZeroLengthPhaseInputsAreClamped)
{
    // Sub-unit baseLength * relativeLength products used to truncate
    // to zero-length phases, which FastCore rejects and the phase
    // detector would mis-measure. scheduleFor clamps; every suite
    // benchmark must survive the degenerate baseLength and still run
    // under the sampler without hanging or dying.
    for (const auto &bench : workload::specCpu2006()) {
        const cpu::PhaseSchedule s =
            workload::scheduleFor(bench, 1, true);
        ASSERT_FALSE(s.phases.empty()) << bench.name;
        for (const auto &p : s.phases)
            EXPECT_GE(p.duration, 1u) << bench.name;
    }
    const cpu::PhaseSchedule tiny = workload::scheduleFor(
        workload::specByName("tonto"), 1, true);
    auto sys = runSystem(tiny, SamplingConfig::Mode::Auto, 50'000);
    EXPECT_EQ(sys->cycles(), 50'000u);
    EXPECT_EQ(sys->scope().histogram().totalCount(), 50'000u);
}

TEST(Sampler, NeverStabilizingScheduleStaysExact)
{
    // Phases far shorter than one detector window (8 blocks = 2048
    // cycles): every window straddles a phase change, so no window
    // ever matches the reference and no skip is ever planned. The
    // run must terminate, execute 100% exactly, and be bit-identical
    // to sampling Off.
    const cpu::PhaseSchedule osc = alternating(137, 0.15, 0.9);
    auto exact = runSystem(osc, SamplingConfig::Mode::Off, 100'000);
    auto sampled = runSystem(osc, SamplingConfig::Mode::Auto, 100'000);

    ASSERT_TRUE(sampled->samplingActive());
    const SamplingReport report = sampled->samplingReport();
    EXPECT_EQ(report.skips, 0u);
    EXPECT_EQ(report.extrapolatedCycles, 0u);
    EXPECT_EQ(report.simulatedFraction(), 1.0);
    EXPECT_EQ(observe(*exact), observe(*sampled));
}

TEST(Sampler, SingleBlockPhasesStayExact)
{
    // Phase length exactly one block: the detector sees a different
    // activity mix every block, so windows never stabilize.
    const cpu::PhaseSchedule osc =
        alternating(System::kBlockCycles, 0.2, 0.85);
    auto exact = runSystem(osc, SamplingConfig::Mode::Off, 80'000);
    auto sampled = runSystem(osc, SamplingConfig::Mode::Auto, 80'000);

    const SamplingReport report = sampled->samplingReport();
    EXPECT_EQ(report.extrapolatedCycles, 0u);
    EXPECT_EQ(observe(*exact), observe(*sampled));
}

TEST(Sampler, PhaseChangeAfterStabilizationRecovers)
{
    // Phases of ~6 windows: long enough for the detector to
    // stabilize and start skipping, short enough that every phase
    // ends mid-stride — including inside a planned skip's guard
    // window. The run must re-detect each phase, never lose cycles
    // or histogram mass, and keep every declared bound finite.
    const cpu::PhaseSchedule osc = alternating(12'288, 0.25, 0.8);
    auto sampled = runSystem(osc, SamplingConfig::Mode::Auto, 400'000);

    EXPECT_EQ(sampled->cycles(), 400'000u);
    EXPECT_EQ(sampled->scope().histogram().totalCount(), 400'000u);
    expectFiniteBounds(sampled->samplingReport());
}

TEST(Sampler, FlatWorkloadFastForwardsWithinBounds)
{
    // A noise-free synthetic phase can park the deviation inside a
    // detector guard band forever (skips are soundly postponed); the
    // flat sphinx workload has realistic stall noise and is the
    // steady-state fixture the population benches fast-forward.
    const Cycles n = 2'000'000;
    const cpu::PhaseSchedule work =
        workload::scheduleFor(workload::specByName("sphinx"), n, true);
    const cpu::PhaseSchedule idle = workload::idleSchedule(1000);
    auto runPair = [&](SamplingConfig::Mode mode) {
        SystemConfig cfg;
        cfg.sampling.mode = mode;
        auto sys = std::make_unique<System>(cfg);
        sys->addCore(std::make_unique<cpu::FastCore>(work, 2));
        sys->addCore(std::make_unique<cpu::FastCore>(idle, 3));
        sys->run(n);
        return sys;
    };
    auto exact = runPair(SamplingConfig::Mode::Off);
    auto sampled = runPair(SamplingConfig::Mode::Auto);

    ASSERT_TRUE(sampled->samplingActive());
    const SamplingReport report = sampled->samplingReport();
    EXPECT_GT(report.skips, 0u);
    EXPECT_GT(report.extrapolatedCycles, 0u);
    EXPECT_LT(report.simulatedFraction(), 1.0);
    expectFiniteBounds(report);

    // Cycle accounting and histogram mass are exact, never estimated.
    EXPECT_EQ(sampled->cycles(), n);
    EXPECT_EQ(report.simulatedCycles + report.extrapolatedCycles, n);
    EXPECT_EQ(sampled->scope().histogram().totalCount(), n);

    // Extrapolated metrics land within the report's own bounds.
    EXPECT_LE(std::abs(sampled->scope().maxDroop() -
                       exact->scope().maxDroop()),
              report.maxDroopBound);
    EXPECT_LE(std::abs(sampled->scope().maxOvershoot() -
                       exact->scope().maxOvershoot()),
              report.maxOvershootBound);
    EXPECT_LE(std::abs(sampled->scope().fractionBelow(-kIdleMargin) -
                       exact->scope().fractionBelow(-kIdleMargin)),
              report.histFractionBound);
    const auto &eb = exact->droopBank();
    const auto &sb = sampled->droopBank();
    ASSERT_EQ(eb.size(), sb.size());
    for (std::size_t i = 0; i < eb.size(); ++i) {
        const double de =
            static_cast<double>(sb.detector(i).eventCount()) -
            static_cast<double>(eb.detector(i).eventCount());
        EXPECT_LE(std::abs(de), report.eventCountBound) << i;
    }
}

TEST(Sampler, SampledRunsAreDeterministic)
{
    const cpu::PhaseSchedule work =
        workload::scheduleFor(workload::specByName("sphinx"),
                              200'000, true);
    auto a = runSystem(work, SamplingConfig::Mode::Auto, 1'000'000);
    auto b = runSystem(work, SamplingConfig::Mode::Auto, 1'000'000);
    EXPECT_EQ(observe(*a), observe(*b));
    EXPECT_EQ(a->samplingReport().skips, b->samplingReport().skips);
}

TEST(Sampler, ReportMergeCombinesPopulations)
{
    SamplingReport a;
    a.active = true;
    a.simulatedCycles = 600;
    a.extrapolatedCycles = 400;
    a.skips = 3;
    a.maxDroopBound = 0.01;
    a.eventCountBound = 5.0;
    SamplingReport b;
    b.active = true;
    b.simulatedCycles = 1000;
    b.skips = 1;
    b.maxDroopBound = 0.03;
    b.eventCountBound = 2.0;

    a.merge(b);
    EXPECT_EQ(a.simulatedCycles, 1600u);
    EXPECT_EQ(a.extrapolatedCycles, 400u);
    EXPECT_EQ(a.skips, 4u);
    // Extremes take the worst contributor; counts sum their errors.
    EXPECT_DOUBLE_EQ(a.maxDroopBound, 0.03);
    EXPECT_DOUBLE_EQ(a.eventCountBound, 7.0);
    EXPECT_DOUBLE_EQ(a.simulatedFraction(), 0.8);

    // Merging an inactive (exact) run is a no-op on the bounds.
    SamplingReport exact;
    exact.simulatedCycles = 1000;
    a.merge(exact);
    EXPECT_TRUE(a.active);
    EXPECT_DOUBLE_EQ(a.maxDroopBound, 0.03);
}

TEST(Sampler, ResultSamplingKeyOmittedWhenAbsent)
{
    Result r("exp");
    r.metric("m", 1.0);
    EXPECT_FALSE(r.hasSampling());
    EXPECT_EQ(r.toJson().find("sampling"), nullptr);

    Result back;
    std::string error;
    ASSERT_TRUE(Result::fromJson(r.toJson(), back, &error)) << error;
    EXPECT_FALSE(back.hasSampling());
}

TEST(Sampler, ResultSamplingMetadataRoundTrips)
{
    Result r("exp");
    r.metric("max_droop_pct", 6.5);
    ResultSampling s;
    s.mode = "auto";
    s.simulatedFraction = 0.125;
    s.bounds = {{"max_droop_pct", 0.2}};
    r.setSampling(s);

    Result back;
    std::string error;
    ASSERT_TRUE(Result::fromJson(r.toJson(), back, &error)) << error;
    ASSERT_TRUE(back.hasSampling());
    EXPECT_EQ(back.sampling().mode, "auto");
    EXPECT_DOUBLE_EQ(back.sampling().simulatedFraction, 0.125);
    ASSERT_EQ(back.sampling().bounds.size(), 1u);
    EXPECT_EQ(back.sampling().bounds[0].first, "max_droop_pct");
    EXPECT_DOUBLE_EQ(back.sampling().bounds[0].second, 0.2);
}

TEST(Sampler, CompareResultsWidensToleranceToDeclaredBound)
{
    Result golden("exp");
    golden.metric("max_droop_pct", 6.0);
    Result actual("exp");
    actual.metric("max_droop_pct", 6.4);

    // Exact comparison fails...
    EXPECT_FALSE(compareResults(golden, actual).pass);

    // ...but a declared bound covering the delta passes,
    ResultSampling s;
    s.simulatedFraction = 0.3;
    s.bounds = {{"max_droop_pct", 0.5}};
    actual.setSampling(s);
    EXPECT_TRUE(compareResults(golden, actual).pass);

    // and a bound smaller than the delta still fails.
    s.bounds = {{"max_droop_pct", 0.1}};
    actual.setSampling(s);
    EXPECT_FALSE(compareResults(golden, actual).pass);
}

TEST(Sampler, CompareResultsRejectsBrokenBounds)
{
    Result golden("exp");
    golden.metric("m", 1.0);

    // Non-finite bound: structural failure, never a widened pass.
    Result actual("exp");
    actual.metric("m", 1.0);
    ResultSampling s;
    s.bounds = {{"m", std::numeric_limits<double>::infinity()}};
    actual.setSampling(s);
    auto report = compareResults(golden, actual);
    EXPECT_FALSE(report.pass);
    ASSERT_FALSE(report.diffs.empty());
    EXPECT_NE(report.diffs[0].note.find("non-finite"),
              std::string::npos);

    // A bound naming no metric or series: the producer is broken.
    Result dangling("exp");
    dangling.metric("m", 1.0);
    ResultSampling d;
    d.bounds = {{"no_such_metric", 0.1}};
    dangling.setSampling(d);
    report = compareResults(golden, dangling);
    EXPECT_FALSE(report.pass);
    ASSERT_FALSE(report.diffs.empty());
    EXPECT_NE(report.diffs[0].note.find("annotates no metric"),
              std::string::npos);
}
