/** @file Tests for descriptive statistics. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/statistics.hh"

using namespace vsmooth;

TEST(RunningStats, MatchesDirectComputation)
{
    RunningStats rs;
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), 5u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 10.0);
    EXPECT_DOUBLE_EQ(rs.range(), 9.0);
    // Unbiased variance: sum((x-4)^2)/4 = (9+4+1+0+36)/4 = 12.5
    EXPECT_DOUBLE_EQ(rs.variance(), 12.5);
    EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(12.5));
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.range(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats rs;
    rs.add(3.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEquivalentToSequential)
{
    Rng rng(5);
    RunningStats whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeIntoEmpty)
{
    RunningStats a, b;
    b.add(1.0);
    b.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(Statistics, MeanAndStddev)
{
    const std::vector<double> xs = {2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(mean(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Statistics, PercentileInterpolates)
{
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Statistics, PercentileUnsortedInput)
{
    const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Statistics, PearsonPerfectCorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Statistics, PearsonPerfectAnticorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    const std::vector<double> ys = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Statistics, PearsonIndependentNearZero)
{
    Rng rng(9);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.normal());
        ys.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Statistics, PearsonDegenerateIsZero)
{
    const std::vector<double> xs = {1, 1, 1};
    const std::vector<double> ys = {1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Statistics, LinearFitRecoversLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i - 7.0);
    }
    const auto fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Statistics, LinearFitNoisy)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 5000; ++i) {
        xs.push_back(i * 0.01);
        ys.push_back(2.0 * xs.back() + 1.0 + rng.normal(0.0, 0.1));
    }
    const auto fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.01);
    EXPECT_NEAR(fit.intercept, 1.0, 0.02);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(Statistics, BoxplotFiveNumbers)
{
    std::vector<double> xs;
    for (int i = 1; i <= 101; ++i)
        xs.push_back(i);
    const auto box = boxplot(xs);
    EXPECT_DOUBLE_EQ(box.min, 1.0);
    EXPECT_DOUBLE_EQ(box.median, 51.0);
    EXPECT_DOUBLE_EQ(box.q1, 26.0);
    EXPECT_DOUBLE_EQ(box.q3, 76.0);
    EXPECT_DOUBLE_EQ(box.max, 101.0);
    EXPECT_DOUBLE_EQ(box.mean, 51.0);
}

/** Property: percentile is monotone in p. */
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PercentileMonotone, MonotoneInP)
{
    Rng rng(GetParam());
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.normal(0.0, 5.0));
    double prev = percentile(xs, 0.0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = percentile(xs, p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Statistics, BoxplotBitIdenticalToPerPercentilePath)
{
    // boxplot() now sorts once and reuses the sorted sample; the
    // result must stay bit-identical to the historical five
    // independent percentile() calls.
    for (std::uint64_t seed : {7u, 21u, 1031u}) {
        Rng rng(seed);
        std::vector<double> xs;
        for (int i = 0; i < 733; ++i)
            xs.push_back(rng.normal(3.0, 17.0));
        const auto box = boxplot(xs);
        EXPECT_EQ(box.min, percentile(xs, 0.0));
        EXPECT_EQ(box.q1, percentile(xs, 25.0));
        EXPECT_EQ(box.median, percentile(xs, 50.0));
        EXPECT_EQ(box.q3, percentile(xs, 75.0));
        EXPECT_EQ(box.max, percentile(xs, 100.0));
        EXPECT_EQ(box.mean, mean(xs));
    }
}

TEST(Statistics, PercentileOfSortedMatchesPercentile)
{
    Rng rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 257; ++i)
        xs.push_back(rng.uniform());
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (int p = 0; p <= 100; p += 10)
        EXPECT_EQ(percentileOfSorted(sorted, p), percentile(xs, p));
}
