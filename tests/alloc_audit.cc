/**
 * @file
 * Global operator new/delete interposer (see alloc_audit.hh) and the
 * AllocAudit tests that use it to prove the steady-state simulation
 * paths never touch the heap.
 */

#include "alloc_audit.hh"

#include <cstdlib>
#include <new>

namespace {

// Thread-local so the audited spans only see the test thread's own
// traffic. Plain counters, no synchronization needed.
thread_local std::uint64_t tlAllocations = 0;
thread_local std::uint64_t tlDeallocations = 0;

void *
countedAlloc(std::size_t size)
{
    ++tlAllocations;
    // malloc(0) may return null; operator new must not.
    void *p = std::malloc(size == 0 ? 1 : size);
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++tlAllocations;
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

void
countedFree(void *p)
{
    if (p == nullptr)
        return;
    ++tlDeallocations;
    std::free(p);
}

} // namespace

namespace vsmooth::testing {

AllocCounts
allocCounts()
{
    return {tlAllocations, tlDeallocations};
}

} // namespace vsmooth::testing

// ---------------------------------------------------------------------
// Replaceable global allocation functions ([new.delete]): counting
// forwarders onto malloc/free. free() releases aligned_alloc memory
// too, so every delete funnels through one counter.

void *
operator new(std::size_t size)
{
    if (void *p = countedAlloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *p = countedAlignedAlloc(size,
                                      static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

// ---------------------------------------------------------------------
// The audit tests.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/fast_core.hh"
#include "sim/lane_group.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::sim;
using vsmooth::testing::AllocSpan;

namespace {

std::unique_ptr<cpu::FastCore>
loopingCore(const char *name, std::uint64_t seed)
{
    return std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(name), 9'000, true),
        seed);
}

SystemConfig
auditConfig()
{
    SystemConfig cfg;
    // Pin the exact block pipeline: no sampling (the env default may
    // differ under VSMOOTH_SAMPLING), no trace, no timeline.
    cfg.sampling.mode = SamplingConfig::Mode::Off;
    return cfg;
}

} // namespace

TEST(AllocAudit, InterposerCountsHeapTraffic)
{
    AllocSpan span;
    {
        std::vector<double> v(512);
        // Escape the buffer so the allocation cannot be elided.
        *static_cast<volatile double *>(v.data()) = 1.0;
    }
    EXPECT_GE(span.allocations(), 1u);
    EXPECT_GE(span.deallocations(), 1u);
}

// After warm-up (buffer sizing, histogram construction, first
// OS-tick-free stretch), System::run's blocked pipeline — core
// tickBlock, steadyBlock, PDN stepBlock, scope/detector feeds — must
// be completely allocation-free.
TEST(AllocAudit, SystemSteadyBlocksDoNotAllocate)
{
    System sys(auditConfig());
    sys.addCore(loopingCore("sphinx", 11));
    sys.addCore(loopingCore("mcf", 12));
    sys.run(16'384); // warm-up: start() sizing + first blocks

    AllocSpan span;
    sys.run(64 * 1024); // 256 more blocks
    EXPECT_EQ(span.allocations(), 0u);
    EXPECT_EQ(span.deallocations(), 0u);
}

// Same property for the fused cross-lane drain: after one warm run
// has sized the lane scratch, further drains of the same shape never
// allocate (the plan list itself is the caller's).
TEST(AllocAudit, LaneGroupSteadyDrainDoesNotAllocate)
{
    static const char *const kNames[] = {"sphinx", "mcf", "hmmer",
                                         "bzip2"};
    std::vector<std::unique_ptr<System>> systems;
    for (std::size_t i = 0; i < 4; ++i) {
        auto sys = std::make_unique<System>(auditConfig());
        sys->addCore(loopingCore(kNames[i], 20 + i));
        sys->addCore(loopingCore(kNames[(i + 1) % 4], 30 + i));
        systems.push_back(std::move(sys));
    }

    LaneGroup group(4);
    auto makePlans = [&systems](Cycles cycles) {
        std::vector<LanePlan> plans;
        plans.reserve(systems.size());
        for (auto &sys : systems) {
            LanePlan plan;
            plan.system = sys.get();
            plan.cycles = cycles;
            plans.push_back(plan);
        }
        return plans;
    };

    auto warm = makePlans(8'192);
    group.run(warm); // sizes lanes_ and the stepFused scratch

    auto plans = makePlans(32'768);
    AllocSpan span;
    group.run(plans);
    EXPECT_EQ(span.allocations(), 0u);
    EXPECT_EQ(span.deallocations(), 0u);
}
