/** @file Tests for the closed-loop adaptive margin controller. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cpu/fast_core.hh"
#include "resilience/margin_controller.hh"
#include "sim/system.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::resilience;

namespace {

MarginControllerParams
unitParams()
{
    MarginControllerParams p;
    p.updateInterval = 1'000;
    return p;
}

/**
 * Stationary periodic deviation: every update window sees the same
 * worst level, so the PI loop faces a fixed setpoint. The period
 * divides the update interval, making window extremes exactly equal.
 */
double
stationaryDeviation(std::uint64_t i, double worst)
{
    return worst * (0.5 + 0.5 * std::sin(2.0 * M_PI *
                                         static_cast<double>(i % 200) /
                                         200.0));
}

void
expectStateEq(const MarginControllerState &a,
              const MarginControllerState &b)
{
    EXPECT_EQ(a.margin, b.margin);
    EXPECT_EQ(a.integral, b.integral);
    EXPECT_EQ(a.windowWorstDev, b.windowWorstDev);
    EXPECT_EQ(a.updateCountdown, b.updateCountdown);
    EXPECT_EQ(a.inViolation, b.inViolation);
    EXPECT_EQ(a.violationRelease, b.violationRelease);
    EXPECT_EQ(a.eventDepth, b.eventDepth);
    EXPECT_EQ(a.deepestViolation, b.deepestViolation);
    EXPECT_EQ(a.marginCycleSum, b.marginCycleSum);
    EXPECT_EQ(a.cyclesObserved, b.cyclesObserved);
    EXPECT_EQ(a.minMarginSeen, b.minMarginSeen);
    EXPECT_EQ(a.maxMarginSeen, b.maxMarginSeen);
    EXPECT_EQ(a.lastSlack, b.lastSlack);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.widenings, b.widenings);
}

} // namespace

TEST(MarginController, ConvergesOnStationaryWorkload)
{
    const auto params = unitParams();
    MarginController mc(params, Volts(1.0));

    for (std::uint64_t i = 0; i < 100'000; ++i)
        mc.feed(stationaryDeviation(i, -0.04));

    // The loop settles where the measured slack equals the target.
    EXPECT_NEAR(mc.lastSlack(), params.targetSlack, 1e-6);
    // With a 4% worst droop the settled margin is thinner than the
    // conservative initial band but still covers the noise.
    EXPECT_LT(mc.margin(), params.initialMargin);
    EXPECT_GT(mc.margin(), 0.04);
    // Settled: the margin no longer moves between updates.
    const double settled = mc.margin();
    for (std::uint64_t i = 0; i < 10'000; ++i)
        mc.feed(stationaryDeviation(i, -0.04));
    EXPECT_NEAR(mc.margin(), settled, 1e-6);
    EXPECT_EQ(mc.widenings(), 0u);
}

TEST(MarginController, WidensOnInjectedDroop)
{
    auto params = unitParams();
    params.kp = 0.0;
    params.ki = 0.0;
    MarginController mc(params, Volts(1.0));

    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(mc.feed(-0.001));
    const double before = mc.margin();

    // One droop past the margin in force: the violation starts on
    // that sample, widens immediately, and counts exactly once even
    // while the deviation stays below the (old) margin.
    EXPECT_TRUE(mc.feed(-(before + 0.01)));
    EXPECT_EQ(mc.widenings(), 1u);
    EXPECT_DOUBLE_EQ(mc.margin(), before + params.widenStep);
    EXPECT_FALSE(mc.feed(-(before + 0.005)));
    EXPECT_EQ(mc.widenings(), 1u);

    // Recovery above the release level ends the event; the next deep
    // droop is a fresh violation.
    EXPECT_FALSE(mc.feed(0.0));
    EXPECT_TRUE(mc.feed(-(before + 0.05)));
    EXPECT_EQ(mc.widenings(), 2u);
    // The deepest-violation statistic commits when the event ends.
    EXPECT_FALSE(mc.feed(0.0));
    EXPECT_DOUBLE_EQ(mc.deepestViolation(), -(before + 0.05));
}

TEST(MarginController, SaturatesAtBounds)
{
    auto params = unitParams();
    params.kp = 5.0; // overdriven: would overshoot without clamping
    MarginController mc(params, Volts(1.0));

    // A perfectly quiet supply: the trim presses the margin to its
    // floor and no further.
    for (std::uint64_t i = 0; i < 50'000; ++i)
        mc.feed(0.0);
    EXPECT_DOUBLE_EQ(mc.margin(), params.minMargin);
    EXPECT_DOUBLE_EQ(mc.minMarginSeen(), params.minMargin);

    // Relentless deep droops: widening stops at the ceiling.
    for (int i = 0; i < 100; ++i) {
        mc.feed(-0.5);
        mc.feed(0.0);
    }
    EXPECT_DOUBLE_EQ(mc.margin(), params.maxMargin);
    EXPECT_DOUBLE_EQ(mc.maxMarginSeen(), params.maxMargin);
    EXPECT_GE(mc.widenings(), 1u);
}

TEST(MarginController, StateSaveRestoreRoundTrips)
{
    auto params = unitParams();
    params.updateInterval = 700; // off-phase with the droop pattern
    MarginController full(params, Volts(1.0));
    Rng rng(42);

    // Noisy stream with occasional deep droops so every state field
    // (integrator, violation tracking, extremes) is exercised.
    auto deviation = [&rng]() {
        const double base = -0.03 * rng.uniform();
        return rng.bernoulli(0.001) ? base - 0.08 : base;
    };

    std::vector<double> firstHalf(5'000), secondHalf(5'000);
    for (auto &d : firstHalf)
        d = deviation();
    for (auto &d : secondHalf)
        d = deviation();

    for (double d : firstHalf)
        full.feed(d);
    const MarginControllerState snapshot = full.state();
    for (double d : secondHalf)
        full.feed(d);

    MarginController resumed(params, Volts(1.0));
    resumed.restore(snapshot);
    for (double d : secondHalf)
        resumed.feed(d);

    expectStateEq(full.state(), resumed.state());
    EXPECT_EQ(full.margin(), resumed.margin());
    EXPECT_EQ(full.averageMargin(), resumed.averageMargin());
}

TEST(MarginController, DisabledPathBitIdenticalToFixedMarginEngine)
{
    // A system with the controller off must behave exactly like the
    // pre-controller fixed-margin engine: same emergencies, same
    // retirement, same supply statistics.
    const double margin = 0.05;
    auto makeConfig = [&](bool controller) {
        sim::SystemConfig cfg;
        cfg.package = pdn::PackageConfig::core2duo().withDecapFraction(0.1);
        cfg.recoveryCostCycles = 500;
        if (controller) {
            cfg.enableMarginController = true;
            // Frozen law: zero gains, zero widening, bounds pinned to
            // the fixed margin. The controller then only *detects*.
            auto &p = cfg.marginControllerParams;
            p.initialMargin = p.minMargin = p.maxMargin = margin;
            p.kp = p.ki = 0.0;
            p.widenStep = 0.0;
        } else {
            cfg.emergencyMargin = margin;
        }
        return cfg;
    };

    auto run = [&](bool controller) {
        sim::System sys(makeConfig(controller));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("mcf"), 60'000,
                                  true),
            7));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("lbm"), 60'000,
                                  true),
            11));
        sys.run(60'000);
        return sys;
    };

    sim::System fixed = run(false);
    sim::System frozen = run(true);

    EXPECT_EQ(fixed.emergencies(), frozen.emergencies());
    ASSERT_NE(frozen.marginController(), nullptr);
    EXPECT_EQ(frozen.marginController()->widenings(),
              frozen.emergencies());
    EXPECT_EQ(frozen.marginController()->margin(), margin);
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(fixed.core(c).counters().instructions(),
                  frozen.core(c).counters().instructions());
        EXPECT_EQ(fixed.core(c).counters().cycles(),
                  frozen.core(c).counters().cycles());
    }
    EXPECT_EQ(fixed.scope().fractionBelow(-margin),
              frozen.scope().fractionBelow(-margin));
}
