/** @file Tests for the trace writer and its System integration. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "cpu/fast_core.hh"
#include "noise/trace_writer.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::noise;

TEST(TraceWriter, RecordsInOrder)
{
    TraceWriter trace(8);
    for (Cycles i = 0; i < 5; ++i)
        trace.record(i, -0.01 * static_cast<double>(i), 10.0);
    EXPECT_EQ(trace.size(), 5u);
    const auto chron = trace.chronological();
    ASSERT_EQ(chron.size(), 5u);
    EXPECT_EQ(chron.front().cycle, 0u);
    EXPECT_EQ(chron.back().cycle, 4u);
}

TEST(TraceWriter, RingBufferKeepsMostRecent)
{
    TraceWriter trace(4);
    for (Cycles i = 0; i < 10; ++i)
        trace.record(i, 0.0, 0.0);
    EXPECT_EQ(trace.size(), 4u);
    const auto chron = trace.chronological();
    EXPECT_EQ(chron.front().cycle, 6u);
    EXPECT_EQ(chron.back().cycle, 9u);
}

TEST(TraceWriter, FreezeStopsRecording)
{
    TraceWriter trace(4);
    trace.record(1, -0.02, 5.0);
    trace.freeze();
    trace.record(2, -0.03, 6.0);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace.frozen());
}

TEST(TraceWriter, CsvFormat)
{
    TraceWriter trace(4);
    trace.record(7, -0.0125, 11.5);
    std::ostringstream os;
    trace.writeCsv(os);
    EXPECT_EQ(os.str(), "cycle,deviation,current_amps\n7,-0.0125,11.5\n");
}

TEST(TraceWriterDeath, ZeroCapacity)
{
    EXPECT_EXIT({ TraceWriter trace(0); }, ::testing::ExitedWithCode(1),
                "capacity");
}

TEST(SystemTrace, CapturesWaveform)
{
    sim::SystemConfig cfg;
    cfg.enableTrace = true;
    cfg.traceCapacity = 1000;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 10'000,
                              true),
        1));
    sys.run(5'000);
    EXPECT_EQ(sys.trace().size(), 1000u);
    const auto chron = sys.trace().chronological();
    EXPECT_EQ(chron.back().cycle, 4'999u);
    // Samples are real: deviations bounded, current positive.
    for (const auto &s : chron) {
        EXPECT_GT(s.currentAmps, 0.0);
        EXPECT_GT(s.deviation, -0.25);
        EXPECT_LT(s.deviation, 0.15);
    }
}

TEST(SystemTrace, FatalWhenDisabled)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    EXPECT_EXIT(sys.trace(), ::testing::ExitedWithCode(1), "trace");
}
