/** @file Tests for the trace writer, CLI argument parsing, and their
 *  System integration. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "cpu/fast_core.hh"
#include "noise/trace_writer.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::noise;

TEST(TraceWriter, RecordsInOrder)
{
    TraceWriter trace(8);
    for (Cycles i = 0; i < 5; ++i)
        trace.record(i, -0.01 * static_cast<double>(i), 10.0);
    EXPECT_EQ(trace.size(), 5u);
    const auto chron = trace.chronological();
    ASSERT_EQ(chron.size(), 5u);
    EXPECT_EQ(chron.front().cycle, 0u);
    EXPECT_EQ(chron.back().cycle, 4u);
}

TEST(TraceWriter, RingBufferKeepsMostRecent)
{
    TraceWriter trace(4);
    for (Cycles i = 0; i < 10; ++i)
        trace.record(i, 0.0, 0.0);
    EXPECT_EQ(trace.size(), 4u);
    const auto chron = trace.chronological();
    EXPECT_EQ(chron.front().cycle, 6u);
    EXPECT_EQ(chron.back().cycle, 9u);
}

TEST(TraceWriter, CsvChronologicalAfterWrap)
{
    // Regression guard for the ring-buffer export: after the buffer
    // wraps, the CSV must be un-rotated from head_ — strictly
    // increasing cycles starting at the oldest retained sample, at
    // every wrap offset (not just a full multiple of the capacity).
    for (Cycles total : {5u, 7u, 8u, 9u, 13u, 21u}) {
        TraceWriter trace(5);
        for (Cycles i = 0; i < total; ++i)
            trace.record(100 + i, 0.001 * static_cast<double>(i), 1.0);
        std::ostringstream os;
        trace.writeCsv(os);

        std::istringstream is(os.str());
        std::string line;
        ASSERT_TRUE(std::getline(is, line));
        EXPECT_EQ(line, "cycle,deviation,current_amps");
        std::vector<Cycles> cycles;
        while (std::getline(is, line))
            cycles.push_back(std::stoull(line.substr(0, line.find(','))));

        const Cycles kept = std::min<Cycles>(total, 5);
        ASSERT_EQ(cycles.size(), kept) << "total=" << total;
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            EXPECT_EQ(cycles[i], 100 + total - kept + i)
                << "total=" << total << " row " << i;
        }
    }
}

TEST(ArgParse, U64RoundTripsFullRange)
{
    // 64-bit seeds must survive exactly; the old strtod path rounded
    // them through a double.
    const std::uint64_t big =
        std::numeric_limits<std::uint64_t>::max(); // 18446744073709551615
    const auto parsed = tryParseU64("18446744073709551615");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, big);

    const std::uint64_t odd = 9007199254740993ULL; // 2^53 + 1
    const auto parsedOdd = tryParseU64("9007199254740993");
    ASSERT_TRUE(parsedOdd.has_value());
    EXPECT_EQ(*parsedOdd, odd);
    // The double round-trip the old code performed loses this value.
    EXPECT_NE(static_cast<std::uint64_t>(static_cast<double>(odd)), odd);
}

TEST(ArgParse, U64RejectsNonIntegerForms)
{
    EXPECT_FALSE(tryParseU64("1e6").has_value());
    EXPECT_FALSE(tryParseU64("12abc").has_value());
    EXPECT_FALSE(tryParseU64("3.5").has_value());
    EXPECT_FALSE(tryParseU64("-3").has_value());
    EXPECT_FALSE(tryParseU64("+3").has_value());
    EXPECT_FALSE(tryParseU64("").has_value());
    EXPECT_FALSE(tryParseU64(" 7").has_value());
    EXPECT_FALSE(tryParseU64("7 ").has_value());
    // One past uint64 max overflows.
    EXPECT_FALSE(tryParseU64("18446744073709551616").has_value());
    EXPECT_TRUE(tryParseU64("0").has_value());
}

TEST(ArgParse, DoubleAcceptsUsualFormsRejectsGarbage)
{
    EXPECT_DOUBLE_EQ(*tryParseDouble("0.25"), 0.25);
    EXPECT_DOUBLE_EQ(*tryParseDouble("1e-3"), 1e-3);
    EXPECT_DOUBLE_EQ(*tryParseDouble("-4"), -4.0);
    EXPECT_FALSE(tryParseDouble("0.25x").has_value());
    EXPECT_FALSE(tryParseDouble("").has_value());
    EXPECT_FALSE(tryParseDouble("nan").has_value());
    EXPECT_FALSE(tryParseDouble("inf").has_value());
}

TEST(TraceWriter, FreezeStopsRecording)
{
    TraceWriter trace(4);
    trace.record(1, -0.02, 5.0);
    trace.freeze();
    trace.record(2, -0.03, 6.0);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace.frozen());
}

TEST(TraceWriter, CsvFormat)
{
    TraceWriter trace(4);
    trace.record(7, -0.0125, 11.5);
    std::ostringstream os;
    trace.writeCsv(os);
    EXPECT_EQ(os.str(), "cycle,deviation,current_amps\n7,-0.0125,11.5\n");
}

TEST(TraceWriterDeath, ZeroCapacity)
{
    EXPECT_EXIT({ TraceWriter trace(0); }, ::testing::ExitedWithCode(1),
                "capacity");
}

TEST(SystemTrace, CapturesWaveform)
{
    sim::SystemConfig cfg;
    cfg.enableTrace = true;
    cfg.traceCapacity = 1000;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 10'000,
                              true),
        1));
    sys.run(5'000);
    EXPECT_EQ(sys.trace().size(), 1000u);
    const auto chron = sys.trace().chronological();
    EXPECT_EQ(chron.back().cycle, 4'999u);
    // Samples are real: deviations bounded, current positive.
    for (const auto &s : chron) {
        EXPECT_GT(s.currentAmps, 0.0);
        EXPECT_GT(s.deviation, -0.25);
        EXPECT_LT(s.deviation, 0.15);
    }
}

TEST(SystemTrace, FatalWhenDisabled)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    EXPECT_EXIT(sys.trace(), ::testing::ExitedWithCode(1), "trace");
}
