/**
 * @file
 * Tests for the `vsmooth serve` layer: the content-addressed result
 * cache, the bounded backpressure queue, NDJSON framing edges
 * (oversized line, truncated JSON), batch-item validation, and a live
 * client/server round trip over a Unix socket driven through the real
 * binary (path injected via VSMOOTH_CLI_PATH).
 *
 * The protocol-edge tests assert the survivability contract: a framing
 * or schema error on one request produces a structured error response
 * on the same connection — never a disconnect, never a dead daemon.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/batch.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"

namespace fs = std::filesystem;
using namespace vsmooth;
using namespace vsmooth::serve;

namespace {

fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("vsmooth_serve_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

// ---------------------------------------------------------------------
// Result cache

TEST(ServeCache, HitReturnsExactBytesAndCountsStats)
{
    ResultCache cache(1 << 20);
    const std::string key = "{\"kind\": \"summary\", \"config\": {}}";
    const std::string payload = "{\"metrics\": {\"cycles\": 123}}";

    std::string out;
    EXPECT_FALSE(cache.lookup(key, &out));
    cache.insert(key, payload);
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_EQ(out, payload); // byte-identical replay

    const ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, key.size() + payload.size());
}

TEST(ServeCache, LruEvictionRespectsByteBudget)
{
    // Each entry is key (2 bytes) + payload (10 bytes) = 12 bytes;
    // budget fits exactly two entries.
    ResultCache cache(24);
    const std::string pay(10, 'p');
    cache.insert("k1", pay);
    cache.insert("k2", pay);

    // Touch k1 so k2 becomes least recently used, then overflow.
    std::string out;
    ASSERT_TRUE(cache.lookup("k1", &out));
    cache.insert("k3", pay);

    EXPECT_TRUE(cache.lookup("k1", &out));
    EXPECT_FALSE(cache.lookup("k2", &out)); // evicted as LRU
    EXPECT_TRUE(cache.lookup("k3", &out));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);

    // An entry larger than the whole budget is never cached (and must
    // not evict everything else trying).
    cache.insert("huge", std::string(100, 'x'));
    EXPECT_FALSE(cache.lookup("huge", &out));
    EXPECT_TRUE(cache.lookup("k3", &out));

    // Budget zero disables caching outright.
    ResultCache off(0);
    off.insert("k", "v");
    EXPECT_FALSE(off.lookup("k", &out));
}

// ---------------------------------------------------------------------
// Bounded queue

TEST(ServeQueue, BusyWhenFullThenDrainRejectsBacklogInOrder)
{
    TaskQueue q(2);
    std::vector<int> rejected;
    std::atomic<int> ran{0};
    auto task = [&](int id) {
        return Task{[&ran] { ++ran; },
                    [&rejected, id] { rejected.push_back(id); }};
    };

    EXPECT_EQ(q.push(task(1)), TaskQueue::Push::Accepted);
    EXPECT_EQ(q.push(task(2)), TaskQueue::Push::Accepted);
    EXPECT_EQ(q.push(task(3)), TaskQueue::Push::Busy);
    EXPECT_EQ(q.depth(), 2u);

    // Drain rejects the backlog (in queue order) without running it.
    q.beginDrain();
    EXPECT_EQ(q.push(task(4)), TaskQueue::Push::Draining);
    ASSERT_EQ(rejected.size(), 2u);
    EXPECT_EQ(rejected[0], 1);
    EXPECT_EQ(rejected[1], 2);
    EXPECT_EQ(ran.load(), 0);

    // Draining + empty: workers are told to exit.
    Task t;
    EXPECT_FALSE(q.pop(&t));
    q.awaitIdle(); // no in-flight work; must not block
}

TEST(ServeQueue, WorkerRunsAcceptedTasksAndIdlesOut)
{
    TaskQueue q(8);
    std::atomic<int> ran{0};
    std::thread worker([&] {
        Task t;
        while (q.pop(&t)) {
            t.run();
            q.taskDone();
        }
    });
    for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(q.push(Task{[&ran] { ++ran; }, [] {}}),
                  TaskQueue::Push::Accepted);
    }
    // Drain rejects whatever the worker has not yet popped, so wait
    // for the backlog to run before draining.
    for (int i = 0; i < 500 && ran.load() < 5; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    q.beginDrain();
    q.awaitIdle();
    worker.join();
    EXPECT_EQ(ran.load(), 5);
}

// ---------------------------------------------------------------------
// NDJSON framing

TEST(ServeProtocol, LineReaderRecoversAfterOversizedFrame)
{
    // Feed the reader from a regular file: one good frame, one frame
    // past the 1 MiB cap, another good frame, and a partial trailing
    // frame with no newline.
    const fs::path dir = scratchDir("linereader");
    const fs::path file = dir / "frames";
    {
        std::ofstream os(file, std::ios::binary);
        os << "{\"type\": \"ping\"}\n";
        os << std::string(kMaxLineBytes + 100, 'x') << "\n";
        os << "{\"type\": \"stats\"}\n";
        os << "{\"partial";
    }
    const int fd = ::open(file.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    LineReader reader(fd);
    std::string line;

    EXPECT_EQ(reader.next(&line), LineReader::Status::Line);
    EXPECT_EQ(line, "{\"type\": \"ping\"}");

    // The oversized frame is consumed to its newline and reported
    // once; the next frame is intact.
    EXPECT_EQ(reader.next(&line), LineReader::Status::Oversized);
    EXPECT_EQ(reader.next(&line), LineReader::Status::Line);
    EXPECT_EQ(line, "{\"type\": \"stats\"}");

    // A partial trailing frame is dropped at EOF, not surfaced.
    EXPECT_EQ(reader.next(&line), LineReader::Status::Eof);
    ::close(fd);
}

// ---------------------------------------------------------------------
// Batch items

TEST(ServeBatch, FromJsonRejectsBadItemsWithMessages)
{
    BatchItem item;
    std::string error;

    auto parse = [&](const char *text) {
        std::string parseError;
        const Json j = Json::parse(text, &parseError);
        EXPECT_TRUE(parseError.empty()) << parseError;
        error.clear();
        return BatchItem::fromJson(j, item, &error);
    };

    EXPECT_FALSE(parse("{\"kind\": \"bogus\", \"config\": {}}"));
    EXPECT_NE(error.find("unknown experiment kind"), std::string::npos)
        << error;

    // FuzzConfig schema violations surface as messages, not fatals.
    EXPECT_FALSE(parse("{\"config\": {\"cores\": 3}}"));
    EXPECT_FALSE(error.empty());

    // oracle_cell validates benchmark names up front (specByName
    // would fatal inside the executor otherwise).
    EXPECT_FALSE(parse("{\"kind\": \"oracle_cell\", "
                       "\"bench_a\": \"nonesuch\", "
                       "\"bench_b\": \"mcf\"}"));
    EXPECT_NE(error.find("nonesuch"), std::string::npos) << error;

    // Unknown property names likewise fail at parse time.
    EXPECT_FALSE(parse("{\"kind\": \"fuzz\", \"config\": {}, "
                       "\"properties\": [\"no_such_property\"]}"));
    EXPECT_NE(error.find("no_such_property"), std::string::npos)
        << error;

    EXPECT_TRUE(parse("{\"kind\": \"summary\", "
                      "\"config\": {\"seed\": 3, \"cycles\": 2000}}"))
        << error;
}

TEST(ServeBatch, CanonicalKeyIgnoresIdAndFieldOrder)
{
    auto keyOf = [](const char *text) {
        std::string parseError;
        const Json j = Json::parse(text, &parseError);
        EXPECT_TRUE(parseError.empty()) << parseError;
        BatchItem item;
        std::string error;
        EXPECT_TRUE(BatchItem::fromJson(j, item, &error)) << error;
        return item.canonicalKey();
    };

    // Same scenario: different field order, explicit default kind,
    // different id — identical cache key.
    const std::string a =
        keyOf("{\"config\": {\"seed\": 3, \"cycles\": 2000}}");
    const std::string b =
        keyOf("{\"id\": \"other\", \"kind\": \"summary\", "
              "\"config\": {\"cycles\": 2000, \"seed\": 3}}");
    EXPECT_EQ(a, b);

    // Any parameter that affects the Result changes the key.
    const std::string c =
        keyOf("{\"config\": {\"seed\": 4, \"cycles\": 2000}}");
    EXPECT_NE(a, c);
    EXPECT_NE(fnv1aHex(a), fnv1aHex(c));
}

TEST(ServeBatch, CanonicalKeyIsSerializedOncePerItem)
{
    std::string parseError;
    const Json j = Json::parse(
        "{\"config\": {\"seed\": 3, \"cycles\": 2000}}", &parseError);
    ASSERT_TRUE(parseError.empty()) << parseError;
    BatchItem item;
    std::string error;
    ASSERT_TRUE(BatchItem::fromJson(j, item, &error)) << error;

    // Memoized: every call hands back the same bytes (same object),
    // so lookup, hashing, and the executor's insert never re-walk the
    // config JSON.
    const std::string &first = item.canonicalKey();
    const std::string &second = item.canonicalKey();
    EXPECT_EQ(&first, &second);
    EXPECT_FALSE(first.empty());
    const std::string firstCopy = first; // `first` aliases the memo

    // Re-parsing into the same item resets the memo with the fields.
    const Json j2 = Json::parse(
        "{\"config\": {\"seed\": 4, \"cycles\": 2000}}", &parseError);
    ASSERT_TRUE(BatchItem::fromJson(j2, item, &error)) << error;
    EXPECT_NE(item.canonicalKey(), firstCopy);
}

TEST(ServeBatch, RunBatchItemIsBitDeterministic)
{
    std::string parseError;
    const Json j = Json::parse(
        "{\"kind\": \"summary\", "
        "\"config\": {\"seed\": 11, \"cycles\": 3000}}",
        &parseError);
    ASSERT_TRUE(parseError.empty()) << parseError;
    BatchItem item;
    std::string error;
    ASSERT_TRUE(BatchItem::fromJson(j, item, &error)) << error;

    const std::string first = serializeResult(runBatchItem(item));
    const std::string second = serializeResult(runBatchItem(item));
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"cycles\":3000"), std::string::npos)
        << first.substr(0, 200);
}

// ---------------------------------------------------------------------
// Live daemon round trip (real binary, Unix socket)

namespace {

/** Fork/exec the real CLI as `vsmooth serve`, wait for its ready
 *  file, and SIGTERM it on destruction. */
struct Daemon
{
    pid_t pid = -1;
    std::string sock;

    /** Launch and wait for the ready file; false (with a recorded
     *  failure) if the daemon never came up. */
    bool start(const fs::path &dir)
    {
        sock = (dir / "s.sock").string();
        const std::string ready = (dir / "ready").string();
        const std::string log = (dir / "serve.log").string();
        pid = ::fork();
        if (pid == 0) {
            const int out =
                ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
            ::dup2(out, 1);
            ::dup2(out, 2);
            ::execl(VSMOOTH_CLI_PATH, "vsmooth", "serve", "--socket",
                    sock.c_str(), "--workers", "2", "--ready-file",
                    ready.c_str(), static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        EXPECT_GT(pid, 0);
        for (int i = 0; i < 500 && !fs::exists(ready); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_TRUE(fs::exists(ready))
            << "daemon never became ready; log:\n" << slurp(log);
        return pid > 0 && fs::exists(ready);
    }

    /** SIGTERM and reap; returns the daemon's exit code. */
    int terminate()
    {
        if (pid <= 0)
            return -1;
        ::kill(pid, SIGTERM);
        int status = 0;
        ::waitpid(pid, &status, 0);
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    ~Daemon()
    {
        if (pid > 0) {
            ::kill(pid, SIGTERM);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
};

int
connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
    // A hung daemon should fail the test, not hang it.
    timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

struct CliResult
{
    int exitCode = -1;
    std::string output;
};

CliResult
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(VSMOOTH_CLI_PATH) + " " + args + " 2>/dev/null";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    CliResult r;
    std::array<char, 4096> buf;
    while (pipe && fgets(buf.data(), buf.size(), pipe))
        r.output += buf.data();
    if (pipe) {
        const int status = ::pclose(pipe);
        r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return r;
}

} // namespace

TEST(ServeDaemon, ProtocolEdgesKeepTheConnectionAlive)
{
    const fs::path dir = scratchDir("edges");
    Daemon daemon;
    ASSERT_TRUE(daemon.start(dir));

    const int fd = connectUnix(daemon.sock);
    LineReader reader(fd);
    std::string line;
    auto expectResponse = [&](const char *what) {
        ASSERT_EQ(reader.next(&line), LineReader::Status::Line)
            << what;
    };

    // Truncated JSON in a well-framed line: structured bad_json
    // error, connection survives.
    ASSERT_TRUE(sendLine(fd, "{\"type\": \"ping\""));
    expectResponse("truncated json");
    EXPECT_NE(line.find("\"bad_json\""), std::string::npos) << line;

    // Oversized line: consumed, answered, connection survives.
    ASSERT_TRUE(sendLine(fd, std::string(kMaxLineBytes + 64, 'z')));
    expectResponse("oversized line");
    EXPECT_NE(line.find("\"line_too_long\""), std::string::npos)
        << line;

    // Unknown request type.
    ASSERT_TRUE(sendLine(fd, "{\"type\": \"frobnicate\"}"));
    expectResponse("unknown type");
    EXPECT_NE(line.find("\"bad_request\""), std::string::npos) << line;

    // Unknown experiment kind inside a batch: a per-item structured
    // error plus batch_done — not a disconnect, not a dead executor.
    ASSERT_TRUE(sendLine(
        fd, "{\"type\": \"batch\", \"id\": \"e\", \"items\": "
            "[{\"kind\": \"bogus\", \"config\": {}}]}"));
    expectResponse("bad item error");
    EXPECT_NE(line.find("\"bad_item\""), std::string::npos) << line;
    EXPECT_NE(line.find("unknown experiment kind"), std::string::npos)
        << line;
    expectResponse("batch_done after bad item");
    EXPECT_NE(line.find("\"batch_done\""), std::string::npos) << line;

    // The same connection still answers a healthy request.
    ASSERT_TRUE(sendLine(fd, "{\"type\": \"ping\"}"));
    expectResponse("ping after errors");
    EXPECT_NE(line.find("\"pong\""), std::string::npos) << line;
    ::close(fd);

    // SIGTERM drains cleanly.
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServeDaemon, CacheHitRoundTripIsBitIdenticalToLocal)
{
    const fs::path dir = scratchDir("roundtrip");
    const fs::path batch = dir / "batch.json";
    {
        std::ofstream os(batch);
        os << "[{\"kind\": \"summary\", "
              "\"config\": {\"seed\": 7, \"cycles\": 2000}},\n"
           << " {\"kind\": \"fuzz\", "
              "\"config\": {\"seed\": 5, \"cycles\": 1500}, "
              "\"properties\": [\"run_twice_determinism\"]}]\n";
    }
    Daemon daemon;
    ASSERT_TRUE(daemon.start(dir));

    const std::string base =
        "client --socket " + daemon.sock + " --batch " + batch.string();

    // First pass computes; every line is a miss.
    const CliResult pass1 = runCli(base + " --results-only");
    ASSERT_EQ(pass1.exitCode, 0) << pass1.output;
    ASSERT_FALSE(pass1.output.empty());

    // Second pass must be served from cache, byte-identical.
    const CliResult pass2 = runCli(base + " --results-only");
    ASSERT_EQ(pass2.exitCode, 0) << pass2.output;
    EXPECT_EQ(pass1.output, pass2.output);

    const CliResult envelope = runCli(base);
    ASSERT_EQ(envelope.exitCode, 0) << envelope.output;
    EXPECT_EQ(envelope.output.find("\"cache\": \"miss\""),
              std::string::npos)
        << envelope.output;
    std::size_t hits = 0;
    for (std::size_t at = envelope.output.find("\"cache\": \"hit\"");
         at != std::string::npos;
         at = envelope.output.find("\"cache\": \"hit\"", at + 1))
        ++hits;
    EXPECT_EQ(hits, 2u) << envelope.output;

    // The served bytes equal the offline computation of the same
    // batch — the core bit-identity guarantee.
    const CliResult local =
        runCli("client --local --batch " + batch.string() +
               " --results-only");
    ASSERT_EQ(local.exitCode, 0) << local.output;
    EXPECT_EQ(pass1.output, local.output);

    EXPECT_EQ(daemon.terminate(), 0);
}
