/**
 * @file
 * Test-only heap-allocation audit.
 *
 * alloc_audit.cc replaces the global operator new/delete family for
 * the whole test binary with counting forwarders onto malloc/free
 * (ASan-compatible: ASan intercepts at the malloc layer, so poisoning
 * and leak detection still work). The counters are thread-local, so a
 * span measured on the test thread is immune to background threads.
 *
 * The point: the simulator's steady-state block pipeline —
 * System::tickBlock and LaneGroup's fused drain — is specified to be
 * allocation-free after warm-up. These counters let a test *prove*
 * that, instead of relying on review to catch a stray std::vector in
 * a per-block path.
 */

#ifndef VSMOOTH_TESTS_ALLOC_AUDIT_HH
#define VSMOOTH_TESTS_ALLOC_AUDIT_HH

#include <cstdint>

namespace vsmooth::testing {

/** Monotonic heap-operation counts for the calling thread. */
struct AllocCounts
{
    std::uint64_t allocations = 0;
    std::uint64_t deallocations = 0;
};

/** Current counters for this thread (snapshot and subtract). */
AllocCounts allocCounts();

/**
 * Measures heap traffic on this thread from its construction point.
 * Query cheaply and as often as needed; the span never arms or
 * disarms anything, it only subtracts snapshots.
 */
class AllocSpan
{
  public:
    AllocSpan() : start_(allocCounts()) {}

    std::uint64_t allocations() const
    {
        return allocCounts().allocations - start_.allocations;
    }

    std::uint64_t deallocations() const
    {
        return allocCounts().deallocations - start_.deallocations;
    }

  private:
    AllocCounts start_;
};

} // namespace vsmooth::testing

#endif // VSMOOTH_TESTS_ALLOC_AUDIT_HH
