/** @file Tests for the typical-case design performance model. */

#include <gtest/gtest.h>

#include <cmath>

#include "resilience/perf_model.hh"
#include "sim/calibration.hh"

using namespace vsmooth;
using namespace vsmooth::resilience;

namespace {

/** Synthetic profile: counts fall exponentially with margin. */
EmergencyProfile
syntheticProfile(double eventsAt1pct = 1e5, double decade = 0.03)
{
    EmergencyProfile p;
    p.cycles = 10'000'000;
    for (double m = 0.01; m <= 0.14 + 1e-9; m += 0.005) {
        p.margins.push_back(m);
        p.counts.push_back(static_cast<std::uint64_t>(
            eventsAt1pct * std::pow(10.0, -(m - 0.01) / decade)));
    }
    return p;
}

} // namespace

TEST(FrequencyGain, BowmanAnchor)
{
    // Removing 10% of margin (14% -> 4%) buys 15% frequency.
    EXPECT_NEAR(frequencyGain(0.04), 0.15, 1e-12);
    EXPECT_DOUBLE_EQ(frequencyGain(0.14), 0.0);
}

TEST(FrequencyGainDeath, OutOfRange)
{
    EXPECT_EXIT(frequencyGain(0.2), ::testing::ExitedWithCode(1),
                "margin");
    EXPECT_EXIT(frequencyGain(-0.01), ::testing::ExitedWithCode(1),
                "margin");
}

TEST(EmergencyProfile, CountInterpolationMonotone)
{
    const auto p = syntheticProfile();
    double prev = p.countAt(0.01);
    for (double m = 0.012; m < 0.14; m += 0.004) {
        const double cur = p.countAt(m);
        EXPECT_LE(cur, prev + 1e-9) << "margin " << m;
        prev = cur;
    }
}

TEST(EmergencyProfile, CountClampsAtShallowEndExtrapolatesDeep)
{
    const auto p = syntheticProfile();
    EXPECT_DOUBLE_EQ(p.countAt(0.001),
                     static_cast<double>(p.counts.front()));
    // Beyond the measured range, the censored tail is extrapolated
    // with the fitted exponential decay: positive but smaller than
    // the last measured count.
    const double deep = p.countAt(0.2);
    EXPECT_GT(deep, 0.0);
    EXPECT_LT(deep, static_cast<double>(p.counts.back()) + 1.0);
}

TEST(EmergencyProfile, TailExtrapolationMonotone)
{
    const auto p = syntheticProfile();
    double prev = p.countAt(0.14);
    for (double m = 0.15; m < 0.25; m += 0.01) {
        const double cur = p.countAt(m);
        EXPECT_LE(cur, prev + 1e-9);
        prev = cur;
    }
}

TEST(EmergencyProfile, MergeAddsCountsAndCycles)
{
    auto a = syntheticProfile();
    const auto b = syntheticProfile();
    const auto c0 = a.counts[0];
    a.merge(b);
    EXPECT_EQ(a.counts[0], 2 * c0);
    EXPECT_EQ(a.cycles, 20'000'000u);
}

TEST(EmergencyProfile, MergeIntoEmptyCopies)
{
    EmergencyProfile empty;
    empty.merge(syntheticProfile());
    EXPECT_EQ(empty.margins.size(), syntheticProfile().margins.size());
}

TEST(EmergencyProfile, ScaledHalvesEverything)
{
    const auto p = syntheticProfile().scaled(0.5);
    EXPECT_EQ(p.cycles, 5'000'000u);
    EXPECT_NEAR(static_cast<double>(p.counts[0]),
                syntheticProfile().counts[0] * 0.5, 1.0);
}

TEST(Improvement, ZeroCostGivesPureFrequencyGain)
{
    const auto p = syntheticProfile();
    // Cost 0 is not meaningful; cost 1 with very few emergencies at a
    // deep margin approximates the pure gain.
    const double imp = improvementPercent(p, 0.14, 1);
    EXPECT_NEAR(imp, 0.0, 0.5);
}

TEST(Improvement, DeadZoneAtAggressiveMarginWithCoarseRecovery)
{
    const auto p = syntheticProfile();
    // 100k-cycle recovery at a 1% margin: recoveries swamp the gain.
    EXPECT_LT(improvementPercent(p, 0.01, 100'000), 0.0);
}

TEST(Improvement, SinglePeakBetweenExtremes)
{
    const auto p = syntheticProfile();
    const auto best = optimalMargin(p, 1000);
    EXPECT_GT(best.margin, 0.01);
    EXPECT_LT(best.margin, 0.14);
    EXPECT_GT(best.improvementPercent, 0.0);
    // Neighbors of the optimum are no better.
    EXPECT_GE(best.improvementPercent,
              improvementPercent(p, best.margin + 0.005, 1000));
    EXPECT_GE(best.improvementPercent,
              improvementPercent(p, best.margin - 0.005, 1000));
}

TEST(Improvement, FinerRecoveryAllowsTighterOptimalMargin)
{
    const auto p = syntheticProfile();
    const auto fine = optimalMargin(p, 10);
    const auto coarse = optimalMargin(p, 100'000);
    EXPECT_LE(fine.margin, coarse.margin);
    EXPECT_GE(fine.improvementPercent, coarse.improvementPercent);
}

TEST(Improvement, GainsInPaperBand)
{
    // With a realistic profile, fine recovery lands in the paper's
    // 13-21% band; improvement never exceeds the Bowman ceiling and
    // degrades monotonically toward coarse recovery.
    const auto p = syntheticProfile();
    double prev = 22.0;
    for (std::uint32_t cost : sim::recoveryCostSweep()) {
        const auto best = optimalMargin(p, cost);
        EXPECT_GE(best.improvementPercent, 0.0) << "cost " << cost;
        EXPECT_LT(best.improvementPercent, 21.5) << "cost " << cost;
        EXPECT_LE(best.improvementPercent, prev + 1e-9);
        prev = best.improvementPercent;
    }
    EXPECT_GT(optimalMargin(p, 1).improvementPercent, 10.0);
}

TEST(Heatmap, DimensionsAndContent)
{
    const auto p = syntheticProfile();
    const std::vector<std::uint32_t> costs = {10, 1000};
    const auto map = improvementHeatmap(p, costs);
    ASSERT_EQ(map.improvement.size(), 2u);
    ASSERT_EQ(map.improvement[0].size(), map.margins.size());
    // The fine-recovery row dominates the coarse row everywhere.
    for (std::size_t k = 0; k < map.margins.size(); ++k)
        EXPECT_GE(map.improvement[0][k], map.improvement[1][k]);
}

TEST(ImprovementDeath, EmptyProfile)
{
    EmergencyProfile p;
    p.margins = {0.05};
    p.counts = {10};
    p.cycles = 0;
    EXPECT_EXIT(improvementPercent(p, 0.05, 10),
                ::testing::ExitedWithCode(1), "empty");
}

/** Property: improvement is monotone decreasing in recovery cost at
 *  any fixed margin. */
class CostMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(CostMonotone, ImprovementDecreasesWithCost)
{
    const auto p = syntheticProfile();
    const double margin = GetParam();
    double prev = 1e9;
    for (std::uint32_t cost : sim::recoveryCostSweep()) {
        const double imp = improvementPercent(p, margin, cost);
        EXPECT_LE(imp, prev);
        prev = imp;
    }
}

INSTANTIATE_TEST_SUITE_P(Margins, CostMonotone,
                         ::testing::Values(0.02, 0.05, 0.08, 0.12));
