/** @file Tests for the trace-replay core. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "cpu/trace_core.hh"
#include "sim/system.hh"

using namespace vsmooth;
using namespace vsmooth::cpu;

namespace {

ActivityTrace
squareWave(std::size_t cycles, std::size_t period)
{
    ActivityTrace trace;
    for (std::size_t i = 0; i < cycles; ++i)
        trace.activity.push_back((i / period) % 2 ? 0.1 : 0.9);
    return trace;
}

} // namespace

TEST(ActivityTrace, ParsesStream)
{
    std::istringstream is("# header comment\n0.5\n\n  0.75\n1.0\n");
    const auto trace = ActivityTrace::fromStream(is);
    ASSERT_EQ(trace.activity.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.activity[0], 0.5);
    EXPECT_DOUBLE_EQ(trace.activity[1], 0.75);
    EXPECT_DOUBLE_EQ(trace.activity[2], 1.0);
}

TEST(ActivityTraceDeath, MalformedLine)
{
    std::istringstream is("0.5\nbogus\n");
    EXPECT_EXIT(ActivityTrace::fromStream(is),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST(ActivityTraceDeath, OutOfRange)
{
    std::istringstream is("3.7\n");
    EXPECT_EXIT(ActivityTrace::fromStream(is),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ActivityTraceDeath, Empty)
{
    std::istringstream is("# only comments\n");
    EXPECT_EXIT(ActivityTrace::fromStream(is),
                ::testing::ExitedWithCode(1), "empty");
}

TEST(TraceCore, ReplaysExactWaveform)
{
    auto trace = squareWave(100, 10);
    TraceCore core(trace, /*loop=*/false);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(core.tick(), trace.activity[i]) << i;
    EXPECT_TRUE(core.finished());
    EXPECT_NEAR(core.tick(), 0.12, 1e-9); // idles afterwards
}

TEST(TraceCore, LoopsWhenAsked)
{
    TraceCore core(squareWave(20, 5), /*loop=*/true);
    for (int i = 0; i < 200; ++i)
        core.tick();
    EXPECT_FALSE(core.finished());
}

TEST(TraceCore, StallAccountingByThreshold)
{
    TraceCore core(squareWave(100, 10), false, 0.3);
    for (int i = 0; i < 100; ++i)
        core.tick();
    // Half of the square wave sits at 0.1 < 0.3: 50 stall cycles.
    EXPECT_EQ(core.counters().totalStallCycles(), 50u);
    EXPECT_NEAR(core.counters().stallRatio(), 0.5, 1e-9);
    EXPECT_GT(core.counters().ipc(), 0.0);
}

TEST(TraceCore, RecoveryPreemptsTrace)
{
    TraceCore core(squareWave(1000, 10), true);
    core.tick();
    core.injectRecoveryStall(30);
    std::uint64_t low = 0;
    for (int i = 0; i < 30; ++i)
        low += (core.tick() < 0.1);
    EXPECT_GT(low, 25u);
    // The trace resumes where it left off afterwards.
    EXPECT_EQ(core.position(), 1u);
}

TEST(TraceCore, RunsInsideSystem)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<TraceCore>(squareWave(50'000, 12),
                                            /*loop=*/true));
    sys.addCore(std::make_unique<TraceCore>(squareWave(50'000, 18),
                                            /*loop=*/true));
    sys.run(100'000);
    // A 12-cycle square wave sits near the platform resonance: the
    // system must register meaningful noise.
    EXPECT_GT(sys.scope().peakToPeak(), 0.02);
    EXPECT_EQ(sys.cycles(), 100'000u);
}
