/** @file Tests for droop detection, scope, and timelines. */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/droop_detector.hh"
#include "noise/scope.hh"
#include "noise/timeline.hh"

using namespace vsmooth;
using namespace vsmooth::noise;

TEST(DroopDetector, OneExcursionOneEvent)
{
    DroopDetector det(0.02, 0.5);
    // Dip below -2%, wobble inside the event, recover above -1%.
    for (double d : {-0.01, -0.025, -0.03, -0.022, -0.015, -0.005})
        det.feed(d);
    EXPECT_EQ(det.eventCount(), 1u);
    EXPECT_FALSE(det.inEvent());
    EXPECT_DOUBLE_EQ(det.deepestEvent(), -0.03);
}

TEST(DroopDetector, HysteresisPreventsReTrigger)
{
    DroopDetector det(0.02, 0.5);
    // Oscillate between -0.025 and -0.015: release level is -0.01,
    // never reached, so only one event.
    det.feed(-0.025);
    for (int i = 0; i < 10; ++i) {
        det.feed(-0.015);
        det.feed(-0.025);
    }
    EXPECT_EQ(det.eventCount(), 1u);
}

TEST(DroopDetector, ReArmAfterRelease)
{
    DroopDetector det(0.02, 0.5);
    for (int i = 0; i < 5; ++i) {
        det.feed(-0.03);  // trigger
        det.feed(-0.005); // release
    }
    EXPECT_EQ(det.eventCount(), 5u);
}

TEST(DroopDetector, EventStartSignaled)
{
    DroopDetector det(0.02);
    EXPECT_FALSE(det.feed(-0.01));
    EXPECT_TRUE(det.feed(-0.03));
    EXPECT_FALSE(det.feed(-0.04)); // still the same event
}

TEST(DroopDetector, ResetClears)
{
    DroopDetector det(0.02);
    det.feed(-0.05);
    det.reset();
    EXPECT_EQ(det.eventCount(), 0u);
    EXPECT_FALSE(det.inEvent());
    EXPECT_DOUBLE_EQ(det.deepestEvent(), 0.0);
}

TEST(DroopDetectorDeath, InvalidParameters)
{
    EXPECT_EXIT(DroopDetector(0.0), ::testing::ExitedWithCode(1),
                "margin");
    EXPECT_EXIT(DroopDetector(0.02, 1.0), ::testing::ExitedWithCode(1),
                "release");
}

TEST(DroopDetectorBank, DeeperMarginsCountFewerEvents)
{
    DroopDetectorBank bank({0.01, 0.03, 0.05});
    // Synthetic ring with varying depth.
    for (int i = 0; i < 10000; ++i) {
        const double depth = 0.02 + 0.03 * std::sin(i * 0.001);
        bank.feed(-depth * std::abs(std::sin(i * 0.5)));
    }
    EXPECT_GE(bank.eventCountForMargin(0.01),
              bank.eventCountForMargin(0.03));
    EXPECT_GE(bank.eventCountForMargin(0.03),
              bank.eventCountForMargin(0.05));
}

TEST(DroopDetectorBank, MatchesStandaloneDetectors)
{
    // The bank's early-exit optimization must not change results.
    DroopDetectorBank bank({0.01, 0.02, 0.04});
    DroopDetector d1(0.01), d2(0.02), d4(0.04);
    std::uint64_t state = 88172645463325252ULL;
    for (int i = 0; i < 200000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const double dev =
            -0.06 + 0.12 * static_cast<double>(state >> 11) * 0x1.0p-53;
        bank.feed(dev);
        d1.feed(dev);
        d2.feed(dev);
        d4.feed(dev);
    }
    EXPECT_EQ(bank.eventCountForMargin(0.01), d1.eventCount());
    EXPECT_EQ(bank.eventCountForMargin(0.02), d2.eventCount());
    EXPECT_EQ(bank.eventCountForMargin(0.04), d4.eventCount());
}

TEST(DroopDetectorBank, SortsMargins)
{
    DroopDetectorBank bank({0.05, 0.01, 0.03});
    EXPECT_DOUBLE_EQ(bank.marginAt(0), 0.01);
    EXPECT_DOUBLE_EQ(bank.marginAt(2), 0.05);
}

TEST(DroopDetectorBankDeath, UnknownMarginQuery)
{
    DroopDetectorBank bank({0.01});
    EXPECT_EXIT(bank.eventCountForMargin(0.02),
                ::testing::ExitedWithCode(1), "not configured");
}

TEST(DroopDetectorBank, ComputedMarginLookup)
{
    // Margins produced by arithmetic (0.01 * i) queried back with an
    // accumulated sum that may differ in the last ulp; every lookup
    // must resolve to the right detector.
    std::vector<double> margins;
    for (int i = 1; i <= 14; ++i)
        margins.push_back(0.01 * i);
    DroopDetectorBank bank(margins);
    for (int i = 0; i < 5000; ++i)
        bank.feed(-0.15 * std::abs(std::sin(i * 0.37)));
    double acc = 0.0;
    for (int i = 1; i <= 14; ++i) {
        acc += 0.01;
        EXPECT_EQ(bank.eventCountForMargin(acc),
                  bank.eventCountAt(static_cast<std::size_t>(i - 1)))
            << "accumulated margin " << acc;
    }
}

TEST(DroopDetectorBank, NearbyMarginsResolveExactly)
{
    // Regression: the old lookup scanned with a 1e-9 absolute epsilon
    // and returned the *first* margin within it, so two configured
    // margins closer than the epsilon aliased to one detector. Exact
    // queries must hit their own detector.
    const double shallow = 0.01;
    const double deep = 0.01 + 1e-10;
    DroopDetectorBank bank({shallow, deep});
    // One excursion that crosses the shallow threshold only.
    bank.feed(-(shallow + 5e-11));
    bank.feed(0.0);
    EXPECT_EQ(bank.eventCountForMargin(shallow), 1u);
    EXPECT_EQ(bank.eventCountForMargin(deep), 0u);
    EXPECT_EQ(bank.indexForMargin(deep), 1u);
}

TEST(Scope, TracksExtremesAndFractions)
{
    Scope scope;
    scope.record(-0.05);
    scope.record(0.02);
    for (int i = 0; i < 98; ++i)
        scope.record(0.0);
    EXPECT_DOUBLE_EQ(scope.maxDroop(), 0.05);
    EXPECT_DOUBLE_EQ(scope.maxOvershoot(), 0.02);
    EXPECT_NEAR(scope.peakToPeak(), 0.07, 1e-12);
    EXPECT_NEAR(scope.fractionBelow(-0.04), 0.01, 1e-3);
    EXPECT_NEAR(scope.fractionOutside(0.04), 0.01, 1e-3);
}

TEST(Scope, VisualP2pIgnoresSingletons)
{
    Scope scope;
    for (int i = 0; i < 1000000; ++i)
        scope.record(0.0);
    scope.record(-0.2); // one-in-a-million outlier
    EXPECT_NEAR(scope.peakToPeak(), 0.2, 1e-6);
    EXPECT_LT(scope.visualPeakToPeak(), 0.01);
}

TEST(Scope, MergeCombines)
{
    Scope a, b;
    a.record(-0.01);
    b.record(-0.06);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.maxDroop(), 0.06);
    EXPECT_EQ(a.histogram().totalCount(), 2u);
}

TEST(Scope, EmptyIsZero)
{
    Scope scope;
    EXPECT_DOUBLE_EQ(scope.maxDroop(), 0.0);
    EXPECT_DOUBLE_EQ(scope.peakToPeak(), 0.0);
    EXPECT_DOUBLE_EQ(scope.visualPeakToPeak(), 0.0);
}

TEST(NoiseTimeline, CountsSamplesBelowMarginPerInterval)
{
    NoiseTimeline timeline(100, 0.02);
    // First interval: 10 bad samples; second: none.
    for (int i = 0; i < 100; ++i)
        timeline.feed(i < 10 ? -0.03 : 0.0);
    for (int i = 0; i < 100; ++i)
        timeline.feed(0.0);
    const auto &series = timeline.finish();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0], 100.0); // 10 per 100 = 100 per 1K
    EXPECT_DOUBLE_EQ(series[1], 0.0);
    EXPECT_EQ(timeline.totalDroops(), 10u);
    EXPECT_NEAR(timeline.overallRate(), 50.0, 1e-9);
}

TEST(NoiseTimeline, PartialTailIntervalKeptIfMostlyComplete)
{
    NoiseTimeline timeline(100, 0.02);
    for (int i = 0; i < 160; ++i)
        timeline.feed(-0.03);
    const auto &series = timeline.finish();
    ASSERT_EQ(series.size(), 2u); // 100 + 60 (>= half)
}

TEST(NoiseTimelineDeath, BadConfig)
{
    EXPECT_EXIT(NoiseTimeline(0, 0.02), ::testing::ExitedWithCode(1),
                "interval");
    EXPECT_EXIT(NoiseTimeline(10, 0.0), ::testing::ExitedWithCode(1),
                "margin");
}

TEST(DetectPhases, FlatSeriesIsOnePhase)
{
    const std::vector<double> series(20, 100.0);
    const auto phases = detectPhases(series);
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].firstInterval, 0u);
    EXPECT_EQ(phases[0].lastInterval, 19u);
    EXPECT_DOUBLE_EQ(phases[0].meanDroopsPer1k, 100.0);
}

TEST(DetectPhases, StepsAreSegmented)
{
    std::vector<double> series;
    for (int i = 0; i < 10; ++i)
        series.push_back(100.0);
    for (int i = 0; i < 10; ++i)
        series.push_back(60.0);
    for (int i = 0; i < 10; ++i)
        series.push_back(100.0);
    const auto phases = detectPhases(series, 15.0);
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_NEAR(phases[1].meanDroopsPer1k, 60.0, 1e-9);
}

TEST(DetectPhases, EmptySeries)
{
    EXPECT_TRUE(detectPhases({}).empty());
}

TEST(DetectPhases, SmallNoiseDoesNotSplit)
{
    std::vector<double> series;
    for (int i = 0; i < 50; ++i)
        series.push_back(100.0 + (i % 2 ? 3.0 : -3.0));
    EXPECT_EQ(detectPhases(series, 15.0).size(), 1u);
}
