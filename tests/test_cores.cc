/** @file Tests for the detailed and fast core models. */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;
using namespace vsmooth::cpu;
using namespace vsmooth::workload;

namespace {

PerfCounters
runDetailed(MicrobenchKind kind, Cycles cycles)
{
    auto stream = makeMicrobenchmark(kind, 7);
    DetailedCore core(DetailedCoreParams{}, *stream);
    for (Cycles i = 0; i < cycles; ++i)
        core.tick();
    return core.counters();
}

} // namespace

TEST(DetailedCore, PowerVirusRunsFullTilt)
{
    const auto ctr = runDetailed(MicrobenchKind::PowerVirus, 100'000);
    EXPECT_GT(ctr.ipc(), 3.5);
    EXPECT_LT(ctr.stallRatio(), 0.05);
}

TEST(DetailedCore, L1BenchProducesOnlyL1Misses)
{
    // Long enough that the one-pass L2 warmup misses are negligible.
    const auto ctr = runDetailed(MicrobenchKind::L1Miss, 2'000'000);
    EXPECT_GT(ctr.eventCount(StallCause::L1Miss), 1000u);
    // After warmup, the 256 KiB footprint lives in L2: L2 misses only
    // from the first pass.
    EXPECT_LT(ctr.eventCount(StallCause::L2Miss),
              ctr.eventCount(StallCause::L1Miss) / 10);
    EXPECT_EQ(ctr.eventCount(StallCause::Exception), 0u);
}

TEST(DetailedCore, L2BenchMissesMemory)
{
    const auto ctr = runDetailed(MicrobenchKind::L2Miss, 200'000);
    EXPECT_GT(ctr.eventCount(StallCause::L2Miss), 1000u);
    EXPECT_GT(ctr.stallCycles(StallCause::L2Miss),
              ctr.stallCycles(StallCause::L1Miss));
}

TEST(DetailedCore, TlbBenchWalksWithoutCacheMisses)
{
    const auto ctr = runDetailed(MicrobenchKind::TlbMiss, 400'000);
    EXPECT_GT(ctr.eventCount(StallCause::TlbMiss), 1000u);
    // Data is L1-resident by construction: TLB stalls dominate.
    EXPECT_GT(ctr.stallCycles(StallCause::TlbMiss),
              10 * ctr.stallCycles(StallCause::L2Miss));
}

TEST(DetailedCore, BranchBenchDefeatsPredictor)
{
    auto stream = makeMicrobenchmark(MicrobenchKind::BranchMispredict, 7);
    DetailedCore core(DetailedCoreParams{}, *stream);
    for (Cycles i = 0; i < 300'000; ++i)
        core.tick();
    EXPECT_GT(core.counters().eventCount(StallCause::BranchMispredict),
              1000u);
    // Random outcomes: the predictor stays near chance.
    EXPECT_NEAR(core.predictor().mispredictRate(), 0.5, 0.1);
}

TEST(DetailedCore, ExceptionBenchRaises)
{
    const auto ctr = runDetailed(MicrobenchKind::Exception, 300'000);
    EXPECT_GT(ctr.eventCount(StallCause::Exception), 100u);
}

TEST(DetailedCore, RecoveryStallInjection)
{
    auto stream = makeMicrobenchmark(MicrobenchKind::PowerVirus, 7);
    DetailedCore core(DetailedCoreParams{}, *stream);
    for (int i = 0; i < 100; ++i)
        core.tick();
    core.injectRecoveryStall(50);
    std::uint64_t low = 0;
    for (int i = 0; i < 50; ++i)
        low += (core.tick() < 0.1);
    EXPECT_GT(low, 40u);
    EXPECT_EQ(core.counters().eventCount(StallCause::Recovery), 1u);
    EXPECT_GE(core.counters().stallCycles(StallCause::Recovery), 45u);
}

TEST(DetailedCore, SharedL2IsShared)
{
    auto s0 = makeMicrobenchmark(MicrobenchKind::L1Miss, 7);
    auto s1 = makeMicrobenchmark(MicrobenchKind::L1Miss, 8);
    Cache shared(core2L2Geometry());
    DetailedCore a(DetailedCoreParams{}, *s0, &shared);
    DetailedCore b(DetailedCoreParams{}, *s1, &shared);
    for (int i = 0; i < 50'000; ++i) {
        a.tick();
        b.tick();
    }
    EXPECT_EQ(&a.l2(), &shared);
    EXPECT_EQ(&b.l2(), &shared);
    EXPECT_GT(shared.hits() + shared.misses(), 0u);
}

TEST(DetailedCore, InfiniteStreamNeverFinishes)
{
    auto stream = makeMicrobenchmark(MicrobenchKind::PowerVirus, 7);
    DetailedCore core(DetailedCoreParams{}, *stream);
    for (int i = 0; i < 1000; ++i)
        core.tick();
    EXPECT_FALSE(core.finished());
}

TEST(FastCore, StallRatioTracksDesignTarget)
{
    for (double target : {0.2, 0.4, 0.6, 0.8}) {
        PhaseSchedule sched;
        sched.phases.push_back(
            makeSpecPhase(target, 0.5, 1.5, 2'000'000));
        sched.loop = true;
        FastCore core(sched, 42);
        for (int i = 0; i < 1'000'000; ++i)
            core.tick();
        EXPECT_NEAR(core.counters().stallRatio(), target, 0.1)
            << "target " << target;
    }
}

TEST(FastCore, IpcMatchesRunningRateTimesUptime)
{
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(0.5, 0.5, 2.0, 1'000'000));
    sched.loop = true;
    FastCore core(sched, 42);
    for (int i = 0; i < 500'000; ++i)
        core.tick();
    const double stall = core.counters().stallRatio();
    // Committing only in non-blocked cycles at ipcWhenRunning.
    EXPECT_NEAR(core.counters().ipc(), 2.0 * (1.0 - stall), 0.25);
}

TEST(FastCore, DeterministicForSeed)
{
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(0.5, 0.5, 1.5, 100'000));
    sched.loop = true;
    FastCore a(sched, 7), b(sched, 7);
    for (int i = 0; i < 10'000; ++i)
        ASSERT_DOUBLE_EQ(a.tick(), b.tick());
}

TEST(FastCore, PhasesProgressAndLoop)
{
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(0.2, 0.5, 1.5, 1000));
    sched.phases.push_back(makeSpecPhase(0.8, 0.5, 1.5, 1000));
    sched.loop = true;
    FastCore core(sched, 7);
    EXPECT_EQ(core.currentPhaseIndex(), 0u);
    for (int i = 0; i < 1500; ++i)
        core.tick();
    EXPECT_EQ(core.currentPhaseIndex(), 1u);
    for (int i = 0; i < 1000; ++i)
        core.tick();
    EXPECT_EQ(core.currentPhaseIndex(), 0u); // looped
}

TEST(FastCore, FinishesWhenNotLooping)
{
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(0.3, 0.5, 1.5, 1000));
    sched.loop = false;
    FastCore core(sched, 7);
    for (int i = 0; i < 3000; ++i)
        core.tick();
    EXPECT_TRUE(core.finished());
    // Finished cores idle quietly.
    EXPECT_NEAR(core.tick(), 0.12, 1e-9);
}

TEST(FastCore, RecoveryStallBlocks)
{
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(0.0, 0.5, 1.5, 100'000));
    sched.loop = true;
    FastCore core(sched, 7);
    core.tick();
    core.injectRecoveryStall(40);
    std::uint64_t low = 0;
    for (int i = 0; i < 40; ++i)
        low += (core.tick() < 0.1);
    EXPECT_GT(low, 35u);
}

TEST(FastCore, ExpectedStallRatioFormulaConsistent)
{
    const auto phase = makeSpecPhase(0.6, 0.7, 1.2, 1000);
    EXPECT_NEAR(phase.expectedStallRatio(), 0.6, 0.05);
    EXPECT_NEAR(phase.expectedIpc(),
                1.2 * (1.0 - phase.expectedStallRatio()), 1e-9);
}

TEST(FastCoreDeath, EmptySchedule)
{
    PhaseSchedule sched;
    EXPECT_EXIT(FastCore(sched, 1), ::testing::ExitedWithCode(1),
                "at least one phase");
}

TEST(FastCoreDeath, ZeroLengthPhase)
{
    PhaseSchedule sched;
    sched.phases.push_back(ActivityPhase{});
    EXPECT_EXIT(FastCore(sched, 1), ::testing::ExitedWithCode(1),
                "zero-length");
}

/** Property sweep: the gap-solver calibration holds across the
 *  (stallRatio x memoryBoundness) plane. */
class FastCoreCalibration
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(FastCoreCalibration, RealizedStallNearTarget)
{
    const auto [target, mu] = GetParam();
    PhaseSchedule sched;
    sched.phases.push_back(makeSpecPhase(target, mu, 1.5, 1'000'000));
    sched.loop = true;
    FastCore core(sched, 1234);
    for (int i = 0; i < 600'000; ++i)
        core.tick();
    EXPECT_NEAR(core.counters().stallRatio(), target, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Plane, FastCoreCalibration,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.75),
                       ::testing::Values(0.1, 0.5, 0.9)));
