/**
 * @file
 * Cross-module integration tests: the paper-level invariants that the
 * whole stack must reproduce (DESIGN.md Sec 4 calibration targets).
 * These are the contract the figure benches depend on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/statistics.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "pdn/droop_analysis.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

double
microbenchP2p(workload::MicrobenchKind kind)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    auto stream = workload::makeMicrobenchmark(kind, 7);
    sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *stream));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    sys.run(1'000'000);
    return sys.scope().visualPeakToPeak();
}

double
idleP2p()
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 42));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    sys.run(1'000'000);
    return sys.scope().visualPeakToPeak();
}

} // namespace

TEST(Integration, IdleMachineStaysInsideIdleMargin)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 42));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    sys.run(2'000'000);
    // The premise of the paper's 2.3% characterization margin.
    EXPECT_LT(sys.scope().maxDroop(), sim::kIdleMargin);
    EXPECT_EQ(sys.droopBank().eventCountForMargin(sim::kIdleMargin), 0u);
}

TEST(Integration, BranchFlushIsLargestSingleCoreSwing)
{
    // Fig 12's headline: BR > all other events, roughly 1.7x idle.
    const double idle = idleP2p();
    const double br =
        microbenchP2p(workload::MicrobenchKind::BranchMispredict);
    for (auto kind :
         {workload::MicrobenchKind::L1Miss,
          workload::MicrobenchKind::L2Miss,
          workload::MicrobenchKind::TlbMiss}) {
        EXPECT_GE(br, microbenchP2p(kind))
            << workload::microbenchName(kind);
    }
    const double rel = br / idle;
    EXPECT_GT(rel, 1.4);
    EXPECT_LT(rel, 2.6);
}

TEST(Integration, DualCoreWorsensSwings)
{
    // Fig 13: running both cores amplifies the worst-case swing.
    sim::SystemConfig cfg;
    auto run = [&](bool dual) {
        sim::System sys(cfg);
        auto s0 = workload::makeMicrobenchmark(
            workload::MicrobenchKind::BranchMispredict, 7);
        sys.addCore(std::make_unique<cpu::DetailedCore>(
            cpu::DetailedCoreParams{}, *s0));
        auto s1 = workload::makeMicrobenchmark(
            workload::MicrobenchKind::BranchMispredict, 99);
        if (dual) {
            sys.addCore(std::make_unique<cpu::DetailedCore>(
                cpu::DetailedCoreParams{}, *s1));
        } else {
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::idleSchedule(1000), 43));
        }
        sys.run(1'000'000);
        return sys.scope().visualPeakToPeak();
    };
    EXPECT_GT(run(true), 1.2 * run(false));
}

TEST(Integration, DroopRateTracksStallRatioAcrossSuite)
{
    // Fig 15: correlation ~0.97 between droops/1K and stall ratio.
    std::vector<double> droops, stalls;
    std::uint64_t seed = 55;
    for (const auto &b : workload::specCpu2006()) {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(b, 400'000, true), seed += 3));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), seed += 3));
        sys.run(400'000);
        droops.push_back(
            1000.0 * sys.scope().fractionBelow(-sim::kIdleMargin));
        stalls.push_back(sys.core(0).counters().stallRatio());
    }
    EXPECT_GT(pearson(droops, stalls), 0.9);
}

TEST(Integration, FutureNodeSpreadsTheDistribution)
{
    // Fig 9: Proc3 pushes far more samples past -4% than Proc100.
    auto tail = [](double frac) {
        sim::SystemConfig cfg;
        cfg.package =
            pdn::PackageConfig::core2duo().withDecapFraction(frac);
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  400'000, true),
            11));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("mcf"), 400'000,
                                  true),
            22));
        sys.run(400'000);
        return sys.scope().fractionBelow(-0.04);
    };
    EXPECT_GT(tail(0.03), 5.0 * (tail(1.0) + 1e-6));
}

TEST(Integration, ResetDroopRatioMatchesPaperTrend)
{
    // Fig 6: Proc0 / Proc100 p2p ratio ~2.3x.
    const auto p100 = pdn::simulateReset(pdn::PackageConfig::core2duo());
    const auto p0 = pdn::simulateReset(
        pdn::PackageConfig::core2duo().withDecapFraction(0.0));
    const double ratio = p0.peakToPeak() / p100.peakToPeak();
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.9);
}

TEST(Integration, DetailedAndFastCoresAgreeOnStallRatio)
{
    // The two execution models must be statistically compatible for
    // the same microbenchmark (gem5 atomic-vs-detailed sanity).
    for (auto kind : {workload::MicrobenchKind::L1Miss,
                      workload::MicrobenchKind::TlbMiss}) {
        auto stream = workload::makeMicrobenchmark(kind, 7);
        cpu::DetailedCore detailed(cpu::DetailedCoreParams{}, *stream);
        cpu::FastCore fast(workload::microbenchmarkSchedule(kind, 1000),
                           7);
        for (int i = 0; i < 400'000; ++i) {
            detailed.tick();
            fast.tick();
        }
        // The models account the event-trigger issue cycle
        // differently (the detailed core folds it into the stall),
        // so agreement is statistical, not exact.
        EXPECT_NEAR(detailed.counters().stallRatio(),
                    fast.counters().stallRatio(), 0.21)
            << workload::microbenchName(kind);
    }
}

TEST(Integration, RecoveryOverheadGrowsWithTighterMargin)
{
    // Fig 8's mechanism: tightening the margin increases emergencies.
    auto emergencies = [](double margin) {
        sim::SystemConfig cfg;
        cfg.emergencyMargin = margin;
        cfg.recoveryCostCycles = 100;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  300'000, true),
            3));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("milc"), 300'000,
                                  true),
            4));
        sys.run(300'000);
        return sys.emergencies();
    };
    EXPECT_GT(emergencies(0.015), emergencies(0.03));
}
