/**
 * @file
 * Tests for the deterministic parallel sweep engine: thread-pool
 * semantics (every index exactly once, exception propagation, nested
 * calls) and the repo's core invariant that the job count never
 * changes results (OracleMatrix and merged-histogram populations are
 * bit-identical for jobs=1 vs jobs=4).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "cpu/fast_core.hh"
#include "noise/scope.hh"
#include "sched/oracle_matrix.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

/** Restores the default job count when a test returns. */
struct JobsGuard
{
    ~JobsGuard() { setJobs(0); }
};

std::vector<workload::SpecBenchmark>
smallSuite()
{
    std::vector<workload::SpecBenchmark> suite;
    for (const char *name : {"hmmer", "sphinx", "mcf", "lbm"})
        suite.push_back(workload::specByName(name));
    return suite;
}

sched::OracleMatrix
buildMatrix(std::size_t jobs)
{
    JobsGuard guard;
    setJobs(jobs);
    sched::OracleConfig cfg;
    cfg.cyclesPerPair = 60'000;
    return sched::OracleMatrix(smallSuite(), cfg);
}

void
expectProfilesIdentical(const sched::PairProfile &a,
                        const sched::PairProfile &b)
{
    EXPECT_EQ(a.droopsPer1k, b.droopsPer1k);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.emergencies.margins, b.emergencies.margins);
    EXPECT_EQ(a.emergencies.counts, b.emergencies.counts);
    EXPECT_EQ(a.emergencies.cycles, b.emergencies.cycles);
}

noise::Scope
runScope(std::uint64_t seed)
{
    sim::SystemConfig cfg;
    cfg.osTickInterval = sim::kCompressedOsTick;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 30'000, true),
        seed));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), seed + 1));
    sys.run(30'000);
    return sys.scope();
}

} // namespace

TEST(Parallel, EmptyRangeNeverCalls)
{
    std::atomic<int> calls{0};
    parallelFor(5, 5, [&](std::size_t) { ++calls; });
    parallelFor(7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, EveryIndexExactlyOnce)
{
    JobsGuard guard;
    setJobs(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(0, kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, RangeSmallerThanThreadCount)
{
    JobsGuard guard;
    setJobs(8);
    std::vector<std::atomic<int>> hits(3);
    parallelFor(0, 3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives)
{
    JobsGuard guard;
    setJobs(4);
    EXPECT_THROW(
        parallelFor(0, 64,
                    [](std::size_t i) {
                        if (i == 7)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);

    // The pool must be fully usable after a failed sweep.
    std::atomic<int> calls{0};
    parallelFor(0, 16, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
}

TEST(Parallel, LowestChunkExceptionWinsDeterministically)
{
    // Two chunks throw in the same sweep. The pool must drain every
    // in-flight chunk and then rethrow the exception from the
    // lowest-indexed throwing chunk — not whichever thread happened to
    // reach the error slot first. Chunk 3 throws immediately while
    // chunk 1 sleeps first, so a first-arrival policy reliably
    // surfaces "chunk 3"; the deterministic policy must say "chunk 1"
    // on every iteration regardless of scheduling.
    JobsGuard guard;
    setJobs(4);
    for (int iter = 0; iter < 10; ++iter) {
        std::atomic<int> arrived{0};
        std::atomic<int> finished{0};
        std::string caught;
        try {
            parallelFor(0, 4, [&](std::size_t i) {
                // Barrier: every chunk is in flight before any throws,
                // so none of them can be "abandoned undispatched".
                ++arrived;
                while (arrived.load() < 4)
                    std::this_thread::yield();
                if (i == 3)
                    throw std::runtime_error("chunk 3");
                if (i == 1) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    throw std::runtime_error("chunk 1");
                }
                ++finished;
            });
            FAIL() << "sweep did not throw";
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        EXPECT_EQ(caught, "chunk 1") << "iteration " << iter;
        // Both non-throwing chunks ran to completion before rethrow.
        EXPECT_EQ(finished.load(), 2) << "iteration " << iter;
    }
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock)
{
    JobsGuard guard;
    setJobs(4);
    std::atomic<int> inner{0};
    parallelFor(0, 4, [&](std::size_t) {
        parallelFor(0, 8, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(Parallel, SetJobsOverridesAndRestores)
{
    JobsGuard guard;
    setJobs(3);
    EXPECT_EQ(numJobs(), 3u);
    setJobs(0);
    EXPECT_GE(numJobs(), 1u);
}

TEST(Parallel, ParallelMapPreservesIndexOrder)
{
    JobsGuard guard;
    setJobs(4);
    const auto squares =
        parallelMap<std::size_t>(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(Parallel, OracleMatrixIdenticalAcrossJobCounts)
{
    const auto serial = buildMatrix(1);
    const auto parallel = buildMatrix(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectProfilesIdentical(serial.single(i), parallel.single(i));
        for (std::size_t j = i; j < serial.size(); ++j)
            expectProfilesIdentical(serial.pair(i, j),
                                    parallel.pair(i, j));
    }
}

TEST(Parallel, MergedHistogramCdfIdenticalAcrossJobCounts)
{
    // The Fig 7/9 aggregation pattern: per-run scopes produced in
    // parallel, merged after the join in index order.
    auto population = [](std::size_t jobs) {
        JobsGuard guard;
        setJobs(jobs);
        const auto scopes = parallelMap<noise::Scope>(
            6, [](std::size_t k) { return runScope(100 + 17 * k); });
        noise::Scope merged;
        for (const auto &s : scopes)
            merged.merge(s);
        return merged;
    };

    const auto serial = population(1);
    const auto parallel = population(4);
    const auto &ha = serial.histogram();
    const auto &hb = parallel.histogram();
    ASSERT_EQ(ha.numBins(), hb.numBins());
    EXPECT_EQ(ha.totalCount(), hb.totalCount());
    EXPECT_EQ(ha.minSample(), hb.minSample());
    EXPECT_EQ(ha.maxSample(), hb.maxSample());
    for (std::size_t i = 0; i < ha.numBins(); ++i)
        EXPECT_EQ(ha.binCount(i), hb.binCount(i)) << "bin " << i;
}
