/** @file Tests for margin-dependent bit-flip fault injection. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/parallel.hh"
#include "cpu/fault_injector.hh"
#include "simtest/properties.hh"

using namespace vsmooth;
using namespace vsmooth::cpu;

namespace {

FaultModelParams
model(double rate = 1e-2)
{
    FaultModelParams p;
    p.rateAtZeroMargin = rate;
    return p;
}

/** Fault decision sequence for one structure over [0, n). */
std::vector<std::uint64_t>
faultIndices(std::uint64_t seed, std::size_t structureId,
             std::uint64_t threshold, std::uint64_t n)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t i = 0; i < n; ++i)
        if (FaultInjector::wouldFault(seed, structureId, i, threshold))
            out.push_back(i);
    return out;
}

} // namespace

TEST(FaultInjector, RateMonotoneInMargin)
{
    const auto params = model();
    double prev = FaultInjector::faultProbabilityAt(params, 0.0);
    EXPECT_DOUBLE_EQ(prev, params.rateAtZeroMargin);
    for (double m = 0.005; m < params.safeMargin; m += 0.005) {
        const double p = FaultInjector::faultProbabilityAt(params, m);
        EXPECT_LT(p, prev) << "margin " << m;
        EXPECT_GT(p, 0.0) << "margin " << m;
        prev = p;
    }

    // Observed fault counts inherit the monotonicity: thinner margins
    // fault a superset of accesses, so counts can only grow.
    std::uint64_t prevCount = 0;
    for (double m : {0.05, 0.04, 0.03, 0.02, 0.01, 0.0}) {
        FaultInjector fresh(params, 99);
        const std::size_t fid = fresh.registerStructure("l1d");
        fresh.setMargin(m);
        for (std::uint64_t i = 0; i < 20'000; ++i)
            fresh.shouldFault(fid, i);
        EXPECT_GE(fresh.faultCount(fid), prevCount) << "margin " << m;
        prevCount = fresh.faultCount(fid);
    }
    EXPECT_GT(prevCount, 0u);
}

TEST(FaultInjector, ExactlyZeroAtNominalMargin)
{
    const auto params = model(0.05);
    FaultInjector inj(params, 12345);
    const std::size_t id = inj.registerStructure("tlb");

    for (double m : {params.safeMargin, params.safeMargin + 0.01, 0.25}) {
        inj.setMargin(m);
        EXPECT_DOUBLE_EQ(inj.faultProbability(), 0.0) << "margin " << m;
        EXPECT_EQ(inj.threshold(), 0u) << "margin " << m;
        for (std::uint64_t i = 0; i < 10'000; ++i)
            EXPECT_FALSE(inj.shouldFault(id, i));
    }
    EXPECT_EQ(inj.totalFaults(), 0u);
}

TEST(FaultInjector, NestedFaultSetsAcrossMargins)
{
    const auto params = model();
    const std::uint64_t thin = FaultInjector::thresholdFor(
        FaultInjector::faultProbabilityAt(params, 0.01));
    const std::uint64_t wide = FaultInjector::thresholdFor(
        FaultInjector::faultProbabilityAt(params, 0.04));
    ASSERT_GT(thin, wide);

    // Every access that faults at the wider margin faults at the
    // thinner one too: the sets are exactly nested, not just the
    // counts ordered.
    for (std::uint64_t i = 0; i < 200'000; ++i) {
        if (FaultInjector::wouldFault(7, 0, i, wide))
            EXPECT_TRUE(FaultInjector::wouldFault(7, 0, i, thin))
                << "access " << i;
    }
}

TEST(FaultInjector, SequenceIdenticalAcrossJobsAndPartitions)
{
    const auto params = model();
    const std::uint64_t threshold = FaultInjector::thresholdFor(
        FaultInjector::faultProbabilityAt(params, 0.015));
    constexpr std::uint64_t kN = 100'000;

    const auto serial = faultIndices(31, 2, threshold, kN);
    ASSERT_FALSE(serial.empty());

    // The decision for access i is a pure function of (seed, id, i):
    // any partition of the index space across any worker count
    // reassembles to the identical sequence.
    for (std::size_t jobs : {1u, 3u, 8u}) {
        setJobs(jobs);
        constexpr std::size_t kChunks = 16;
        auto chunks = parallelMap<std::vector<std::uint64_t>>(
            kChunks, [&](std::size_t c) {
                std::vector<std::uint64_t> out;
                for (std::uint64_t i = c; i < kN; i += kChunks)
                    if (FaultInjector::wouldFault(31, 2, i, threshold))
                        out.push_back(i);
                return out;
            });
        std::vector<std::uint64_t> merged;
        for (const auto &chunk : chunks)
            merged.insert(merged.end(), chunk.begin(), chunk.end());
        std::sort(merged.begin(), merged.end());
        EXPECT_EQ(merged, serial) << "jobs " << jobs;
    }
    setJobs(0);
}

TEST(FaultInjector, CountersConservedBetweenBlockedAndScalarPaths)
{
    // The full rig (detailed core, caches + TLB with injection wired
    // in) must count exactly the same faults whether the system runs
    // the batched block pipeline or ticks cycle by cycle.
    const auto blocked =
        simtest::runFaultRig(5, 0.02, 5e-3, Cycles(30'000), false);
    const auto scalar =
        simtest::runFaultRig(5, 0.02, 5e-3, Cycles(30'000), true);
    EXPECT_GT(blocked.totalFaults(), 0u);
    EXPECT_EQ(blocked, scalar);

    // And an identical rerun reproduces the identical counts.
    const auto replay =
        simtest::runFaultRig(5, 0.02, 5e-3, Cycles(30'000), false);
    EXPECT_EQ(blocked, replay);
}
