/** @file Transient and AC analyses validated against closed forms. */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hh"
#include "circuit/netlist.hh"
#include "circuit/transient.hh"

using namespace vsmooth;
using namespace vsmooth::circuit;

namespace {

/** RC low-pass driven by a step: v(t) = V (1 - exp(-t/RC)). */
struct RcFixture
{
    Netlist net;
    NodeId in, out;
    SourceId src;

    RcFixture()
    {
        in = net.newNode();
        out = net.newNode();
        src = net.addVoltageSource(in, kGround, Volts(0.0));
        net.addResistor(in, out, Ohms(1000.0));
        net.addCapacitor(out, kGround, Farads(1e-9)); // tau = 1 us
    }
};

} // namespace

TEST(Transient, RcStepMatchesAnalytic)
{
    RcFixture f;
    TransientSolver solver(f.net, Seconds(10e-9));
    f.net.setVoltageSource(f.src, Volts(1.0));

    // The trapezoidal rule averages the input over each step, so the
    // discrete response tracks the analytic curve with a half-step
    // time offset.
    const double tau = 1e-6;
    for (int k = 1; k <= 300; ++k) {
        solver.step();
        const double t = 10e-9 * (k - 0.5);
        const double expect = 1.0 - std::exp(-t / tau);
        ASSERT_NEAR(solver.nodeVoltage(f.out), expect, 2e-3)
            << "at step " << k;
    }
}

TEST(Transient, RlcStepOvershootMatchesAnalytic)
{
    // Series RLC, zeta = 0.5: overshoot = exp(-pi zeta / sqrt(1-z^2)).
    Netlist net;
    const NodeId n1 = net.newNode();
    const NodeId n2 = net.newNode();
    const NodeId n3 = net.newNode();
    const SourceId src = net.addVoltageSource(n1, kGround, Volts(0.0));
    net.addResistor(n1, n2, Ohms(1.0));
    net.addInductor(n2, n3, Henries(1e-6));
    net.addCapacitor(n3, kGround, Farads(1e-6));
    TransientSolver solver(net, Seconds(1e-8));
    net.setVoltageSource(src, Volts(1.0));
    double peak = 0.0;
    for (int i = 0; i < 3000; ++i) {
        solver.step();
        peak = std::max(peak, solver.nodeVoltage(n3));
    }
    const double zeta = 0.5;
    const double expect =
        1.0 + std::exp(-M_PI * zeta / std::sqrt(1.0 - zeta * zeta));
    EXPECT_NEAR(peak, expect, 2e-3);
    // And it settles back to the source value.
    for (int i = 0; i < 20000; ++i)
        solver.step();
    EXPECT_NEAR(solver.nodeVoltage(n3), 1.0, 1e-6);
}

TEST(Transient, StartsFromDcOperatingPoint)
{
    RcFixture f;
    f.net.setVoltageSource(f.src, Volts(2.0));
    TransientSolver solver(f.net, Seconds(10e-9));
    // Initialized at DC: the capacitor is already charged; stepping
    // should not move the output.
    EXPECT_NEAR(solver.nodeVoltage(f.out), 2.0, 1e-12);
    solver.run(100);
    EXPECT_NEAR(solver.nodeVoltage(f.out), 2.0, 1e-9);
}

TEST(Transient, CurrentSourceStepIrDrop)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addVoltageSource(n, kGround, Volts(1.0));
    const NodeId out = net.newNode();
    net.addResistor(n, out, Ohms(0.5));
    net.addCapacitor(out, kGround, Farads(1e-9));
    const SourceId load = net.addCurrentSource(out, kGround, Amps(0.0));
    TransientSolver solver(net, Seconds(1e-9));
    net.setCurrentSource(load, Amps(1.0));
    solver.run(20000);
    EXPECT_NEAR(solver.nodeVoltage(out), 0.5, 1e-6);
}

TEST(Transient, TimeAdvances)
{
    RcFixture f;
    TransientSolver solver(f.net, Seconds(2e-9));
    solver.run(5);
    EXPECT_NEAR(solver.time().value(), 10e-9, 1e-18);
    EXPECT_NEAR(solver.dt().value(), 2e-9, 1e-18);
}

TEST(Transient, InitFromDcResets)
{
    RcFixture f;
    TransientSolver solver(f.net, Seconds(10e-9));
    f.net.setVoltageSource(f.src, Volts(1.0));
    solver.run(50);
    EXPECT_GT(solver.nodeVoltage(f.out), 0.1);
    solver.initFromDc();
    EXPECT_NEAR(solver.nodeVoltage(f.out), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(solver.time().value(), 0.0);
}

TEST(TransientDeath, NonPositiveTimestep)
{
    RcFixture f;
    EXPECT_EXIT(TransientSolver(f.net, Seconds(0.0)),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(Ac, ResistorImpedanceIsFlat)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addResistor(n, kGround, Ohms(42.0));
    for (double f : {1e3, 1e6, 1e9}) {
        const auto z = drivingPointImpedance(net, n, Hertz(f));
        EXPECT_NEAR(std::abs(z), 42.0, 1e-9);
        EXPECT_NEAR(z.imag(), 0.0, 1e-9);
    }
}

TEST(Ac, CapacitorImpedanceRolloff)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addCapacitor(n, kGround, Farads(1e-9));
    const double f = 1e6;
    const auto z = drivingPointImpedance(net, n, Hertz(f));
    EXPECT_NEAR(std::abs(z), 1.0 / (2 * M_PI * f * 1e-9), 1e-6);
    EXPECT_LT(z.imag(), 0.0); // capacitive
}

TEST(Ac, InductorImpedanceGrows)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addInductor(n, kGround, Henries(1e-6));
    const double f = 1e6;
    const auto z = drivingPointImpedance(net, n, Hertz(f));
    EXPECT_NEAR(std::abs(z), 2 * M_PI * f * 1e-6, 1e-6);
    EXPECT_GT(z.imag(), 0.0); // inductive
}

TEST(Ac, VoltageSourceIsAcShort)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addVoltageSource(n, kGround, Volts(5.0));
    const auto z = drivingPointImpedance(net, n, Hertz(1e6));
    EXPECT_NEAR(std::abs(z), 0.0, 1e-12);
}

TEST(Ac, ParallelRlcResonatesAtF0)
{
    // L in series from stiff source, C at the node: driving-point
    // impedance peaks at f0 = 1/(2 pi sqrt(LC)).
    Netlist net;
    const NodeId src = net.newNode();
    const NodeId n = net.newNode();
    net.addVoltageSource(src, kGround, Volts(1.0));
    net.addResistor(src, n, Ohms(0.01));
    net.addInductor(src, n, Henries(1e-9));
    net.addCapacitor(n, kGround, Farads(1e-9));
    const double f0 = 1.0 / (2 * M_PI * std::sqrt(1e-9 * 1e-9));
    const auto sweep =
        impedanceSweep(net, n, Hertz(f0 / 30), Hertz(f0 * 30), 121);
    const auto peak = resonancePeak(sweep);
    EXPECT_NEAR(peak.frequencyHz, f0, f0 * 0.1);
}

TEST(Ac, SweepIsLogSpacedInclusive)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addResistor(n, kGround, Ohms(1.0));
    const auto sweep =
        impedanceSweep(net, n, Hertz(1e3), Hertz(1e6), 4);
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_NEAR(sweep.front().frequencyHz, 1e3, 1e-6);
    EXPECT_NEAR(sweep.back().frequencyHz, 1e6, 1e-3);
    EXPECT_NEAR(sweep[1].frequencyHz, 1e4, 1.0);
}

TEST(AcDeath, BadSweepArguments)
{
    Netlist net;
    const NodeId n = net.newNode();
    net.addResistor(n, kGround, Ohms(1.0));
    EXPECT_EXIT(impedanceSweep(net, n, Hertz(1e3), Hertz(1e6), 1),
                ::testing::ExitedWithCode(1), "at least 2");
    EXPECT_EXIT(impedanceSweep(net, n, Hertz(1e6), Hertz(1e3), 5),
                ::testing::ExitedWithCode(1), "fLo < fHi");
}
