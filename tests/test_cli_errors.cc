/**
 * @file
 * Error-path tests for the vsmooth CLI: every user mistake (missing
 * directories, malformed JSON, unknown experiment or property names,
 * bad flag values) must exit nonzero with an actionable message, not
 * crash or silently pass.
 *
 * Tests run the real binary (path injected via VSMOOTH_CLI_PATH at
 * compile time) through popen and assert on exit status + combined
 * stdout/stderr.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "common/fsio.hh"

namespace fs = std::filesystem;

namespace {

struct CliResult
{
    int exitCode = -1;
    std::string output; // stdout + stderr interleaved
};

CliResult
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(VSMOOTH_CLI_PATH) + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    CliResult r;
    std::array<char, 4096> buf;
    while (pipe && fgets(buf.data(), buf.size(), pipe))
        r.output += buf.data();
    if (pipe) {
        const int status = pclose(pipe);
        r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return r;
}

/** Fresh scratch directory under the test tmp dir. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
        ("vsmooth_cli_errors_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Create an executable fake experiment "binary" that emits a minimal
 *  valid Result to $VSMOOTH_RESULT_FILE. */
void
writeFakeExperiment(const fs::path &benchDir, const std::string &name)
{
    const fs::path script = benchDir / name;
    {
        std::ofstream os(script);
        os << "#!/bin/sh\n"
           << "printf '{\"experiment\": \"" << name
           << "\", \"metrics\": {\"m\": 1}}' > \"$VSMOOTH_RESULT_FILE\"\n";
    }
    fs::permissions(script, fs::perms::owner_all);
}

} // namespace

TEST(CliErrors, NoArgumentsPrintsUsage)
{
    const auto r = runCli("");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("usage"), std::string::npos);
}

TEST(CliErrors, VerifyUnknownExperiment)
{
    const auto r = runCli("verify --experiments not_an_experiment");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown experiment"), std::string::npos);
    // The message points at the discovery command.
    EXPECT_NE(r.output.find("--list"), std::string::npos);
}

TEST(CliErrors, VerifyMissingBenchBinary)
{
    const auto bench = scratchDir("verify_nobin_bench");
    const auto golden = scratchDir("verify_nobin_golden");
    const auto r = runCli("verify --bench-dir " + bench.string() +
                          " --golden-dir " + golden.string() +
                          " --experiments fig01_future_swings");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("missing binary"), std::string::npos);
    EXPECT_NE(r.output.find("build the bench targets"),
              std::string::npos);
}

TEST(CliErrors, VerifyMissingGolden)
{
    const auto bench = scratchDir("verify_nogold_bench");
    const auto golden = scratchDir("verify_nogold_golden");
    writeFakeExperiment(bench, "fig01_future_swings");
    const auto r = runCli("verify --bench-dir " + bench.string() +
                          " --golden-dir " + golden.string() +
                          " --experiments fig01_future_swings");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("missing/bad golden"), std::string::npos);
    // ... and how to fix it.
    EXPECT_NE(r.output.find("--update"), std::string::npos);
}

TEST(CliErrors, VerifyMalformedGoldenJson)
{
    const auto bench = scratchDir("verify_badgold_bench");
    const auto golden = scratchDir("verify_badgold_golden");
    writeFakeExperiment(bench, "fig01_future_swings");
    std::ofstream(golden / "fig01_future_swings.json")
        << "{\"experiment\": \"fig01_future_swings\", oops";
    const auto r = runCli("verify --bench-dir " + bench.string() +
                          " --golden-dir " + golden.string() +
                          " --experiments fig01_future_swings");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("FAIL"), std::string::npos);
    EXPECT_NE(r.output.find("fig01_future_swings.json"),
              std::string::npos);
}

namespace {

/** Every regular file in `dir` (for temp-leftover assertions). */
std::vector<std::string>
filesIn(const fs::path &dir)
{
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dir))
        names.push_back(e.path().filename().string());
    return names;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(CliErrors, AtomicWriteSurvivesSimulatedPartialWrite)
{
    // A golden update that dies mid-write (Ctrl-C, crash, full disk)
    // must leave the previous golden intact — the old in-place
    // ofstream truncated the target before the first byte landed.
    const auto dir = scratchDir("atomic_partial");
    const fs::path target = dir / "golden.json";
    const std::string original = "{\"experiment\": \"x\"}\n";
    std::ofstream(target) << original;

    std::string error;
    const bool ok = vsmooth::writeFileAtomic(
        target.string(),
        [](std::ostream &os) {
            os << "{\"experiment\": \"y\", \"metr"; // partial write...
            return false;                           // ...then die
        },
        &error);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(error.empty());

    // Original untouched, and the aborted temp file cleaned up.
    EXPECT_EQ(slurp(target), original);
    EXPECT_EQ(filesIn(dir), std::vector<std::string>{"golden.json"});

    // A successful writer replaces the content whole.
    ASSERT_TRUE(vsmooth::writeFileAtomic(
        target.string(),
        [](std::ostream &os) {
            os << "{\"experiment\": \"z\"}\n";
            return os.good();
        },
        &error))
        << error;
    EXPECT_EQ(slurp(target), "{\"experiment\": \"z\"}\n");
    EXPECT_EQ(filesIn(dir), std::vector<std::string>{"golden.json"});
}

TEST(CliErrors, VerifyUpdateReplacesGoldenAtomically)
{
    const auto bench = scratchDir("verify_update_bench");
    const auto golden = scratchDir("verify_update_golden");
    writeFakeExperiment(bench, "fig01_future_swings");
    // Pre-existing golden with a tolerances block that must survive
    // the update, written through the temp + rename path.
    std::ofstream(golden / "fig01_future_swings.json")
        << "{\"experiment\": \"fig01_future_swings\","
           " \"metrics\": {\"m\": 2},"
           " \"tolerances\": {\"m\": {\"abs\": 0.5}}}\n";

    const auto r = runCli("verify --update --bench-dir " +
                          bench.string() + " --golden-dir " +
                          golden.string() +
                          " --experiments fig01_future_swings");
    EXPECT_EQ(r.exitCode, 0) << r.output;

    const std::string updated =
        slurp(golden / "fig01_future_swings.json");
    EXPECT_NE(updated.find("\"m\": 1"), std::string::npos) << updated;
    EXPECT_NE(updated.find("tolerances"), std::string::npos) << updated;
    // No .tmp.<pid> debris left behind.
    EXPECT_EQ(filesIn(golden),
              std::vector<std::string>{"fig01_future_swings.json"});
}

TEST(CliErrors, FuzzUnknownProperty)
{
    const auto r = runCli("fuzz --iters 1 --properties not_a_property");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown property"), std::string::npos);
    // The actionable part: the known names are listed.
    EXPECT_NE(r.output.find("blocked_vs_scalar"), std::string::npos);
}

TEST(CliErrors, FuzzMissingCorpusDir)
{
    const auto r =
        runCli("fuzz --corpus /nonexistent/vsmooth-corpus-dir");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("does not exist"), std::string::npos);
}

TEST(CliErrors, FuzzEmptyCorpusDir)
{
    const auto dir = scratchDir("fuzz_empty_corpus");
    const auto r = runCli("fuzz --corpus " + dir.string());
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("no .json"), std::string::npos);
}

TEST(CliErrors, FuzzMissingReproFile)
{
    const auto r = runCli("fuzz --repro /nonexistent/repro.json");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("cannot open repro"), std::string::npos);
}

TEST(CliErrors, FuzzMalformedReproJson)
{
    const auto dir = scratchDir("fuzz_bad_repro");
    const fs::path repro = dir / "repro.json";
    std::ofstream(repro) << "{oops";
    const auto r = runCli("fuzz --repro " + repro.string());
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("not valid JSON"), std::string::npos);
}

TEST(CliErrors, FuzzInvalidReproConfig)
{
    const auto dir = scratchDir("fuzz_invalid_repro");
    const fs::path repro = dir / "repro.json";
    std::ofstream(repro) << "{\"cycles\": 0}";
    const auto r = runCli("fuzz --repro " + repro.string());
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("not a valid fuzz config"),
              std::string::npos);
}

TEST(CliErrors, FuzzBadFlagValue)
{
    const auto r = runCli("fuzz --iters not_a_number");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("bad value"), std::string::npos);

    const auto r2 = runCli("fuzz --no-such-flag");
    EXPECT_EQ(r2.exitCode, 2);
    EXPECT_NE(r2.output.find("usage"), std::string::npos);
}
