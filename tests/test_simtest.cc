/**
 * @file
 * Tests for the property-based fuzzing layer itself: generator
 * determinism and validity, FuzzConfig JSON round-trips, the property
 * registry, the registered invariants on pinned configs, and the
 * shrinker's minimization behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.hh"
#include "simtest/gen.hh"
#include "simtest/properties.hh"
#include "simtest/shrink.hh"

using namespace vsmooth;
using namespace vsmooth::simtest;

TEST(Gen, CombinatorsAreDeterministic)
{
    Rng a(42), b(42);
    const auto g = logUniformGen(100.0, 1e6);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(g(a), g(b));

    Rng c(7), d(7);
    const auto ints = intGen(3, 19);
    for (int i = 0; i < 100; ++i) {
        const auto v = ints(c);
        EXPECT_EQ(v, ints(d));
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 19u);
    }
}

TEST(Gen, MapAndSuchThatCompose)
{
    Rng rng(1);
    const auto even =
        intGen(0, 1000).suchThat([](std::uint64_t v) {
            return v % 2 == 0;
        });
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(even(rng) % 2, 0u);

    const auto doubled =
        intGen(1, 10).map([](std::uint64_t v) { return v * 2; });
    for (int i = 0; i < 50; ++i) {
        const auto v = doubled(rng);
        EXPECT_GE(v, 2u);
        EXPECT_LE(v, 20u);
        EXPECT_EQ(v % 2, 0u);
    }
}

TEST(FuzzConfigGen, SameSeedSameConfigs)
{
    const auto gen = fuzzConfigGen();
    Rng a(123), b(123);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(gen(a) == gen(b)) << "draw " << i;
}

TEST(FuzzConfigGen, EveryDrawIsValid)
{
    const auto gen = fuzzConfigGen();
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const FuzzConfig cfg = gen(rng);
        std::string why;
        EXPECT_TRUE(cfg.valid(&why)) << why;
        EXPECT_GE(cfg.cores.size(), 1u);
    }
}

TEST(FuzzConfig, JsonRoundTripIsLossless)
{
    const auto gen = fuzzConfigGen();
    Rng rng(99);
    for (int i = 0; i < 50; ++i) {
        const FuzzConfig cfg = gen(rng);
        for (const bool omitDefaults : {false, true}) {
            FuzzConfig back;
            std::string error;
            ASSERT_TRUE(FuzzConfig::fromJson(cfg.toJson(omitDefaults),
                                             back, &error))
                << error;
            EXPECT_TRUE(back == cfg)
                << "draw " << i << " omitDefaults " << omitDefaults;
        }
    }
}

TEST(FuzzConfig, DefaultConfigSerializesToEmptyObject)
{
    const FuzzConfig def;
    EXPECT_EQ(def.toJson(true).dump(), "{}");

    FuzzConfig back;
    std::string error;
    ASSERT_TRUE(FuzzConfig::fromJson(Json::object(), back, &error))
        << error;
    EXPECT_TRUE(back == def);
}

TEST(FuzzConfig, FromJsonRejectsUnknownAndInvalid)
{
    std::string error;
    FuzzConfig out;

    auto parse = [](const char *text) {
        std::string parseError;
        Json j = Json::parse(text, &parseError);
        EXPECT_TRUE(parseError.empty()) << parseError;
        return j;
    };

    EXPECT_FALSE(
        FuzzConfig::fromJson(parse("{\"cyclez\": 100}"), out, &error));
    EXPECT_NE(error.find("cyclez"), std::string::npos);

    EXPECT_FALSE(
        FuzzConfig::fromJson(parse("{\"cycles\": 0}"), out, &error));

    // Margin without a recovery cost would fatal inside System.
    EXPECT_FALSE(FuzzConfig::fromJson(
        parse("{\"emergencyMargin\": 0.04}"), out, &error));

    // The repro metadata key is tolerated (and ignored).
    EXPECT_TRUE(FuzzConfig::fromJson(
        parse("{\"property\": \"blocked_vs_scalar\"}"), out, &error))
        << error;
}

TEST(PropertyRegistry, LookupAndUniqueness)
{
    const auto &registry = propertyRegistry();
    ASSERT_GE(registry.size(), 6u);

    std::set<std::string> names;
    for (const Property &p : registry) {
        EXPECT_TRUE(names.insert(p.name).second)
            << "duplicate " << p.name;
        EXPECT_EQ(findProperty(p.name), &p);
        EXPECT_NE(p.summary, nullptr);
    }
    EXPECT_EQ(findProperty("no_such_property"), nullptr);
    EXPECT_NE(findProperty("blocked_vs_scalar"), nullptr);
}

namespace {

/** A small but non-trivial pinned scenario: two cores, odd OS-tick
 *  and timeline boundaries, finite schedules. */
FuzzConfig
pinnedConfig()
{
    FuzzConfig cfg;
    cfg.cycles = 6'000;
    cfg.baseLength = 5'000;
    cfg.cores = {FuzzCore{3, false}, FuzzCore{11, true}};
    cfg.loop = false;
    cfg.decapFraction = 0.25;
    cfg.osTickInterval = 1'861; // deliberately not 256-aligned
    cfg.enableTimeline = true;
    cfg.timelineInterval = 777;
    return cfg;
}

} // namespace

TEST(Properties, AllHoldOnPinnedConfigs)
{
    for (const FuzzConfig &cfg : {FuzzConfig{}, pinnedConfig()}) {
        for (const Property &p : propertyRegistry()) {
            std::string why;
            EXPECT_TRUE(p.check(cfg, &why)) << p.name << ": " << why;
        }
    }
}

TEST(Properties, SummarizeRunIsRepeatable)
{
    const RunSummary a = summarizeRun(pinnedConfig(), false);
    const RunSummary b = summarizeRun(pinnedConfig(), false);
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(firstDifference(a, b).empty());

    // And the scalar path sees the same observables (the
    // blocked_vs_scalar property, spot-checked directly).
    const RunSummary scalar = summarizeRun(pinnedConfig(), true);
    EXPECT_TRUE(firstDifference(a, scalar).empty());
}

namespace {

/** Synthetic property: fails whenever cycles >= 100 (captureless, so
 *  it converts to the registry's function-pointer type). */
bool
holdsBelow100Cycles(const FuzzConfig &cfg, std::string *why)
{
    if (cfg.cycles < 100)
        return true;
    if (why)
        *why = "cycles >= 100";
    return false;
}

} // namespace

TEST(Shrink, MinimizesSyntheticFailure)
{
    // A big, noisy failing config: everything irrelevant to the
    // synthetic predicate must be stripped away.
    FuzzConfig failing = pinnedConfig();
    failing.cycles = 50'000;
    failing.enableTrace = true;
    failing.traceCapacity = 999;
    failing.rippleFraction = 0.0123;
    failing.jobs = 6;
    failing.seed = 424'242;

    const Property synthetic{"synthetic_cycles", "test", "test-only",
                             nullptr, holdsBelow100Cycles};
    ASSERT_FALSE(synthetic.check(failing, nullptr));

    const ShrinkOutcome out = shrinkConfig(failing, synthetic);
    EXPECT_FALSE(synthetic.check(out.config, nullptr));
    EXPECT_GT(out.accepted, 0u);

    // Halving with a floor of 64 cannot land below 100, and anything
    // >= 200 would still shrink further.
    EXPECT_GE(out.config.cycles, 100u);
    EXPECT_LT(out.config.cycles, 200u);
    // Irrelevant structure got dropped to defaults.
    const FuzzConfig def;
    EXPECT_EQ(out.config.cores.size(), 1u);
    EXPECT_FALSE(out.config.enableTrace);
    EXPECT_FALSE(out.config.enableTimeline);
    EXPECT_EQ(out.config.seed, def.seed);
    EXPECT_EQ(out.config.jobs, def.jobs);
    EXPECT_EQ(out.config.rippleFraction, 0.0);

    // The repro document stays replay-friendly: short, and leading
    // with the property name.
    const std::string repro =
        reproJson(out.config, synthetic.name).dump(2);
    EXPECT_LE(std::count(repro.begin(), repro.end(), '\n'), 20);
    EXPECT_EQ(repro.find("{\n  \"property\": \"synthetic_cycles\""), 0u);
}

TEST(Shrink, PassingReductionsAreRejected)
{
    // A property that fails only with >= 2 cores: the shrinker must
    // keep the second core (dropping it would make the config pass).
    const Property needsTwoCores{
        "synthetic_cores", "test", "test-only", nullptr,
        [](const FuzzConfig &cfg, std::string *) {
            return cfg.cores.size() < 2;
        }};
    FuzzConfig failing;
    failing.cores = {FuzzCore{1, false}, FuzzCore{2, false},
                     FuzzCore{3, false}};

    const ShrinkOutcome out = shrinkConfig(failing, needsTwoCores);
    EXPECT_EQ(out.config.cores.size(), 2u);
    EXPECT_FALSE(needsTwoCores.check(out.config, nullptr));
}
