/** @file Tests for technology scaling and the ring oscillator. */

#include <gtest/gtest.h>

#include "tech/itrs.hh"
#include "tech/ring_oscillator.hh"

using namespace vsmooth;
using namespace vsmooth::tech;

TEST(Itrs, FiveNodesInOrder)
{
    const auto &nodes = itrsNodes();
    ASSERT_EQ(nodes.size(), 5u);
    EXPECT_EQ(nodes.front().name, "45nm");
    EXPECT_EQ(nodes.back().name, "11nm");
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        EXPECT_LT(nodes[i].featureNm, nodes[i - 1].featureNm);
        EXPECT_LT(nodes[i].vdd.value(), nodes[i - 1].vdd.value());
    }
}

TEST(Itrs, VddEndpoints)
{
    EXPECT_DOUBLE_EQ(nodeByFeature(45.0).vdd.value(), 1.0);
    EXPECT_DOUBLE_EQ(nodeByFeature(11.0).vdd.value(), 0.6);
}

TEST(ItrsDeath, UnknownNodeIsFatal)
{
    EXPECT_EXIT(nodeByFeature(7.0), ::testing::ExitedWithCode(1),
                "unknown technology node");
}

TEST(Itrs, StimulusScalesInverselyWithVdd)
{
    const Amps base{75.0};
    EXPECT_DOUBLE_EQ(scaledStimulus(base, nodeByFeature(45.0)).value(),
                     75.0);
    EXPECT_NEAR(scaledStimulus(base, nodeByFeature(22.0)).value(),
                75.0 / 0.8, 1e-9);
    EXPECT_NEAR(scaledStimulus(base, nodeByFeature(11.0)).value(),
                125.0, 1e-9);
}

TEST(RingOscillator, FrequencyMonotoneInVdd)
{
    const RingOscillator ring;
    double prev = 0.0;
    for (double v = 0.5; v <= 1.2; v += 0.05) {
        const double f = ring.frequencyAt(Volts(v));
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(RingOscillator, NoOscillationBelowVth)
{
    const RingOscillator ring(Volts(0.35));
    EXPECT_DOUBLE_EQ(ring.frequencyAt(Volts(0.35)), 0.0);
    EXPECT_DOUBLE_EQ(ring.frequencyAt(Volts(0.2)), 0.0);
}

TEST(RingOscillator, ZeroMarginIsHundredPercent)
{
    const RingOscillator ring;
    EXPECT_DOUBLE_EQ(ring.peakFrequencyPercent(Volts(1.0), 0.0), 100.0);
}

TEST(RingOscillator, PaperAnchorAt45nm)
{
    // 20 % margin at Vdd = 1.0 V costs ~25 % of peak frequency.
    const RingOscillator ring;
    const double pct = ring.peakFrequencyPercent(Volts(1.0), 0.20);
    EXPECT_NEAR(pct, 75.0, 4.0);
}

TEST(RingOscillator, SensitivityGrowsAtLowerVdd)
{
    // The same percentage margin costs more frequency at lower Vdd —
    // the core claim of Fig 2.
    const RingOscillator ring;
    const double loss45 =
        100.0 - ring.peakFrequencyPercent(Volts(1.0), 0.20);
    const double loss16 =
        100.0 - ring.peakFrequencyPercent(Volts(0.7), 0.20);
    EXPECT_GT(loss16, loss45);
}

TEST(RingOscillator, DoubledSwingAt16nmMoreThanHalvesFrequency)
{
    const RingOscillator ring;
    EXPECT_LT(ring.peakFrequencyPercent(Volts(0.7), 0.40), 50.0);
}

TEST(RingOscillatorDeath, InvalidParameters)
{
    EXPECT_EXIT(RingOscillator(Volts(0.0)),
                ::testing::ExitedWithCode(1), "Vth");
    EXPECT_EXIT(RingOscillator(Volts(0.3), 2.5),
                ::testing::ExitedWithCode(1), "alpha");
    EXPECT_EXIT(RingOscillator(Volts(0.3), 1.4, 4),
                ::testing::ExitedWithCode(1), "odd");
    const RingOscillator ring;
    EXPECT_EXIT(ring.peakFrequencyPercent(Volts(1.0), 1.0),
                ::testing::ExitedWithCode(1), "margin");
}

/** Property sweep: frequency percent is monotone decreasing in
 *  margin for every node. */
class MarginSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(MarginSweep, FrequencyDecreasesWithMargin)
{
    const RingOscillator ring;
    const Volts vdd{GetParam()};
    double prev = 101.0;
    for (double m = 0.0; m < 0.5; m += 0.05) {
        const double pct = ring.peakFrequencyPercent(vdd, m);
        EXPECT_LT(pct, prev);
        prev = pct;
    }
}

INSTANTIATE_TEST_SUITE_P(NodeVdds, MarginSweep,
                         ::testing::Values(1.0, 0.9, 0.8, 0.7));
