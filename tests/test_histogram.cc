/** @file Tests for the streaming histogram (the scope's data model). */

#include <gtest/gtest.h>

#include "common/histogram.hh"
#include "common/rng.hh"

using namespace vsmooth;

TEST(Histogram, BasicCounting)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 10.0, 10);
    h.add(2.5, 7);
    EXPECT_EQ(h.totalCount(), 7u);
    EXPECT_EQ(h.binCount(2), 7u);
}

TEST(Histogram, OutOfRangeTrackedAsUnderOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    // Out-of-range samples are counted but never land in edge bins.
    EXPECT_EQ(h.binCount(0), 0u);
    EXPECT_EQ(h.binCount(9), 0u);
    EXPECT_EQ(h.underflowCount(), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.totalCount(), 2u);
    // Exact extremes are preserved.
    EXPECT_DOUBLE_EQ(h.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 15.0);
}

TEST(Histogram, TailMassNotMisattributedToEdgeBins)
{
    // Regression: binIndex used to clamp below-range samples into bin
    // 0, so fractionBelow's within-bin interpolation spread their
    // mass over [lo, lo + width) and halved/distorted deep-tail
    // fractions. One underflow sample and one mid-range sample:
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(5.5);
    // Everything below 0.5 is exactly the underflow sample. The old
    // clamping code interpolated and reported 0.25 here.
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.5), 0.5);
    // At the lower edge, the underflow mass is already below.
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 0.5);
    // Below the tracked minimum nothing can be smaller.
    EXPECT_DOUBLE_EQ(h.fractionBelow(-10.0), 0.0);

    // Mirrored for overflow: one above-range sample must not bleed
    // into queries inside the top bin.
    Histogram g(0.0, 10.0, 10);
    g.add(15.0);
    g.add(5.5);
    EXPECT_DOUBLE_EQ(g.fractionBelow(9.5), 0.5);
    EXPECT_DOUBLE_EQ(g.fractionBelow(10.0), 0.5);
    EXPECT_DOUBLE_EQ(g.fractionBelow(16.0), 1.0);
}

TEST(Histogram, QuantileExtremesReturnExactMinMax)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(3.3);
    h.add(17.5);
    // quantile(0)/quantile(1) report the tracked extremes, not a bin
    // center.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 17.5);
}

TEST(Histogram, MergePreservesUnderOverflow)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(-1.0);
    b.add(11.0);
    b.add(-2.0);
    a.merge(b);
    EXPECT_EQ(a.underflowCount(), 2u);
    EXPECT_EQ(a.overflowCount(), 1u);
    EXPECT_EQ(a.totalCount(), 3u);
    a.clear();
    EXPECT_EQ(a.underflowCount(), 0u);
    EXPECT_EQ(a.overflowCount(), 0u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, FractionBelow)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.fractionBelow(5.0), 0.5, 0.05);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(10.0), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(100.0), 1.0);
}

TEST(Histogram, FractionAtOrAboveComplement)
{
    Histogram h(0.0, 1.0, 100);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.fractionBelow(0.3) + h.fractionAtOrAbove(0.3), 1.0,
                1e-12);
}

TEST(Histogram, FractionAtOrAboveDeepTailIsExact)
{
    // A droop-margin CDF query on a long-horizon population: ~1e12
    // samples (weighted adds — the oscilloscope-style compressed form)
    // with a single sample in the deep tail. The tail fraction must
    // come out as one count over one total, exact to the half-ulp;
    // computing 1.0 - fractionBelow(x) instead cancels down to ~4
    // correct digits at this depth.
    Histogram h(-0.05, 0.05, 100);
    h.add(0.0, 999'999'999'999ull);
    h.add(0.0491, 1); // deepest overshoot, in the last bin
    ASSERT_EQ(h.totalCount(), 1'000'000'000'000ull);
    // 0.0485 falls in an empty bin below the tail sample's, so the
    // within-bin interpolation term is exactly zero and the query is
    // pure integer tail mass over total.
    EXPECT_DOUBLE_EQ(h.fractionAtOrAbove(0.0485), 1e-12);
    // Beyond the binned range the tail is the overflow bucket alone.
    Histogram o(-0.05, 0.05, 100);
    o.add(0.0, 999'999'999'999ull);
    o.add(0.12, 1);
    EXPECT_DOUBLE_EQ(o.fractionAtOrAbove(0.05), 1e-12);
    EXPECT_DOUBLE_EQ(o.fractionAtOrAbove(0.1), 1e-12);
    // A billion-sample histogram with a 1e-9 tail shows the same
    // cancellation one decade up; the direct sum stays exact.
    Histogram g(-0.05, 0.05, 100);
    g.add(0.0, 999'999'999ull);
    g.add(0.0491, 1);
    EXPECT_DOUBLE_EQ(g.fractionAtOrAbove(0.0485), 1e-9);
}

TEST(Histogram, FractionAtOrAboveEdgeConventions)
{
    // Mirrors fractionBelow's conventions at the range edges and for
    // under/overflow mass.
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);  // underflow
    h.add(2.5);
    h.add(7.5);
    h.add(15.0);  // overflow
    EXPECT_DOUBLE_EQ(h.fractionAtOrAbove(-10.0), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionAtOrAbove(0.0), 0.75);
    EXPECT_DOUBLE_EQ(h.fractionAtOrAbove(10.0), 0.25);
    EXPECT_DOUBLE_EQ(h.fractionAtOrAbove(20.0), 0.0);
    Histogram e(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(e.fractionAtOrAbove(0.5), 0.0);
}

TEST(Histogram, QuantileMedianOfUniform)
{
    Histogram h(0.0, 1.0, 1000);
    Rng rng(7);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.01);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.01);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.01);
}

TEST(Histogram, CdfMonotoneAndEndsAtOne)
{
    Histogram h(-1.0, 1.0, 64);
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.normal(0.0, 0.3));
    const auto cdf = h.cdf();
    ASSERT_EQ(cdf.size(), 64u);
    double prev = 0.0;
    for (const auto &[edge, frac] : cdf) {
        EXPECT_GE(frac, prev);
        prev = frac;
    }
    // The final fraction accounts for everything except overflow
    // mass (which lies above the last edge).
    EXPECT_DOUBLE_EQ(cdf.back().second,
                     1.0 - static_cast<double>(h.overflowCount()) /
                         static_cast<double>(h.totalCount()));
    // Underflow mass is below the first edge and included there.
    EXPECT_GE(cdf.front().second,
              static_cast<double>(h.underflowCount()) /
                  static_cast<double>(h.totalCount()));
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(1.0);
    b.add(1.2);
    b.add(9.0);
    a.merge(b);
    EXPECT_EQ(a.totalCount(), 3u);
    EXPECT_EQ(a.binCount(1), 2u);
    EXPECT_EQ(a.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(a.maxSample(), 9.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.clear();
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.9), 0.0);
}

TEST(HistogramDeath, InvalidRange)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 10), "must exceed");
}

TEST(HistogramDeath, ZeroBins)
{
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
}

TEST(HistogramDeath, MergeIncompatible)
{
    Histogram a(0.0, 1.0, 10), b(0.0, 2.0, 10);
    EXPECT_DEATH(a.merge(b), "incompatible");
}

TEST(HistogramDeath, QuantileOnEmpty)
{
    Histogram h(0.0, 1.0, 10);
    EXPECT_DEATH(h.quantile(0.5), "empty");
}

/** Property: quantile is monotone in q for arbitrary data. */
class HistogramQuantileProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramQuantileProperty, QuantileMonotone)
{
    Histogram h(-3.0, 3.0, 256);
    Rng rng(GetParam());
    for (int i = 0; i < 5000; ++i)
        h.add(rng.normal());
    double prev = h.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = h.quantile(q);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileProperty,
                         ::testing::Values(3, 14, 159, 2653));

TEST(Histogram, AddScaledMatchesRepeatedAdd)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    for (double x : {-3.0, 0.5, 5.5, 12.0}) {
        a.addScaled(x, 9);
        for (int i = 0; i < 9; ++i)
            b.add(x);
    }
    EXPECT_EQ(a.totalCount(), b.totalCount());
    EXPECT_EQ(a.underflowCount(), b.underflowCount());
    EXPECT_EQ(a.overflowCount(), b.overflowCount());
    EXPECT_DOUBLE_EQ(a.minSample(), b.minSample());
    EXPECT_DOUBLE_EQ(a.maxSample(), b.maxSample());
    for (std::size_t i = 0; i < a.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), b.binCount(i));
}

TEST(Histogram, AddScaledZeroWeightIsNoOp)
{
    Histogram h(0.0, 10.0, 10);
    h.addScaled(5.0, 0);
    h.addScaled(-4.0, 0);
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.underflowCount(), 0u);
    // A weight-0 sample must not perturb the tracked extremes either.
    h.add(2.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 2.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 2.0);
}

TEST(Histogram, MergeScaledConservesMassIncludingTails)
{
    // The window histogram mixes binned mass with under/overflow
    // tails; weighted merge must scale all three the same way.
    Histogram win(0.0, 10.0, 10);
    win.add(-2.0); // underflow
    win.add(3.5);
    win.add(3.6);
    win.add(14.0); // overflow

    Histogram sink(0.0, 10.0, 10);
    sink.add(7.5);
    sink.mergeScaled(win, 5);

    EXPECT_EQ(sink.totalCount(), 1u + 5u * 4u);
    EXPECT_EQ(sink.underflowCount(), 5u);
    EXPECT_EQ(sink.overflowCount(), 5u);
    EXPECT_EQ(sink.binCount(3), 10u);
    EXPECT_EQ(sink.binCount(7), 1u);
    // Extremes come from the merged window.
    EXPECT_DOUBLE_EQ(sink.minSample(), -2.0);
    EXPECT_DOUBLE_EQ(sink.maxSample(), 14.0);

    std::uint64_t binned = 0;
    for (std::size_t i = 0; i < sink.numBins(); ++i)
        binned += sink.binCount(i);
    EXPECT_EQ(binned + sink.underflowCount() + sink.overflowCount(),
              sink.totalCount());
}

TEST(Histogram, MergeScaledMatchesRepeatedMerge)
{
    Rng rng(99);
    Histogram win(-1.0, 1.0, 32);
    for (int i = 0; i < 200; ++i)
        win.add(rng.uniform(-1.5, 1.5));

    Histogram a(-1.0, 1.0, 32);
    Histogram b(-1.0, 1.0, 32);
    a.mergeScaled(win, 7);
    for (int i = 0; i < 7; ++i)
        b.merge(win);
    EXPECT_EQ(a.totalCount(), b.totalCount());
    EXPECT_EQ(a.underflowCount(), b.underflowCount());
    EXPECT_EQ(a.overflowCount(), b.overflowCount());
    for (std::size_t i = 0; i < a.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), b.binCount(i));

    // Weight 0 merges nothing.
    Histogram c(-1.0, 1.0, 32);
    c.mergeScaled(win, 0);
    EXPECT_EQ(c.totalCount(), 0u);
}
