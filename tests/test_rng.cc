/** @file Tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

using namespace vsmooth;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformIntSingleValue)
{
    Rng rng(13);
    EXPECT_EQ(rng.uniformInt(4, 4), 4u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 100000;
    const double p = 0.05;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / n, 1.0 / p, 0.5);
}

TEST(Rng, GeometricAlwaysAtLeastOne)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(0.9), 1u);
}

TEST(Rng, GeometricCertainSuccess)
{
    Rng rng(37);
    EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(41);
    Rng child = parent.fork();
    // Child and parent should produce uncorrelated streams.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent() == child());
    EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries)
{
    Rng rng(GetParam());
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform();
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1000003,
                                           0xdeadbeefULL,
                                           ~std::uint64_t(0)));
