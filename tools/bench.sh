#!/usr/bin/env bash
# Build and run the simulator microbenchmarks that guard the batched
# tick pipeline and the scenario-lane SIMD engine, emitting
# google-benchmark JSON. Run from the repository root:
#
#   tools/bench.sh [build-dir] [out-json]
#
# The output name selects the benchmark set:
#
#   BENCH_pr3.json (default) — BM_SystemTickDualCore (per-cycle
#     baseline) vs BM_SystemTickBlocked (batched path); the
#     items_per_second ratio is the batching speedup.
#   BENCH_pr5*.json — BM_PopulationLaned / BM_OracleMatrixLaned at
#     lane widths 1/4/8 on one worker thread; the width-1 vs widest
#     ratio is the scenario-lane SIMD speedup (lanes=1 runs every
#     scenario through the pre-lane solo path, i.e. the PR 3
#     baseline execution).
#   BENCH_pr6*.json — BM_PopulationSampled with sampling off vs auto
#     on a 120M-cycle population of long flat workloads; the off vs
#     auto ratio is the phase-sampled execution speedup.
#   BENCH_pr8*.json — the BM_Dsp* primitive-layer kernels (per-sample
#     throughput of each block primitive and the fused cross-lane
#     step) plus BM_PopulationLaned, whose laned sweep rides on the
#     same kernels end to end.
#   BENCH_pr10*.json — BM_PopulationLaned / BM_OracleMatrixLaned at
#     lane widths 1/4/8/16 on one worker thread plus the isolated
#     BM_DspLaneStep kernel rows (8 and 16 lanes at the ambient
#     dispatch level, AVX-512 where the host has it; pin
#     VSMOOTH_SIMD=avx2 manually to measure the kernel-level backend
#     ratio at a fixed width).
#
# Numbers are only meaningful from an optimized simulator: the script
# refuses to run against a build tree whose cached CMAKE_BUILD_TYPE is
# not Release or RelWithDebInfo, configures fresh trees as Release,
# and stamps the verified build type into the artifact's context as
# "cmake_build_type". (The "library_build_type": "debug" field that
# made BENCH_pr8.json look mis-recorded describes the *distro-built
# google-benchmark harness library* — packaged without NDEBUG — not
# the simulator under test; the explicit stamp removes the
# ambiguity.)
#
# Shared CI runners are noisy (run-to-run swings of 15-20%), so each
# benchmark runs several repetitions with random interleaving and the
# recorded figure is the per-benchmark median — the interleaving makes
# each compared pair see the same machine conditions, which is what
# makes their ratio meaningful.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pr3.json}"
JOBS="$(nproc 2>/dev/null || echo 2)"

case "$(basename "${OUT_JSON}")" in
    BENCH_pr5*)  FILTER='Laned' ;;
    BENCH_pr6*)  FILTER='BM_PopulationSampled' ;;
    BENCH_pr8*)  FILTER='BM_Dsp|BM_PopulationLaned|BM_SystemTickBlocked' ;;
    BENCH_pr10*) FILTER='Laned|BM_DspLaneStep' ;;
    *)           FILTER='BM_SystemTick' ;;
esac

# Configure fresh trees as Release; verify existing trees were cached
# with an optimized build type before running anything against them.
if [ -f "${BUILD_DIR}/CMakeCache.txt" ]; then
    BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                  "${BUILD_DIR}/CMakeCache.txt")"
    case "${BUILD_TYPE}" in
        Release|RelWithDebInfo) ;;
        *)
            echo "error: ${BUILD_DIR} is configured as" \
                 "'${BUILD_TYPE:-<empty>}'; refusing to record" \
                 "benchmarks from a non-optimized tree. Reconfigure" \
                 "with -DCMAKE_BUILD_TYPE=Release (or point bench.sh" \
                 "at a release build dir)." >&2
            exit 1
            ;;
    esac
    cmake -B "${BUILD_DIR}" -S . >/dev/null
else
    BUILD_TYPE=Release
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_simulator

"${BUILD_DIR}/bench/perf_simulator" \
    --benchmark_filter="${FILTER}" \
    --benchmark_min_time=0.5 \
    --benchmark_repetitions=5 \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=true \
    --benchmark_context=cmake_build_type="${BUILD_TYPE}" \
    --benchmark_out="${OUT_JSON}" \
    --benchmark_out_format=json

# Belt-and-braces: refuse to keep an artifact that does not carry an
# optimized-build stamp (a stale binary from a since-reconfigured
# tree would slip past the cache check above).
python3 - "${OUT_JSON}" <<'EOF' || { rm -f "${OUT_JSON}"; exit 1; }
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
build = data.get("context", {}).get("cmake_build_type", "unknown")
if build not in ("Release", "RelWithDebInfo"):
    print("error: artifact stamped cmake_build_type=" + build
          + "; discarding " + sys.argv[1], file=sys.stderr)
    sys.exit(1)
EOF

python3 - "${OUT_JSON}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rates = {b["name"]: b["items_per_second"] for b in data["benchmarks"]
         if b.get("aggregate_name") == "median" and "items_per_second" in b}
base = rates.get("BM_SystemTickDualCore_median")
blocked = rates.get("BM_SystemTickBlocked_median")
if base and blocked:
    print(f"per-tick baseline: {base / 1e6:.2f}M cycles/s (median of 5)")
    print(f"batched pipeline:  {blocked / 1e6:.2f}M cycles/s (median of 5)")
    print(f"speedup:           {blocked / base:.2f}x")
for bench in ("BM_PopulationLaned", "BM_OracleMatrixLaned"):
    one = rates.get(f"{bench}/1/real_time_median")
    if not one:
        continue
    for width in (4, 8, 16):
        wide = rates.get(f"{bench}/{width}/real_time_median")
        if wide:
            print(f"{bench}: lanes=1 -> lanes={width} "
                  f"speedup {wide / one:.2f}x (median of 5)")
    eight = rates.get(f"{bench}/8/real_time_median")
    sixteen = rates.get(f"{bench}/16/real_time_median")
    if eight and sixteen:
        print(f"{bench}: lanes=8 -> lanes=16 "
              f"speedup {sixteen / eight:.2f}x (median of 5)")
off = rates.get("BM_PopulationSampled/0/real_time_median")
auto_ = rates.get("BM_PopulationSampled/1/real_time_median")
if off and auto_:
    print(f"exact execution:   {off / 1e6:.2f}M cycles/s (median of 5)")
    print(f"sampled execution: {auto_ / 1e6:.2f}M cycles/s (median of 5)")
    print(f"speedup:           {auto_ / off:.2f}x")
for name, rate in sorted(rates.items()):
    if name.startswith("BM_Dsp"):
        short = name.replace("_median", "")
        print(f"{short}: {rate / 1e6:.1f}M samples/s (median of 5)")
EOF
