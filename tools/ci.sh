#!/usr/bin/env bash
# Full CI pass: configure, build, unit tests, golden-result
# regression, a ThreadSanitizer smoke of the parallel sweep engine,
# and an ASan+UBSan property-fuzzing smoke. Run from the repository
# root:
#
#   tools/ci.sh [build-dir]
#
# Exits nonzero on the first failing stage.
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== configure + build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: unit + CLI tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
      -LE golden

echo "== tier-2: golden-result regression (jobs=4 and jobs=1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L golden

echo "== bench: batched tick pipeline throughput =="
tools/bench.sh "${BUILD_DIR}" BENCH_pr3.json

echo "== TSan smoke: parallel sweep engine =="
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVSMOOTH_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target vsmooth_tests
"${TSAN_DIR}/tests/vsmooth_tests" --gtest_filter='Parallel*'

echo "== ASan+UBSan fuzz smoke: 2000 random configs, run twice =="
# The same seed must produce a byte-identical per-property summary —
# the determinism guarantee the repro/corpus workflow depends on.
FUZZ_DIR="${BUILD_DIR}-asan"
cmake -B "${FUZZ_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVSMOOTH_SANITIZE=address,undefined
cmake --build "${FUZZ_DIR}" -j "${JOBS}" --target vsmooth_cli
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --summary "${FUZZ_DIR}/fuzz-summary-a.json"
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --summary "${FUZZ_DIR}/fuzz-summary-b.json"
cmp "${FUZZ_DIR}/fuzz-summary-a.json" "${FUZZ_DIR}/fuzz-summary-b.json"
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --corpus tests/corpus \
      --summary "${FUZZ_DIR}/fuzz-corpus-summary.json"

echo "CI: all stages passed"
