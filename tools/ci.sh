#!/usr/bin/env bash
# Full CI pass: configure, build, unit tests, golden-result
# regression, a ThreadSanitizer smoke of the parallel sweep engine,
# an ASan+UBSan property-fuzzing smoke (including dedicated
# scenario-lane equivalence and sampled-execution bound passes), an
# ASan+UBSan serve-daemon round trip (cache resubmission + SIGTERM
# drain), and a clean-work-tree check. Run from the repository root:
#
#   tools/ci.sh [build-dir]
#
# Exits nonzero on the first failing stage.
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== configure + build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: unit + CLI tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
      -LE golden

echo "== tier-2: golden-result regression (jobs=4 and jobs=1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L golden

# Bench outputs land inside the (ignored) build tree: the tracked
# BENCH_pr*.json snapshots at the repo root are refreshed manually
# when a PR's numbers are (re)recorded, not on every CI run — CI must
# leave the work tree exactly as it found it.
echo "== bench: batched tick pipeline throughput =="
tools/bench.sh "${BUILD_DIR}" "${BUILD_DIR}/BENCH_pr3.json"

echo "== bench: scenario-lane sweep throughput =="
tools/bench.sh "${BUILD_DIR}" "${BUILD_DIR}/BENCH_pr5.json"

echo "== TSan smoke: parallel sweep engine =="
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVSMOOTH_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target vsmooth_tests
"${TSAN_DIR}/tests/vsmooth_tests" --gtest_filter='Parallel*'

echo "== ASan+UBSan fuzz smoke: 2000 random configs, run twice =="
# The same seed must produce a byte-identical per-property summary —
# the determinism guarantee the repro/corpus workflow depends on.
FUZZ_DIR="${BUILD_DIR}-asan"
cmake -B "${FUZZ_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVSMOOTH_SANITIZE=address,undefined
cmake --build "${FUZZ_DIR}" -j "${JOBS}" --target vsmooth_cli

echo "== ASan+UBSan alloc audit: steady-state blocks never allocate =="
# The interposed operator new/delete counters must read zero across
# warm System::run and LaneGroup drains, with the sanitizers watching
# the same paths (ASan intercepts at the malloc layer beneath the
# interposer, so poisoning still applies).
cmake --build "${FUZZ_DIR}" -j "${JOBS}" --target vsmooth_tests
"${FUZZ_DIR}/tests/vsmooth_tests" --gtest_filter='AllocAudit*'

"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --summary "${FUZZ_DIR}/fuzz-summary-a.json"
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --summary "${FUZZ_DIR}/fuzz-summary-b.json"
cmp "${FUZZ_DIR}/fuzz-summary-a.json" "${FUZZ_DIR}/fuzz-summary-b.json"
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --corpus tests/corpus \
      --summary "${FUZZ_DIR}/fuzz-corpus-summary.json"

echo "== ASan+UBSan fuzz: blocked vs scalar ticking, 2000 configs =="
# Dedicated deep pass over the blocked_vs_scalar property: the dsp
# block kernels (smoothing chains, biquad recurrence, cached ripple)
# must stay bit-identical to per-cycle stepping on every random
# config, with the sanitizers watching the chunked block paths.
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --properties blocked_vs_scalar \
      --summary "${FUZZ_DIR}/fuzz-blocked-summary.json"

echo "== ASan+UBSan fuzz: scenario-lane vs solo equivalence, 2000 configs =="
# Dedicated deep pass over the laned_vs_scalar property: every random
# config runs through LaneGroup at a seed-derived lane width and must
# produce bit-identical summaries to solo runs, with the sanitizers
# watching the lane gather/scatter and retirement/repack paths.
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --properties laned_vs_scalar \
      --summary "${FUZZ_DIR}/fuzz-laned-summary.json"

# Host-gated widest-lane pass: on AVX-512 machines, pin every config
# to the full 16-lane width so the 8-wide mask-register kernels, the
# 8x8 register transpose, and the pad-lane tail all run under the
# sanitizers on every iteration (seed-derived widths only reach 16 on
# a fraction of draws). Skipped silently on narrower hosts, where the
# avx512 dispatch level is unreachable anyway.
if grep -q avx512f /proc/cpuinfo 2>/dev/null &&
   grep -q avx512dq /proc/cpuinfo 2>/dev/null; then
    echo "== ASan+UBSan fuzz: laned at 16 lanes (AVX-512 host), 2000 configs =="
    VSMOOTH_SIMD=avx512 "${FUZZ_DIR}/src/tools/vsmooth" fuzz \
          --seed 1 --iters 2000 --lanes 16 \
          --properties laned_vs_scalar \
          --summary "${FUZZ_DIR}/fuzz-laned16-summary.json"
else
    echo "== skip: AVX-512 16-lane fuzz (host lacks avx512f+avx512dq) =="
fi

echo "== ASan+UBSan fuzz: sampled execution within bounds, 2000 configs =="
# Dedicated deep pass over the sampled_within_bounds property: every
# random config runs exactly and phase-sampled, and each extrapolated
# metric must land within the error bound the sampled run's own report
# declares (bit-identical whenever nothing was extrapolated), with the
# sanitizers watching the window accounting and fast-forward paths.
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --properties sampled_within_bounds \
      --summary "${FUZZ_DIR}/fuzz-sampled-summary.json"

echo "== ASan+UBSan fuzz: adaptive margin + fault injection, 2000 configs =="
# Dedicated deep pass over the PR 9 scenario families: the PI margin
# controller must stay bounded, deterministic, and bit-identical to
# the fixed-margin engine when frozen, and the fault injector's
# per-access decisions must be exactly nested across margins and
# invariant under any shard or blocked/scalar partition, with the
# sanitizers watching the controller feed and injection hot paths.
"${FUZZ_DIR}/src/tools/vsmooth" fuzz --seed 1 --iters 2000 \
      --properties adaptive_margin_invariants,fault_injection_determinism \
      --summary "${FUZZ_DIR}/fuzz-resilience-summary.json"

echo "== ASan+UBSan serve: cached oracle batch, SIGTERM drain =="
# Boot the daemon on a Unix socket, submit an oracle-matrix batch
# twice, and require the second pass to be answered entirely from the
# content-addressed cache with byte-identical results; then SIGTERM
# must drain and exit 0 with the sanitizers watching the executor,
# cache, and connection teardown paths.
SERVE_DIR="${FUZZ_DIR}/serve-stage"
rm -rf "${SERVE_DIR}"
mkdir -p "${SERVE_DIR}"
cat > "${SERVE_DIR}/batch.json" <<'EOF'
[{"kind": "oracle_cell", "bench_a": "mcf",   "bench_b": "lbm",  "cycles_per_pair": 30000},
 {"kind": "oracle_cell", "bench_a": "mcf",   "bench_b": "mcf",  "cycles_per_pair": 30000},
 {"kind": "oracle_cell", "bench_a": "hmmer", "bench_b": "milc", "cycles_per_pair": 30000}]
EOF
"${FUZZ_DIR}/src/tools/vsmooth" serve --socket "${SERVE_DIR}/s.sock" \
      --workers 2 --ready-file "${SERVE_DIR}/ready" \
      > "${SERVE_DIR}/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -f "${SERVE_DIR}/ready" ] && break
    sleep 0.1
done
[ -f "${SERVE_DIR}/ready" ]
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch.json" --results-only \
      > "${SERVE_DIR}/pass1.txt"
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch.json" > "${SERVE_DIR}/pass2-full.txt"
if grep -q '"cache": "miss"' "${SERVE_DIR}/pass2-full.txt"; then
    echo "error: cache miss on resubmission" >&2
    exit 1
fi
[ "$(grep -c '"cache": "hit"' "${SERVE_DIR}/pass2-full.txt")" -eq 3 ]
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch.json" --results-only \
      > "${SERVE_DIR}/pass2.txt"
cmp "${SERVE_DIR}/pass1.txt" "${SERVE_DIR}/pass2.txt"
"${FUZZ_DIR}/src/tools/vsmooth" client --local \
      --batch "${SERVE_DIR}/batch.json" --results-only \
      > "${SERVE_DIR}/local.txt"
cmp "${SERVE_DIR}/pass1.txt" "${SERVE_DIR}/local.txt"

# An adaptive-margin scenario through the same daemon: resubmission
# must be answered from the cache with byte-identical controller
# metrics (the canonical key reflects the coerced controller-on
# config, so both submissions hash to the same entry).
cat > "${SERVE_DIR}/batch-margin.json" <<'EOF'
[{"kind": "adaptive_margin",
  "config": {"seed": 5, "cycles": 20000, "coreBench": [1, 26],
             "decapFraction": 0.12,
             "ctrlInitialMargin": 0.06, "ctrlMinMargin": 0.03,
             "ctrlMaxMargin": 0.1, "ctrlRecoveryCost": 600}}]
EOF
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch-margin.json" --results-only \
      > "${SERVE_DIR}/margin1.txt"
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch-margin.json" \
      > "${SERVE_DIR}/margin2-full.txt"
if grep -q '"cache": "miss"' "${SERVE_DIR}/margin2-full.txt"; then
    echo "error: cache miss on adaptive_margin resubmission" >&2
    exit 1
fi
[ "$(grep -c '"cache": "hit"' "${SERVE_DIR}/margin2-full.txt")" -eq 1 ]
"${FUZZ_DIR}/src/tools/vsmooth" client --socket "${SERVE_DIR}/s.sock" \
      --batch "${SERVE_DIR}/batch-margin.json" --results-only \
      > "${SERVE_DIR}/margin2.txt"
cmp "${SERVE_DIR}/margin1.txt" "${SERVE_DIR}/margin2.txt"
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"

echo "== bench: phase-sampled long-horizon sweep throughput =="
tools/bench.sh "${BUILD_DIR}" "${BUILD_DIR}/BENCH_pr6.json"

echo "== bench: dsp primitive-layer throughput =="
tools/bench.sh "${BUILD_DIR}" "${BUILD_DIR}/BENCH_pr8.json"

echo "== bench: AVX-512 scenario-lane backend throughput =="
tools/bench.sh "${BUILD_DIR}" "${BUILD_DIR}/BENCH_pr10.json"

echo "== work tree must be clean after a full build+test cycle =="
# Everything CI produces belongs in the ignored build*/ trees; a
# leftover means a stage wrote into the source tree (or .gitignore
# lost coverage of a local build directory).
if [ -n "$(git status --porcelain)" ]; then
    echo "error: work tree dirty after CI:" >&2
    git status --porcelain >&2
    exit 1
fi

echo "CI: all stages passed"
