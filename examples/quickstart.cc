/**
 * @file
 * Quickstart: simulate a dual-core processor running two programs,
 * probe its supply voltage like the paper probed VCCsense, and print
 * the headline noise statistics.
 *
 *   $ ./quickstart [benchmarkA] [benchmarkB]
 */

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "sim/system.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main(int argc, char **argv)
{
    const std::string name_a = argc > 1 ? argv[1] : "sphinx";
    const std::string name_b = argc > 2 ? argv[2] : "mcf";

    // 1. Describe the platform: a Core 2 Duo-class package. Every
    //    electrical knob lives in PackageConfig; ProcN decap-removal
    //    variants come from withDecapFraction().
    sim::SystemConfig cfg;
    cfg.package = pdn::PackageConfig::core2duo();
    cfg.enableTimeline = true;
    cfg.timelineInterval = 200'000;

    // 2. Build the system and attach one core per program.
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(name_a), 2'000'000,
                              /*loop=*/true),
        /*seed=*/1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(name_b), 2'000'000,
                              /*loop=*/true),
        /*seed=*/2));

    // 3. Run. Each tick advances cores, converts activity to current,
    //    steps the power-delivery network, and records the voltage.
    sys.run(2'000'000);

    // 4. Read the "scope".
    TextTable table("voltage noise: " + name_a + " + " + name_b);
    table.setHeader({"metric", "value"});
    table.addRow({"cycles simulated", TextTable::num(sys.cycles())});
    table.addRow({"max droop (% of Vdd)",
                  TextTable::num(sys.scope().maxDroop() * 100, 2)});
    table.addRow({"max overshoot (%)",
                  TextTable::num(sys.scope().maxOvershoot() * 100, 2)});
    table.addRow({"droops per 1K cycles (2.3% margin)",
                  TextTable::num(
                      1000.0 * sys.scope().fractionBelow(-0.023), 1)});
    table.addRow({"samples beyond +/-4%",
                  TextTable::num(
                      sys.scope().fractionOutside(0.04) * 100, 4) +
                      " %"});
    table.addRow({"core0 IPC",
                  TextTable::num(sys.core(0).counters().ipc(), 2)});
    table.addRow({"core0 stall ratio",
                  TextTable::num(
                      sys.core(0).counters().stallRatio(), 2)});
    table.addRow({"core1 IPC",
                  TextTable::num(sys.core(1).counters().ipc(), 2)});
    table.print(std::cout);

    std::cout << "\nDroop-rate timeline (droops/1K per interval): ";
    for (double v : sys.timelineSeries())
        std::cout << TextTable::num(v, 0) << " ";
    std::cout << "\n";
    return 0;
}
