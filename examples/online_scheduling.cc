/**
 * @file
 * Example: deploying noise-aware scheduling *online*, the way the
 * paper's Sec IV-A motivates — no oracle pre-runs, only the stall
 * ratio read from hardware performance counters while jobs run.
 *
 * A batch of mixed jobs drains through a two-core Proc3 (future-node)
 * system with a coarse-grained fail-safe. FCFS dispatch is compared
 * against StallBalance, which pairs noisy (high-stall) runners with
 * smooth co-runners using only its own online estimates.
 *
 *   $ ./online_scheduling
 */

#include <iostream>

#include "common/table.hh"
#include "sched/online_scheduler.hh"

using namespace vsmooth;

int
main()
{
    // A realistic mixed batch: memory-bound, compute-bound, and
    // mid-range jobs, two instances each (the second instance is
    // where online learning pays off).
    std::vector<const workload::SpecBenchmark *> batch;
    const char *names[] = {"mcf", "hmmer", "lbm", "povray", "sphinx",
                           "gamess", "milc", "h264ref"};
    // Two passes over the job list (twins separated, so the second
    // instance arrives after its stall ratio has been learned).
    for (int pass = 0; pass < 2; ++pass)
        for (const char *name : names)
            batch.push_back(&workload::specByName(name));

    sched::OnlineConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.system.emergencyMargin = 0.07;
    cfg.system.recoveryCostCycles = 10000; // coarse, cheap fail-safe
    cfg.jobLength = 200'000;
    cfg.schedulingInterval = 25'000;
    // This short batch stands in for hours of execution: compress the
    // OS tick accordingly (see DESIGN.md on time compression).
    cfg.system.osTickInterval = sim::kCompressedOsTick;

    TextTable t("online scheduling on Proc3 (7% margin, 10000-cycle "
                "recovery)");
    t.setHeader({"policy", "makespan (Kcycles)", "emergencies",
                 "droops/1K"});
    for (auto policy : {sched::OnlinePolicy::Fcfs,
                        sched::OnlinePolicy::StallBalance}) {
        const auto r = sched::runOnlineBatch(batch, cfg, policy);
        t.addRow({sched::onlinePolicyName(policy),
                  TextTable::num(r.makespan / 1000),
                  TextTable::num(r.emergencies),
                  TextTable::num(r.droopsPer1k, 1)});
    }
    t.print(std::cout);

    std::cout << "\nStallBalance uses nothing but the stall-ratio"
                 " counter the paper showed correlates with droops at"
                 " r=0.97 — the counter-driven deployment the paper's"
                 " oracle study argues is feasible.\n";
    return 0;
}
