/**
 * @file
 * Example: characterize a platform's voltage noise the way Sec II-III
 * of the paper does — impedance profile, microbenchmark event swings,
 * and the typical-case CDF — for any decap configuration.
 *
 *   $ ./characterize_noise [decap_fraction]
 */

#include <cstdlib>
#include <iostream>
#include <memory>

#include "circuit/ac.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "pdn/droop_analysis.hh"
#include "pdn/ladder.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main(int argc, char **argv)
{
    const double frac = argc > 1 ? std::atof(argv[1]) : 1.0;
    const auto package =
        pdn::PackageConfig::core2duo().withDecapFraction(frac);

    std::cout << "Characterizing " << sim::procName(frac) << "\n\n";

    // --- Impedance profile (the paper's validation step) -----------
    {
        auto net = pdn::buildLadder(package, 1);
        const auto sweep = circuit::impedanceSweep(
            net.net, net.dieNode, Hertz(1e6), Hertz(500e6), 10);
        TextTable t("impedance profile");
        t.setHeader({"freq (MHz)", "|Z| (mOhm)"});
        for (const auto &pt : sweep)
            t.addRow({TextTable::num(pt.frequencyHz / 1e6, 1),
                      TextTable::num(pt.magnitude() * 1e3, 3)});
        t.print(std::cout);
        const auto peak = circuit::resonancePeak(sweep);
        std::cout << "resonance: "
                  << TextTable::num(peak.frequencyHz / 1e6, 0)
                  << " MHz\n\n";
    }

    // --- Reset-stimulus droop ---------------------------------------
    {
        const auto wf = pdn::simulateReset(package);
        std::cout << "reset droop: "
                  << TextTable::num(wf.maxDroop() * 1e3, 0) << " mV ("
                  << TextTable::num(
                         100 * wf.maxDroop() /
                             package.vddNominal.value(),
                         1)
                  << "% of Vdd)\n\n";
    }

    // --- Microbenchmark event swings --------------------------------
    {
        TextTable t("microarchitectural event swings");
        t.setHeader({"event", "p2p (% of Vdd)"});
        for (auto kind : workload::kEventMicrobenchmarks) {
            sim::SystemConfig cfg;
            cfg.package = package;
            sim::System sys(cfg);
            auto stream = workload::makeMicrobenchmark(kind, 7);
            sys.addCore(std::make_unique<cpu::DetailedCore>(
                cpu::DetailedCoreParams{}, *stream));
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::idleSchedule(1000), 43));
            sys.run(800'000);
            t.addRow({std::string(workload::microbenchName(kind)),
                      TextTable::num(
                          sys.scope().visualPeakToPeak() * 100, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // --- Workload CDF ------------------------------------------------
    {
        sim::SystemConfig cfg;
        cfg.package = package;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  500'000, true),
            1));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("bwaves"),
                                  500'000, true),
            2));
        sys.run(500'000);
        TextTable t("sample distribution (sphinx + bwaves)");
        t.setHeader({"below deviation", "fraction"});
        for (double d : {-0.06, -0.04, -0.023, -0.01}) {
            t.addRow({TextTable::num(d * 100, 1) + " %",
                      TextTable::num(sys.scope().fractionBelow(d), 5)});
        }
        t.print(std::cout);
    }
    return 0;
}
