/**
 * @file
 * Example: project voltage noise into future technology nodes two
 * ways, like Sec II-B of the paper — (a) ITRS supply scaling on a
 * fixed package, and (b) the decap-removal proxy on the measured
 * platform — and show the resilient-design gains eroding.
 *
 *   $ ./future_nodes
 */

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "pdn/droop_analysis.hh"
#include "resilience/perf_model.hh"
#include "sim/system.hh"
#include "tech/itrs.hh"
#include "tech/ring_oscillator.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main()
{
    // (a) ITRS projection: same package, scaled supply and stimulus.
    {
        TextTable t("ITRS projection (P4-class package)");
        t.setHeader({"node", "swing rel. 45nm",
                     "freq. at 20% margin (%)"});
        const tech::RingOscillator ring;
        double base = 0.0;
        for (const auto &node : tech::itrsNodes()) {
            pdn::PackageConfig cfg = pdn::PackageConfig::pentium4();
            cfg.vddNominal = node.vdd;
            const auto wf = pdn::simulateCurrentStep(
                cfg, Amps(5.0),
                Amps(5.0 + tech::scaledStimulus(Amps(75.0), node)
                               .value()),
                Seconds(300e-9));
            const double swing = wf.peakToPeak() / node.vdd.value();
            if (base == 0.0)
                base = swing;
            t.addRow({node.name, TextTable::num(swing / base, 2),
                      TextTable::num(
                          ring.peakFrequencyPercent(node.vdd, 0.20),
                          1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // (b) Decap-removal proxy: measure emergencies and the optimal
    //     typical-case margins on Proc100 / Proc25 / Proc3.
    TextTable t("resilient-design gains vs decap (100-cycle recovery)");
    t.setHeader({"processor", "optimal margin (%)", "improvement (%)"});
    for (double frac : {1.0, 0.25, 0.03}) {
        sim::SystemConfig cfg;
        cfg.package =
            pdn::PackageConfig::core2duo().withDecapFraction(frac);
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  600'000, true),
            1));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("milc"),
                                  600'000, true),
            2));
        sys.run(600'000);
        const auto profile = resilience::profileFromBank(
            sys.droopBank(), sys.cycles());
        const auto best = resilience::optimalMargin(profile, 100);
        t.addRow({sim::procName(frac),
                  TextTable::num(best.margin * 100, 1),
                  TextTable::num(best.improvementPercent, 1)});
    }
    t.print(std::cout);
    std::cout << "\nThe same recovery mechanism buys less and less as"
                 " noise grows — the motivation for software-guided"
                 " scheduling.\n";
    return 0;
}
