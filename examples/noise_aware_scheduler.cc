/**
 * @file
 * Example: the paper's contribution end to end — build the oracle
 * pair-profile matrix for a small job mix on a future-node (Proc3)
 * platform, then compare Random, IPC, and Droop batch scheduling and
 * show the recovery-overhead reduction at a coarse recovery cost.
 *
 *   $ ./noise_aware_scheduler
 */

#include <iostream>

#include "common/parallel.hh"
#include "common/table.hh"
#include "sched/pass_analysis.hh"
#include "sched/policy.hh"

using namespace vsmooth;

int
main()
{
    // A mixed job set: memory-bound, compute-bound, and in-between.
    std::vector<workload::SpecBenchmark> jobs;
    for (const char *name : {"mcf", "lbm", "sphinx", "hmmer", "povray",
                             "gamess", "xalan", "gcc"})
        jobs.push_back(workload::specByName(name));

    // Oracle pre-run phase on the noisy future node.
    sched::OracleConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.cyclesPerPair = 250'000;
    // The pre-run phase fans out over the thread pool (pin with
    // VSMOOTH_JOBS; the job count never changes the profiles).
    std::cout << "measuring " << jobs.size() << "x" << jobs.size()
              << " co-schedule profiles (" << numJobs() << " jobs)...\n";
    const sched::OracleMatrix matrix(jobs, cfg);

    // Two copies of each job -> 8 pairs per schedule.
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.push_back(i);
        pool.push_back(i);
    }

    TextTable t("policy comparison (relative to SPECrate)");
    t.setHeader({"policy", "droops", "performance"});
    Rng rng(1);
    for (auto kind : {sched::PolicyKind::Random, sched::PolicyKind::Ipc,
                      sched::PolicyKind::Droop}) {
        const auto sched = sched::buildSchedule(pool, matrix, kind, rng);
        const auto norm = sched::normalizeAgainstSpecRate(
            sched::evaluateSchedule(sched, matrix), matrix);
        t.addRow({sched::policyName(kind),
                  TextTable::num(norm.droops, 3),
                  TextTable::num(norm.performance, 3)});
    }
    t.print(std::cout);

    // Resiliency impact: passing schedules at a coarse recovery cost.
    const auto rows = sched::optimalMarginTable(matrix, {10, 10'000});
    std::cout << "\n";
    for (const auto &row : rows) {
        Rng rng2(2);
        const auto droop_sched = sched::buildSchedule(
            pool, matrix, sched::PolicyKind::Droop, rng2);
        const int droop_pass = sched::countPassing(
            droop_sched, matrix, row.optimalMargin, row.recoveryCost,
            row.expectedImprovementPercent);
        std::cout << "recovery cost " << row.recoveryCost
                  << ": optimal margin "
                  << TextTable::num(row.optimalMargin * 100, 1)
                  << "%, expected improvement "
                  << TextTable::num(row.expectedImprovementPercent, 1)
                  << "% -> SPECrate passes "
                  << row.passingSpecRate << "/"
                  << jobs.size() << ", Droop schedule passes "
                  << droop_pass << "/" << jobs.size() << "\n";
    }
    std::cout << "\nDroop scheduling lets the resilient design keep its"
                 " gains with a cheap, coarse-grained fail-safe.\n";
    return 0;
}
