# Empty compiler generated dependencies file for fig19_pass_increase.
# This may be replaced when dependencies are built.
