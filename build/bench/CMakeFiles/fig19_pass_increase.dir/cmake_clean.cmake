file(REMOVE_RECURSE
  "CMakeFiles/fig19_pass_increase.dir/fig19_pass_increase.cc.o"
  "CMakeFiles/fig19_pass_increase.dir/fig19_pass_increase.cc.o.d"
  "fig19_pass_increase"
  "fig19_pass_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pass_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
