file(REMOVE_RECURSE
  "../lib/libvsmooth_bench_util.a"
)
