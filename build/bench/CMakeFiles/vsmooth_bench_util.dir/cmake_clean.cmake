file(REMOVE_RECURSE
  "../lib/libvsmooth_bench_util.a"
  "../lib/libvsmooth_bench_util.pdb"
  "CMakeFiles/vsmooth_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/vsmooth_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
