# Empty compiler generated dependencies file for vsmooth_bench_util.
# This may be replaced when dependencies are built.
