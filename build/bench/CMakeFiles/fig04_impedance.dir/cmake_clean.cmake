file(REMOVE_RECURSE
  "CMakeFiles/fig04_impedance.dir/fig04_impedance.cc.o"
  "CMakeFiles/fig04_impedance.dir/fig04_impedance.cc.o.d"
  "fig04_impedance"
  "fig04_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
