# Empty dependencies file for fig04_impedance.
# This may be replaced when dependencies are built.
