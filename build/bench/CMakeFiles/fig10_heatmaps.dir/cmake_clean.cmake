file(REMOVE_RECURSE
  "CMakeFiles/fig10_heatmaps.dir/fig10_heatmaps.cc.o"
  "CMakeFiles/fig10_heatmaps.dir/fig10_heatmaps.cc.o.d"
  "fig10_heatmaps"
  "fig10_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
