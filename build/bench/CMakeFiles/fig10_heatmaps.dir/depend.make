# Empty dependencies file for fig10_heatmaps.
# This may be replaced when dependencies are built.
