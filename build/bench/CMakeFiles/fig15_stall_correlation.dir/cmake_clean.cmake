file(REMOVE_RECURSE
  "CMakeFiles/fig15_stall_correlation.dir/fig15_stall_correlation.cc.o"
  "CMakeFiles/fig15_stall_correlation.dir/fig15_stall_correlation.cc.o.d"
  "fig15_stall_correlation"
  "fig15_stall_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stall_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
