# Empty compiler generated dependencies file for fig15_stall_correlation.
# This may be replaced when dependencies are built.
