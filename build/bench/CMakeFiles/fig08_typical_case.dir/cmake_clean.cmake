file(REMOVE_RECURSE
  "CMakeFiles/fig08_typical_case.dir/fig08_typical_case.cc.o"
  "CMakeFiles/fig08_typical_case.dir/fig08_typical_case.cc.o.d"
  "fig08_typical_case"
  "fig08_typical_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_typical_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
