# Empty compiler generated dependencies file for fig08_typical_case.
# This may be replaced when dependencies are built.
