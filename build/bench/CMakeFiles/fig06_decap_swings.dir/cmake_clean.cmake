file(REMOVE_RECURSE
  "CMakeFiles/fig06_decap_swings.dir/fig06_decap_swings.cc.o"
  "CMakeFiles/fig06_decap_swings.dir/fig06_decap_swings.cc.o.d"
  "fig06_decap_swings"
  "fig06_decap_swings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_decap_swings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
