# Empty compiler generated dependencies file for fig06_decap_swings.
# This may be replaced when dependencies are built.
