# Empty compiler generated dependencies file for fig01_future_swings.
# This may be replaced when dependencies are built.
