file(REMOVE_RECURSE
  "CMakeFiles/fig01_future_swings.dir/fig01_future_swings.cc.o"
  "CMakeFiles/fig01_future_swings.dir/fig01_future_swings.cc.o.d"
  "fig01_future_swings"
  "fig01_future_swings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_future_swings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
