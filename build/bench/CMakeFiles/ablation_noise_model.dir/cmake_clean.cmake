file(REMOVE_RECURSE
  "CMakeFiles/ablation_noise_model.dir/ablation_noise_model.cc.o"
  "CMakeFiles/ablation_noise_model.dir/ablation_noise_model.cc.o.d"
  "ablation_noise_model"
  "ablation_noise_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
