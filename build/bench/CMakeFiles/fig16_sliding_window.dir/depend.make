# Empty dependencies file for fig16_sliding_window.
# This may be replaced when dependencies are built.
