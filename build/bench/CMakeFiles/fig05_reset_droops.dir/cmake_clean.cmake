file(REMOVE_RECURSE
  "CMakeFiles/fig05_reset_droops.dir/fig05_reset_droops.cc.o"
  "CMakeFiles/fig05_reset_droops.dir/fig05_reset_droops.cc.o.d"
  "fig05_reset_droops"
  "fig05_reset_droops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_reset_droops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
