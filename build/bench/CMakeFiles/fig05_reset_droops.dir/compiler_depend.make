# Empty compiler generated dependencies file for fig05_reset_droops.
# This may be replaced when dependencies are built.
