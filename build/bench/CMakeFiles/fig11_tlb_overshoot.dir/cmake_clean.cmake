file(REMOVE_RECURSE
  "CMakeFiles/fig11_tlb_overshoot.dir/fig11_tlb_overshoot.cc.o"
  "CMakeFiles/fig11_tlb_overshoot.dir/fig11_tlb_overshoot.cc.o.d"
  "fig11_tlb_overshoot"
  "fig11_tlb_overshoot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tlb_overshoot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
