# Empty dependencies file for fig11_tlb_overshoot.
# This may be replaced when dependencies are built.
