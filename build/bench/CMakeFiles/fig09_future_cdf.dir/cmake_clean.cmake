file(REMOVE_RECURSE
  "CMakeFiles/fig09_future_cdf.dir/fig09_future_cdf.cc.o"
  "CMakeFiles/fig09_future_cdf.dir/fig09_future_cdf.cc.o.d"
  "fig09_future_cdf"
  "fig09_future_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_future_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
