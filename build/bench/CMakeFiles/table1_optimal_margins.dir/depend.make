# Empty dependencies file for table1_optimal_margins.
# This may be replaced when dependencies are built.
