file(REMOVE_RECURSE
  "CMakeFiles/table1_optimal_margins.dir/table1_optimal_margins.cc.o"
  "CMakeFiles/table1_optimal_margins.dir/table1_optimal_margins.cc.o.d"
  "table1_optimal_margins"
  "table1_optimal_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_optimal_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
