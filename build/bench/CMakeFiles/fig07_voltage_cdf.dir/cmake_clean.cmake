file(REMOVE_RECURSE
  "CMakeFiles/fig07_voltage_cdf.dir/fig07_voltage_cdf.cc.o"
  "CMakeFiles/fig07_voltage_cdf.dir/fig07_voltage_cdf.cc.o.d"
  "fig07_voltage_cdf"
  "fig07_voltage_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_voltage_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
