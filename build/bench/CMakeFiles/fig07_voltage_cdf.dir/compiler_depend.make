# Empty compiler generated dependencies file for fig07_voltage_cdf.
# This may be replaced when dependencies are built.
