file(REMOVE_RECURSE
  "CMakeFiles/fig13_interference.dir/fig13_interference.cc.o"
  "CMakeFiles/fig13_interference.dir/fig13_interference.cc.o.d"
  "fig13_interference"
  "fig13_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
