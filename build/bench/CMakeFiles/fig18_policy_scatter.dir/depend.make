# Empty dependencies file for fig18_policy_scatter.
# This may be replaced when dependencies are built.
