file(REMOVE_RECURSE
  "CMakeFiles/fig18_policy_scatter.dir/fig18_policy_scatter.cc.o"
  "CMakeFiles/fig18_policy_scatter.dir/fig18_policy_scatter.cc.o.d"
  "fig18_policy_scatter"
  "fig18_policy_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_policy_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
