# Empty dependencies file for fig02_margin_frequency.
# This may be replaced when dependencies are built.
