file(REMOVE_RECURSE
  "CMakeFiles/ablation_core_scaling.dir/ablation_core_scaling.cc.o"
  "CMakeFiles/ablation_core_scaling.dir/ablation_core_scaling.cc.o.d"
  "ablation_core_scaling"
  "ablation_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
