# Empty compiler generated dependencies file for fig17_coschedule_spread.
# This may be replaced when dependencies are built.
