file(REMOVE_RECURSE
  "CMakeFiles/fig17_coschedule_spread.dir/fig17_coschedule_spread.cc.o"
  "CMakeFiles/fig17_coschedule_spread.dir/fig17_coschedule_spread.cc.o.d"
  "fig17_coschedule_spread"
  "fig17_coschedule_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_coschedule_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
