# Empty compiler generated dependencies file for fig14_noise_phases.
# This may be replaced when dependencies are built.
