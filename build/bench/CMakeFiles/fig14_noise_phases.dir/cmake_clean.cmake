file(REMOVE_RECURSE
  "CMakeFiles/fig14_noise_phases.dir/fig14_noise_phases.cc.o"
  "CMakeFiles/fig14_noise_phases.dir/fig14_noise_phases.cc.o.d"
  "fig14_noise_phases"
  "fig14_noise_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_noise_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
