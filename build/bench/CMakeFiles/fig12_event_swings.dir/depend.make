# Empty dependencies file for fig12_event_swings.
# This may be replaced when dependencies are built.
