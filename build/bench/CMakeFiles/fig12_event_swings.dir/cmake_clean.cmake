file(REMOVE_RECURSE
  "CMakeFiles/fig12_event_swings.dir/fig12_event_swings.cc.o"
  "CMakeFiles/fig12_event_swings.dir/fig12_event_swings.cc.o.d"
  "fig12_event_swings"
  "fig12_event_swings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_event_swings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
