# Empty dependencies file for noise_aware_scheduler.
# This may be replaced when dependencies are built.
