file(REMOVE_RECURSE
  "CMakeFiles/noise_aware_scheduler.dir/noise_aware_scheduler.cc.o"
  "CMakeFiles/noise_aware_scheduler.dir/noise_aware_scheduler.cc.o.d"
  "noise_aware_scheduler"
  "noise_aware_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_aware_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
