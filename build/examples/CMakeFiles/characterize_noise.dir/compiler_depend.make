# Empty compiler generated dependencies file for characterize_noise.
# This may be replaced when dependencies are built.
