file(REMOVE_RECURSE
  "CMakeFiles/characterize_noise.dir/characterize_noise.cc.o"
  "CMakeFiles/characterize_noise.dir/characterize_noise.cc.o.d"
  "characterize_noise"
  "characterize_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
