file(REMOVE_RECURSE
  "CMakeFiles/online_scheduling.dir/online_scheduling.cc.o"
  "CMakeFiles/online_scheduling.dir/online_scheduling.cc.o.d"
  "online_scheduling"
  "online_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
