file(REMOVE_RECURSE
  "CMakeFiles/future_nodes.dir/future_nodes.cc.o"
  "CMakeFiles/future_nodes.dir/future_nodes.cc.o.d"
  "future_nodes"
  "future_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
