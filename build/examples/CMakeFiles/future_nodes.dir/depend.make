# Empty dependencies file for future_nodes.
# This may be replaced when dependencies are built.
