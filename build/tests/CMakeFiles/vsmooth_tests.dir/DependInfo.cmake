
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_tlb_bp.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_cache_tlb_bp.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_cache_tlb_bp.cc.o.d"
  "/root/repo/tests/test_circuit.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_circuit.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_circuit.cc.o.d"
  "/root/repo/tests/test_cores.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_cores.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_cores.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mitigations.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_mitigations.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_mitigations.cc.o.d"
  "/root/repo/tests/test_noise.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_noise.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_noise.cc.o.d"
  "/root/repo/tests/test_online_scheduler.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_online_scheduler.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_online_scheduler.cc.o.d"
  "/root/repo/tests/test_pdn.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_pdn.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_pdn.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_resilience.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_resilience.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_resilience.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sched.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_sched.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_sched.cc.o.d"
  "/root/repo/tests/test_stall_engine.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_stall_engine.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_stall_engine.cc.o.d"
  "/root/repo/tests/test_statistics.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_statistics.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_statistics.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_tech.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_tech.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_tech.cc.o.d"
  "/root/repo/tests/test_trace_cli.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_trace_cli.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_trace_cli.cc.o.d"
  "/root/repo/tests/test_trace_core.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_trace_core.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_trace_core.cc.o.d"
  "/root/repo/tests/test_transient_ac.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_transient_ac.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_transient_ac.cc.o.d"
  "/root/repo/tests/test_units.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_units.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_units.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/vsmooth_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/vsmooth_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/vsmooth_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vsmooth_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vsmooth_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsmooth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/vsmooth_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vsmooth_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vsmooth_power.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/vsmooth_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vsmooth_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/vsmooth_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
