# Empty dependencies file for vsmooth_tests.
# This may be replaced when dependencies are built.
