# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vsmooth_tests[1]_include.cmake")
add_test(cli_list "/root/repo/build/src/tools/vsmooth" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_reset_droop "/root/repo/build/src/tools/vsmooth" "reset-droop" "--decap" "0.25")
set_tests_properties(cli_reset_droop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/src/tools/vsmooth" "run" "--cycles" "100000" "hmmer")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/src/tools/vsmooth")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
