file(REMOVE_RECURSE
  "libvsmooth_resilience.a"
)
