# Empty dependencies file for vsmooth_resilience.
# This may be replaced when dependencies are built.
