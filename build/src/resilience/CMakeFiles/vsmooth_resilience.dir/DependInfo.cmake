
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/emergency_predictor.cc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/emergency_predictor.cc.o" "gcc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/emergency_predictor.cc.o.d"
  "/root/repo/src/resilience/perf_model.cc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/perf_model.cc.o" "gcc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/perf_model.cc.o.d"
  "/root/repo/src/resilience/resonance_damper.cc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/resonance_damper.cc.o" "gcc" "src/resilience/CMakeFiles/vsmooth_resilience.dir/resonance_damper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/vsmooth_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/vsmooth_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
