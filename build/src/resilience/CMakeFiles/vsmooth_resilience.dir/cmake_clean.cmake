file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_resilience.dir/emergency_predictor.cc.o"
  "CMakeFiles/vsmooth_resilience.dir/emergency_predictor.cc.o.d"
  "CMakeFiles/vsmooth_resilience.dir/perf_model.cc.o"
  "CMakeFiles/vsmooth_resilience.dir/perf_model.cc.o.d"
  "CMakeFiles/vsmooth_resilience.dir/resonance_damper.cc.o"
  "CMakeFiles/vsmooth_resilience.dir/resonance_damper.cc.o.d"
  "libvsmooth_resilience.a"
  "libvsmooth_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
