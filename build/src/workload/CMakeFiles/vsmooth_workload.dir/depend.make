# Empty dependencies file for vsmooth_workload.
# This may be replaced when dependencies are built.
