file(REMOVE_RECURSE
  "libvsmooth_workload.a"
)
