
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/microbench.cc" "src/workload/CMakeFiles/vsmooth_workload.dir/microbench.cc.o" "gcc" "src/workload/CMakeFiles/vsmooth_workload.dir/microbench.cc.o.d"
  "/root/repo/src/workload/parsec.cc" "src/workload/CMakeFiles/vsmooth_workload.dir/parsec.cc.o" "gcc" "src/workload/CMakeFiles/vsmooth_workload.dir/parsec.cc.o.d"
  "/root/repo/src/workload/spec_suite.cc" "src/workload/CMakeFiles/vsmooth_workload.dir/spec_suite.cc.o" "gcc" "src/workload/CMakeFiles/vsmooth_workload.dir/spec_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/vsmooth_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
