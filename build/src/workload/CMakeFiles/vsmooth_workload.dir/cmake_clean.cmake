file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_workload.dir/microbench.cc.o"
  "CMakeFiles/vsmooth_workload.dir/microbench.cc.o.d"
  "CMakeFiles/vsmooth_workload.dir/parsec.cc.o"
  "CMakeFiles/vsmooth_workload.dir/parsec.cc.o.d"
  "CMakeFiles/vsmooth_workload.dir/spec_suite.cc.o"
  "CMakeFiles/vsmooth_workload.dir/spec_suite.cc.o.d"
  "libvsmooth_workload.a"
  "libvsmooth_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
