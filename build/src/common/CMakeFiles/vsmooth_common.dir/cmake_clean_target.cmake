file(REMOVE_RECURSE
  "libvsmooth_common.a"
)
