# Empty compiler generated dependencies file for vsmooth_common.
# This may be replaced when dependencies are built.
