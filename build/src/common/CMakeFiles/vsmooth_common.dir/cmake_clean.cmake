file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_common.dir/histogram.cc.o"
  "CMakeFiles/vsmooth_common.dir/histogram.cc.o.d"
  "CMakeFiles/vsmooth_common.dir/logging.cc.o"
  "CMakeFiles/vsmooth_common.dir/logging.cc.o.d"
  "CMakeFiles/vsmooth_common.dir/rng.cc.o"
  "CMakeFiles/vsmooth_common.dir/rng.cc.o.d"
  "CMakeFiles/vsmooth_common.dir/statistics.cc.o"
  "CMakeFiles/vsmooth_common.dir/statistics.cc.o.d"
  "CMakeFiles/vsmooth_common.dir/table.cc.o"
  "CMakeFiles/vsmooth_common.dir/table.cc.o.d"
  "libvsmooth_common.a"
  "libvsmooth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
