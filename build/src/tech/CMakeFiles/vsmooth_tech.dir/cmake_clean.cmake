file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_tech.dir/itrs.cc.o"
  "CMakeFiles/vsmooth_tech.dir/itrs.cc.o.d"
  "CMakeFiles/vsmooth_tech.dir/ring_oscillator.cc.o"
  "CMakeFiles/vsmooth_tech.dir/ring_oscillator.cc.o.d"
  "libvsmooth_tech.a"
  "libvsmooth_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
