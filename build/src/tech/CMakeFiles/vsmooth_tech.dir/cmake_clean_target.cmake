file(REMOVE_RECURSE
  "libvsmooth_tech.a"
)
