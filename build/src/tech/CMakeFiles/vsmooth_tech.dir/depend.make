# Empty dependencies file for vsmooth_tech.
# This may be replaced when dependencies are built.
