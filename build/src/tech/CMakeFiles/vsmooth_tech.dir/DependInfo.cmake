
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/itrs.cc" "src/tech/CMakeFiles/vsmooth_tech.dir/itrs.cc.o" "gcc" "src/tech/CMakeFiles/vsmooth_tech.dir/itrs.cc.o.d"
  "/root/repo/src/tech/ring_oscillator.cc" "src/tech/CMakeFiles/vsmooth_tech.dir/ring_oscillator.cc.o" "gcc" "src/tech/CMakeFiles/vsmooth_tech.dir/ring_oscillator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
