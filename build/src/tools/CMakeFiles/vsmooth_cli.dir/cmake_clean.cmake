file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_cli.dir/vsmooth_cli.cc.o"
  "CMakeFiles/vsmooth_cli.dir/vsmooth_cli.cc.o.d"
  "vsmooth"
  "vsmooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
