# Empty compiler generated dependencies file for vsmooth_cli.
# This may be replaced when dependencies are built.
