# Empty dependencies file for vsmooth_sim.
# This may be replaced when dependencies are built.
