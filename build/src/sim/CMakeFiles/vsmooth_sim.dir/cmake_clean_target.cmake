file(REMOVE_RECURSE
  "libvsmooth_sim.a"
)
