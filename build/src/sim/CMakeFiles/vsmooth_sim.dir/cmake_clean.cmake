file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_sim.dir/calibration.cc.o"
  "CMakeFiles/vsmooth_sim.dir/calibration.cc.o.d"
  "CMakeFiles/vsmooth_sim.dir/system.cc.o"
  "CMakeFiles/vsmooth_sim.dir/system.cc.o.d"
  "libvsmooth_sim.a"
  "libvsmooth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
