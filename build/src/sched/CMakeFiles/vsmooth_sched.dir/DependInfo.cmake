
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/online_scheduler.cc" "src/sched/CMakeFiles/vsmooth_sched.dir/online_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/vsmooth_sched.dir/online_scheduler.cc.o.d"
  "/root/repo/src/sched/oracle_matrix.cc" "src/sched/CMakeFiles/vsmooth_sched.dir/oracle_matrix.cc.o" "gcc" "src/sched/CMakeFiles/vsmooth_sched.dir/oracle_matrix.cc.o.d"
  "/root/repo/src/sched/pass_analysis.cc" "src/sched/CMakeFiles/vsmooth_sched.dir/pass_analysis.cc.o" "gcc" "src/sched/CMakeFiles/vsmooth_sched.dir/pass_analysis.cc.o.d"
  "/root/repo/src/sched/policy.cc" "src/sched/CMakeFiles/vsmooth_sched.dir/policy.cc.o" "gcc" "src/sched/CMakeFiles/vsmooth_sched.dir/policy.cc.o.d"
  "/root/repo/src/sched/sliding_window.cc" "src/sched/CMakeFiles/vsmooth_sched.dir/sliding_window.cc.o" "gcc" "src/sched/CMakeFiles/vsmooth_sched.dir/sliding_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resilience/CMakeFiles/vsmooth_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsmooth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vsmooth_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vsmooth_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/vsmooth_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/vsmooth_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vsmooth_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vsmooth_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
