file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_sched.dir/online_scheduler.cc.o"
  "CMakeFiles/vsmooth_sched.dir/online_scheduler.cc.o.d"
  "CMakeFiles/vsmooth_sched.dir/oracle_matrix.cc.o"
  "CMakeFiles/vsmooth_sched.dir/oracle_matrix.cc.o.d"
  "CMakeFiles/vsmooth_sched.dir/pass_analysis.cc.o"
  "CMakeFiles/vsmooth_sched.dir/pass_analysis.cc.o.d"
  "CMakeFiles/vsmooth_sched.dir/policy.cc.o"
  "CMakeFiles/vsmooth_sched.dir/policy.cc.o.d"
  "CMakeFiles/vsmooth_sched.dir/sliding_window.cc.o"
  "CMakeFiles/vsmooth_sched.dir/sliding_window.cc.o.d"
  "libvsmooth_sched.a"
  "libvsmooth_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
