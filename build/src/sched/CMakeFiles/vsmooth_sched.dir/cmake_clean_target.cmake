file(REMOVE_RECURSE
  "libvsmooth_sched.a"
)
