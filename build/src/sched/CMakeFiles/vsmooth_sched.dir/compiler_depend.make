# Empty compiler generated dependencies file for vsmooth_sched.
# This may be replaced when dependencies are built.
