file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_pdn.dir/droop_analysis.cc.o"
  "CMakeFiles/vsmooth_pdn.dir/droop_analysis.cc.o.d"
  "CMakeFiles/vsmooth_pdn.dir/ladder.cc.o"
  "CMakeFiles/vsmooth_pdn.dir/ladder.cc.o.d"
  "CMakeFiles/vsmooth_pdn.dir/package_config.cc.o"
  "CMakeFiles/vsmooth_pdn.dir/package_config.cc.o.d"
  "CMakeFiles/vsmooth_pdn.dir/second_order.cc.o"
  "CMakeFiles/vsmooth_pdn.dir/second_order.cc.o.d"
  "libvsmooth_pdn.a"
  "libvsmooth_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
