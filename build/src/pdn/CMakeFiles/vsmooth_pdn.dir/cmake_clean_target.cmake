file(REMOVE_RECURSE
  "libvsmooth_pdn.a"
)
