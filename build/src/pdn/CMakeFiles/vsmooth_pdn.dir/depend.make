# Empty dependencies file for vsmooth_pdn.
# This may be replaced when dependencies are built.
