
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdn/droop_analysis.cc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/droop_analysis.cc.o" "gcc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/droop_analysis.cc.o.d"
  "/root/repo/src/pdn/ladder.cc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/ladder.cc.o" "gcc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/ladder.cc.o.d"
  "/root/repo/src/pdn/package_config.cc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/package_config.cc.o" "gcc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/package_config.cc.o.d"
  "/root/repo/src/pdn/second_order.cc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/second_order.cc.o" "gcc" "src/pdn/CMakeFiles/vsmooth_pdn.dir/second_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/vsmooth_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
