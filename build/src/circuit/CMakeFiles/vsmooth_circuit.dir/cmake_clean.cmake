file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_circuit.dir/ac.cc.o"
  "CMakeFiles/vsmooth_circuit.dir/ac.cc.o.d"
  "CMakeFiles/vsmooth_circuit.dir/dc.cc.o"
  "CMakeFiles/vsmooth_circuit.dir/dc.cc.o.d"
  "CMakeFiles/vsmooth_circuit.dir/netlist.cc.o"
  "CMakeFiles/vsmooth_circuit.dir/netlist.cc.o.d"
  "CMakeFiles/vsmooth_circuit.dir/transient.cc.o"
  "CMakeFiles/vsmooth_circuit.dir/transient.cc.o.d"
  "libvsmooth_circuit.a"
  "libvsmooth_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
