# Empty compiler generated dependencies file for vsmooth_circuit.
# This may be replaced when dependencies are built.
