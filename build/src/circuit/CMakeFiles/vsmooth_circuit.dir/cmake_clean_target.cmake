file(REMOVE_RECURSE
  "libvsmooth_circuit.a"
)
