# Empty dependencies file for vsmooth_cpu.
# This may be replaced when dependencies are built.
