file(REMOVE_RECURSE
  "libvsmooth_cpu.a"
)
