file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/cache.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/cache.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/detailed_core.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/detailed_core.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/fast_core.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/fast_core.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/perf_counters.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/perf_counters.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/stall_engine.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/stall_engine.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/tlb.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/tlb.cc.o.d"
  "CMakeFiles/vsmooth_cpu.dir/trace_core.cc.o"
  "CMakeFiles/vsmooth_cpu.dir/trace_core.cc.o.d"
  "libvsmooth_cpu.a"
  "libvsmooth_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
