
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_predictor.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/branch_predictor.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/cache.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/cache.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/cache.cc.o.d"
  "/root/repo/src/cpu/detailed_core.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/detailed_core.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/detailed_core.cc.o.d"
  "/root/repo/src/cpu/fast_core.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/fast_core.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/fast_core.cc.o.d"
  "/root/repo/src/cpu/perf_counters.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/perf_counters.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/perf_counters.cc.o.d"
  "/root/repo/src/cpu/stall_engine.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/stall_engine.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/stall_engine.cc.o.d"
  "/root/repo/src/cpu/tlb.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/tlb.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/tlb.cc.o.d"
  "/root/repo/src/cpu/trace_core.cc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/trace_core.cc.o" "gcc" "src/cpu/CMakeFiles/vsmooth_cpu.dir/trace_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
