# Empty compiler generated dependencies file for vsmooth_power.
# This may be replaced when dependencies are built.
