file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_power.dir/current_model.cc.o"
  "CMakeFiles/vsmooth_power.dir/current_model.cc.o.d"
  "libvsmooth_power.a"
  "libvsmooth_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
