# Empty dependencies file for vsmooth_power.
# This may be replaced when dependencies are built.
