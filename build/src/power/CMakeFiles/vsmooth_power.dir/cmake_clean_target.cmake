file(REMOVE_RECURSE
  "libvsmooth_power.a"
)
