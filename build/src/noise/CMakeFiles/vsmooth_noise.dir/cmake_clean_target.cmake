file(REMOVE_RECURSE
  "libvsmooth_noise.a"
)
