# Empty compiler generated dependencies file for vsmooth_noise.
# This may be replaced when dependencies are built.
