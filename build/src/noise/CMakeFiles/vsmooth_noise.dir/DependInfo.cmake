
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/droop_detector.cc" "src/noise/CMakeFiles/vsmooth_noise.dir/droop_detector.cc.o" "gcc" "src/noise/CMakeFiles/vsmooth_noise.dir/droop_detector.cc.o.d"
  "/root/repo/src/noise/scope.cc" "src/noise/CMakeFiles/vsmooth_noise.dir/scope.cc.o" "gcc" "src/noise/CMakeFiles/vsmooth_noise.dir/scope.cc.o.d"
  "/root/repo/src/noise/timeline.cc" "src/noise/CMakeFiles/vsmooth_noise.dir/timeline.cc.o" "gcc" "src/noise/CMakeFiles/vsmooth_noise.dir/timeline.cc.o.d"
  "/root/repo/src/noise/trace_writer.cc" "src/noise/CMakeFiles/vsmooth_noise.dir/trace_writer.cc.o" "gcc" "src/noise/CMakeFiles/vsmooth_noise.dir/trace_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsmooth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
