file(REMOVE_RECURSE
  "CMakeFiles/vsmooth_noise.dir/droop_detector.cc.o"
  "CMakeFiles/vsmooth_noise.dir/droop_detector.cc.o.d"
  "CMakeFiles/vsmooth_noise.dir/scope.cc.o"
  "CMakeFiles/vsmooth_noise.dir/scope.cc.o.d"
  "CMakeFiles/vsmooth_noise.dir/timeline.cc.o"
  "CMakeFiles/vsmooth_noise.dir/timeline.cc.o.d"
  "CMakeFiles/vsmooth_noise.dir/trace_writer.cc.o"
  "CMakeFiles/vsmooth_noise.dir/trace_writer.cc.o.d"
  "libvsmooth_noise.a"
  "libvsmooth_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsmooth_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
