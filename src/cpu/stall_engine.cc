#include "stall_engine.hh"

#include "common/logging.hh"

namespace vsmooth::cpu {

const EventTiming &
defaultTiming(StallCause cause)
{
    // Shapes chosen against the paper's Fig 12 swing ordering (BR
    // largest at ~1.7x idle). Effective blocked durations are short
    // and roughly uniform across causes: out-of-order execution and
    // memory-level parallelism overlap most of a miss's latency, so
    // what reaches the current waveform is a dense train of short
    // drops rather than rare full-latency drains. This is what makes
    // the *rate* of waveform edges (and hence voltage-noise power)
    // scale with the stall ratio, the paper's Fig 15 observation.
    static const EventTiming l1{0, 10, 0.62, 3, 1.02, false, 6, 0.45};
    static const EventTiming l2{2, 18, 0.48, 8, 1.05, false, 6, 0.40};
    static const EventTiming tlb{1, 16, 0.55, 5, 1.05, false, 6, 0.45};
    // A flush squashes the window instantly (sharpest edge) but the
    // frontend keeps running, so the floor is comparatively high.
    static const EventTiming br{0, 13, 0.50, 5, 1.10, false, 6, 0.45};
    static const EventTiming excp{2, 24, 0.35, 10, 1.05, true, 6, 0.40};
    static const EventTiming recovery{0, 0, 0.05, 0, 1.0, false, 6, 0.45};

    switch (cause) {
      case StallCause::L1Miss: return l1;
      case StallCause::L2Miss: return l2;
      case StallCause::TlbMiss: return tlb;
      case StallCause::BranchMispredict: return br;
      case StallCause::Exception: return excp;
      case StallCause::Recovery: return recovery;
      default:
        panic("defaultTiming: no timing for cause %d",
              static_cast<int>(cause));
    }
}

const EventTiming &
platformInterruptTiming()
{
    static const EventTiming tick{1, 45, 0.02, 48, 1.40, true, 12, 0.10};
    return tick;
}

StallEngine::StallEngine(double runningActivity)
    : running_(runningActivity)
{
}

void
StallEngine::beginEvent(StallCause cause, const EventTiming &timing)
{
    if (cause == StallCause::None)
        panic("StallEngine::beginEvent with cause None");

    if (inEvent()) {
        // An event is already shaping the waveform. Take the new one
        // only if it would stall for longer than what remains of the
        // current event; otherwise it is absorbed (still counted by
        // the caller via PerfCounters::recordEvent if desired).
        std::uint64_t remaining = phaseLeft_;
        if (state_ == EngineState::RampDown)
            remaining += timing_.stallCycles; // the stall still to come
        const std::uint64_t incoming =
            timing.rampDownCycles + timing.stallCycles;
        if (incoming <= remaining)
            return;
    }

    cause_ = cause;
    timing_ = timing;
    rampStartActivity_ = running_;
    if (timing.rampDownCycles > 0) {
        state_ = EngineState::RampDown;
        phaseLeft_ = timing.rampDownCycles;
        rampTotal_ = timing.rampDownCycles;
    } else if (timing.stallCycles > 0) {
        state_ = EngineState::Stalled;
        phaseLeft_ = timing.stallCycles;
    } else if (timing.surgeCycles > 0) {
        state_ = EngineState::Surge;
        phaseLeft_ = timing.surgeCycles;
        surgeTotal_ = timing.surgeCycles;
    } else {
        state_ = EngineState::Running;
        cause_ = StallCause::None;
    }
}

void
StallEngine::beginEvent(StallCause cause)
{
    beginEvent(cause, defaultTiming(cause));
}

} // namespace vsmooth::cpu
