/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Used by the DetailedCore to derive L1/L2 miss events from the
 * synthetic address streams the microbenchmarks and workloads
 * generate — misses *happen* in the structure rather than being drawn
 * from a rate, mirroring how the paper's hand-crafted microbenchmarks
 * stimulated the real machine.
 */

#ifndef VSMOOTH_CPU_CACHE_HH
#define VSMOOTH_CPU_CACHE_HH

#include <cstdint>
#include <vector>

namespace vsmooth::cpu {

class FaultInjector;

/** Physical/virtual address type for the synthetic streams. */
using Addr = std::uint64_t;

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes;
    std::uint32_t associativity;
    std::uint32_t lineBytes;
};

/** One level of set-associative cache, true LRU. */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geom);

    /**
     * Access an address; allocates on miss.
     * @return true on hit
     */
    bool access(Addr addr);

    /** Probe without allocating or updating LRU. */
    bool contains(Addr addr) const;

    /** Invalidate all contents. */
    void flush();

    /**
     * Route this cache's accesses through an undervolt fault model
     * (non-owned; nullptr detaches). @p structureId must come from
     * injector->registerStructure(). A fault on access `hits + misses`
     * invalidates the addressed line before the lookup, so the access
     * takes a parity-forced miss.
     */
    void attachFaultInjector(FaultInjector *injector,
                             std::size_t structureId);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Bit-flip faults this cache has taken (0 without an injector). */
    std::uint64_t faults() const;
    double missRate() const;

    std::uint32_t numSets() const { return numSets_; }
    const CacheGeometry &geometry() const { return geom_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    void invalidate(Addr addr);

    CacheGeometry geom_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::vector<Line> lines_; // numSets * associativity, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    FaultInjector *injector_ = nullptr;
    std::size_t structureId_ = 0;
};

/** Core 2 (Conroe)-class L1D: 32 KiB, 8-way, 64 B lines. */
CacheGeometry core2L1dGeometry();
/** Core 2 (E6300)-class shared L2: 2 MiB, 8-way, 64 B lines. */
CacheGeometry core2L2Geometry();

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_CACHE_HH
