#include "cache.hh"

#include <bit>

#include "common/logging.hh"
#include "cpu/fault_injector.hh"

namespace vsmooth::cpu {

Cache::Cache(const CacheGeometry &geom) : geom_(geom)
{
    if (geom.lineBytes == 0 || !std::has_single_bit(geom.lineBytes))
        fatal("cache line size must be a power of two (got %u)",
              geom.lineBytes);
    if (geom.associativity == 0)
        fatal("cache associativity must be positive");
    const std::uint64_t lines = geom.sizeBytes / geom.lineBytes;
    if (lines == 0 || lines % geom.associativity != 0)
        fatal("cache size %llu not divisible into %u-way sets",
              (unsigned long long)geom.sizeBytes, geom.associativity);
    numSets_ = static_cast<std::uint32_t>(lines / geom.associativity);
    if (!std::has_single_bit(numSets_))
        fatal("cache set count must be a power of two (got %u)", numSets_);
    lineShift_ = static_cast<std::uint32_t>(std::countr_zero(geom.lineBytes));
    lines_.resize(static_cast<std::size_t>(numSets_) * geom.associativity);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineShift_) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

void
Cache::invalidate(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) *
                         geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return;
        }
    }
}

bool
Cache::access(Addr addr)
{
    // The fault decision keys on this structure's own access count, so
    // identical runs replay identical fault sequences regardless of
    // job or lane partitioning. A flipped line is caught by parity and
    // dropped, turning the access below into a refetch miss.
    if (injector_ && injector_->shouldFault(structureId_, hits_ + misses_))
        invalidate(addr);

    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) *
                         geom_.associativity];
    ++useClock_;

    Line *victim = base;
    for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    ++misses_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) *
                               geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Cache::attachFaultInjector(FaultInjector *injector,
                           std::size_t structureId)
{
    injector_ = injector;
    structureId_ = structureId;
}

std::uint64_t
Cache::faults() const
{
    return injector_ ? injector_->faultCount(structureId_) : 0;
}

double
Cache::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0
        ? 0.0
        : static_cast<double>(misses_) / static_cast<double>(total);
}

CacheGeometry
core2L1dGeometry()
{
    return {32 * 1024, 8, 64};
}

CacheGeometry
core2L2Geometry()
{
    return {2 * 1024 * 1024, 8, 64};
}

} // namespace vsmooth::cpu
