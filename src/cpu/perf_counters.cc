#include "perf_counters.hh"

namespace vsmooth::cpu {

std::string_view
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::None: return "none";
      case StallCause::L1Miss: return "L1";
      case StallCause::L2Miss: return "L2";
      case StallCause::TlbMiss: return "TLB";
      case StallCause::BranchMispredict: return "BR";
      case StallCause::Exception: return "EXCP";
      case StallCause::Recovery: return "RECOVERY";
      default: return "?";
    }
}

std::uint64_t
PerfCounters::totalStallCycles() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : stallCycles_)
        total += c;
    return total;
}

double
PerfCounters::ipc() const
{
    if (cycles_ == 0)
        return 0.0;
    return static_cast<double>(instructions_) /
        static_cast<double>(cycles_);
}

double
PerfCounters::stallRatio() const
{
    if (cycles_ == 0)
        return 0.0;
    return static_cast<double>(totalStallCycles()) /
        static_cast<double>(cycles_);
}

void
PerfCounters::reset()
{
    *this = PerfCounters{};
}

} // namespace vsmooth::cpu
