/**
 * @file
 * Abstract per-cycle core model.
 *
 * A core model advances one clock cycle at a time and reports its
 * activity level, which the power model converts to current draw.
 * Two implementations exist (the gem5 atomic-vs-detailed split):
 *
 *  - DetailedCore: executes a synthetic instruction stream through
 *    real cache/TLB/predictor structures (microbenchmark studies).
 *  - FastCore: phase-based stochastic activity process (full-suite
 *    sweeps, 10-100x faster).
 */

#ifndef VSMOOTH_CPU_CORE_MODEL_HH
#define VSMOOTH_CPU_CORE_MODEL_HH

#include <cstdint>

#include "cpu/perf_counters.hh"

namespace vsmooth::cpu {

/** Abstract cycle-stepped core. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /**
     * Advance one cycle.
     * @return activity level for the cycle, nominally in [0, ~1.2]
     *         (refill bursts can exceed the steady-state level)
     */
    virtual double tick() = 0;

    /** Performance counters accumulated so far. */
    virtual const PerfCounters &counters() const = 0;

    /**
     * Stall this core for `cycles` while the chip-wide fail-safe
     * rolls back and recovers from a voltage emergency (Sec IV).
     */
    virtual void injectRecoveryStall(std::uint32_t cycles) = 0;

    /**
     * Deliver a platform interrupt (OS timer tick). The System raises
     * it on every core in the same cycle — the synchronized stall +
     * restart is a chip-wide di/dt event.
     */
    virtual void injectPlatformInterrupt() = 0;

    /** True once the workload has run to completion. */
    virtual bool finished() const = 0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_CORE_MODEL_HH
