/**
 * @file
 * Abstract per-cycle core model.
 *
 * A core model advances one clock cycle at a time and reports its
 * activity level, which the power model converts to current draw.
 * Two implementations exist (the gem5 atomic-vs-detailed split):
 *
 *  - DetailedCore: executes a synthetic instruction stream through
 *    real cache/TLB/predictor structures (microbenchmark studies).
 *  - FastCore: phase-based stochastic activity process (full-suite
 *    sweeps, 10-100x faster).
 */

#ifndef VSMOOTH_CPU_CORE_MODEL_HH
#define VSMOOTH_CPU_CORE_MODEL_HH

#include <cstddef>
#include <cstdint>

#include "common/units.hh"
#include "cpu/perf_counters.hh"

namespace vsmooth::cpu {

/** Extrapolated work credited to a core by a sampled-execution skip:
 *  counter deltas measured over a representative window, scaled by
 *  the number of skipped window replays. */
struct SkipCounters
{
    std::uint64_t instructions = 0;
    std::array<std::uint64_t, PerfCounters::kNumCauses> stallCycles{};
    std::array<std::uint64_t, PerfCounters::kNumCauses> events{};
};

/** Abstract cycle-stepped core. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /**
     * Advance one cycle.
     * @return activity level for the cycle, nominally in [0, ~1.2]
     *         (refill bursts can exceed the steady-state level)
     */
    virtual double tick() = 0;

    /**
     * Advance n cycles, writing each cycle's activity level to
     * activity[0..n). Semantically identical to n tick() calls — the
     * base implementation is exactly that loop — but concrete models
     * override it so virtual dispatch and per-call overhead are paid
     * once per block instead of once per cycle. The System's batched
     * pipeline guarantees no interrupt/recovery injection lands
     * inside a block, so overrides need not re-check for them
     * mid-block.
     */
    virtual void
    tickBlock(double *activity, std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            activity[j] = tick();
    }

    /**
     * Conservative lower bound on the number of future tick() calls
     * before finished() could first return true (0 = already finished
     * or unknown; the all-ones Cycles means the workload never
     * finishes, e.g. a looping schedule). Used by the batched run
     * loop to size blocks without missing the exact stop cycle; the
     * default forces cycle-by-cycle finish checks.
     */
    virtual Cycles minTicksUntilFinished() const { return 0; }

    /**
     * How many future cycles the sampled-execution engine may skip
     * over without this core crossing a behavioral boundary (phase
     * change, workload completion). 0 — the default — means the core
     * does not support skipping, which disables sampling-driven
     * fast-forward whenever such a core is present. The all-ones
     * Cycles means unbounded (statistically self-similar forever).
     */
    virtual Cycles skippableCycles() const { return 0; }

    /**
     * Fast-forward `n` cycles (n <= skippableCycles() at the time of
     * the call), crediting the extrapolated counter deltas in `c`.
     * Internal stochastic state (RNG streams, in-flight stall events)
     * must be left untouched — the core resumes from a valid sample
     * of its stationary state. Only called on cores that advertise a
     * nonzero skippableCycles(), so the default need not support it.
     */
    virtual void
    skipAhead(Cycles n, const SkipCounters &c)
    {
        (void)n;
        (void)c;
    }

    /** Performance counters accumulated so far. */
    virtual const PerfCounters &counters() const = 0;

    /**
     * Stall this core for `cycles` while the chip-wide fail-safe
     * rolls back and recovers from a voltage emergency (Sec IV).
     */
    virtual void injectRecoveryStall(std::uint32_t cycles) = 0;

    /**
     * Deliver a platform interrupt (OS timer tick). The System raises
     * it on every core in the same cycle — the synchronized stall +
     * restart is a chip-wide di/dt event.
     */
    virtual void injectPlatformInterrupt() = 0;

    /** True once the workload has run to completion. */
    virtual bool finished() const = 0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_CORE_MODEL_HH
