/**
 * @file
 * Fully-associative translation lookaside buffer with LRU replacement.
 * A TLB miss triggers a hardware page walk, which is one of the stall
 * events the paper's microbenchmarks isolate (Fig 11: TLB misses
 * produce recurring voltage overshoots).
 */

#ifndef VSMOOTH_CPU_TLB_HH
#define VSMOOTH_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "cpu/cache.hh"

namespace vsmooth::cpu {

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    /**
     * @param entries number of TLB entries (Core 2 DTLB: 256)
     * @param pageBytes page size (4 KiB)
     */
    explicit Tlb(std::uint32_t entries = 256,
                 std::uint32_t pageBytes = 4096);

    /**
     * Translate an address; fills the entry on miss.
     * @return true on hit
     */
    bool access(Addr addr);

    void flush();

    /** Route translations through an undervolt fault model (see
     *  Cache::attachFaultInjector); a fault drops the addressed entry
     *  before the lookup, forcing a page walk. */
    void attachFaultInjector(FaultInjector *injector,
                             std::size_t structureId);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Bit-flip faults this TLB has taken (0 without an injector). */
    std::uint64_t faults() const;
    std::uint32_t numEntries() const
    { return static_cast<std::uint32_t>(entries_.size()); }
    std::uint32_t pageBytes() const { return pageBytes_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries_;
    std::uint32_t pageBytes_;
    std::uint32_t pageShift_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    FaultInjector *injector_ = nullptr;
    std::size_t structureId_ = 0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_TLB_HH
