/**
 * @file
 * gshare branch predictor.
 *
 * Mispredictions cause the pipeline flush that the paper identifies
 * as the single largest source of voltage swing on one core (Fig 12:
 * 1.7x an idling machine). The BR microbenchmark defeats this
 * predictor with data-dependent random branches, exactly as the
 * paper's hand-crafted loop did.
 */

#ifndef VSMOOTH_CPU_BRANCH_PREDICTOR_HH
#define VSMOOTH_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "cpu/cache.hh"

namespace vsmooth::cpu {

/** gshare: global history XOR PC indexing a 2-bit counter table. */
class BranchPredictor
{
  public:
    /** @param tableBits log2 of the pattern-history-table size */
    explicit BranchPredictor(std::uint32_t tableBits = 14);

    /**
     * Predict and then train on the actual outcome.
     * @param pc branch address
     * @param taken actual direction
     * @return true if the prediction was correct
     */
    bool predictAndTrain(Addr pc, bool taken);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double mispredictRate() const;

  private:
    std::vector<std::uint8_t> table_; // 2-bit saturating counters
    std::uint32_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_BRANCH_PREDICTOR_HH
