#include "fault_injector.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsmooth::cpu {

FaultInjector::FaultInjector(const FaultModelParams &params,
                             std::uint64_t seed)
    : params_(params), seed_(seed), margin_(params.safeMargin)
{
    if (params_.safeMargin < 0.0)
        fatal("FaultInjector: safeMargin must be non-negative");
    if (params_.rateAtZeroMargin < 0.0 || params_.rateAtZeroMargin > 1.0)
        fatal("FaultInjector: rateAtZeroMargin must be in [0, 1]");
    if (params_.exponent <= 0.0)
        fatal("FaultInjector: exponent must be positive");
    setMargin(margin_);
}

std::size_t
FaultInjector::registerStructure(std::string name)
{
    names_.push_back(std::move(name));
    faults_.push_back(0);
    return names_.size() - 1;
}

double
FaultInjector::faultProbabilityAt(const FaultModelParams &params,
                                  double margin)
{
    // Exact zero at (and above) the safe margin: the comparison, not a
    // rounded power, is what guarantees fault-free nominal operation.
    if (params.safeMargin <= 0.0 || margin >= params.safeMargin)
        return 0.0;
    const double clamped = margin < 0.0 ? 0.0 : margin;
    const double depth = (params.safeMargin - clamped) / params.safeMargin;
    const double p =
        params.rateAtZeroMargin * std::pow(depth, params.exponent);
    return p > 1.0 ? 1.0 : p;
}

std::uint64_t
FaultInjector::thresholdFor(double probability)
{
    if (probability <= 0.0)
        return 0;
    if (probability >= 1.0)
        return ~0ull;
    // 2^64 * p fits: p < 1 keeps the product below 2^64.
    return static_cast<std::uint64_t>(probability * 18446744073709551616.0);
}

void
FaultInjector::setMargin(double margin)
{
    margin_ = margin;
    probability_ = faultProbabilityAt(params_, margin);
    threshold_ = thresholdFor(probability_);
}

std::uint64_t
FaultInjector::totalFaults() const
{
    std::uint64_t total = 0;
    for (const auto f : faults_)
        total += f;
    return total;
}

} // namespace vsmooth::cpu
