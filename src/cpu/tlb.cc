#include "tlb.hh"

#include <bit>

#include "common/logging.hh"
#include "cpu/fault_injector.hh"

namespace vsmooth::cpu {

Tlb::Tlb(std::uint32_t entries, std::uint32_t pageBytes)
    : entries_(entries), pageBytes_(pageBytes)
{
    if (entries == 0)
        fatal("TLB needs at least one entry");
    if (pageBytes == 0 || !std::has_single_bit(pageBytes))
        fatal("page size must be a power of two (got %u)", pageBytes);
    pageShift_ = static_cast<std::uint32_t>(std::countr_zero(pageBytes));
}

bool
Tlb::access(Addr addr)
{
    const Addr vpn = addr >> pageShift_;
    // Same index-derived fault draw as Cache::access: a flipped entry
    // is dropped before the lookup, forcing a page walk.
    if (injector_ && injector_->shouldFault(structureId_, hits_ + misses_)) {
        for (auto &e : entries_) {
            if (e.valid && e.vpn == vpn) {
                e.valid = false;
                break;
            }
        }
    }
    ++useClock_;
    Entry *victim = &entries_.front();
    for (auto &e : entries_) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = useClock_;
            ++hits_;
            return true;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock_;
    ++misses_;
    return false;
}

void
Tlb::attachFaultInjector(FaultInjector *injector, std::size_t structureId)
{
    injector_ = injector;
    structureId_ = structureId;
}

std::uint64_t
Tlb::faults() const
{
    return injector_ ? injector_->faultCount(structureId_) : 0;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace vsmooth::cpu
