#include "fast_core.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsmooth::cpu {

StallCause
eventClassCause(std::size_t index)
{
    switch (index) {
      case 0: return StallCause::L1Miss;
      case 1: return StallCause::L2Miss;
      case 2: return StallCause::TlbMiss;
      case 3: return StallCause::BranchMispredict;
      case 4: return StallCause::Exception;
      default:
        panic("eventClassCause: index %zu out of range", index);
    }
}

double
ActivityPhase::expectedStallRatio() const
{
    // The event process only advances while the core is Running, so
    // the steady-state cycle budget per event is gap + blocked +
    // surge with gap = 1 / totalRate. Expected stall ratio is the
    // blocked share of that budget.
    double total_rate = 0.0;
    double mean_blocked = 0.0;
    double mean_surge = 0.0;
    for (std::size_t c = 0; c < kNumEventClasses; ++c) {
        const StallCause cause = eventClassCause(c);
        const EventTiming &t = defaultTiming(cause);
        const double r = eventRatesPer1k[c] / 1000.0;
        double stall = static_cast<double>(t.stallCycles);
        double surge = static_cast<double>(t.surgeCycles);
        if (cause == StallCause::L2Miss) {
            stall = std::max(1.0, stall * l2StallScale);
            surge = std::max(4.0, surge * l2StallScale);
        }
        total_rate += r;
        mean_blocked += r * (static_cast<double>(t.rampDownCycles) + stall);
        mean_surge += r * surge;
    }
    if (total_rate <= 0.0)
        return 0.0;
    mean_blocked /= total_rate;
    mean_surge /= total_rate;
    const double gap = 1.0 / total_rate;
    return mean_blocked / (gap + mean_blocked + mean_surge);
}

double
ActivityPhase::expectedIpc() const
{
    return ipcWhenRunning * (1.0 - expectedStallRatio());
}

Cycles
PhaseSchedule::totalDuration() const
{
    Cycles total = 0;
    for (const auto &p : phases)
        total += p.duration;
    return total;
}

FastCore::FastCore(PhaseSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed)
{
    if (schedule_.phases.empty())
        fatal("FastCore needs at least one phase");
    for (const auto &p : schedule_.phases) {
        if (p.duration == 0)
            fatal("FastCore: zero-length phase");
    }
    enterPhase(0);
}

void
FastCore::enterPhase(std::size_t idx)
{
    phaseIdx_ = idx;
    cyclesIntoPhase_ = 0;
    phaseDuration_ = phase().duration;
    phaseIpc_ = phase().ipcWhenRunning;
    phaseJitter_ = phase().activityJitter;
    engine_.setRunningActivity(phase().baseActivity);
    totalEventRate_ = 0.0;
    for (double r : phase().eventRatesPer1k)
        totalEventRate_ += r / 1000.0;
    // The geometric inter-arrival denominator only changes with the
    // phase; hoisting it here halves the libm work per event draw.
    eventLogQ_ = (totalEventRate_ > 0.0 && totalEventRate_ < 1.0)
        ? std::log1p(-totalEventRate_)
        : 0.0;
    scheduleNextEvent();
}

void
FastCore::scheduleNextEvent()
{
    if (totalEventRate_ <= 0.0) {
        cyclesToNextEvent_ = ~Cycles(0);
        return;
    }
    cyclesToNextEvent_ = rng_.geometric(totalEventRate_, eventLogQ_);
}

double
FastCore::tick()
{
    if (done_) {
        // Even a finished workload's core still services recovery
        // stalls and platform interrupts (the OS keeps running).
        if (engine_.inEvent())
            return engine_.tick(counters_);
        counters_.tickCycle(StallCause::None);
        return 0.12; // idle loop
    }

    // Phase bookkeeping.
    if (++cyclesIntoPhase_ > phaseDuration_) {
        if (phaseIdx_ + 1 < schedule_.phases.size()) {
            enterPhase(phaseIdx_ + 1);
        } else if (schedule_.loop) {
            enterPhase(0);
        } else {
            done_ = true;
            counters_.tickCycle(StallCause::None);
            return 0.12;
        }
        ++cyclesIntoPhase_;
    }

    // Event process: only running cycles draw the next event closer
    // (a stalled pipeline is not generating new misses).
    if (!engine_.inEvent()) {
        if (cyclesToNextEvent_ == 0 || --cyclesToNextEvent_ == 0) {
            // Pick the class proportionally to its rate.
            double pick = rng_.uniform() * totalEventRate_;
            std::size_t cls = 0;
            for (; cls + 1 < kNumEventClasses; ++cls) {
                pick -= phase().eventRatesPer1k[cls] / 1000.0;
                if (pick <= 0.0)
                    break;
            }
            const StallCause cause = eventClassCause(cls);
            counters_.recordEvent(cause);
            if (cause == StallCause::L2Miss &&
                phase().l2StallScale != 1.0) {
                EventTiming t = defaultTiming(cause);
                const double scale = phase().l2StallScale;
                t.stallCycles = static_cast<std::uint32_t>(
                    std::max(1.0,
                             static_cast<double>(t.stallCycles) * scale));
                // A shorter observed stall drains less state, so the
                // bursty refill is proportionally shorter too.
                t.surgeCycles = static_cast<std::uint32_t>(
                    std::max(4.0,
                             static_cast<double>(t.surgeCycles) * scale));
                engine_.beginEvent(cause, t);
            } else {
                engine_.beginEvent(cause);
            }
            scheduleNextEvent();
        }
    }

    double activity = engine_.tick(counters_);

    if (!engine_.blocked()) {
        // Commit instructions and apply activity dither while issuing.
        ipcAccumulator_ += phaseIpc_;
        if (ipcAccumulator_ >= 1.0) {
            const auto whole = static_cast<std::uint64_t>(ipcAccumulator_);
            counters_.commitInstructions(whole);
            ipcAccumulator_ -= static_cast<double>(whole);
        }
        if (engine_.state() == EngineState::Surge) {
            // Refill is dependence-limited and erratic: wide activity
            // noise rides on the surge. Rare cross-core coincidences
            // of this noise are what produce the deep (5-10 %) droop
            // tail of the paper's Fig 7, and they scale with event
            // rate, preserving the stall-ratio coupling.
            activity += rng_.uniform(-0.3, 0.3);
        } else {
            const double jitter = phaseJitter_;
            if (jitter > 0.0)
                activity += rng_.uniform(-jitter, jitter);
        }
    }
    return activity;
}

void
FastCore::tickBlock(double *activity, std::size_t n)
{
    // Run-length fast path over the common case: the core is Running
    // with no phase boundary and no event due. Over such a stretch,
    // tick() reduces to "activity = running (+ jitter); advance the
    // IPC accumulator; bump integer counters" — the counters, the
    // phase position, and the event countdown are integer state that
    // one batched add updates to exactly the per-cycle totals, the
    // IPC accumulator is carried through the same per-cycle FP
    // updates in a local, and the RNG consumes exactly one uniform
    // per cycle (when the phase jitters), in the same sequence as n
    // external tick() calls. Every other cycle — event waveforms,
    // phase changes, the done_ idle loop — falls back to tick().
    std::size_t j = 0;
    while (j < n) {
        if (!done_ && engine_.inEvent() &&
            cyclesIntoPhase_ < phaseDuration_) {
            // Constant-activity stretch of an event waveform: a stall
            // at the floor, or a non-bursty refill surge. The event
            // countdown is frozen while in an event (tick() only
            // advances it when the engine is idle), phase time keeps
            // passing, and a stalled pipeline commits nothing while a
            // surging one keeps the IPC accumulator and the surge
            // noise running — all exactly as tick() does per cycle.
            Cycles run = std::min<Cycles>(
                n - j, phaseDuration_ - cyclesIntoPhase_);
            run = std::min<Cycles>(run, engine_.constantRunCycles());
            if (run > 0) {
                const double base = engine_.constantRunActivity();
                const std::size_t end =
                    j + static_cast<std::size_t>(run);
                if (engine_.state() == EngineState::Stalled) {
                    std::fill(activity + j, activity + end, base);
                    j = end;
                } else {
                    const double ipc = phaseIpc_;
                    double acc = ipcAccumulator_;
                    std::uint64_t insns = 0;
                    auto rng = rng_;
                    for (; j < end; ++j) {
                        acc += ipc;
                        if (acc >= 1.0) {
                            const auto whole =
                                static_cast<std::uint64_t>(acc);
                            insns += whole;
                            acc -= static_cast<double>(whole);
                        }
                        activity[j] = base + rng.uniform(-0.3, 0.3);
                    }
                    rng_ = rng;
                    ipcAccumulator_ = acc;
                    counters_.commitInstructions(insns);
                }
                engine_.advanceConstantRun(
                    static_cast<std::uint32_t>(run), counters_);
                cyclesIntoPhase_ += run;
                continue;
            }
        }
        if (done_ || engine_.inEvent() || cyclesToNextEvent_ < 2 ||
            cyclesIntoPhase_ >= phaseDuration_) {
            activity[j++] = FastCore::tick();
            continue;
        }
        // Longest stretch with no phase boundary (the boundary tick is
        // the one entered with cyclesIntoPhase_ == duration) and no
        // event firing (the firing tick is the one that decrements the
        // countdown to zero; a rate-free core's ~0 sentinel still
        // decrements per cycle, exactly as tick() does).
        Cycles run = std::min<Cycles>(
            n - j, phaseDuration_ - cyclesIntoPhase_);
        run = std::min(run, cyclesToNextEvent_ - 1);

        const double base = engine_.runningActivity();
        const double jit = phaseJitter_;
        const double ipc = phaseIpc_;
        double acc = ipcAccumulator_;
        std::uint64_t insns = 0;
        auto rng = rng_;
        const std::size_t end = j + static_cast<std::size_t>(run);
        if (jit > 0.0) {
            for (; j < end; ++j) {
                acc += ipc;
                if (acc >= 1.0) {
                    const auto whole = static_cast<std::uint64_t>(acc);
                    insns += whole;
                    acc -= static_cast<double>(whole);
                }
                activity[j] = base + rng.uniform(-jit, jit);
            }
        } else {
            for (; j < end; ++j) {
                acc += ipc;
                if (acc >= 1.0) {
                    const auto whole = static_cast<std::uint64_t>(acc);
                    insns += whole;
                    acc -= static_cast<double>(whole);
                }
                activity[j] = base;
            }
        }
        rng_ = rng;
        ipcAccumulator_ = acc;
        counters_.commitInstructions(insns);
        counters_.tickCycles(run);
        cyclesIntoPhase_ += run;
        cyclesToNextEvent_ -= run;
    }
}

Cycles
FastCore::minTicksUntilFinished() const
{
    if (done_) {
        // Only a draining injected event keeps finished() false; it
        // could end next cycle, so the bound collapses to per-cycle.
        return engine_.inEvent() ? 1 : 0;
    }
    if (schedule_.loop)
        return ~Cycles(0);
    // Ticks until done_ is set: the rest of the current phase, all
    // later phases, plus the tick whose increment steps past the last
    // phase's end (see the phase bookkeeping in tick()). An injected
    // event can only delay finishing further, so this stays a valid
    // lower bound.
    Cycles remaining = phase().duration - cyclesIntoPhase_;
    for (std::size_t p = phaseIdx_ + 1; p < schedule_.phases.size(); ++p)
        remaining += schedule_.phases[p].duration;
    return remaining + 1;
}

Cycles
FastCore::skippableCycles() const
{
    if (done_)
        return 0;
    if (schedule_.loop && schedule_.phases.size() == 1) {
        // A single looping phase is statistically self-similar across
        // its own boundary: re-entering it resets no observable state
        // beyond redrawing the (memoryless) event countdown, so the
        // sampler may skip arbitrarily far.
        return ~Cycles(0);
    }
    // Stay strictly inside the current phase: the boundary tick (the
    // one entered with cyclesIntoPhase_ == duration) changes the
    // activity process and must be simulated exactly.
    return phaseDuration_ - cyclesIntoPhase_;
}

void
FastCore::skipAhead(Cycles n, const SkipCounters &c)
{
    if (done_ || n == 0)
        return;
    if (cyclesIntoPhase_ + n <= phaseDuration_) {
        cyclesIntoPhase_ += n;
    } else {
        // Only reachable for a single looping phase (see
        // skippableCycles): positions repeat with period `duration`,
        // the re-entry tick mapping to position 1. The phase's cached
        // scalars are already current and the RNG stream is left
        // untouched — the stretch the skip replays already consumed
        // its draws.
        cyclesIntoPhase_ = (cyclesIntoPhase_ + n - 1) % phaseDuration_ + 1;
    }
    counters_.addExtrapolated(n, c.instructions, c.stallCycles, c.events);
}

void
FastCore::injectRecoveryStall(std::uint32_t cycles)
{
    counters_.recordEvent(StallCause::Recovery);
    EventTiming timing;
    timing.rampDownCycles = 0;
    timing.stallCycles = cycles;
    timing.stallActivity = 0.05;
    // Checkpoint restore ramps execution back up in a controlled way
    // (an aggressive restart right after an emergency would risk
    // re-triggering it — the recovery-storm failure mode).
    timing.surgeCycles = 16;
    timing.surgeActivity = 0.95;
    engine_.beginEvent(StallCause::Recovery, timing);
}

void
FastCore::injectPlatformInterrupt()
{
    counters_.recordEvent(StallCause::Exception);
    // The interrupt's restart burst scales with how hard the core was
    // running (an idle core's tick handler barely registers) and its
    // magnitude varies per tick with a long exponential tail: how
    // much state the handler displaced, what the scheduler ran, DMA
    // behind it. That heavy tail is what populates the deep end of
    // the droop distribution (the paper's 9.6 % extreme over 881
    // full-length runs).
    EventTiming t = platformInterruptTiming();
    const double magnitude = 1.0 + 0.5 * rng_.exponential(1.0);
    const double busy =
        std::min(engine_.runningActivity() * 1.55, 1.25);
    t.surgeActivity = std::clamp(busy * magnitude, 0.30, 2.40);
    engine_.beginEvent(StallCause::Exception, t);
}

bool
FastCore::finished() const
{
    return done_ && !engine_.inEvent();
}

} // namespace vsmooth::cpu
