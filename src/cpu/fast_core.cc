#include "fast_core.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsmooth::cpu {

StallCause
eventClassCause(std::size_t index)
{
    switch (index) {
      case 0: return StallCause::L1Miss;
      case 1: return StallCause::L2Miss;
      case 2: return StallCause::TlbMiss;
      case 3: return StallCause::BranchMispredict;
      case 4: return StallCause::Exception;
      default:
        panic("eventClassCause: index %zu out of range", index);
    }
}

double
ActivityPhase::expectedStallRatio() const
{
    // The event process only advances while the core is Running, so
    // the steady-state cycle budget per event is gap + blocked +
    // surge with gap = 1 / totalRate. Expected stall ratio is the
    // blocked share of that budget.
    double total_rate = 0.0;
    double mean_blocked = 0.0;
    double mean_surge = 0.0;
    for (std::size_t c = 0; c < kNumEventClasses; ++c) {
        const StallCause cause = eventClassCause(c);
        const EventTiming &t = defaultTiming(cause);
        const double r = eventRatesPer1k[c] / 1000.0;
        double stall = static_cast<double>(t.stallCycles);
        double surge = static_cast<double>(t.surgeCycles);
        if (cause == StallCause::L2Miss) {
            stall = std::max(1.0, stall * l2StallScale);
            surge = std::max(4.0, surge * l2StallScale);
        }
        total_rate += r;
        mean_blocked += r * (static_cast<double>(t.rampDownCycles) + stall);
        mean_surge += r * surge;
    }
    if (total_rate <= 0.0)
        return 0.0;
    mean_blocked /= total_rate;
    mean_surge /= total_rate;
    const double gap = 1.0 / total_rate;
    return mean_blocked / (gap + mean_blocked + mean_surge);
}

double
ActivityPhase::expectedIpc() const
{
    return ipcWhenRunning * (1.0 - expectedStallRatio());
}

Cycles
PhaseSchedule::totalDuration() const
{
    Cycles total = 0;
    for (const auto &p : phases)
        total += p.duration;
    return total;
}

FastCore::FastCore(PhaseSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed)
{
    if (schedule_.phases.empty())
        fatal("FastCore needs at least one phase");
    for (const auto &p : schedule_.phases) {
        if (p.duration == 0)
            fatal("FastCore: zero-length phase");
    }
    enterPhase(0);
}

void
FastCore::enterPhase(std::size_t idx)
{
    phaseIdx_ = idx;
    cyclesIntoPhase_ = 0;
    engine_.setRunningActivity(phase().baseActivity);
    totalEventRate_ = 0.0;
    for (double r : phase().eventRatesPer1k)
        totalEventRate_ += r / 1000.0;
    scheduleNextEvent();
}

void
FastCore::scheduleNextEvent()
{
    if (totalEventRate_ <= 0.0) {
        cyclesToNextEvent_ = ~Cycles(0);
        return;
    }
    cyclesToNextEvent_ = rng_.geometric(totalEventRate_);
}

double
FastCore::tick()
{
    if (done_) {
        // Even a finished workload's core still services recovery
        // stalls and platform interrupts (the OS keeps running).
        if (engine_.inEvent())
            return engine_.tick(counters_);
        counters_.tickCycle(StallCause::None);
        return 0.12; // idle loop
    }

    // Phase bookkeeping.
    if (++cyclesIntoPhase_ > phase().duration) {
        if (phaseIdx_ + 1 < schedule_.phases.size()) {
            enterPhase(phaseIdx_ + 1);
        } else if (schedule_.loop) {
            enterPhase(0);
        } else {
            done_ = true;
            counters_.tickCycle(StallCause::None);
            return 0.12;
        }
        ++cyclesIntoPhase_;
    }

    // Event process: only running cycles draw the next event closer
    // (a stalled pipeline is not generating new misses).
    if (!engine_.inEvent()) {
        if (cyclesToNextEvent_ == 0 || --cyclesToNextEvent_ == 0) {
            // Pick the class proportionally to its rate.
            double pick = rng_.uniform() * totalEventRate_;
            std::size_t cls = 0;
            for (; cls + 1 < kNumEventClasses; ++cls) {
                pick -= phase().eventRatesPer1k[cls] / 1000.0;
                if (pick <= 0.0)
                    break;
            }
            const StallCause cause = eventClassCause(cls);
            counters_.recordEvent(cause);
            if (cause == StallCause::L2Miss &&
                phase().l2StallScale != 1.0) {
                EventTiming t = defaultTiming(cause);
                const double scale = phase().l2StallScale;
                t.stallCycles = static_cast<std::uint32_t>(
                    std::max(1.0,
                             static_cast<double>(t.stallCycles) * scale));
                // A shorter observed stall drains less state, so the
                // bursty refill is proportionally shorter too.
                t.surgeCycles = static_cast<std::uint32_t>(
                    std::max(4.0,
                             static_cast<double>(t.surgeCycles) * scale));
                engine_.beginEvent(cause, t);
            } else {
                engine_.beginEvent(cause);
            }
            scheduleNextEvent();
        }
    }

    double activity = engine_.tick(counters_);

    if (!engine_.blocked()) {
        // Commit instructions and apply activity dither while issuing.
        ipcAccumulator_ += phase().ipcWhenRunning;
        if (ipcAccumulator_ >= 1.0) {
            const auto whole = static_cast<std::uint64_t>(ipcAccumulator_);
            counters_.commitInstructions(whole);
            ipcAccumulator_ -= static_cast<double>(whole);
        }
        if (engine_.state() == EngineState::Surge) {
            // Refill is dependence-limited and erratic: wide activity
            // noise rides on the surge. Rare cross-core coincidences
            // of this noise are what produce the deep (5-10 %) droop
            // tail of the paper's Fig 7, and they scale with event
            // rate, preserving the stall-ratio coupling.
            activity += rng_.uniform(-0.3, 0.3);
        } else {
            const double jitter = phase().activityJitter;
            if (jitter > 0.0)
                activity += rng_.uniform(-jitter, jitter);
        }
    }
    return activity;
}

void
FastCore::injectRecoveryStall(std::uint32_t cycles)
{
    counters_.recordEvent(StallCause::Recovery);
    EventTiming timing;
    timing.rampDownCycles = 0;
    timing.stallCycles = cycles;
    timing.stallActivity = 0.05;
    // Checkpoint restore ramps execution back up in a controlled way
    // (an aggressive restart right after an emergency would risk
    // re-triggering it — the recovery-storm failure mode).
    timing.surgeCycles = 16;
    timing.surgeActivity = 0.95;
    engine_.beginEvent(StallCause::Recovery, timing);
}

void
FastCore::injectPlatformInterrupt()
{
    counters_.recordEvent(StallCause::Exception);
    // The interrupt's restart burst scales with how hard the core was
    // running (an idle core's tick handler barely registers) and its
    // magnitude varies per tick with a long exponential tail: how
    // much state the handler displaced, what the scheduler ran, DMA
    // behind it. That heavy tail is what populates the deep end of
    // the droop distribution (the paper's 9.6 % extreme over 881
    // full-length runs).
    EventTiming t = platformInterruptTiming();
    const double magnitude = 1.0 + 0.5 * rng_.exponential(1.0);
    const double busy =
        std::min(engine_.runningActivity() * 1.55, 1.25);
    t.surgeActivity = std::clamp(busy * magnitude, 0.30, 2.40);
    engine_.beginEvent(StallCause::Exception, t);
}

bool
FastCore::finished() const
{
    return done_ && !engine_.inEvent();
}

} // namespace vsmooth::cpu
