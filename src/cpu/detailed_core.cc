#include "detailed_core.hh"

#include <algorithm>

namespace vsmooth::cpu {

DetailedCore::DetailedCore(const DetailedCoreParams &params,
                           InstructionSource &source, Cache *sharedL2)
    : params_(params),
      source_(source),
      l1d_(params.l1d),
      tlb_(params.tlbEntries, params.pageBytes),
      predictor_(params.predictorBits),
      engine_(params.fullIssueActivity)
{
    if (sharedL2 != nullptr) {
        l2_ = sharedL2;
    } else {
        ownedL2_ = std::make_unique<Cache>(params.l2);
        l2_ = ownedL2_.get();
    }
    if (params.enableFaultInjection) {
        faultInjector_ = std::make_unique<FaultInjector>(params.faultModel,
                                                         params.faultSeed);
        l1d_.attachFaultInjector(faultInjector_.get(),
                                 faultInjector_->registerStructure("l1d"));
        // A shared L2 belongs to several cores; attaching this core's
        // injector would make its fault stream depend on which core
        // constructed last. Only the private L2 is covered here.
        if (ownedL2_) {
            ownedL2_->attachFaultInjector(
                faultInjector_.get(),
                faultInjector_->registerStructure("l2"));
        }
        tlb_.attachFaultInjector(faultInjector_.get(),
                                 faultInjector_->registerStructure("tlb"));
        faultInjector_->setMargin(params.faultMargin);
    }
}

void
DetailedCore::setFaultMargin(double margin)
{
    if (faultInjector_)
        faultInjector_->setMargin(margin);
}

double
DetailedCore::tick()
{
    if (source_.finished()) {
        // Drain any in-flight event (recovery / platform interrupt)
        // before settling into the idle loop.
        if (engine_.inEvent())
            return engine_.tick(counters_);
        counters_.tickCycle(StallCause::None);
        return params_.idleActivity;
    }

    if (engine_.blocked()) {
        // The waveform engine owns the cycle while draining/stalled.
        return engine_.tick(counters_);
    }

    // Running (or refill surge): issue up to width instructions. The
    // first instruction that produces a stall event closes the group.
    std::uint32_t issued = 0;
    while (issued < params_.issueWidth && !source_.finished()) {
        const SyntheticInstruction instr = source_.next();
        ++issued;

        StallCause event = StallCause::None;

        if (instr.raisesException) {
            event = StallCause::Exception;
        } else if (instr.isMemory) {
            if (!tlb_.access(instr.memAddr)) {
                event = StallCause::TlbMiss;
            }
            // The cache access proceeds after the walk completes; model
            // the lookups unconditionally to keep contents warm.
            if (!l1d_.access(instr.memAddr)) {
                if (!l2_->access(instr.memAddr)) {
                    if (event == StallCause::None)
                        event = StallCause::L2Miss;
                } else if (event == StallCause::None) {
                    event = StallCause::L1Miss;
                }
            }
        } else if (instr.isBranch) {
            if (!predictor_.predictAndTrain(instr.pc, instr.branchTaken))
                event = StallCause::BranchMispredict;
        }

        if (event != StallCause::None) {
            counters_.recordEvent(event);
            engine_.beginEvent(event);
            break;
        }
    }

    counters_.commitInstructions(issued);

    // Map this cycle's issue occupancy onto the engine's running
    // level so partially filled groups draw proportionally less.
    const double frac = static_cast<double>(issued) /
        static_cast<double>(params_.issueWidth);
    engine_.setRunningActivity(
        params_.idleActivity +
        (params_.fullIssueActivity - params_.idleActivity) * frac);

    return engine_.tick(counters_);
}

void
DetailedCore::injectRecoveryStall(std::uint32_t cycles)
{
    counters_.recordEvent(StallCause::Recovery);
    EventTiming timing;
    timing.rampDownCycles = 0;
    timing.stallCycles = cycles;
    timing.stallActivity = 0.05;
    // Checkpoint restore ramps execution back up in a controlled way
    // (an aggressive restart right after an emergency would risk
    // re-triggering it — the recovery-storm failure mode).
    timing.surgeCycles = 16;
    timing.surgeActivity = 0.95;
    engine_.beginEvent(StallCause::Recovery, timing);
}

void
DetailedCore::injectPlatformInterrupt()
{
    counters_.recordEvent(StallCause::Exception);
    // The interrupt's restart burst scales with how hard the core was
    // running: an idle core's tick handler barely registers, a busy
    // core restarts everything at once.
    EventTiming t = platformInterruptTiming();
    t.surgeActivity = std::clamp(engine_.runningActivity() * 1.80,
                                 0.30, 1.70); // deterministic model
    engine_.beginEvent(StallCause::Exception, t);
}

bool
DetailedCore::finished() const
{
    return source_.finished() && !engine_.inEvent();
}

} // namespace vsmooth::cpu
