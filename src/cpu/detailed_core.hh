/**
 * @file
 * Detailed core: executes a synthetic instruction stream through
 * cache/TLB/branch-predictor structures; stall events fall out of the
 * structures and the StallEngine shapes the activity waveform.
 */

#ifndef VSMOOTH_CPU_DETAILED_CORE_HH
#define VSMOOTH_CPU_DETAILED_CORE_HH

#include <cstdint>
#include <memory>

#include "cpu/branch_predictor.hh"
#include "cpu/cache.hh"
#include "cpu/core_model.hh"
#include "cpu/fault_injector.hh"
#include "cpu/instruction.hh"
#include "cpu/stall_engine.hh"
#include "cpu/tlb.hh"

namespace vsmooth::cpu {

/** Microarchitectural parameters of the detailed core. */
struct DetailedCoreParams
{
    std::uint32_t issueWidth = 4;
    CacheGeometry l1d = core2L1dGeometry();
    CacheGeometry l2 = core2L2Geometry();
    std::uint32_t tlbEntries = 256;
    std::uint32_t pageBytes = 4096;
    std::uint32_t predictorBits = 14;
    /** Activity contribution floor when no instruction issues. */
    double idleActivity = 0.12;
    /** Activity contribution of a full-width issue cycle. */
    double fullIssueActivity = 1.0;
    /** Undervolt fault injection into the core's own L1D/L2/TLB
     *  (disabled by default; a shared L2 is never attached — give it a
     *  shared injector via Cache::attachFaultInjector if wanted). */
    bool enableFaultInjection = false;
    FaultModelParams faultModel{};
    /** Operating margin the fault model sees. */
    double faultMargin = 0.05;
    std::uint64_t faultSeed = 1;
};

/**
 * A simplified Core 2-class core: in-order issue of up to issueWidth
 * synthetic instructions per cycle; the first event-producing
 * instruction ends the issue group and begins its stall waveform.
 *
 * The shared L2 may be external (multi-core systems pass the same
 * Cache instance to both cores, modeling the E6300's shared L2).
 */
class DetailedCore : public CoreModel
{
  public:
    /**
     * @param params microarchitecture configuration
     * @param source dynamic instruction stream (not owned)
     * @param sharedL2 optional shared L2 (not owned); when null the
     *        core builds a private L2 from params
     */
    DetailedCore(const DetailedCoreParams &params,
                 InstructionSource &source, Cache *sharedL2 = nullptr);

    double tick() override;
    const PerfCounters &counters() const override { return counters_; }
    void injectRecoveryStall(std::uint32_t cycles) override;
    void injectPlatformInterrupt() override;
    bool finished() const override;

    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return *l2_; }
    const Tlb &tlb() const { return tlb_; }
    const BranchPredictor &predictor() const { return predictor_; }
    const StallEngine &engine() const { return engine_; }
    /** Fault injector, or nullptr when fault injection is disabled. */
    const FaultInjector *faultInjector() const
    { return faultInjector_.get(); }
    /** Retarget the fault model's margin mid-run (adaptive sweeps). */
    void setFaultMargin(double margin);

  private:
    DetailedCoreParams params_;
    InstructionSource &source_;
    Cache l1d_;
    std::unique_ptr<Cache> ownedL2_;
    Cache *l2_;
    Tlb tlb_;
    BranchPredictor predictor_;
    StallEngine engine_;
    PerfCounters counters_;
    std::unique_ptr<FaultInjector> faultInjector_;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_DETAILED_CORE_HH
