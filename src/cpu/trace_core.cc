#include "trace_core.hh"

#include <string>

#include "common/logging.hh"

namespace vsmooth::cpu {

ActivityTrace
ActivityTrace::fromStream(std::istream &is)
{
    ActivityTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Trim leading whitespace.
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + start, &end);
        if (end == line.c_str() + start)
            fatal("ActivityTrace: malformed line %zu: '%s'", lineno,
                  line.c_str());
        if (v < 0.0 || v > 2.5)
            fatal("ActivityTrace: activity %g out of range on line %zu",
                  v, lineno);
        trace.activity.push_back(v);
    }
    if (trace.activity.empty())
        fatal("ActivityTrace: empty trace");
    return trace;
}

TraceCore::TraceCore(ActivityTrace trace, bool loop, double stallThreshold)
    : trace_(std::move(trace)), loop_(loop),
      stallThreshold_(stallThreshold)
{
    if (trace_.activity.empty())
        fatal("TraceCore: empty trace");
}

double
TraceCore::tick()
{
    // An in-flight injected event (recovery / interrupt) overrides
    // the trace, exactly as it would preempt real execution.
    if (engine_.inEvent())
        return engine_.tick(counters_);

    if (done_) {
        counters_.tickCycle(StallCause::None);
        return 0.12;
    }

    const double activity = trace_.activity[position_];
    if (++position_ >= trace_.activity.size()) {
        if (loop_)
            position_ = 0;
        else
            done_ = true;
    }

    // Counter bookkeeping: the trace does not attribute causes, so
    // low-activity cycles are accounted as generic L2-class stalls.
    if (activity < stallThreshold_) {
        counters_.tickCycle(StallCause::L2Miss);
    } else {
        counters_.tickCycle(StallCause::None);
        ipcAccumulator_ += trace_.ipcWhenActive;
        if (ipcAccumulator_ >= 1.0) {
            const auto whole =
                static_cast<std::uint64_t>(ipcAccumulator_);
            counters_.commitInstructions(whole);
            ipcAccumulator_ -= static_cast<double>(whole);
        }
    }
    return activity;
}

void
TraceCore::tickBlock(double *activity, std::size_t n)
{
    // One virtual dispatch per block; the devirtualized tick inlines
    // into the loop and replays the trace with identical bookkeeping.
    for (std::size_t j = 0; j < n; ++j)
        activity[j] = TraceCore::tick();
}

Cycles
TraceCore::minTicksUntilFinished() const
{
    if (done_)
        return engine_.inEvent() ? 1 : 0;
    if (loop_)
        return ~Cycles(0);
    // The trace advances one entry per non-event tick, so the
    // remaining entries are a lower bound (an in-flight injected
    // event only pushes completion further out).
    return trace_.activity.size() - position_;
}

void
TraceCore::injectRecoveryStall(std::uint32_t cycles)
{
    counters_.recordEvent(StallCause::Recovery);
    EventTiming timing;
    timing.stallCycles = cycles;
    timing.stallActivity = 0.05;
    timing.surgeCycles = 16;
    timing.surgeActivity = 0.95;
    engine_.beginEvent(StallCause::Recovery, timing);
}

void
TraceCore::injectPlatformInterrupt()
{
    counters_.recordEvent(StallCause::Exception);
    engine_.beginEvent(StallCause::Exception, platformInterruptTiming());
}

bool
TraceCore::finished() const
{
    return done_ && !engine_.inEvent();
}

} // namespace vsmooth::cpu
