/**
 * @file
 * Activity-waveform state machine shared by the core models.
 *
 * The paper's central microarchitectural observation (Sec III-C) is
 * that *stall events shape the current waveform*: when the pipeline
 * stalls, activity (and current) collapses; when the stall resolves,
 * functional units all wake at once and current surges. The shape —
 * how fast activity falls, how deep, for how long, and how hard it
 * surges back — differs per event type and determines the voltage
 * swing it excites.
 *
 * StallEngine turns discrete stall events into that per-cycle activity
 * waveform:
 *
 *   Running --(event)--> RampDown --> Stalled --> Surge --> Running
 *
 * RampDown models out-of-order drain (L2 misses let the window issue a
 * little longer; branch flushes squash instantly). Surge models the
 * refill burst where issue runs at full width.
 */

#ifndef VSMOOTH_CPU_STALL_ENGINE_HH
#define VSMOOTH_CPU_STALL_ENGINE_HH

#include <array>
#include <cstdint>

#include "cpu/perf_counters.hh"
#include "dsp/primitives.hh"

namespace vsmooth::cpu {

/** Per-event activity-waveform shape. */
struct EventTiming
{
    /** Cycles for activity to drain from running level to the floor. */
    std::uint32_t rampDownCycles = 0;
    /** Cycles spent stalled at the floor. */
    std::uint32_t stallCycles = 0;
    /** Activity floor while stalled (clock-gated residual). */
    double stallActivity = 0.05;
    /** Cycles of refill burst after the stall resolves. */
    std::uint32_t surgeCycles = 0;
    /** Activity during the refill burst (can exceed steady state). */
    double surgeActivity = 1.0;
    /**
     * Bursty refill: after a long stall the drained window refills in
     * dependence-limited waves, so the surge alternates between full
     * tilt and a trough every wavePeriod cycles instead of holding one
     * level. Longer stalls drain more state and take proportionally
     * more waves to refill — the mechanism that couples below-margin
     * residence time to stall time (the paper's Fig 15 correlation).
     */
    bool burstySurge = false;
    std::uint32_t wavePeriod = 6;
    double waveLowActivity = 0.45;
};

/**
 * Default event timings for the modeled Core 2-class machine
 * (latencies in core cycles at 1.86 GHz).
 *
 * - L1 (L2-hit) miss: short, shallow — OOO hides most of it.
 * - L2 (memory) miss: long drain to a deep floor, big refill surge.
 * - TLB miss: hardware page walk, deep stall of medium length.
 * - Branch mispredict: instantaneous squash (no ramp) + fast refill;
 *   the sharpest di/dt edges, which is why the paper measures it as
 *   the largest single-core swing (Fig 12).
 * - Exception: pipeline drain, long microcode service, hard restart.
 */
const EventTiming &defaultTiming(StallCause cause);

/**
 * Waveform of a platform interrupt (OS timer tick): a hard
 * synchronous drain on every core followed by an aggressive restart.
 * Because all cores take it near-simultaneously, it is the main
 * source of the rare deep droops in the population tail (Fig 7's
 * -9.6 % extreme); accounted as an Exception.
 */
const EventTiming &platformInterruptTiming();

/** The stall engine's coarse execution state. */
enum class EngineState : std::uint8_t { Running, RampDown, Stalled, Surge };

/**
 * Converts stall events into a per-cycle activity waveform and keeps
 * the per-cause cycle accounting.
 */
class StallEngine
{
  public:
    /** @param runningActivity steady-state activity while issuing */
    explicit StallEngine(double runningActivity = 0.9);

    /**
     * Begin a stall event. Ignored (except for counting) if an event
     * of equal or deeper remaining impact is already in flight —
     * matching a blocking pipeline, a new miss under a flush does not
     * deepen the flush.
     *
     * @param cause event type (must not be None)
     * @param timing waveform shape for this event
     */
    void beginEvent(StallCause cause, const EventTiming &timing);

    /** Convenience: begin an event with its default timing. */
    void beginEvent(StallCause cause);

    /**
     * Advance one cycle; returns the activity level in [0, ~1.2] for
     * this cycle and updates the given counters (cycle + stall
     * attribution; the caller accounts instructions). Defined inline
     * below: this runs once per core per simulated cycle, and keeping
     * it header-visible lets core models fold it into their tick loop.
     */
    double tick(PerfCounters &counters);

    /** True while any event waveform is in flight. */
    bool inEvent() const { return state_ != EngineState::Running; }

    /** True while the pipeline cannot commit (ramp-down or stalled). */
    bool blocked() const
    {
        return state_ == EngineState::RampDown ||
               state_ == EngineState::Stalled;
    }

    EngineState state() const { return state_; }
    StallCause currentCause() const { return cause_; }

    /**
     * Length of the stretch of upcoming cycles over which tick()
     * would output a constant activity level without leaving the
     * current waveform segment (zero when the next tick could change
     * state or activity — Running, ramp-down, or a bursty surge).
     * Always leaves the segment's final cycle for tick() so the state
     * transition runs through the one per-cycle implementation.
     */
    std::uint32_t
    constantRunCycles() const
    {
        switch (state_) {
          case EngineState::Stalled:
            return phaseLeft_ - 1;
          case EngineState::Surge:
            return timing_.burstySurge ? 0 : phaseLeft_ - 1;
          default:
            return 0;
        }
    }

    /** The constant activity level of that stretch. */
    double
    constantRunActivity() const
    {
        return state_ == EngineState::Stalled ? timing_.stallActivity
                                              : timing_.surgeActivity;
    }

    /**
     * Advance n <= constantRunCycles() cycles at once: exactly n
     * tick() calls of the current segment (cycle accounting batched
     * through the integer counters, which is exact).
     */
    void
    advanceConstantRun(std::uint32_t n, PerfCounters &counters)
    {
        phaseLeft_ -= n;
        counters.tickCycles(state_ == EngineState::Stalled
                                ? cause_
                                : StallCause::None,
                            n);
    }

    /** Update the steady running activity level (phase changes). */
    void setRunningActivity(double activity) { running_ = activity; }
    double runningActivity() const { return running_; }

  private:
    double running_;
    EngineState state_ = EngineState::Running;
    StallCause cause_ = StallCause::None;
    EventTiming timing_{};
    std::uint32_t phaseLeft_ = 0;
    double rampStartActivity_ = 0.0;
    std::uint32_t rampTotal_ = 0;
    std::uint32_t surgeTotal_ = 0;
};

inline double
StallEngine::tick(PerfCounters &counters)
{
    double activity = running_;
    StallCause accounted = StallCause::None;

    switch (state_) {
      case EngineState::Running:
        break;

      case EngineState::RampDown: {
        // Linear drain from the running level to the stall floor;
        // the first ramp cycle already moves below the running level
        // (phaseLeft_ == rampTotal_ then, and the dsp ramp divides by
        // rampTotal_ + 1).
        activity = dsp::LinearRamp::at(phaseLeft_, rampTotal_,
                                       rampStartActivity_,
                                       timing_.stallActivity);
        accounted = cause_;
        if (--phaseLeft_ == 0) {
            if (timing_.stallCycles > 0) {
                state_ = EngineState::Stalled;
                phaseLeft_ = timing_.stallCycles;
            } else if (timing_.surgeCycles > 0) {
                state_ = EngineState::Surge;
                phaseLeft_ = timing_.surgeCycles;
            } else {
                state_ = EngineState::Running;
                cause_ = StallCause::None;
            }
        }
        break;
      }

      case EngineState::Stalled:
        activity = timing_.stallActivity;
        accounted = cause_;
        if (--phaseLeft_ == 0) {
            if (timing_.surgeCycles > 0) {
                state_ = EngineState::Surge;
                phaseLeft_ = timing_.surgeCycles;
                surgeTotal_ = timing_.surgeCycles;
            } else {
                state_ = EngineState::Running;
                cause_ = StallCause::None;
            }
        }
        break;

      case EngineState::Surge: {
        activity = timing_.surgeActivity;
        if (timing_.burstySurge) {
            // Dependence-limited refill waves: alternate between the
            // surge level and a trough every wavePeriod cycles.
            const std::uint32_t elapsed = surgeTotal_ - phaseLeft_;
            const std::uint32_t wave = elapsed / timing_.wavePeriod;
            if (wave % 2 == 1)
                activity = timing_.waveLowActivity;
        }
        // The refill burst is productive work, not a stall: no cause
        // accounting.
        if (--phaseLeft_ == 0) {
            state_ = EngineState::Running;
            cause_ = StallCause::None;
        }
        break;
      }
    }

    counters.tickCycle(accounted);
    return activity;
}

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_STALL_ENGINE_HH
