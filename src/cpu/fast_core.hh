/**
 * @file
 * Fast core: a phase-based stochastic activity process.
 *
 * Full-suite studies (29 benchmarks x 29 benchmarks of co-schedules,
 * Figs 15-19) need billions of simulated cycles; executing discrete
 * instructions through cache structures is unnecessary there because
 * what reaches the PDN is only the *activity waveform*. FastCore
 * samples stall events from per-phase rates and shapes the waveform
 * with the same StallEngine the DetailedCore uses, so both models
 * produce statistically compatible current traces (verified by an
 * integration test).
 *
 * Phases are the paper's "voltage noise phases" (Sec IV-A): recurring
 * levels of stall activity that the noise-aware scheduler exploits.
 */

#ifndef VSMOOTH_CPU_FAST_CORE_HH
#define VSMOOTH_CPU_FAST_CORE_HH

#include <array>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "cpu/core_model.hh"
#include "cpu/stall_engine.hh"

namespace vsmooth::cpu {

/** Number of stochastic event classes a phase parameterizes. */
constexpr std::size_t kNumEventClasses = 5;

/** Map an event-class index (0..4) to its StallCause. */
StallCause eventClassCause(std::size_t index);

/** One execution phase of a workload. */
struct ActivityPhase
{
    /** Phase length in cycles. */
    Cycles duration = 0;
    /** Steady activity level while issuing. */
    double baseActivity = 0.9;
    /** Half-width of uniform per-cycle activity dither. */
    double activityJitter = 0.03;
    /** Committed IPC while the pipeline is not blocked. */
    double ipcWhenRunning = 1.6;
    /** Stall-event rates per 1000 cycles: L1, L2, TLB, BR, EXCP. */
    std::array<double, kNumEventClasses> eventRatesPer1k{};
    /**
     * Memory-level-parallelism model: memory-bound phases overlap
     * their L2 misses, so each *observed* stall event is shorter than
     * one full memory round trip. Scales the L2 stall duration.
     */
    double l2StallScale = 1.0;

    /**
     * Expected stall ratio this phase produces, from the rates and
     * the default event timings (used to design benchmark profiles).
     */
    double expectedStallRatio() const;

    /** Expected overall IPC including stall cycles. */
    double expectedIpc() const;
};

/** A workload as a sequence of phases. */
struct PhaseSchedule
{
    std::vector<ActivityPhase> phases;
    /** Restart from the first phase when the last one ends. */
    bool loop = false;

    /** Sum of phase durations (one pass). */
    Cycles totalDuration() const;
};

/** Stochastic phase-driven core model. */
class FastCore : public CoreModel
{
  public:
    /**
     * @param schedule the workload's phase sequence (copied)
     * @param seed RNG seed (every core gets an independent stream)
     */
    FastCore(PhaseSchedule schedule, std::uint64_t seed);

    double tick() override;
    void tickBlock(double *activity, std::size_t n) override;
    const PerfCounters &counters() const override { return counters_; }
    void injectRecoveryStall(std::uint32_t cycles) override;
    void injectPlatformInterrupt() override;
    bool finished() const override;
    Cycles minTicksUntilFinished() const override;
    Cycles skippableCycles() const override;
    void skipAhead(Cycles n, const SkipCounters &c) override;

    /** Index of the phase currently executing. */
    std::size_t currentPhaseIndex() const { return phaseIdx_; }

    /**
     * True once the schedule has been consumed, even if a transient
     * event (recovery, platform interrupt) is still draining —
     * finished() additionally waits for the drain. Schedulers use
     * this to reap jobs without racing periodic interrupts.
     */
    bool workloadComplete() const { return done_; }

    const StallEngine &engine() const { return engine_; }

  private:
    const ActivityPhase &phase() const
    { return schedule_.phases[phaseIdx_]; }
    void enterPhase(std::size_t idx);
    void scheduleNextEvent();

    PhaseSchedule schedule_;
    Rng rng_;
    StallEngine engine_;
    PerfCounters counters_;

    std::size_t phaseIdx_ = 0;
    Cycles cyclesIntoPhase_ = 0;
    bool done_ = false;

    /** Hot fields of the current phase, cached as scalars at
     *  enterPhase() so tick() avoids re-chasing the phases vector
     *  (three loads per cycle on the steady-state path). */
    Cycles phaseDuration_ = 0;
    double phaseIpc_ = 0.0;
    double phaseJitter_ = 0.0;

    double totalEventRate_ = 0.0; // per cycle
    double eventLogQ_ = 0.0;      // log1p(-totalEventRate_), hoisted
    Cycles cyclesToNextEvent_ = 0;
    double ipcAccumulator_ = 0.0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_FAST_CORE_HH
