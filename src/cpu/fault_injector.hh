/**
 * @file
 * Margin-dependent SRAM bit-flip injection.
 *
 * Soyturk et al. (arXiv 1912.00154) measure that undervolted SRAM
 * arrays fail with a bit-flip rate that grows steeply as the supply
 * guard band thins. This injector gives "margin too thin" that
 * functional cost: each cache/TLB access draws a fault decision, and
 * a fault invalidates the addressed entry (the parity/ECC machinery
 * detects the flip and forces a refetch), so thin margins cost real
 * misses rather than just detector counts.
 *
 * Determinism is load-bearing. The decision for access `i` of
 * structure `s` is a pure function of (seed, s, i): a splitmix64-style
 * hash compared against a margin-derived threshold. Because the access
 * index is the structure's own access count — not a global clock or an
 * address — identical runs produce identical fault sequences at any
 * `--jobs` or lane count, and because the threshold is monotone in the
 * margin, the fault sets at two margins are exactly nested (every
 * access that faults at the wider margin also faults at any thinner
 * one, per seed).
 */

#ifndef VSMOOTH_CPU_FAULT_INJECTOR_HH
#define VSMOOTH_CPU_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vsmooth::cpu {

/** Shape of the margin-to-fault-rate curve. */
struct FaultModelParams
{
    /** Margin at or above which the per-access fault probability is
     *  exactly zero — the nominal guard band the model calibrates to. */
    double safeMargin = 0.05;
    /** Per-access fault probability at margin 0 (guard band fully
     *  consumed). */
    double rateAtZeroMargin = 1e-3;
    /** Growth exponent of the rate as the margin thins below safe:
     *  p(m) = rate * ((safe - m) / safe)^exponent. */
    double exponent = 2.0;
};

/** Deterministic per-access bit-flip oracle with per-structure
 *  counters. Attach one per core; structures register once and query
 *  with their own access index. */
class FaultInjector
{
  public:
    FaultInjector(const FaultModelParams &params, std::uint64_t seed);

    const FaultModelParams &params() const { return params_; }
    std::uint64_t seed() const { return seed_; }

    /** Register a named structure (l1d, l2, tlb, ...); the returned id
     *  scopes its fault decisions and counter. */
    std::size_t registerStructure(std::string name);

    /** Set the operating margin the model sees (recomputes the hash
     *  threshold). */
    void setMargin(double margin);
    double margin() const { return margin_; }

    /** Per-access fault probability at the current margin. */
    double faultProbability() const { return probability_; }
    /** The margin-to-rate curve itself (pure, for tests/plots). */
    static double faultProbabilityAt(const FaultModelParams &params,
                                     double margin);

    /**
     * Draw the fault decision for one access. @p accessIndex must be
     * the structure's own monotone access count. Counts the fault when
     * it fires.
     */
    bool
    shouldFault(std::size_t structureId, std::uint64_t accessIndex)
    {
        if (threshold_ == 0)
            return false;
        if (hashAccess(seed_, structureId, accessIndex) >= threshold_)
            return false;
        ++faults_[structureId];
        return true;
    }

    /** Decision oracle without the counter side effect (pure). */
    static bool
    wouldFault(std::uint64_t seed, std::size_t structureId,
               std::uint64_t accessIndex, std::uint64_t threshold)
    {
        return threshold != 0 &&
               hashAccess(seed, structureId, accessIndex) < threshold;
    }

    /** Hash threshold for a probability (faults fire on hash < this). */
    static std::uint64_t thresholdFor(double probability);
    std::uint64_t threshold() const { return threshold_; }

    std::size_t numStructures() const { return faults_.size(); }
    const std::string &structureName(std::size_t id) const
    { return names_.at(id); }
    std::uint64_t faultCount(std::size_t id) const
    { return faults_.at(id); }
    std::uint64_t totalFaults() const;

  private:
    static std::uint64_t
    hashAccess(std::uint64_t seed, std::size_t structureId,
               std::uint64_t accessIndex)
    {
        // splitmix64 finalizer over a seed/structure/index blend; the
        // odd multipliers keep distinct structures and indices from
        // aliasing before the avalanche.
        std::uint64_t x = seed;
        x += 0x9E3779B97F4A7C15ull * (structureId + 1);
        x += 0xD1B54A32D192ED03ull * accessIndex;
        x += 0x9E3779B97F4A7C15ull;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    FaultModelParams params_;
    std::uint64_t seed_;
    double margin_;
    double probability_ = 0.0;
    std::uint64_t threshold_ = 0;
    std::vector<std::string> names_;
    std::vector<std::uint64_t> faults_;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_FAULT_INJECTOR_HH
