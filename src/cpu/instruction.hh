/**
 * @file
 * Synthetic instruction descriptors and the stream interface the
 * DetailedCore executes.
 *
 * Workloads (microbenchmarks, the power virus) are expressed as
 * streams of these descriptors; microarchitectural events are *not*
 * annotated here — they arise when the core runs the stream through
 * its caches, TLB, and branch predictor, just as the paper's
 * hand-written loops stimulated the real structures.
 */

#ifndef VSMOOTH_CPU_INSTRUCTION_HH
#define VSMOOTH_CPU_INSTRUCTION_HH

#include <cstdint>

#include "cpu/cache.hh"

namespace vsmooth::cpu {

/** One synthetic instruction. */
struct SyntheticInstruction
{
    Addr pc = 0;
    bool isBranch = false;
    bool branchTaken = false;
    bool isMemory = false;
    Addr memAddr = 0;
    /** Architectural exception (the EXCP microbenchmark). */
    bool raisesException = false;
};

/** Supplies the dynamic instruction stream to a DetailedCore. */
class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /** Produce the next dynamic instruction. */
    virtual SyntheticInstruction next() = 0;

    /** True once the stream is exhausted (infinite streams: false). */
    virtual bool finished() const { return false; }
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_INSTRUCTION_HH
