/**
 * @file
 * Hardware-performance-counter model.
 *
 * The paper's scheduler reads exactly two derived quantities from
 * VTune: the *stall ratio* (cycles the pipeline is waiting / total
 * cycles — Sec IV-A) and IPC. We keep full per-cause accounting so the
 * characterization benches (Fig 12/13/15) can attribute noise to
 * specific microarchitectural events.
 */

#ifndef VSMOOTH_CPU_PERF_COUNTERS_HH
#define VSMOOTH_CPU_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace vsmooth::cpu {

/** Microarchitectural stall causes tracked by the counters. */
enum class StallCause : std::uint8_t
{
    None = 0,
    L1Miss,
    L2Miss,
    TlbMiss,
    BranchMispredict,
    Exception,
    Recovery, // rollback/recovery stall injected by the fail-safe
    NumCauses
};

/** Human-readable name for a stall cause. */
std::string_view stallCauseName(StallCause cause);

/** Per-core event and cycle counters. */
class PerfCounters
{
  public:
    static constexpr std::size_t kNumCauses =
        static_cast<std::size_t>(StallCause::NumCauses);

    /** Account one cycle; cause == None means the core was issuing. */
    void
    tickCycle(StallCause cause)
    {
        ++cycles_;
        if (cause != StallCause::None)
            ++stallCycles_[static_cast<std::size_t>(cause)];
    }

    /**
     * Account n consecutive issuing cycles at once; exactly n
     * tickCycle(StallCause::None) calls (cycle counts are integers,
     * so one batched add produces the same totals).
     */
    void tickCycles(std::uint64_t n) { cycles_ += n; }

    /** Account n consecutive cycles attributed to one cause at once;
     *  exactly n tickCycle(cause) calls. */
    void
    tickCycles(StallCause cause, std::uint64_t n)
    {
        cycles_ += n;
        if (cause != StallCause::None)
            stallCycles_[static_cast<std::size_t>(cause)] += n;
    }

    /** Account committed instructions for this cycle. */
    void commitInstructions(std::uint64_t n) { instructions_ += n; }

    /** Account the *start* of a stall event of the given cause. */
    void recordEvent(StallCause cause)
    {
        if (cause != StallCause::None)
            ++events_[static_cast<std::size_t>(cause)];
    }

    /**
     * Account an extrapolated fast-forward (sampled execution): the
     * core really advances `cycles` clock cycles, while the work done
     * in them — instructions, per-cause stall cycles and event starts
     * — is credited from a scaled representative window rather than
     * simulated. Cycle totals stay exact; the credited quantities
     * carry the sampler's error bounds.
     */
    void
    addExtrapolated(std::uint64_t cycles, std::uint64_t instructions,
                    const std::array<std::uint64_t, kNumCauses> &stalls,
                    const std::array<std::uint64_t, kNumCauses> &events)
    {
        cycles_ += cycles;
        instructions_ += instructions;
        for (std::size_t c = 0; c < kNumCauses; ++c) {
            stallCycles_[c] += stalls[c];
            events_[c] += events[c];
        }
    }

    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t instructions() const { return instructions_; }

    /** Total cycles stalled for any cause. */
    std::uint64_t totalStallCycles() const;

    /** Stall cycles attributed to one cause. */
    std::uint64_t
    stallCycles(StallCause cause) const
    {
        return stallCycles_[static_cast<std::size_t>(cause)];
    }

    /** Number of stall events of one cause. */
    std::uint64_t
    eventCount(StallCause cause) const
    {
        return events_[static_cast<std::size_t>(cause)];
    }

    /** Committed instructions per cycle. */
    double ipc() const;

    /**
     * The paper's stall-ratio metric: fraction of cycles the pipeline
     * was waiting (Sec IV-A; VTune's "stall ratio" event).
     */
    double stallRatio() const;

    /** Reset all counts. */
    void reset();

  private:
    std::uint64_t cycles_ = 0;
    std::uint64_t instructions_ = 0;
    std::array<std::uint64_t, kNumCauses> stallCycles_{};
    std::array<std::uint64_t, kNumCauses> events_{};
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_PERF_COUNTERS_HH
