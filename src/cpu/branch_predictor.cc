#include "branch_predictor.hh"

#include "common/logging.hh"

namespace vsmooth::cpu {

BranchPredictor::BranchPredictor(std::uint32_t tableBits)
{
    if (tableBits == 0 || tableBits > 24)
        fatal("branch predictor table bits %u outside (0,24]", tableBits);
    table_.assign(std::size_t(1) << tableBits, 1); // weakly not-taken
    mask_ = (1u << tableBits) - 1;
}

bool
BranchPredictor::predictAndTrain(Addr pc, bool taken)
{
    const std::uint32_t idx =
        static_cast<std::uint32_t>((pc >> 2) ^ history_) & mask_;
    std::uint8_t &ctr = table_[idx];
    const bool predicted = ctr >= 2;
    ++lookups_;

    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;

    const bool correct = predicted == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

double
BranchPredictor::mispredictRate() const
{
    return lookups_ == 0
        ? 0.0
        : static_cast<double>(mispredicts_) /
            static_cast<double>(lookups_);
}

} // namespace vsmooth::cpu
