/**
 * @file
 * Trace-replay core: drives the PDN from a recorded per-cycle
 * activity trace instead of a synthetic workload model.
 *
 * This is the bring-your-own-data path for downstream users: measure
 * (or generate elsewhere) a per-cycle activity waveform, load it as a
 * trace, and study its voltage-noise behaviour on any platform
 * variant. Stall accounting uses a simple activity threshold so the
 * scheduler-facing counters stay meaningful.
 */

#ifndef VSMOOTH_CPU_TRACE_CORE_HH
#define VSMOOTH_CPU_TRACE_CORE_HH

#include <istream>
#include <vector>

#include "cpu/core_model.hh"
#include "cpu/stall_engine.hh"

namespace vsmooth::cpu {

/** A recorded activity trace. */
struct ActivityTrace
{
    /** Per-cycle activity levels in [0, ~1.2]. */
    std::vector<double> activity;
    /** IPC attributed to non-stalled cycles (counter bookkeeping). */
    double ipcWhenActive = 1.5;

    /**
     * Parse a trace from a stream: one activity value per line;
     * blank lines and lines starting with '#' are skipped. Fatal on
     * malformed input or an empty trace.
     */
    static ActivityTrace fromStream(std::istream &is);
};

/** Replays an ActivityTrace as a CoreModel. */
class TraceCore : public CoreModel
{
  public:
    /**
     * @param trace the waveform to replay (copied)
     * @param loop restart from the beginning at the end of the trace
     * @param stallThreshold cycles with activity below this count as
     *        stalled in the performance counters
     */
    explicit TraceCore(ActivityTrace trace, bool loop = false,
                       double stallThreshold = 0.3);

    double tick() override;
    void tickBlock(double *activity, std::size_t n) override;
    const PerfCounters &counters() const override { return counters_; }
    void injectRecoveryStall(std::uint32_t cycles) override;
    void injectPlatformInterrupt() override;
    bool finished() const override;
    Cycles minTicksUntilFinished() const override;

    /** Position in the trace (wraps when looping). */
    std::size_t position() const { return position_; }

  private:
    ActivityTrace trace_;
    bool loop_;
    double stallThreshold_;
    StallEngine engine_; // services recovery stalls and interrupts
    PerfCounters counters_;
    std::size_t position_ = 0;
    bool done_ = false;
    double ipcAccumulator_ = 0.0;
};

} // namespace vsmooth::cpu

#endif // VSMOOTH_CPU_TRACE_CORE_HH
