#include "itrs.hh"

#include "common/logging.hh"

namespace vsmooth::tech {

const std::vector<TechNode> &
itrsNodes()
{
    static const std::vector<TechNode> nodes = {
        {"45nm", 45.0, Volts(1.0)},
        {"32nm", 32.0, Volts(0.9)},
        {"22nm", 22.0, Volts(0.8)},
        {"16nm", 16.0, Volts(0.7)},
        {"11nm", 11.0, Volts(0.6)},
    };
    return nodes;
}

const TechNode &
nodeByFeature(double featureNm)
{
    for (const auto &node : itrsNodes()) {
        if (node.featureNm == featureNm)
            return node;
    }
    fatal("unknown technology node %g nm", featureNm);
}

Amps
scaledStimulus(Amps stimulusAt45nm, const TechNode &node)
{
    const double vdd45 = itrsNodes().front().vdd.value();
    return Amps(stimulusAt45nm.value() * vdd45 / node.vdd.value());
}

} // namespace vsmooth::tech
