/**
 * @file
 * Ring-oscillator circuit-delay model (paper footnote 2).
 *
 * The paper derives its margin-to-frequency curves (Fig 2) from
 * circuit simulation of an 11-stage fanout-of-4 inverter ring across
 * PTM technology nodes. We model the same structure with the
 * alpha-power-law MOSFET delay model (Sakurai-Newton):
 *
 *   f(V) ∝ (V - Vth)^alpha / V
 *
 * which captures the key effect the paper highlights: circuit delay
 * becomes dramatically more sensitive to supply voltage as Vdd scales
 * down toward Vth, so the same percentage margin costs more frequency
 * in later nodes.
 */

#ifndef VSMOOTH_TECH_RING_OSCILLATOR_HH
#define VSMOOTH_TECH_RING_OSCILLATOR_HH

#include "common/units.hh"

namespace vsmooth::tech {

/** Alpha-power-law ring oscillator. */
class RingOscillator
{
  public:
    /**
     * @param vth threshold voltage (roughly constant across nodes)
     * @param alpha velocity-saturation exponent (~1.4 in scaled CMOS)
     * @param stages number of inverter stages (11 in the paper)
     */
    explicit RingOscillator(Volts vth = Volts(0.35), double alpha = 1.4,
                            int stages = 11);

    /**
     * Oscillation frequency at a supply voltage, in arbitrary units
     * (only ratios are meaningful). Returns 0 at or below Vth.
     */
    double frequencyAt(Volts vdd) const;

    /**
     * Frequency at (1 - margin) * vddNominal as a percentage of the
     * frequency at vddNominal — the y-axis of the paper's Fig 2.
     */
    double peakFrequencyPercent(Volts vddNominal, double margin) const;

    Volts vth() const { return vth_; }
    double alpha() const { return alpha_; }
    int stages() const { return stages_; }

  private:
    Volts vth_;
    double alpha_;
    int stages_;
};

} // namespace vsmooth::tech

#endif // VSMOOTH_TECH_RING_OSCILLATOR_HH
