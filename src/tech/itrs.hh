/**
 * @file
 * Technology-node scaling assumptions (paper footnote 1).
 *
 * The paper's Fig 1 projection assumes Vdd scales per ITRS from 1.0 V
 * at 45 nm to 0.6 V at 11 nm while the current stimulus scales
 * inversely with Vdd at iso-power (same power budget drawn at a lower
 * voltage means proportionally more current).
 */

#ifndef VSMOOTH_TECH_ITRS_HH
#define VSMOOTH_TECH_ITRS_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace vsmooth::tech {

/** One process technology node. */
struct TechNode
{
    std::string name;
    double featureNm;
    Volts vdd;
};

/** The five nodes of the paper's projection, 45 nm first. */
const std::vector<TechNode> &itrsNodes();

/** Look up a node by feature size; fatal if unknown. */
const TechNode &nodeByFeature(double featureNm);

/**
 * Current stimulus at a node, scaled inversely with Vdd from a
 * baseline stimulus at the 45 nm node (iso-power assumption).
 */
Amps scaledStimulus(Amps stimulusAt45nm, const TechNode &node);

} // namespace vsmooth::tech

#endif // VSMOOTH_TECH_ITRS_HH
