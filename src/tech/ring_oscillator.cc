#include "ring_oscillator.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsmooth::tech {

RingOscillator::RingOscillator(Volts vth, double alpha, int stages)
    : vth_(vth), alpha_(alpha), stages_(stages)
{
    if (vth_.value() <= 0.0)
        fatal("RingOscillator: Vth must be positive");
    if (alpha_ < 1.0 || alpha_ > 2.0)
        fatal("RingOscillator: alpha %g outside the physical [1,2] range",
              alpha_);
    if (stages_ < 3 || stages_ % 2 == 0)
        fatal("RingOscillator: need an odd stage count >= 3 (got %d)",
              stages_);
}

double
RingOscillator::frequencyAt(Volts vdd) const
{
    const double v = vdd.value();
    const double vth = vth_.value();
    if (v <= vth)
        return 0.0;
    // Stage delay ∝ C * V / Idsat, Idsat ∝ (V - Vth)^alpha; the ring
    // period is 2 * stages * delay — a constant factor, kept so the
    // absolute number is interpretable.
    const double stage_rate = std::pow(v - vth, alpha_) / v;
    return stage_rate / (2.0 * static_cast<double>(stages_));
}

double
RingOscillator::peakFrequencyPercent(Volts vddNominal, double margin) const
{
    if (margin < 0.0 || margin >= 1.0)
        fatal("margin %g outside [0,1)", margin);
    const double f_nom = frequencyAt(vddNominal);
    if (f_nom <= 0.0)
        fatal("nominal supply %g V does not oscillate",
              vddNominal.value());
    const double f_margin =
        frequencyAt(Volts(vddNominal.value() * (1.0 - margin)));
    return 100.0 * f_margin / f_nom;
}

} // namespace vsmooth::tech
