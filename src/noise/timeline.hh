/**
 * @file
 * Droop-rate timelines and voltage-noise phase detection.
 *
 * The paper plots "droops per 1K cycles" averaged over 60-second
 * intervals to expose voltage noise phases (Fig 14) and correlates
 * the per-interval droop rate with the stall ratio (Fig 15). The
 * counts are derived from the oscilloscope's *histogram* data
 * (Sec III-B), i.e. they are voltage samples below the margin per
 * 1000 cycles — which is also why the paper's values reach 120/1K,
 * above the ~40/1K ceiling one excursion-per-ring-period counting
 * would allow at the platform's resonance frequency. NoiseTimeline
 * reproduces that sample-count metric; hysteresis *event* counting
 * (DroopDetector) is used where one excursion must equal one recovery
 * (the resilience model).
 */

#ifndef VSMOOTH_NOISE_TIMELINE_HH
#define VSMOOTH_NOISE_TIMELINE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "noise/droop_detector.hh"

namespace vsmooth::noise {

/** Accumulates droop events into fixed-length intervals. */
class NoiseTimeline
{
  public:
    /**
     * @param intervalCycles interval length (the 60 s of the paper,
     *        scaled to simulation length)
     * @param margin droop-counting margin (paper uses 2.3 %, chosen
     *        because idle activity stays inside it)
     */
    NoiseTimeline(Cycles intervalCycles, double margin = 0.023);

    /** Feed one per-cycle deviation sample. */
    void
    feed(double deviation)
    {
        if (deviation < -margin_) {
            ++droopsThisInterval_;
            ++totalDroops_;
        }
        if (++cyclesThisInterval_ == intervalCycles_)
            closeInterval();
    }

    /**
     * Feed a block of consecutive samples. The margin and the two
     * counters are held in locals between interval boundaries; the
     * per-sample work is one compare plus increments, with the same
     * counting (and interval-close points) as feed() per cycle.
     */
    void
    feedBlock(const double *deviations, std::size_t n)
    {
        const double margin = margin_;
        std::size_t j = 0;
        while (j < n) {
            const Cycles room = intervalCycles_ - cyclesThisInterval_;
            const std::size_t chunk =
                static_cast<std::size_t>(
                    std::min<Cycles>(room, n - j));
            std::uint64_t droops = 0;
            for (std::size_t k = j; k < j + chunk; ++k) {
                if (deviations[k] < -margin)
                    ++droops;
            }
            droopsThisInterval_ += droops;
            totalDroops_ += droops;
            cyclesThisInterval_ += chunk;
            if (cyclesThisInterval_ == intervalCycles_)
                closeInterval();
            j += chunk;
        }
    }

    /**
     * Advance the timeline by `cycles` extrapolated cycles carrying
     * `droops` below-margin samples in total (sampled execution
     * fast-forward). Interval boundaries are crossed exactly as if
     * the cycles had been fed one by one; the droops are allocated
     * to the crossed intervals proportionally with integer
     * arithmetic, so the credited total is exactly `droops` and
     * series lengths match an exact run of the same cycle count.
     */
    void feedExtrapolated(Cycles cycles, std::uint64_t droops);

    /** Close any partial interval and return the series. */
    const std::vector<double> &finish();

    /** Droops per 1000 cycles, one entry per completed interval. */
    const std::vector<double> &series() const { return series_; }

    double margin() const { return margin_; }
    std::uint64_t totalDroops() const { return totalDroops_; }
    /** Droops per 1K cycles over the whole run so far. */
    double overallRate() const;

  private:
    void closeInterval();

    Cycles intervalCycles_;
    double margin_;
    Cycles cyclesThisInterval_ = 0;
    Cycles totalCycles_ = 0;
    std::uint64_t droopsThisInterval_ = 0;
    std::uint64_t totalDroops_ = 0;
    std::vector<double> series_;
    bool finished_ = false;
};

/** A detected phase: a run of intervals with a similar droop rate. */
struct NoisePhase
{
    std::size_t firstInterval;
    std::size_t lastInterval; // inclusive
    double meanDroopsPer1k;
};

/**
 * Segment a droop-rate series into phases: a new phase starts when
 * the rate moves more than `threshold` (droops/1K cycles) away from
 * the running mean of the current phase.
 */
std::vector<NoisePhase> detectPhases(const std::vector<double> &series,
                                     double threshold = 15.0);

} // namespace vsmooth::noise

#endif // VSMOOTH_NOISE_TIMELINE_HH
