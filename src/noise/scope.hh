/**
 * @file
 * The oscilloscope model: streaming capture of per-cycle voltage
 * deviations into a compressed histogram (the Agilent scope's
 * histogram mode, Sec II-A), plus peak-to-peak tracking.
 */

#ifndef VSMOOTH_NOISE_SCOPE_HH
#define VSMOOTH_NOISE_SCOPE_HH

#include "common/histogram.hh"

namespace vsmooth::noise {

/**
 * Captures voltage deviation samples (signed fraction of nominal).
 * Range covers the deepest physically plausible excursions
 * (-25 %..+15 %) at 0.01 % resolution.
 */
class Scope
{
  public:
    Scope();

    /** Record one per-cycle deviation sample. */
    void record(double deviation) { histogram_.add(deviation); }

    /** Record a block of consecutive per-cycle deviation samples. */
    void
    recordBlock(const double *deviations, std::size_t n)
    {
        histogram_.addBlock(deviations, n);
    }

    /** Merge another scope's samples (multi-run aggregation). */
    void merge(const Scope &other) { histogram_.merge(other.histogram_); }

    /**
     * Record `weight` extrapolated replays of an already-captured
     * sample window (sampled execution). Mass conservation is exact:
     * the histogram total grows by weight * window total. The window
     * was itself recorded here cycle by cycle, so its extremes are
     * already reflected in minSample()/maxSample().
     */
    void
    recordExtrapolated(const Histogram &window, std::uint64_t weight)
    {
        histogram_.mergeScaled(window, weight);
    }

    const Histogram &histogram() const { return histogram_; }

    /** Largest droop seen, as a positive fraction (e.g. 0.096). */
    double maxDroop() const;
    /** Largest overshoot seen, as a positive fraction. */
    double maxOvershoot() const;
    /** Peak-to-peak swing as a fraction of nominal. */
    double peakToPeak() const;
    /**
     * Visually apparent peak-to-peak swing: the span between extreme
     * quantiles rather than absolute min/max. This matches what the
     * paper read off the scope's persistence display — one-in-a-
     * billion alignments do not register there.
     */
    double visualPeakToPeak(double tailFraction = 3e-5) const;
    /** Fraction of samples below a (negative) deviation. */
    double fractionBelow(double deviation) const
    { return histogram_.fractionBelow(deviation); }
    /** Fraction of samples outside +/- band (the paper's "beyond
     *  typical case" metric; band positive, e.g. 0.04). */
    double fractionOutside(double band) const;

    void clear() { histogram_.clear(); }

  private:
    Histogram histogram_;
};

} // namespace vsmooth::noise

#endif // VSMOOTH_NOISE_SCOPE_HH
