#include "timeline.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsmooth::noise {

NoiseTimeline::NoiseTimeline(Cycles intervalCycles, double margin)
    : intervalCycles_(intervalCycles), margin_(margin)
{
    if (intervalCycles == 0)
        fatal("NoiseTimeline: interval must be positive");
    if (margin <= 0.0)
        fatal("NoiseTimeline: margin must be positive");
}

void
NoiseTimeline::closeInterval()
{
    series_.push_back(static_cast<double>(droopsThisInterval_) * 1000.0 /
                      static_cast<double>(cyclesThisInterval_));
    totalCycles_ += cyclesThisInterval_;
    droopsThisInterval_ = 0;
    cyclesThisInterval_ = 0;
}

void
NoiseTimeline::feedExtrapolated(Cycles cycles, std::uint64_t droops)
{
    // Chunk at interval boundaries like feedBlock(). After consuming
    // c of the skipped cycles, exactly floor(droops * c / cycles)
    // droops have been credited — the final chunk lands on c ==
    // cycles, so the credited total is exactly `droops`. The 128-bit
    // intermediate keeps the product exact for any cycle count.
    Cycles done = 0;
    std::uint64_t credited = 0;
    while (done < cycles) {
        const Cycles room = intervalCycles_ - cyclesThisInterval_;
        const Cycles chunk = std::min<Cycles>(room, cycles - done);
        done += chunk;
        const auto upto = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(droops) * done / cycles);
        const std::uint64_t d = upto - credited;
        credited = upto;
        droopsThisInterval_ += d;
        totalDroops_ += d;
        cyclesThisInterval_ += chunk;
        if (cyclesThisInterval_ == intervalCycles_)
            closeInterval();
    }
}

double
NoiseTimeline::overallRate() const
{
    const Cycles cycles = totalCycles_ + cyclesThisInterval_;
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(totalDroops_) * 1000.0 /
        static_cast<double>(cycles);
}

const std::vector<double> &
NoiseTimeline::finish()
{
    if (!finished_) {
        if (cyclesThisInterval_ > intervalCycles_ / 2)
            closeInterval(); // keep a mostly-complete tail interval
        finished_ = true;
    }
    return series_;
}

std::vector<NoisePhase>
detectPhases(const std::vector<double> &series, double threshold)
{
    std::vector<NoisePhase> phases;
    if (series.empty())
        return phases;

    NoisePhase current{0, 0, series[0]};
    double sum = series[0];
    std::size_t count = 1;

    for (std::size_t i = 1; i < series.size(); ++i) {
        const double mean = sum / static_cast<double>(count);
        if (std::abs(series[i] - mean) > threshold) {
            current.lastInterval = i - 1;
            current.meanDroopsPer1k = mean;
            phases.push_back(current);
            current = NoisePhase{i, i, series[i]};
            sum = series[i];
            count = 1;
        } else {
            sum += series[i];
            ++count;
        }
    }
    current.lastInterval = series.size() - 1;
    current.meanDroopsPer1k = sum / static_cast<double>(count);
    phases.push_back(current);
    return phases;
}

} // namespace vsmooth::noise
