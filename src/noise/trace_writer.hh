/**
 * @file
 * Waveform trace capture and CSV export.
 *
 * The scope histogram compresses away time; for debugging and for
 * waveform figures (Fig 11-style plots), TraceWriter records a
 * bounded window of per-cycle samples — voltage deviation, total
 * current, and per-core activity — and writes them as CSV for
 * external plotting.
 */

#ifndef VSMOOTH_NOISE_TRACE_WRITER_HH
#define VSMOOTH_NOISE_TRACE_WRITER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/units.hh"

namespace vsmooth::noise {

/** One recorded cycle. */
struct TraceSample
{
    Cycles cycle;
    double deviation;
    double currentAmps;
};

/**
 * Ring-buffered trace recorder: keeps the most recent `capacity`
 * samples, so it can run alongside arbitrarily long simulations and
 * still export the interesting window at the end (or be `freeze()`d
 * the moment something interesting happens).
 */
class TraceWriter
{
  public:
    explicit TraceWriter(std::size_t capacity = 65536);

    /** Record one cycle (no-op when frozen). */
    void
    record(Cycles cycle, double deviation, double currentAmps)
    {
        if (frozen_)
            return;
        if (samples_.size() < capacity_) {
            samples_.push_back({cycle, deviation, currentAmps});
        } else {
            samples_[head_] = {cycle, deviation, currentAmps};
            head_ = (head_ + 1) % capacity_;
        }
    }

    /**
     * Record a block of consecutive cycles starting at startCycle.
     * The frozen check is paid once per block; the ring-buffer wrap
     * arithmetic matches record() sample for sample.
     */
    void
    recordBlock(Cycles startCycle, const double *deviations,
                const double *currentAmps, std::size_t n)
    {
        if (frozen_)
            return;
        std::size_t j = 0;
        while (samples_.size() < capacity_ && j < n) {
            samples_.push_back(
                {startCycle + j, deviations[j], currentAmps[j]});
            ++j;
        }
        for (; j < n; ++j) {
            samples_[head_] =
                {startCycle + j, deviations[j], currentAmps[j]};
            head_ = (head_ + 1) % capacity_;
        }
    }

    /** Stop recording; the current window is preserved. */
    void freeze() { frozen_ = true; }
    bool frozen() const { return frozen_; }

    /** Number of samples currently held. */
    std::size_t size() const { return samples_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Samples in chronological order (unwraps the ring). */
    std::vector<TraceSample> chronological() const;

    /** Write "cycle,deviation,current" CSV (with header). */
    void writeCsv(std::ostream &os) const;

  private:
    std::size_t capacity_;
    std::vector<TraceSample> samples_;
    std::size_t head_ = 0;
    bool frozen_ = false;
};

} // namespace vsmooth::noise

#endif // VSMOOTH_NOISE_TRACE_WRITER_HH
