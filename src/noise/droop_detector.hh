/**
 * @file
 * Voltage-noise event detection.
 *
 * A *droop event* begins when the voltage deviation falls below a
 * margin and ends when it recovers above a release level (hysteresis:
 * one excursion of the resonant ring = one event, not one event per
 * sample). This is the unit behind the paper's "droops per 1K cycles"
 * metric and, at the operating margin, behind emergency counting for
 * the resilient-design performance model.
 */

#ifndef VSMOOTH_NOISE_DROOP_DETECTOR_HH
#define VSMOOTH_NOISE_DROOP_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace vsmooth::noise {

/** Hysteresis threshold-crossing detector for droops (or, mirrored,
 *  overshoots). Deviations are signed fractions of nominal voltage
 *  (e.g. -0.023 = 2.3 % below nominal). */
class DroopDetector
{
  public:
    /**
     * @param margin positive fraction of nominal; an event starts
     *        when deviation < -margin
     * @param releaseFactor event ends when deviation rises above
     *        -margin * releaseFactor (0 <= factor < 1)
     */
    explicit DroopDetector(double margin, double releaseFactor = 0.9);

    /**
     * Feed one per-cycle deviation sample.
     * @return true if a new droop event starts on this sample
     */
    bool
    feed(double deviation)
    {
        if (inEvent_) {
            if (deviation < eventDepth_)
                eventDepth_ = deviation;
            if (deviation > release_) {
                inEvent_ = false;
                deepest_ = eventDepth_ < deepest_ ? eventDepth_ : deepest_;
            }
            return false;
        }
        if (deviation < threshold_) {
            inEvent_ = true;
            eventDepth_ = deviation;
            ++events_;
            return true;
        }
        return false;
    }

    /**
     * Credit `n` events that were extrapolated rather than observed
     * (sampled execution fast-forwarding a stationary stretch). The
     * hysteresis state and the deepest-event tracker are deliberately
     * untouched: the skipped stretch is a statistical replay of an
     * already-simulated window, so its extremes were already seen and
     * the in/out-of-event state at the skip boundary stays whatever
     * the last real sample left it.
     */
    void addExtrapolatedEvents(std::uint64_t n) { events_ += n; }

    std::uint64_t eventCount() const { return events_; }
    bool inEvent() const { return inEvent_; }
    double margin() const { return -threshold_; }
    /** The (negative) deviation level that ends an event. */
    double releaseLevel() const { return release_; }
    /** Deepest deviation of any completed event (<= 0). */
    double deepestEvent() const { return deepest_; }

    void reset();

  private:
    double threshold_;
    double release_;
    bool inEvent_ = false;
    double eventDepth_ = 0.0;
    double deepest_ = 0.0;
    std::uint64_t events_ = 0;
};

/** A set of droop detectors at different margins fed together, so one
 *  simulation yields emergency counts across the whole margin sweep
 *  (the x-axis of Figs 8 and 10). */
class DroopDetectorBank
{
  public:
    explicit DroopDetectorBank(const std::vector<double> &margins,
                               double releaseFactor = 0.9);

    /** Feed one deviation sample to every detector. */
    void
    feed(double deviation)
    {
        // Detectors are sorted by increasing margin, which gives a
        // monotone invariant: if a shallow detector is idle and not
        // triggered by this sample, no deeper detector can be either
        // (deeper thresholds are lower and deeper release levels are
        // crossed first on the way up). So we stop at the first
        // detector with nothing to do — on typical cycles that is the
        // very first one.
        for (auto &d : detectors_) {
            if (!d.inEvent() && deviation >= -d.margin())
                break;
            d.feed(deviation);
        }
    }

    /**
     * Feed a block of consecutive samples. The shallowest margin's
     * threshold is hoisted into a local so the common case — an idle
     * bank seeing an in-margin sample — is a flag load plus one
     * compare per sample; anything else drops into the per-sample
     * feed(). The skip condition is exactly feed()'s first-iteration
     * break (the shallowest detector is idle and untriggered, which
     * by the sorted-margin invariant means every detector is), so the
     * block path is bit-identical to feeding sample by sample.
     */
    void
    feedBlock(const double *deviations, std::size_t n)
    {
        if (detectors_.empty())
            return;
        const DroopDetector &front = detectors_.front();
        const double shallow = -front.margin();
        for (std::size_t j = 0; j < n; ++j) {
            const double d = deviations[j];
            if (!front.inEvent() && d >= shallow)
                continue;
            feed(d);
        }
    }

    /** Credit extrapolated events to detector i (sampled execution). */
    void addExtrapolatedEvents(std::size_t i, std::uint64_t n)
    { detectors_.at(i).addExtrapolatedEvents(n); }

    std::size_t size() const { return detectors_.size(); }
    const DroopDetector &detector(std::size_t i) const
    { return detectors_.at(i); }
    double marginAt(std::size_t i) const
    { return detectors_.at(i).margin(); }
    std::uint64_t eventCountAt(std::size_t i) const
    { return detectors_.at(i).eventCount(); }

    /**
     * Index of a configured margin. Exact values (as passed at
     * construction or returned by marginAt()) always resolve; values
     * recomputed through arithmetic are matched to the unambiguous
     * nearest margin within a relative last-ulp bound. Fatal if the
     * margin was never configured.
     */
    std::size_t indexForMargin(double margin) const;

    /** Event count for a configured margin (see indexForMargin). */
    std::uint64_t eventCountForMargin(double margin) const;

    void reset();

  private:
    std::vector<DroopDetector> detectors_;
    /** The configured margins, sorted ascending, stored exactly as
     *  the detectors were built (index-aligned with detectors_). */
    std::vector<double> margins_;
};

} // namespace vsmooth::noise

#endif // VSMOOTH_NOISE_DROOP_DETECTOR_HH
