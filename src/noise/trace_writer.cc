#include "trace_writer.hh"

#include "common/logging.hh"

namespace vsmooth::noise {

TraceWriter::TraceWriter(std::size_t capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("TraceWriter: capacity must be positive");
    samples_.reserve(capacity);
}

std::vector<TraceSample>
TraceWriter::chronological() const
{
    std::vector<TraceSample> out;
    out.reserve(samples_.size());
    if (samples_.size() < capacity_) {
        out = samples_;
    } else {
        for (std::size_t i = 0; i < samples_.size(); ++i)
            out.push_back(samples_[(head_ + i) % samples_.size()]);
    }
    return out;
}

void
TraceWriter::writeCsv(std::ostream &os) const
{
    os << "cycle,deviation,current_amps\n";
    for (const auto &s : chronological()) {
        os << s.cycle << ',' << s.deviation << ',' << s.currentAmps
           << '\n';
    }
}

} // namespace vsmooth::noise
