#include "droop_detector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsmooth::noise {

DroopDetector::DroopDetector(double margin, double releaseFactor)
    : threshold_(-margin), release_(-margin * releaseFactor)
{
    if (margin <= 0.0)
        fatal("DroopDetector: margin must be positive (got %g)", margin);
    if (releaseFactor < 0.0 || releaseFactor >= 1.0)
        fatal("DroopDetector: release factor %g outside [0,1)",
              releaseFactor);
}

void
DroopDetector::reset()
{
    inEvent_ = false;
    eventDepth_ = 0.0;
    deepest_ = 0.0;
    events_ = 0;
}

DroopDetectorBank::DroopDetectorBank(const std::vector<double> &margins,
                                     double releaseFactor)
{
    if (margins.empty())
        fatal("DroopDetectorBank: need at least one margin");
    std::vector<double> sorted = margins;
    std::sort(sorted.begin(), sorted.end());
    detectors_.reserve(sorted.size());
    for (double m : sorted)
        detectors_.emplace_back(m, releaseFactor);
}

std::uint64_t
DroopDetectorBank::eventCountForMargin(double margin) const
{
    for (const auto &d : detectors_) {
        if (std::abs(d.margin() - margin) < 1e-9)
            return d.eventCount();
    }
    fatal("DroopDetectorBank: margin %g was not configured", margin);
}

void
DroopDetectorBank::reset()
{
    for (auto &d : detectors_)
        d.reset();
}

} // namespace vsmooth::noise
