#include "droop_detector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace vsmooth::noise {

DroopDetector::DroopDetector(double margin, double releaseFactor)
    : threshold_(-margin), release_(-margin * releaseFactor)
{
    if (margin <= 0.0)
        fatal("DroopDetector: margin must be positive (got %g)", margin);
    if (releaseFactor < 0.0 || releaseFactor >= 1.0)
        fatal("DroopDetector: release factor %g outside [0,1)",
              releaseFactor);
}

void
DroopDetector::reset()
{
    inEvent_ = false;
    eventDepth_ = 0.0;
    deepest_ = 0.0;
    events_ = 0;
}

DroopDetectorBank::DroopDetectorBank(const std::vector<double> &margins,
                                     double releaseFactor)
{
    if (margins.empty())
        fatal("DroopDetectorBank: need at least one margin");
    margins_ = margins;
    std::sort(margins_.begin(), margins_.end());
    detectors_.reserve(margins_.size());
    for (double m : margins_)
        detectors_.emplace_back(m, releaseFactor);
}

std::size_t
DroopDetectorBank::indexForMargin(double margin) const
{
    // Exact match against the stored configured margins first — a
    // caller passing back a value obtained from marginAt()/the
    // original configuration always resolves, even when margins sit
    // closer together than any fixed epsilon.
    const auto it =
        std::lower_bound(margins_.begin(), margins_.end(), margin);
    if (it != margins_.end() && *it == margin)
        return static_cast<std::size_t>(it - margins_.begin());

    // Otherwise tolerate last-ulp noise from margins recomputed
    // through arithmetic (e.g. 0.01 * i vs an accumulated sum): pick
    // the nearest configured margin, require it to be unambiguous,
    // and bound the mismatch relative to the margin's magnitude
    // instead of the old brittle 1e-9 absolute epsilon.
    std::size_t best = 0;
    double bestDist = std::numeric_limits<double>::infinity();
    bool ambiguous = false;
    for (std::size_t i = 0; i < margins_.size(); ++i) {
        const double dist = std::abs(margins_[i] - margin);
        if (dist < bestDist) {
            bestDist = dist;
            best = i;
            ambiguous = false;
        } else if (dist == bestDist) {
            ambiguous = true;
        }
    }
    const double tol =
        1e-12 * std::max({1.0, std::abs(margin), margins_.back()});
    if (ambiguous || bestDist > tol) {
        fatal("DroopDetectorBank: margin %.17g was not configured",
              margin);
    }
    return best;
}

std::uint64_t
DroopDetectorBank::eventCountForMargin(double margin) const
{
    return detectors_[indexForMargin(margin)].eventCount();
}

void
DroopDetectorBank::reset()
{
    for (auto &d : detectors_)
        d.reset();
}

} // namespace vsmooth::noise
