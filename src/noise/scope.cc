#include "scope.hh"

namespace vsmooth::noise {

Scope::Scope() : histogram_(-0.25, 0.15, 4000)
{
}

double
Scope::maxDroop() const
{
    if (histogram_.totalCount() == 0)
        return 0.0;
    const double m = histogram_.minSample();
    return m < 0.0 ? -m : 0.0;
}

double
Scope::maxOvershoot() const
{
    if (histogram_.totalCount() == 0)
        return 0.0;
    const double m = histogram_.maxSample();
    return m > 0.0 ? m : 0.0;
}

double
Scope::peakToPeak() const
{
    if (histogram_.totalCount() == 0)
        return 0.0;
    return histogram_.maxSample() - histogram_.minSample();
}

double
Scope::visualPeakToPeak(double tailFraction) const
{
    if (histogram_.totalCount() == 0)
        return 0.0;
    return histogram_.quantile(1.0 - tailFraction) -
        histogram_.quantile(tailFraction);
}

double
Scope::fractionOutside(double band) const
{
    // Both tails are computed from their own tail mass; going through
    // 1 - fractionBelow(band) would cancel away the upper tail's
    // precision exactly where the paper's 0.06 %-beyond-4 % style
    // figures live.
    return histogram_.fractionBelow(-band) +
        histogram_.fractionAtOrAbove(band);
}

} // namespace vsmooth::noise
