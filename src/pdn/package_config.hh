/**
 * @file
 * Power-delivery-network parameterization.
 *
 * PackageConfig captures the electrical model of a processor's power
 * delivery: VRM output stage, bulk (board) capacitors, package
 * decoupling capacitors, package loop parasitics, and on-die grid
 * capacitance. The paper's Proc100..Proc0 processors are expressed by
 * scaling `decapFraction` — exactly the parameter the authors altered
 * physically by shaving capacitors off the package land side (Fig 5).
 *
 * Defaults model the Intel Core 2 Duo E6300 platform studied in the
 * paper: 1.325 V nominal supply, mid-frequency PDN resonance in the
 * 100-200 MHz band (validated against the paper's Fig 4), and a VRM
 * sawtooth ripple that keeps an idling machine inside a 2.3 % band
 * (Sec IV-A uses 2.3 % as the "idle activity" margin).
 */

#ifndef VSMOOTH_PDN_PACKAGE_CONFIG_HH
#define VSMOOTH_PDN_PACKAGE_CONFIG_HH

#include <cstddef>

#include "common/units.hh"

namespace vsmooth::pdn {

/** Full electrical description of the power delivery network. */
struct PackageConfig
{
    /** Nominal supply voltage (E6300 VID). */
    Volts vddNominal{1.325};

    // --- VRM output stage (low frequency) ------------------------------
    Ohms rVrm{0.3e-3};
    Henries lVrm{2.0e-9};

    // --- Bulk / board capacitors ---------------------------------------
    Farads cBulk{3.3e-3};
    Ohms esrBulk{0.5e-3};
    Henries eslBulk{0.1e-9};

    // --- Mid-frequency bank at the package node: package plane
    //     capacitance plus low-ESL ceramics; makes the package node a
    //     stiff reservoir at the die-tank resonance ---------------------
    Farads cMid{40e-6};
    Ohms esrMid{0.9e-3};
    Henries eslMid{5e-12};

    // --- Board / socket parasitics between bulk and package ------------
    Ohms rBoard{0.6e-3};
    Henries lBoard{40e-12};

    // --- Package decoupling capacitors (the ones removed in Fig 5) -----
    /**
     * Total land-side decap effective at the first-droop resonance
     * when fully populated (Proc100). Sized so that the p2p swing
     * ratios across Proc100..Proc0 track the paper's Fig 6
     * (Proc0/Proc100 ~ 2.3x) and the resonance stays in the measured
     * 100-250 MHz band.
     */
    Farads cPackage{320e-9};
    Ohms esrPackage{0.25e-3};
    Henries eslPackage{1.0e-12};
    /**
     * Fraction of package decap still present: 1.0 = Proc100,
     * 0.25 = Proc25, 0.03 = Proc3, 0.0 = Proc0.
     */
    double decapFraction = 1.0;

    // --- Package loop between decaps and die ---------------------------
    Ohms rPackage{0.5e-3};
    Henries lPackage{6.0e-12};

    // --- On-die decoupling (never removed) -----------------------------
    Farads cDie{70e-9};
    Ohms esrDie{0.45e-3};

    // --- On-die grid between the shared rail and each core -------------
    Ohms rGridPerCore{0.05e-3};

    // --- VRM switching ripple -------------------------------------------
    /** Peak (one-sided) ripple amplitude as a fraction of Vdd. */
    double rippleFraction = 0.009;
    /** VRM switching frequency. */
    Hertz rippleFrequency{1.0e6};

    /** The platform the paper measured: all decaps present. */
    static PackageConfig core2duo();

    /**
     * The Pentium 4-style package the paper's Fig 1 projection is
     * based on (larger, higher-current platform).
     */
    static PackageConfig pentium4();

    /**
     * Copy of this configuration with the given fraction of package
     * decap remaining (the paper's ProcN notation, N = 100 * frac).
     */
    PackageConfig withDecapFraction(double frac) const;

    /**
     * Effective tank capacitance at the die for the mid-frequency
     * resonance: on-die capacitance plus surviving package decap.
     */
    Farads effectiveCapacitance() const;

    /**
     * Mid-frequency (first-droop) resonance frequency implied by the
     * package loop inductance and the effective tank capacitance.
     */
    Hertz resonanceFrequency() const;

    /** Characteristic impedance sqrt(L/C) of the resonant tank. */
    Ohms characteristicImpedance() const;

    /** Quality factor of the mid-frequency resonance. */
    double qualityFactor() const;
};

/** Parameters of the reduced second-order (fast) model. */
struct SecondOrderParams
{
    Volts vdd{1.325};
    /** Series (DC-path) resistance: sets the IR drop under load and
     *  contributes to damping. */
    Ohms rSeries{1.4e-3};
    /** Damping resistance in series with the tank capacitor (the
     *  capacitor-bank ESRs): damps the ring without adding IR drop. */
    Ohms rDamp{1.15e-3};
    Henries l{11.0e-12};
    Farads c{390e-9};
};

/**
 * Reduce a full PackageConfig to the dominant second-order model used
 * by the per-cycle simulation loop. The reduction keeps the
 * mid-frequency tank (package loop L, effective die+package C) and
 * lumps the loss (damping) resistances.
 */
SecondOrderParams secondOrderEquivalent(const PackageConfig &cfg);

} // namespace vsmooth::pdn

#endif // VSMOOTH_PDN_PACKAGE_CONFIG_HH
