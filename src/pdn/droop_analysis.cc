#include "droop_analysis.hh"

#include <algorithm>

#include "circuit/transient.hh"
#include "common/logging.hh"
#include "pdn/ladder.hh"

namespace vsmooth::pdn {

double
VoltageWaveform::minVoltage() const
{
    if (samples.empty())
        panic("empty waveform");
    return *std::min_element(samples.begin(), samples.end());
}

double
VoltageWaveform::maxVoltage() const
{
    if (samples.empty())
        panic("empty waveform");
    return *std::max_element(samples.begin(), samples.end());
}

Seconds
VoltageWaveform::timeBelow(double fractionOfNominal) const
{
    const double threshold = vNominal * fractionOfNominal;
    std::size_t below = 0;
    for (double v : samples) {
        if (v < threshold)
            ++below;
    }
    return Seconds(static_cast<double>(below) * dt.value());
}

namespace {

/** Run the ladder with a piecewise-constant current schedule. */
VoltageWaveform
runSchedule(const PackageConfig &cfg,
            const std::vector<std::pair<Seconds, Amps>> &phases, Seconds dt)
{
    PdnNetwork pdn = buildLadder(cfg, 1);
    // Establish steady state at the first phase's current before
    // recording begins.
    pdn.net.setCurrentSource(pdn.loadSources[0], phases.front().second);
    circuit::TransientSolver solver(pdn.net, dt);

    VoltageWaveform wf;
    wf.dt = dt;
    wf.vNominal = cfg.vddNominal.value();

    for (const auto &[duration, current] : phases) {
        pdn.net.setCurrentSource(pdn.loadSources[0], current);
        const auto steps =
            static_cast<std::size_t>(duration.value() / dt.value());
        for (std::size_t s = 0; s < steps; ++s) {
            solver.step();
            wf.samples.push_back(solver.nodeVoltage(pdn.dieNode));
        }
    }
    return wf;
}

} // namespace

VoltageWaveform
simulateReset(const PackageConfig &cfg, const ResetStimulus &stim, Seconds dt)
{
    return runSchedule(cfg,
                       {{Seconds(100e-9), stim.idleCurrent},
                        {stim.haltDuration, stim.haltCurrent},
                        {stim.surgeDuration, stim.surgeCurrent},
                        {stim.tailDuration, stim.idleCurrent}},
                       dt);
}

VoltageWaveform
simulateCurrentStep(const PackageConfig &cfg, Amps iBefore, Amps iAfter,
                    Seconds duration, Seconds dt)
{
    return runSchedule(cfg,
                       {{Seconds(50e-9), iBefore}, {duration, iAfter}},
                       dt);
}

} // namespace vsmooth::pdn
