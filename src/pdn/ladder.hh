/**
 * @file
 * Full multi-stage PDN ladder netlist built on the circuit library.
 *
 * Topology (per the Intel VRD/package models the paper cites):
 *
 *   VRM ideal source --Rvrm--Lvrm--+-- board node
 *                                  |
 *                           bulk caps (C+ESR+ESL)
 *   board node --Rboard--Lboard--+-- package node
 *                                |
 *                         package decaps (scaled by decapFraction)
 *   package node --Rpkg--Lpkg--+-- die rail node
 *                              |
 *                        on-die cap (C+ESR)
 *   die rail --Rgrid--> per-core node (load current source per core)
 *
 * The die rail node is the probe point — the software analogue of the
 * VCCsense pin the paper tapped.
 */

#ifndef VSMOOTH_PDN_LADDER_HH
#define VSMOOTH_PDN_LADDER_HH

#include <vector>

#include "circuit/netlist.hh"
#include "pdn/package_config.hh"

namespace vsmooth::pdn {

/** A constructed PDN network with handles for simulation. */
struct PdnNetwork
{
    circuit::Netlist net;
    /** Shared die power rail — the VCCsense probe point. */
    circuit::NodeId dieNode = circuit::kGround;
    /** Per-core local supply nodes (dieNode when rGrid is 0). */
    std::vector<circuit::NodeId> coreNodes;
    /** The VRM output source (value adjustable, e.g. for ripple). */
    circuit::SourceId vrmSource;
    /** Per-core load current sources (value = core current draw). */
    std::vector<circuit::SourceId> loadSources;
};

/**
 * Build the ladder netlist for a package configuration.
 *
 * @param cfg the electrical model
 * @param numCores number of per-core load injection points (>= 1)
 */
PdnNetwork buildLadder(const PackageConfig &cfg, std::size_t numCores = 1);

} // namespace vsmooth::pdn

#endif // VSMOOTH_PDN_LADDER_HH
