#include "ladder.hh"

#include "common/logging.hh"

namespace vsmooth::pdn {

using circuit::kGround;
using circuit::NodeId;

PdnNetwork
buildLadder(const PackageConfig &cfg, std::size_t numCores)
{
    if (numCores == 0)
        fatal("buildLadder: need at least one core");

    PdnNetwork pdn;
    auto &net = pdn.net;

    // VRM ideal source behind its output impedance.
    const NodeId vrm_out = net.newNode();
    pdn.vrmSource = net.addVoltageSource(vrm_out, kGround, cfg.vddNominal,
                                         "vrm");
    const NodeId board = net.newNode();
    const NodeId vrm_mid = net.newNode();
    net.addResistor(vrm_out, vrm_mid, cfg.rVrm, "r_vrm");
    net.addInductor(vrm_mid, board, cfg.lVrm, "l_vrm");

    // Bulk capacitor branch: ESL + ESR + C in series to ground.
    {
        const NodeId n1 = net.newNode();
        const NodeId n2 = net.newNode();
        net.addInductor(board, n1, cfg.eslBulk, "esl_bulk");
        net.addResistor(n1, n2, cfg.esrBulk, "esr_bulk");
        net.addCapacitor(n2, kGround, cfg.cBulk, "c_bulk");
    }

    // Board/socket parasitics to the package node.
    const NodeId pkg = net.newNode();
    {
        const NodeId mid = net.newNode();
        net.addResistor(board, mid, cfg.rBoard, "r_board");
        net.addInductor(mid, pkg, cfg.lBoard, "l_board");
    }

    // Mid-frequency bank at the package node: abstracts the package
    // plane capacitance plus the many low-ESL ceramics that make the
    // package node a stiff reservoir at the die-tank resonance, so
    // the die-side tank (lPackage against the die-rail capacitance)
    // is the dominant resonance — the single-tank reduction DESIGN.md
    // describes.
    if (cfg.cMid.value() > 0.0) {
        const NodeId n1 = net.newNode();
        const NodeId n2 = net.newNode();
        net.addInductor(pkg, n1, cfg.eslMid, "esl_mid");
        net.addResistor(n1, n2, cfg.esrMid, "esr_mid");
        net.addCapacitor(n2, kGround, cfg.cMid, "c_mid");
    }

    // Package loop into the die rail.
    pdn.dieNode = net.newNode();
    {
        const NodeId mid = net.newNode();
        net.addResistor(pkg, mid, cfg.rPackage, "r_pkg");
        net.addInductor(mid, pdn.dieNode, cfg.lPackage, "l_pkg");
    }

    // Package decap branch at the die rail: these capacitors form the
    // dominant mid/high-frequency tank together with the on-die cap
    // (single-tank reduction; see DESIGN.md). Scaled by the surviving
    // fraction f: capacitance scales by f, branch ESR/ESL by 1/f.
    if (cfg.decapFraction > 0.0) {
        const double f = cfg.decapFraction;
        const NodeId n1 = net.newNode();
        const NodeId n2 = net.newNode();
        net.addInductor(pdn.dieNode, n1,
                        Henries(cfg.eslPackage.value() / f), "esl_pkgcap");
        net.addResistor(n1, n2, Ohms(cfg.esrPackage.value() / f),
                        "esr_pkgcap");
        net.addCapacitor(n2, kGround, cfg.cPackage * f, "c_pkgcap");
    }

    // On-die decoupling.
    {
        const NodeId n1 = net.newNode();
        net.addResistor(pdn.dieNode, n1, cfg.esrDie, "esr_die");
        net.addCapacitor(n1, kGround, cfg.cDie, "c_die");
    }

    // Per-core grid resistance and load injection.
    for (std::size_t c = 0; c < numCores; ++c) {
        NodeId core_node = pdn.dieNode;
        if (cfg.rGridPerCore.value() > 0.0) {
            core_node = net.newNode();
            net.addResistor(pdn.dieNode, core_node, cfg.rGridPerCore,
                            "r_grid_core" + std::to_string(c));
        }
        pdn.coreNodes.push_back(core_node);
        pdn.loadSources.push_back(
            net.addCurrentSource(core_node, kGround, Amps(0.0),
                                 "i_core" + std::to_string(c)));
    }

    return pdn;
}

} // namespace vsmooth::pdn
