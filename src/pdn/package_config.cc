#include "package_config.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsmooth::pdn {

PackageConfig
PackageConfig::core2duo()
{
    return PackageConfig{};
}

PackageConfig
PackageConfig::pentium4()
{
    PackageConfig cfg;
    // Larger package: more decap, more loop inductance, lower VID,
    // built for 50-100 A current steps (footnote 1 of the paper).
    cfg.vddNominal = Volts(1.0);
    cfg.cPackage = Farads(2.3e-6);
    cfg.cDie = Farads(500e-9);
    cfg.lPackage = Henries(1.2e-12);
    cfg.rPackage = Ohms(0.3e-3);
    cfg.esrDie = Ohms(0.1e-3);
    cfg.cBulk = Farads(5.0e-3);
    return cfg;
}

PackageConfig
PackageConfig::withDecapFraction(double frac) const
{
    if (frac < 0.0 || frac > 1.0)
        fatal("decap fraction %g outside [0,1]", frac);
    PackageConfig cfg = *this;
    cfg.decapFraction = frac;
    return cfg;
}

Farads
PackageConfig::effectiveCapacitance() const
{
    return cDie + cPackage * decapFraction;
}

Hertz
PackageConfig::resonanceFrequency() const
{
    const double l_eff = lPackage.value() + eslMid.value();
    const double lc = l_eff * effectiveCapacitance().value();
    return Hertz(1.0 / (2.0 * M_PI * std::sqrt(lc)));
}

Ohms
PackageConfig::characteristicImpedance() const
{
    const double l_eff = lPackage.value() + eslMid.value();
    return Ohms(std::sqrt(l_eff / effectiveCapacitance().value()));
}

double
PackageConfig::qualityFactor() const
{
    // Series loss around the resonant loop: package loop R, the mid
    // bank's ESR, and the on-die ESR.
    const double r_total =
        rPackage.value() + esrMid.value() + esrDie.value();
    return characteristicImpedance().value() / r_total;
}

SecondOrderParams
secondOrderEquivalent(const PackageConfig &cfg)
{
    SecondOrderParams p;
    p.vdd = cfg.vddNominal;
    // The effective tank the die sees: the package loop inductance in
    // series with the mid-bank ESL (the reservoir the ring discharges
    // into), against the die-rail capacitance. Matches the ladder's
    // AC analysis within a few percent (integration-tested).
    p.l = cfg.lPackage + cfg.eslMid;
    p.c = cfg.effectiveCapacitance();
    p.rSeries = Ohms(cfg.rVrm.value() + cfg.rBoard.value() +
                     cfg.rPackage.value());
    p.rDamp = Ohms(cfg.esrMid.value() + cfg.esrDie.value());
    return p;
}

} // namespace vsmooth::pdn
