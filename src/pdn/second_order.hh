/**
 * @file
 * Fast second-order PDN model for per-CPU-cycle coupling.
 *
 * The dominant voltage-noise dynamics are the mid-frequency resonance
 * of the package loop inductance against the die-side capacitance
 * (100-200 MHz in the paper's Fig 4). This class integrates that RLC
 * tank with a trapezoidal rule at the CPU clock period, so the core
 * activity model can inject a load current every cycle and read back
 * the die voltage — tens of nanoseconds of circuit response per cycle
 * at a few ns of CPU cost.
 *
 * State-space form, states x = [iL, vC], with the damping resistance
 * (capacitor-bank ESR) in the capacitor branch so it damps the ring
 * without adding DC IR drop:
 *   diL/dt = (Vdd(t) - vC - (rSeries + rDamp) iL + rDamp iLoad) / L
 *   dvC/dt = (iL - iLoad) / C
 *   vDie   = vC + rDamp (iL - iLoad)
 *
 * An optional sawtooth VRM ripple modulates Vdd(t), reproducing the
 * background waveform visible in the paper's Fig 11.
 */

#ifndef VSMOOTH_PDN_SECOND_ORDER_HH
#define VSMOOTH_PDN_SECOND_ORDER_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/units.hh"
#include "dsp/primitives.hh"
#include "pdn/package_config.hh"

namespace vsmooth::pdn {

/** Trapezoidal integrator for the reduced RLC supply model. */
class SecondOrderPdn
{
  public:
    /**
     * @param params reduced electrical model
     * @param dt integration step (one CPU clock period)
     * @param rippleFraction one-sided VRM ripple amplitude / Vdd
     * @param rippleFrequency VRM switching frequency (ignored if the
     *        fraction is zero)
     */
    SecondOrderPdn(const SecondOrderParams &params, Seconds dt,
                   double rippleFraction = 0.0,
                   Hertz rippleFrequency = Hertz(1e6));

    /** Convenience: build from a full package config. */
    SecondOrderPdn(const PackageConfig &cfg, Seconds dt);

    /**
     * Advance one timestep with the given load current and return the
     * die voltage at the end of the step.
     */
    double step(double loadAmps);

    /**
     * Hoisted per-sample kernel for batched execution: the update
     * matrix and the integrator state as plain values, so a caller
     * can keep the loop-carried iL/vC chain in registers across a
     * whole block and overlap it with the current models' smoothing
     * chains. step() performs exactly the arithmetic of step()
     * followed by voltageDeviation(); commit() writes the state
     * back.
     */
    struct BlockStepper
    {
        double m00, m01, m10, m11;
        double n00, n01, n10, n11;
        double vdd;
        double invVdd;
        double rc;
        double dt;
        double rippleAmp;
        const SecondOrderPdn *pdn;
        double iL;
        double vC;
        double vDie;
        double t;

        /** One step; returns the deviation (vDie/vdd - 1). */
        double step(double loadAmps)
        {
            const double vddEff = rippleAmp == 0.0
                ? vdd
                : vdd + 0.5 * (pdn->rippleAt(t) + pdn->rippleAt(t + dt));
            return stepWithVddEff(vddEff, loadAmps);
        }

        /**
         * step() with the effective supply already evaluated — the
         * hook for block loops that cache the ripple across samples
         * (this cycle's ripple(t) is last cycle's ripple(t + dt),
         * bitwise, since the ripple is a pure function of the t
         * bits). The recurrence is the dsp biquad kernel; its input
         * terms are grouped apart from the state terms, which keeps
         * them off the iL/vC carried dependency chain.
         */
        double stepWithVddEff(double vddEff, double loadAmps)
        {
            const double dev = dsp::biquadSample(
                iL, vC, vDie, m00, m01, m10, m11,
                dsp::biquadInput(n00, vddEff, n01, loadAmps),
                dsp::biquadInput(n10, vddEff, n11, loadAmps), loadAmps,
                rc, invVdd);
            t += dt;
            return dev;
        }
    };

    BlockStepper cursor() const
    {
        return BlockStepper{m00_, m01_, m10_, m11_,
                            n00_, n01_, n10_, n11_,
                            vdd_, invVdd_, rc_, dt_, rippleAmp_,
                            this, iL_, vC_, vDie_, time_};
    }

    void commit(const BlockStepper &s)
    {
        iL_ = s.iL;
        vC_ = s.vC;
        vDie_ = s.vDie;
        time_ = s.t;
    }

    /**
     * Advance n timesteps, reading load[j] amps for step j and
     * writing the resulting die-voltage deviation (signed fraction of
     * nominal, as voltageDeviation()) to deviation[j]. The loop body
     * performs the *same floating-point operations in the same order*
     * as n successive step() calls — state is merely held in locals —
     * so the results are bit-identical to stepping one cycle at a
     * time.
     */
    void stepBlock(const double *load, double *deviation,
                   std::size_t n);

    /** Die voltage after the last step. */
    double voltage() const { return vDie_; }

    /** Inductor (supply loop) current after the last step. */
    double inductorCurrent() const { return iL_; }

    /** Nominal supply voltage. */
    double vddNominal() const { return vdd_; }

    /** Die voltage as a signed fraction of nominal (0 = nominal).
     *  Uses the precomputed 1/vdd: this is read every simulated
     *  cycle, and the divide otherwise dominates the sample. */
    double voltageDeviation() const { return vDie_ * invVdd_ - 1.0; }

    /** Elapsed simulated time. */
    Seconds time() const { return Seconds(time_); }

    /** VRM ripple period in seconds (always finite and positive —
     *  set from the frequency even when the amplitude is zero). */
    double ripplePeriod() const { return ripplePeriod_; }

    /**
     * Reset state to the DC operating point for a given steady load.
     */
    void reset(double steadyLoadAmps = 0.0);

    /** Resonance frequency of the modeled tank. */
    Hertz resonanceFrequency() const;

    /** The VRM ripple source as a dsp primitive (pure function of
     *  time — safe to evaluate anywhere). */
    dsp::RippleOscillator ripple() const
    {
        return {rippleAmp_, ripplePeriod_};
    }

  private:
    double rippleAt(double t) const;

    /** stepBlock() for one chunk of n <= kChunk samples. */
    void stepChunk(const double *load, double *deviation,
                   std::size_t n);

    /** Chunk size of stepBlock's two-pass fast path: bounds the
     *  member scratch lanes below (no per-block heap), and matches
     *  the sim block size so the dominant caller runs one chunk. */
    static constexpr std::size_t kChunk = 256;

    double vdd_;
    /** Precomputed 1/vdd_ for the per-sample deviation scaling. */
    double invVdd_;
    double rs_;
    double rc_;
    double l_;
    double c_;
    double dt_;
    double rippleAmp_;
    double ripplePeriod_;

    // Precomputed trapezoidal update:
    //   x_{n+1} = M * x_n + N * u
    // with u = [vddEff, iLoad] averaged over the step.
    double m00_, m01_, m10_, m11_;
    double n00_, n01_, n10_, n11_;

    double iL_ = 0.0;
    double vC_ = 0.0;
    double vDie_ = 0.0;
    double time_ = 0.0;

    /** Scratch lanes for stepBlock's elementwise input pass: fixed
     *  kChunk-sized members, so the steady-state tick path never
     *  allocates (the allocation audit asserts this). */
    std::array<double, kChunk> scratch0_{};
    std::array<double, kChunk> scratch1_{};
};

} // namespace vsmooth::pdn

#endif // VSMOOTH_PDN_SECOND_ORDER_HH
