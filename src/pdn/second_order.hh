/**
 * @file
 * Fast second-order PDN model for per-CPU-cycle coupling.
 *
 * The dominant voltage-noise dynamics are the mid-frequency resonance
 * of the package loop inductance against the die-side capacitance
 * (100-200 MHz in the paper's Fig 4). This class integrates that RLC
 * tank with a trapezoidal rule at the CPU clock period, so the core
 * activity model can inject a load current every cycle and read back
 * the die voltage — tens of nanoseconds of circuit response per cycle
 * at a few ns of CPU cost.
 *
 * State-space form, states x = [iL, vC], with the damping resistance
 * (capacitor-bank ESR) in the capacitor branch so it damps the ring
 * without adding DC IR drop:
 *   diL/dt = (Vdd(t) - vC - (rSeries + rDamp) iL + rDamp iLoad) / L
 *   dvC/dt = (iL - iLoad) / C
 *   vDie   = vC + rDamp (iL - iLoad)
 *
 * An optional sawtooth VRM ripple modulates Vdd(t), reproducing the
 * background waveform visible in the paper's Fig 11.
 */

#ifndef VSMOOTH_PDN_SECOND_ORDER_HH
#define VSMOOTH_PDN_SECOND_ORDER_HH

#include <cstdint>

#include "common/units.hh"
#include "pdn/package_config.hh"

namespace vsmooth::pdn {

/** Trapezoidal integrator for the reduced RLC supply model. */
class SecondOrderPdn
{
  public:
    /**
     * @param params reduced electrical model
     * @param dt integration step (one CPU clock period)
     * @param rippleFraction one-sided VRM ripple amplitude / Vdd
     * @param rippleFrequency VRM switching frequency (ignored if the
     *        fraction is zero)
     */
    SecondOrderPdn(const SecondOrderParams &params, Seconds dt,
                   double rippleFraction = 0.0,
                   Hertz rippleFrequency = Hertz(1e6));

    /** Convenience: build from a full package config. */
    SecondOrderPdn(const PackageConfig &cfg, Seconds dt);

    /**
     * Advance one timestep with the given load current and return the
     * die voltage at the end of the step.
     */
    double step(double loadAmps);

    /** Die voltage after the last step. */
    double voltage() const { return vDie_; }

    /** Inductor (supply loop) current after the last step. */
    double inductorCurrent() const { return iL_; }

    /** Nominal supply voltage. */
    double vddNominal() const { return vdd_; }

    /** Die voltage as a signed fraction of nominal (0 = nominal). */
    double voltageDeviation() const { return vDie_ / vdd_ - 1.0; }

    /** Elapsed simulated time. */
    Seconds time() const { return Seconds(time_); }

    /**
     * Reset state to the DC operating point for a given steady load.
     */
    void reset(double steadyLoadAmps = 0.0);

    /** Resonance frequency of the modeled tank. */
    Hertz resonanceFrequency() const;

  private:
    double rippleAt(double t) const;

    double vdd_;
    double rs_;
    double rc_;
    double l_;
    double c_;
    double dt_;
    double rippleAmp_;
    double ripplePeriod_;

    // Precomputed trapezoidal update:
    //   x_{n+1} = M * x_n + N * u
    // with u = [vddEff, iLoad] averaged over the step.
    double m00_, m01_, m10_, m11_;
    double n00_, n01_, n10_, n11_;

    double iL_ = 0.0;
    double vC_ = 0.0;
    double vDie_ = 0.0;
    double time_ = 0.0;
};

} // namespace vsmooth::pdn

#endif // VSMOOTH_PDN_SECOND_ORDER_HH
