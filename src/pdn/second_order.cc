#include "second_order.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsmooth::pdn {

SecondOrderPdn::SecondOrderPdn(const SecondOrderParams &params, Seconds dt,
                               double rippleFraction, Hertz rippleFrequency)
    : vdd_(params.vdd.value()),
      invVdd_(1.0 / params.vdd.value()),
      rs_(params.rSeries.value()),
      rc_(params.rDamp.value()),
      l_(params.l.value()),
      c_(params.c.value()),
      dt_(dt.value()),
      rippleAmp_(rippleFraction * vdd_),
      ripplePeriod_(1.0 / rippleFrequency.value())
{
    if (dt_ <= 0.0)
        fatal("SecondOrderPdn: timestep must be positive");
    if (l_ <= 0.0 || c_ <= 0.0 || rs_ < 0.0 || rc_ < 0.0)
        fatal("SecondOrderPdn: L and C must be positive, R non-negative");

    // Three-element tank with the damping resistance in the capacitor
    // branch (vDie = vC + rDamp * (iL - iLoad)):
    //   L diL/dt = Vdd - vC - (rSeries + rDamp) iL + rDamp iLoad
    //   C dvC/dt = iL - iLoad
    const double a00 = -(rs_ + rc_) / l_;
    const double a01 = -1.0 / l_;
    const double a10 = 1.0 / c_;
    const double a11 = 0.0;
    const double h = dt_ / 2.0;

    // P = I - h*A, Q = I + h*A; M = P^-1 * Q, N = P^-1 * dt * B.
    const double p00 = 1.0 - h * a00;
    const double p01 = -h * a01;
    const double p10 = -h * a10;
    const double p11 = 1.0 - h * a11;
    const double det = p00 * p11 - p01 * p10;
    if (std::abs(det) < 1e-300)
        panic("SecondOrderPdn: singular discretization");
    const double i00 = p11 / det;
    const double i01 = -p01 / det;
    const double i10 = -p10 / det;
    const double i11 = p00 / det;

    const double q00 = 1.0 + h * a00;
    const double q01 = h * a01;
    const double q10 = h * a10;
    const double q11 = 1.0 + h * a11;

    m00_ = i00 * q00 + i01 * q10;
    m01_ = i00 * q01 + i01 * q11;
    m10_ = i10 * q00 + i11 * q10;
    m11_ = i10 * q01 + i11 * q11;

    // Input matrix for u = [vddEff, iLoad]:
    //   B = [[1/L, rDamp/L], [0, -1/C]] (times dt for the update).
    const double b00 = dt_ / l_;
    const double b01 = dt_ * rc_ / l_;
    const double b11 = -dt_ / c_;
    n00_ = i00 * b00;
    n10_ = i10 * b00;
    n01_ = i00 * b01 + i01 * b11;
    n11_ = i10 * b01 + i11 * b11;

    reset(0.0);
}

SecondOrderPdn::SecondOrderPdn(const PackageConfig &cfg, Seconds dt)
    : SecondOrderPdn(secondOrderEquivalent(cfg), dt, cfg.rippleFraction,
                     cfg.rippleFrequency)
{
}

double
SecondOrderPdn::step(double loadAmps)
{
    // Average the ripple over the step endpoints (trapezoidal input).
    // The ripple-free short-circuit is exact: rippleAt() returns 0.0
    // on both endpoints, and vdd_ + 0.5 * (0.0 + 0.0) == vdd_
    // bitwise. The recurrence is the dsp biquad kernel, shared with
    // the block paths and the cross-lane kernel.
    const double vddEff =
        ripple().vddEff(vdd_, time_, dt_);
    dsp::biquadSample(iL_, vC_, vDie_, m00_, m01_, m10_, m11_,
                      dsp::biquadInput(n00_, vddEff, n01_, loadAmps),
                      dsp::biquadInput(n10_, vddEff, n11_, loadAmps),
                      loadAmps, rc_, invVdd_);
    time_ += dt_;
    return vDie_;
}

double
SecondOrderPdn::rippleAt(double t) const
{
    // Triangle wave: the buck output droops between switching events
    // and recharges through the output filter — the recharge edge is
    // filtered, so no discontinuity that would ring the die tank.
    return dsp::triangleRippleSample(t, ripplePeriod_, rippleAmp_);
}

void
SecondOrderPdn::stepBlock(const double *load, double *deviation,
                          std::size_t n)
{
    // Chunking is result-invariant: the recurrence is strictly
    // serial, and the input pass is elementwise, so splitting a block
    // only moves where state crosses from locals to members.
    while (n > kChunk) {
        stepChunk(load, deviation, kChunk);
        load += kChunk;
        deviation += kChunk;
        n -= kChunk;
    }
    stepChunk(load, deviation, n);
}

void
SecondOrderPdn::stepChunk(const double *load, double *deviation,
                          std::size_t n)
{
    // Bit-identity throughout: every sample sees exactly step()'s
    // arithmetic (and the ripple-free short-circuit is exact:
    // rippleAt() == 0.0 makes vddEff == vdd_ bitwise), state merely
    // lives in locals for the duration of the block.
    if (rippleAmp_ != 0.0) {
        // The ripple is a pure function of the t bits and t advances
        // identically on every path, so this cycle's ripple(t) is
        // last cycle's ripple(t + dt) — cache it and pay one
        // evaluation (one division) per cycle instead of two, the
        // same cache the cross-lane kernel keeps.
        const dsp::RippleOscillator osc = ripple();
        BlockStepper s = cursor();
        double rPrev = osc.at(s.t);
        for (std::size_t j = 0; j < n; ++j) {
            const double rNext = osc.at(s.t + s.dt);
            deviation[j] =
                s.stepWithVddEff(s.vdd + 0.5 * (rPrev + rNext),
                                 load[j]);
            rPrev = rNext;
        }
        commit(s);
        return;
    }
    // Ripple-free fast path, two passes. The input terms
    // (n00*vdd + n01*load) depend only on the sample's load, so a
    // first pass computes them elementwise (no carried dependency —
    // the compiler can vectorize it), and the recurrence pass carries
    // only the lean mul+add chain per state. n00*vdd is loop
    // invariant; hoisting it is common-subexpression elimination, not
    // a reordering, so the sums are unchanged.
    double *const u0 = scratch0_.data();
    double *const u1 = scratch1_.data();
    {
        const double kv0 = n00_ * vdd_;
        const double kv1 = n10_ * vdd_;
        const double n01 = n01_;
        const double n11 = n11_;
        for (std::size_t j = 0; j < n; ++j) {
            u0[j] = kv0 + n01 * load[j];
            u1[j] = kv1 + n11 * load[j];
        }
    }
    const double m00 = m00_, m01 = m01_, m10 = m10_, m11 = m11_;
    const double rc = rc_;
    const double invVdd = invVdd_;
    const double dt = dt_;
    double iL = iL_;
    double vC = vC_;
    double vDie = vDie_;
    double t = time_;
    for (std::size_t j = 0; j < n; ++j) {
        deviation[j] =
            dsp::biquadSample(iL, vC, vDie, m00, m01, m10, m11, u0[j],
                              u1[j], load[j], rc, invVdd);
        t += dt;
    }
    iL_ = iL;
    vC_ = vC;
    vDie_ = vDie;
    time_ = t;
}

void
SecondOrderPdn::reset(double steadyLoadAmps)
{
    // DC operating point: iL = iLoad; only the series resistance
    // drops voltage at DC.
    iL_ = steadyLoadAmps;
    vC_ = vdd_ - rs_ * steadyLoadAmps;
    vDie_ = vC_;
    time_ = 0.0;
}

Hertz
SecondOrderPdn::resonanceFrequency() const
{
    return Hertz(1.0 / (2.0 * M_PI * std::sqrt(l_ * c_)));
}

} // namespace vsmooth::pdn
