/**
 * @file
 * Stimulus-response analyses on the full PDN ladder: the software
 * analogue of the paper's reset-signal experiment (Figs 5 and 6) and
 * generic current-step droop measurement.
 */

#ifndef VSMOOTH_PDN_DROOP_ANALYSIS_HH
#define VSMOOTH_PDN_DROOP_ANALYSIS_HH

#include <vector>

#include "common/units.hh"
#include "pdn/package_config.hh"

namespace vsmooth::pdn {

/** A recorded die-voltage waveform. */
struct VoltageWaveform
{
    Seconds dt{0.0};
    double vNominal = 0.0;
    std::vector<double> samples;

    double minVoltage() const;
    double maxVoltage() const;
    /** Largest droop below nominal, in volts (positive number). */
    double maxDroop() const { return vNominal - minVoltage(); }
    /** Largest overshoot above nominal, in volts. */
    double maxOvershoot() const { return maxVoltage() - vNominal; }
    double peakToPeak() const { return maxVoltage() - minVoltage(); }
    /**
     * Time the waveform spends below the given fraction of nominal
     * (e.g. 0.95 = more than 5 % droop), as a duration.
     */
    Seconds timeBelow(double fractionOfNominal) const;
};

/**
 * The reset stimulus of Fig 5: the machine idles, execution halts
 * (current collapses), then everything restarts at once (inrush
 * surge). The surge's di/dt excites the PDN resonance.
 */
struct ResetStimulus
{
    Amps idleCurrent{2.0};
    Amps haltCurrent{0.3};
    Amps surgeCurrent{25.0};
    Seconds haltDuration{80e-9};
    Seconds surgeDuration{60e-9};
    /** Settling tail recorded after the surge ends. */
    Seconds tailDuration{400e-9};
};

/**
 * Simulate the reset stimulus against a package configuration using
 * the full ladder netlist and return the die-voltage waveform.
 *
 * @param cfg package electrical model (decapFraction selects ProcN)
 * @param stim stimulus shape
 * @param dt transient timestep (default 0.1 ns resolves the ring)
 */
VoltageWaveform simulateReset(const PackageConfig &cfg,
                              const ResetStimulus &stim = {},
                              Seconds dt = Seconds(0.1e-9));

/**
 * Simulate a single current step from iBefore to iAfter and record
 * the response for `duration` after the step.
 */
VoltageWaveform simulateCurrentStep(const PackageConfig &cfg, Amps iBefore,
                                    Amps iAfter, Seconds duration,
                                    Seconds dt = Seconds(0.1e-9));

} // namespace vsmooth::pdn

#endif // VSMOOTH_PDN_DROOP_ANALYSIS_HH
