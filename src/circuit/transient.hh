/**
 * @file
 * Fixed-timestep transient analysis using trapezoidal companion models.
 *
 * The MNA matrix depends only on topology and the timestep, so it is
 * factored once at construction; each step() rebuilds the right-hand
 * side from stored element state plus the netlist's current source
 * values and performs two triangular solves. This makes per-CPU-cycle
 * stepping cheap enough to couple the PDN to the core activity model.
 *
 * Source values are read from the netlist at each step; callers update
 * them between steps via Netlist::setCurrentSource / setVoltageSource.
 */

#ifndef VSMOOTH_CIRCUIT_TRANSIENT_HH
#define VSMOOTH_CIRCUIT_TRANSIENT_HH

#include <vector>

#include "circuit/dense_matrix.hh"
#include "circuit/netlist.hh"
#include "common/units.hh"

namespace vsmooth::circuit {

/**
 * Trapezoidal transient solver over a fixed netlist.
 *
 * The netlist's element set must not change after construction; only
 * source values may be updated between steps.
 */
class TransientSolver
{
  public:
    /**
     * Build the solver and initialize state from the DC operating
     * point of the netlist (with the source values it currently has).
     *
     * @param net the circuit; must outlive the solver
     * @param dt fixed timestep
     */
    TransientSolver(Netlist &net, Seconds dt);

    /** Advance the circuit by one timestep. */
    void step();

    /** Advance by n timesteps. */
    void run(std::size_t n);

    /** Voltage at a node after the last step (or the DC value). */
    double nodeVoltage(NodeId node) const;

    /** Elapsed simulated time. */
    Seconds time() const { return Seconds(time_); }

    /** Timestep the solver was built with. */
    Seconds dt() const { return Seconds(dt_); }

    /**
     * Re-initialize element state from a fresh DC solve with the
     * netlist's current source values (e.g. to model a reset that
     * restarts from steady state).
     */
    void initFromDc();

  private:
    struct CapState
    {
        std::size_t elem; // index into net.elements()
        double geq;       // 2C/dt
        double vPrev = 0.0;
        double iPrev = 0.0;
    };
    struct IndState
    {
        std::size_t elem;
        double geq;       // dt/(2L)
        double vPrev = 0.0;
        double iPrev = 0.0;
    };

    std::size_t vidx(NodeId node) const
    { return static_cast<std::size_t>(node - 1); }

    void buildMatrix();

    Netlist &net_;
    double dt_;
    double time_ = 0.0;

    std::size_t numNodeUnknowns_;
    std::size_t numUnknowns_;
    DenseMatrix<double> lu_;
    std::vector<double> rhs_;
    std::vector<double> solution_;

    std::vector<CapState> caps_;
    std::vector<IndState> inds_;
};

} // namespace vsmooth::circuit

#endif // VSMOOTH_CIRCUIT_TRANSIENT_HH
