/**
 * @file
 * AC (frequency-domain) analysis via complex MNA.
 *
 * The paper validated its measurement rig by reconstructing the
 * platform's impedance profile (Fig 4); we reconstruct the same
 * profile from the PDN netlist by injecting a 1 A small-signal current
 * at the die node with all independent sources zeroed and reading the
 * resulting node voltage, which equals the driving-point impedance.
 */

#ifndef VSMOOTH_CIRCUIT_AC_HH
#define VSMOOTH_CIRCUIT_AC_HH

#include <complex>
#include <vector>

#include "circuit/netlist.hh"
#include "common/units.hh"

namespace vsmooth::circuit {

/**
 * Driving-point impedance of the netlist seen from a node, at one
 * frequency. Independent voltage sources become shorts and current
 * sources opens (standard small-signal treatment).
 */
std::complex<double> drivingPointImpedance(const Netlist &net, NodeId node,
                                           Hertz freq);

/** One point of an impedance sweep. */
struct ImpedancePoint
{
    double frequencyHz;
    std::complex<double> impedance;
    /** |Z| in ohms. */
    double magnitude() const { return std::abs(impedance); }
};

/**
 * Log-spaced impedance sweep from fLo to fHi (inclusive), points >= 2.
 */
std::vector<ImpedancePoint> impedanceSweep(const Netlist &net, NodeId node,
                                           Hertz fLo, Hertz fHi,
                                           std::size_t points);

/**
 * Locate the impedance peak (resonance) within a sweep; returns the
 * point with the largest |Z|.
 */
ImpedancePoint resonancePeak(const std::vector<ImpedancePoint> &sweep);

} // namespace vsmooth::circuit

#endif // VSMOOTH_CIRCUIT_AC_HH
