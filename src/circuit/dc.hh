/**
 * @file
 * DC operating-point analysis.
 *
 * Capacitors are opens and inductors are 0 V sources (ideal shorts
 * carrying an unknown branch current). The solution supplies the
 * initial state for transient analysis: capacitor voltages from node
 * voltages, inductor currents from the extra branch unknowns.
 */

#ifndef VSMOOTH_CIRCUIT_DC_HH
#define VSMOOTH_CIRCUIT_DC_HH

#include <vector>

#include "circuit/netlist.hh"

namespace vsmooth::circuit {

/** Result of a DC operating-point solve. */
struct DcSolution
{
    /** Node voltages, indexed by NodeId (ground included, = 0). */
    std::vector<double> nodeVoltages;
    /**
     * Branch current through each inductor, in netlist element order
     * restricted to inductors, positive from element node a to b.
     */
    std::vector<double> inductorCurrents;
};

/**
 * Solve the DC operating point of a netlist.
 *
 * Fails (fatal) if the system is singular, e.g. a node with no DC path
 * to ground.
 */
DcSolution dcOperatingPoint(const Netlist &net);

} // namespace vsmooth::circuit

#endif // VSMOOTH_CIRCUIT_DC_HH
