#include "dc.hh"

#include "circuit/dense_matrix.hh"
#include "common/logging.hh"

namespace vsmooth::circuit {

DcSolution
dcOperatingPoint(const Netlist &net)
{
    const std::size_t num_nodes = net.numNodes();
    // Count inductors: each contributes one branch-current unknown.
    std::vector<std::size_t> inductor_elems;
    for (std::size_t i = 0; i < net.elements().size(); ++i) {
        if (net.elements()[i].kind == ElementKind::Inductor)
            inductor_elems.push_back(i);
    }
    const std::size_t nv = num_nodes - 1; // non-ground node voltages
    const std::size_t nb = net.voltageSources().size() + inductor_elems.size();
    const std::size_t n = nv + nb;
    if (n == 0)
        return {std::vector<double>(num_nodes, 0.0), {}};

    DenseMatrix<double> A(n, n);
    std::vector<double> rhs(n, 0.0);

    // Node voltage unknown index for node id k (k >= 1) is k-1.
    auto vidx = [](NodeId node) { return static_cast<std::size_t>(node - 1); };

    // Resistor stamps; capacitors are open at DC (no stamp).
    for (const auto &e : net.elements()) {
        if (e.kind != ElementKind::Resistor)
            continue;
        const double g = 1.0 / e.value;
        if (e.a != kGround) {
            A(vidx(e.a), vidx(e.a)) += g;
            if (e.b != kGround) {
                A(vidx(e.a), vidx(e.b)) -= g;
                A(vidx(e.b), vidx(e.a)) -= g;
            }
        }
        if (e.b != kGround)
            A(vidx(e.b), vidx(e.b)) += g;
    }

    // Current sources: value flows out of pos, into neg.
    for (const auto &s : net.currentSources()) {
        if (s.pos != kGround)
            rhs[vidx(s.pos)] -= s.value;
        if (s.neg != kGround)
            rhs[vidx(s.neg)] += s.value;
    }

    // Branch rows: voltage sources first, then inductors (as 0 V).
    std::size_t branch = nv;
    auto stampBranch = [&](NodeId pos, NodeId neg, double volts) {
        if (pos != kGround) {
            A(vidx(pos), branch) += 1.0;
            A(branch, vidx(pos)) += 1.0;
        }
        if (neg != kGround) {
            A(vidx(neg), branch) -= 1.0;
            A(branch, vidx(neg)) -= 1.0;
        }
        rhs[branch] = volts;
        ++branch;
    };
    for (const auto &s : net.voltageSources())
        stampBranch(s.pos, s.neg, s.value);
    for (std::size_t ei : inductor_elems) {
        const auto &e = net.elements()[ei];
        stampBranch(e.a, e.b, 0.0);
    }

    if (!A.luFactor())
        fatal("DC operating point is singular; check that every node has "
              "a DC path to ground");
    std::vector<double> x;
    A.solve(rhs, x);

    DcSolution sol;
    sol.nodeVoltages.assign(num_nodes, 0.0);
    for (std::size_t k = 1; k < num_nodes; ++k)
        sol.nodeVoltages[k] = x[k - 1];
    sol.inductorCurrents.reserve(inductor_elems.size());
    const std::size_t first_ind = nv + net.voltageSources().size();
    for (std::size_t i = 0; i < inductor_elems.size(); ++i)
        sol.inductorCurrents.push_back(x[first_ind + i]);
    return sol;
}

} // namespace vsmooth::circuit
