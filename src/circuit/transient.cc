#include "transient.hh"

#include "circuit/dc.hh"
#include "common/logging.hh"

namespace vsmooth::circuit {

TransientSolver::TransientSolver(Netlist &net, Seconds dt)
    : net_(net), dt_(dt.value())
{
    if (dt_ <= 0.0)
        fatal("TransientSolver: timestep must be positive (got %g)", dt_);

    for (std::size_t i = 0; i < net_.elements().size(); ++i) {
        const auto &e = net_.elements()[i];
        switch (e.kind) {
          case ElementKind::Capacitor:
            caps_.push_back({i, 2.0 * e.value / dt_, 0.0, 0.0});
            break;
          case ElementKind::Inductor:
            inds_.push_back({i, dt_ / (2.0 * e.value), 0.0, 0.0});
            break;
          case ElementKind::Resistor:
            break;
        }
    }

    numNodeUnknowns_ = net_.numNodes() - 1;
    numUnknowns_ = numNodeUnknowns_ + net_.voltageSources().size();
    rhs_.assign(numUnknowns_, 0.0);
    solution_.assign(numUnknowns_, 0.0);

    buildMatrix();
    initFromDc();
}

void
TransientSolver::buildMatrix()
{
    lu_ = DenseMatrix<double>(numUnknowns_, numUnknowns_);

    auto stampConductance = [&](NodeId a, NodeId b, double g) {
        if (a != kGround) {
            lu_(vidx(a), vidx(a)) += g;
            if (b != kGround) {
                lu_(vidx(a), vidx(b)) -= g;
                lu_(vidx(b), vidx(a)) -= g;
            }
        }
        if (b != kGround)
            lu_(vidx(b), vidx(b)) += g;
    };

    for (const auto &e : net_.elements()) {
        if (e.kind == ElementKind::Resistor)
            stampConductance(e.a, e.b, 1.0 / e.value);
    }
    for (const auto &c : caps_) {
        const auto &e = net_.elements()[c.elem];
        stampConductance(e.a, e.b, c.geq);
    }
    for (const auto &l : inds_) {
        const auto &e = net_.elements()[l.elem];
        stampConductance(e.a, e.b, l.geq);
    }

    std::size_t branch = numNodeUnknowns_;
    for (const auto &s : net_.voltageSources()) {
        if (s.pos != kGround) {
            lu_(vidx(s.pos), branch) += 1.0;
            lu_(branch, vidx(s.pos)) += 1.0;
        }
        if (s.neg != kGround) {
            lu_(vidx(s.neg), branch) -= 1.0;
            lu_(branch, vidx(s.neg)) -= 1.0;
        }
        ++branch;
    }

    if (!lu_.luFactor())
        fatal("transient MNA matrix is singular; check netlist "
              "connectivity");
}

void
TransientSolver::initFromDc()
{
    const DcSolution dc = dcOperatingPoint(net_);

    auto vdiff = [&](const Element &e) {
        return dc.nodeVoltages[e.a] - dc.nodeVoltages[e.b];
    };
    for (auto &c : caps_) {
        c.vPrev = vdiff(net_.elements()[c.elem]);
        c.iPrev = 0.0; // no capacitor current at DC
    }
    std::size_t di = 0;
    for (auto &l : inds_) {
        l.vPrev = 0.0; // ideal inductor drops 0 V at DC
        l.iPrev = dc.inductorCurrents[di++];
    }

    // Seed the "previous solution" node voltages for nodeVoltage()
    // queries made before the first step.
    for (std::size_t k = 1; k < net_.numNodes(); ++k)
        solution_[k - 1] = dc.nodeVoltages[k];
    time_ = 0.0;
}

void
TransientSolver::step()
{
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    auto inject = [&](NodeId node, double amps) {
        if (node != kGround)
            rhs_[vidx(node)] += amps;
    };

    // Capacitor companion: element current a->b is
    //   i_n = geq * v_n - (geq * v_prev + i_prev)
    // The constant term is an equivalent injection into node a.
    for (const auto &c : caps_) {
        const auto &e = net_.elements()[c.elem];
        const double src = c.geq * c.vPrev + c.iPrev;
        inject(e.a, src);
        inject(e.b, -src);
    }
    // Inductor companion: i_n = geq * v_n + (i_prev + geq * v_prev);
    // the constant term leaves node a, i.e. injects negatively.
    for (const auto &l : inds_) {
        const auto &e = net_.elements()[l.elem];
        const double src = l.iPrev + l.geq * l.vPrev;
        inject(e.a, -src);
        inject(e.b, src);
    }
    // Independent current sources draw out of pos into neg.
    for (const auto &s : net_.currentSources()) {
        inject(s.pos, -s.value);
        inject(s.neg, s.value);
    }
    // Voltage source branch rows.
    std::size_t branch = numNodeUnknowns_;
    for (const auto &s : net_.voltageSources())
        rhs_[branch++] = s.value;

    lu_.solve(rhs_, solution_);
    time_ += dt_;

    // Update element state from the new node voltages.
    auto nodeV = [&](NodeId node) {
        return node == kGround ? 0.0 : solution_[vidx(node)];
    };
    for (auto &c : caps_) {
        const auto &e = net_.elements()[c.elem];
        const double v = nodeV(e.a) - nodeV(e.b);
        const double i = c.geq * v - (c.geq * c.vPrev + c.iPrev);
        c.vPrev = v;
        c.iPrev = i;
    }
    for (auto &l : inds_) {
        const auto &e = net_.elements()[l.elem];
        const double v = nodeV(e.a) - nodeV(e.b);
        const double i = l.iPrev + l.geq * (v + l.vPrev);
        l.vPrev = v;
        l.iPrev = i;
    }
}

void
TransientSolver::run(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        step();
}

double
TransientSolver::nodeVoltage(NodeId node) const
{
    if (node == kGround)
        return 0.0;
    return solution_[vidx(node)];
}

} // namespace vsmooth::circuit
