/**
 * @file
 * Linear circuit netlist: the element graph shared by DC, AC, and
 * transient analyses.
 *
 * Node 0 is ground. Elements reference nodes by index; sources get
 * stable ids so analyses can update their values at run time (the CPU
 * activity model drives a current source per core, per cycle).
 */

#ifndef VSMOOTH_CIRCUIT_NETLIST_HH
#define VSMOOTH_CIRCUIT_NETLIST_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"

namespace vsmooth::circuit {

/** Node index; kGround (0) is the reference node. */
using NodeId = int;
constexpr NodeId kGround = 0;

/** Stable handle to a source whose value may change during analysis. */
struct SourceId
{
    std::size_t index = static_cast<std::size_t>(-1);
    bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/** Passive two-terminal element kinds. */
enum class ElementKind { Resistor, Capacitor, Inductor };

/** A passive element between two nodes. */
struct Element
{
    ElementKind kind;
    NodeId a;
    NodeId b;
    /** Ohms, farads, or henries depending on kind. */
    double value;
    std::string label;
};

/** Independent voltage source (value updatable between steps). */
struct VoltageSource
{
    NodeId pos;
    NodeId neg;
    double value;
    std::string label;
};

/** Independent current source; positive value flows pos -> neg
 *  through the source (i.e., it pulls current out of node pos). */
struct CurrentSource
{
    NodeId pos;
    NodeId neg;
    double value;
    std::string label;
};

/**
 * Mutable netlist builder + element storage.
 *
 * Analyses take a const reference; only source *values* are mutable
 * afterwards, via the SourceId handles.
 */
class Netlist
{
  public:
    Netlist();

    /** Allocate a fresh node and return its id. */
    NodeId newNode();

    /** Number of nodes including ground. */
    std::size_t numNodes() const { return numNodes_; }

    /** Add a resistor; resistance must be positive. */
    void addResistor(NodeId a, NodeId b, Ohms r, std::string label = "");
    /** Add a capacitor; capacitance must be positive. */
    void addCapacitor(NodeId a, NodeId b, Farads c, std::string label = "");
    /** Add an inductor; inductance must be positive. */
    void addInductor(NodeId a, NodeId b, Henries l, std::string label = "");

    /** Add a voltage source (pos-neg = value). */
    SourceId addVoltageSource(NodeId pos, NodeId neg, Volts v,
                              std::string label = "");
    /**
     * Add a current source drawing current out of node pos and
     * returning it into node neg (a load draws from the supply node to
     * ground).
     */
    SourceId addCurrentSource(NodeId pos, NodeId neg, Amps i,
                              std::string label = "");

    /** Update a voltage source's value. */
    void setVoltageSource(SourceId id, Volts v);
    /** Update a current source's value. */
    void setCurrentSource(SourceId id, Amps i);

    const std::vector<Element> &elements() const { return elements_; }
    const std::vector<VoltageSource> &voltageSources() const
    { return vsources_; }
    const std::vector<CurrentSource> &currentSources() const
    { return isources_; }

    double voltageSourceValue(SourceId id) const;
    double currentSourceValue(SourceId id) const;

  private:
    void checkNode(NodeId n) const;

    std::size_t numNodes_;
    std::vector<Element> elements_;
    std::vector<VoltageSource> vsources_;
    std::vector<CurrentSource> isources_;
};

} // namespace vsmooth::circuit

#endif // VSMOOTH_CIRCUIT_NETLIST_HH
