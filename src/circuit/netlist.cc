#include "netlist.hh"

#include "common/logging.hh"

namespace vsmooth::circuit {

Netlist::Netlist() : numNodes_(1) // ground pre-exists
{
}

NodeId
Netlist::newNode()
{
    return static_cast<NodeId>(numNodes_++);
}

void
Netlist::checkNode(NodeId n) const
{
    if (n < 0 || static_cast<std::size_t>(n) >= numNodes_)
        panic("Netlist: node %d out of range (have %zu)", n, numNodes_);
}

void
Netlist::addResistor(NodeId a, NodeId b, Ohms r, std::string label)
{
    checkNode(a);
    checkNode(b);
    if (r.value() <= 0.0)
        fatal("resistor '%s' must have positive resistance (got %g)",
              label.c_str(), r.value());
    elements_.push_back({ElementKind::Resistor, a, b, r.value(),
                         std::move(label)});
}

void
Netlist::addCapacitor(NodeId a, NodeId b, Farads c, std::string label)
{
    checkNode(a);
    checkNode(b);
    if (c.value() <= 0.0)
        fatal("capacitor '%s' must have positive capacitance (got %g)",
              label.c_str(), c.value());
    elements_.push_back({ElementKind::Capacitor, a, b, c.value(),
                         std::move(label)});
}

void
Netlist::addInductor(NodeId a, NodeId b, Henries l, std::string label)
{
    checkNode(a);
    checkNode(b);
    if (l.value() <= 0.0)
        fatal("inductor '%s' must have positive inductance (got %g)",
              label.c_str(), l.value());
    elements_.push_back({ElementKind::Inductor, a, b, l.value(),
                         std::move(label)});
}

SourceId
Netlist::addVoltageSource(NodeId pos, NodeId neg, Volts v, std::string label)
{
    checkNode(pos);
    checkNode(neg);
    vsources_.push_back({pos, neg, v.value(), std::move(label)});
    return SourceId{vsources_.size() - 1};
}

SourceId
Netlist::addCurrentSource(NodeId pos, NodeId neg, Amps i, std::string label)
{
    checkNode(pos);
    checkNode(neg);
    isources_.push_back({pos, neg, i.value(), std::move(label)});
    return SourceId{isources_.size() - 1};
}

void
Netlist::setVoltageSource(SourceId id, Volts v)
{
    if (!id.valid() || id.index >= vsources_.size())
        panic("setVoltageSource: bad source id");
    vsources_[id.index].value = v.value();
}

void
Netlist::setCurrentSource(SourceId id, Amps i)
{
    if (!id.valid() || id.index >= isources_.size())
        panic("setCurrentSource: bad source id");
    isources_[id.index].value = i.value();
}

double
Netlist::voltageSourceValue(SourceId id) const
{
    if (!id.valid() || id.index >= vsources_.size())
        panic("voltageSourceValue: bad source id");
    return vsources_[id.index].value;
}

double
Netlist::currentSourceValue(SourceId id) const
{
    if (!id.valid() || id.index >= isources_.size())
        panic("currentSourceValue: bad source id");
    return isources_[id.index].value;
}

} // namespace vsmooth::circuit
