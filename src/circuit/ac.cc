#include "ac.hh"

#include <cmath>

#include "circuit/dense_matrix.hh"
#include "common/logging.hh"

namespace vsmooth::circuit {

std::complex<double>
drivingPointImpedance(const Netlist &net, NodeId node, Hertz freq)
{
    using Complex = std::complex<double>;
    if (node == kGround)
        return 0.0;
    const double omega = 2.0 * M_PI * freq.value();
    if (omega <= 0.0)
        fatal("drivingPointImpedance: frequency must be positive");

    const std::size_t nv = net.numNodes() - 1;
    const std::size_t n = nv + net.voltageSources().size();
    DenseMatrix<Complex> A(n, n);
    std::vector<Complex> rhs(n, Complex{});

    auto vidx = [](NodeId k) { return static_cast<std::size_t>(k - 1); };
    auto stampAdmittance = [&](NodeId a, NodeId b, Complex y) {
        if (a != kGround) {
            A(vidx(a), vidx(a)) += y;
            if (b != kGround) {
                A(vidx(a), vidx(b)) -= y;
                A(vidx(b), vidx(a)) -= y;
            }
        }
        if (b != kGround)
            A(vidx(b), vidx(b)) += y;
    };

    const Complex jw{0.0, omega};
    for (const auto &e : net.elements()) {
        switch (e.kind) {
          case ElementKind::Resistor:
            stampAdmittance(e.a, e.b, Complex{1.0 / e.value, 0.0});
            break;
          case ElementKind::Capacitor:
            stampAdmittance(e.a, e.b, jw * e.value);
            break;
          case ElementKind::Inductor:
            stampAdmittance(e.a, e.b, 1.0 / (jw * e.value));
            break;
        }
    }

    // Independent voltage sources are AC shorts: keep the branch rows
    // with zero source phasor. Current sources are opens: no stamp.
    std::size_t branch = nv;
    for (const auto &s : net.voltageSources()) {
        if (s.pos != kGround) {
            A(vidx(s.pos), branch) += 1.0;
            A(branch, vidx(s.pos)) += 1.0;
        }
        if (s.neg != kGround) {
            A(vidx(s.neg), branch) -= 1.0;
            A(branch, vidx(s.neg)) -= 1.0;
        }
        rhs[branch] = 0.0;
        ++branch;
    }

    // Inject 1 A into the probe node.
    rhs[vidx(node)] = Complex{1.0, 0.0};

    if (!A.luFactor())
        fatal("AC MNA matrix singular at %g Hz", freq.value());
    std::vector<Complex> x;
    A.solve(rhs, x);
    return x[vidx(node)];
}

std::vector<ImpedancePoint>
impedanceSweep(const Netlist &net, NodeId node, Hertz fLo, Hertz fHi,
               std::size_t points)
{
    if (points < 2)
        fatal("impedanceSweep needs at least 2 points");
    if (fLo.value() <= 0.0 || fHi.value() <= fLo.value())
        fatal("impedanceSweep: need 0 < fLo < fHi");
    std::vector<ImpedancePoint> sweep;
    sweep.reserve(points);
    const double log_lo = std::log10(fLo.value());
    const double log_hi = std::log10(fHi.value());
    for (std::size_t i = 0; i < points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const double f = std::pow(10.0, log_lo + frac * (log_hi - log_lo));
        sweep.push_back({f, drivingPointImpedance(net, node, Hertz(f))});
    }
    return sweep;
}

ImpedancePoint
resonancePeak(const std::vector<ImpedancePoint> &sweep)
{
    if (sweep.empty())
        fatal("resonancePeak: empty sweep");
    const ImpedancePoint *best = &sweep.front();
    for (const auto &p : sweep) {
        if (p.magnitude() > best->magnitude())
            best = &p;
    }
    return *best;
}

} // namespace vsmooth::circuit
