/**
 * @file
 * Small dense matrix with LU factorization, templated over the scalar
 * type so the same code serves transient analysis (double) and AC
 * analysis (std::complex<double>).
 *
 * MNA systems for power-delivery networks have a few dozen unknowns at
 * most, so a dense partial-pivot LU is both simpler and faster than a
 * sparse solver at this scale.
 */

#ifndef VSMOOTH_CIRCUIT_DENSE_MATRIX_HH
#define VSMOOTH_CIRCUIT_DENSE_MATRIX_HH

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace vsmooth::circuit {

/** Magnitude helper that works for both real and complex scalars. */
inline double scalarAbs(double x) { return std::abs(x); }
inline double scalarAbs(const std::complex<double> &x) { return std::abs(x); }

/**
 * Row-major dense square-capable matrix with in-place LU and solve.
 *
 * @tparam T scalar type (double or std::complex<double>)
 */
template <typename T>
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** rows x cols zero matrix. */
    DenseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{})
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T &operator()(std::size_t r, std::size_t c)
    { return data_[r * cols_ + c]; }
    const T &operator()(std::size_t r, std::size_t c) const
    { return data_[r * cols_ + c]; }

    /** Reset all entries to zero (keeps dimensions). */
    void
    setZero()
    {
        std::fill(data_.begin(), data_.end(), T{});
    }

    /**
     * Factor this (square) matrix in place as P*A = L*U with partial
     * pivoting. Returns false if the matrix is numerically singular.
     */
    bool
    luFactor()
    {
        if (rows_ != cols_)
            panic("luFactor on non-square matrix (%zux%zu)", rows_, cols_);
        const std::size_t n = rows_;
        perm_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            perm_[i] = i;

        for (std::size_t k = 0; k < n; ++k) {
            // Partial pivot: find the largest magnitude in column k.
            std::size_t pivot = k;
            double best = scalarAbs((*this)(k, k));
            for (std::size_t r = k + 1; r < n; ++r) {
                const double mag = scalarAbs((*this)(r, k));
                if (mag > best) {
                    best = mag;
                    pivot = r;
                }
            }
            if (best < 1e-300)
                return false;
            if (pivot != k) {
                for (std::size_t c = 0; c < n; ++c)
                    std::swap((*this)(k, c), (*this)(pivot, c));
                std::swap(perm_[k], perm_[pivot]);
            }
            const T inv_diag = T{1.0} / (*this)(k, k);
            for (std::size_t r = k + 1; r < n; ++r) {
                const T factor = (*this)(r, k) * inv_diag;
                (*this)(r, k) = factor;
                if (factor == T{})
                    continue;
                for (std::size_t c = k + 1; c < n; ++c)
                    (*this)(r, c) -= factor * (*this)(k, c);
            }
        }
        factored_ = true;
        return true;
    }

    /**
     * Solve A*x = b using a previously computed LU factorization.
     * @param b right-hand side (size n); untouched
     * @param x solution output (resized to n)
     */
    void
    solve(const std::vector<T> &b, std::vector<T> &x) const
    {
        if (!factored_)
            panic("DenseMatrix::solve called before luFactor");
        const std::size_t n = rows_;
        if (b.size() != n)
            panic("DenseMatrix::solve: rhs size %zu != %zu", b.size(), n);
        x.resize(n);
        // Forward substitution with permutation (L has unit diagonal).
        for (std::size_t r = 0; r < n; ++r) {
            T sum = b[perm_[r]];
            for (std::size_t c = 0; c < r; ++c)
                sum -= (*this)(r, c) * x[c];
            x[r] = sum;
        }
        // Back substitution.
        for (std::size_t ri = n; ri-- > 0;) {
            T sum = x[ri];
            for (std::size_t c = ri + 1; c < n; ++c)
                sum -= (*this)(ri, c) * x[c];
            x[ri] = sum / (*this)(ri, ri);
        }
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
    std::vector<std::size_t> perm_;
    bool factored_ = false;
};

} // namespace vsmooth::circuit

#endif // VSMOOTH_CIRCUIT_DENSE_MATRIX_HH
