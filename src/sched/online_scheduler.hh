/**
 * @file
 * Online (non-oracle) noise-aware batch scheduler.
 *
 * The paper's evaluation is oracle-based, but its motivating
 * observation (Sec IV-A) is that the stall ratio — a coarse, cheap
 * hardware counter — predicts voltage-noise behaviour (r = 0.97), so
 * "high-latency software solutions are applicable to voltage noise."
 * OnlineScheduler is that deployment story: a batch of jobs runs on
 * the two cores; at every scheduling interval the scheduler reads the
 * per-job stall ratios it has observed so far and, when a core frees
 * up, dispatches the queued job that best balances the chip's noise.
 *
 * Policies:
 *  - Fcfs: dispatch in arrival order (the baseline).
 *  - StallBalance: pair a high-stall (noisy) runner with the queued
 *    job of the most dissimilar stall ratio — the online analogue of
 *    the oracle Droop policy, built purely from performance counters.
 */

#ifndef VSMOOTH_SCHED_ONLINE_SCHEDULER_HH
#define VSMOOTH_SCHED_ONLINE_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::sched {

/** Online dispatch policies. */
enum class OnlinePolicy
{
    Fcfs,
    StallBalance,
};

std::string onlinePolicyName(OnlinePolicy policy);

/** Configuration of an online-scheduling run. */
struct OnlineConfig
{
    sim::SystemConfig system;
    /** Cycles each job runs before completing. */
    Cycles jobLength = 400'000;
    /** Counter-sampling / scheduling decision interval. */
    Cycles schedulingInterval = 50'000;
    std::uint64_t seed = 42;
};

/** Outcome of an online-scheduling run. */
struct OnlineResult
{
    /** Total cycles until the batch drained. */
    Cycles makespan = 0;
    /** Emergencies at the configured operating margin. */
    std::uint64_t emergencies = 0;
    /** Droops (samples below 2.3 %) per 1K cycles. */
    double droopsPer1k = 0.0;
    /** Jobs completed (sanity: equals the batch size). */
    std::size_t jobsCompleted = 0;
    /** Stall ratio the scheduler estimated per job, in batch order. */
    std::vector<double> observedStallRatios;
};

/**
 * Run a batch of jobs through a two-core system under a policy.
 *
 * @param batch benchmarks to run, one job each
 * @param cfg run configuration (margin/recovery enable the fail-safe)
 * @param policy dispatch policy
 */
OnlineResult runOnlineBatch(
    const std::vector<const workload::SpecBenchmark *> &batch,
    const OnlineConfig &cfg, OnlinePolicy policy);

} // namespace vsmooth::sched

#endif // VSMOOTH_SCHED_ONLINE_SCHEDULER_HH
