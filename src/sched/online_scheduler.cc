#include "online_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "common/logging.hh"
#include "cpu/fast_core.hh"
#include "workload/microbench.hh"

namespace vsmooth::sched {

std::string
onlinePolicyName(OnlinePolicy policy)
{
    switch (policy) {
      case OnlinePolicy::Fcfs: return "FCFS";
      case OnlinePolicy::StallBalance: return "StallBalance";
      default: return "?";
    }
}

namespace {

/**
 * A core slot whose job can be replaced at scheduling boundaries.
 * Runs an OS idle loop between jobs.
 */
class SwappableCore : public cpu::CoreModel
{
  public:
    explicit SwappableCore(std::uint64_t seed)
        : idle_(std::make_unique<cpu::FastCore>(
              workload::idleSchedule(1000), seed))
    {
    }

    void
    assign(std::unique_ptr<cpu::FastCore> job, std::size_t jobId)
    {
        job_ = std::move(job);
        jobId_ = jobId;
    }

    bool hasJob() const { return job_ != nullptr; }
    std::size_t jobId() const { return jobId_; }

    /** Job complete and waiting to be reaped? A still-draining
     *  platform interrupt does not hold the job hostage (the context
     *  switch supersedes it). */
    bool jobDone() const { return job_ && job_->workloadComplete(); }

    /** Stall ratio the current job has exhibited so far. */
    double
    jobStallRatio() const
    {
        return job_ ? job_->counters().stallRatio() : 0.0;
    }

    /** Release the finished job (caller records its statistics). */
    std::unique_ptr<cpu::FastCore>
    reap()
    {
        return std::move(job_);
    }

    double tick() override { return active().tick(); }
    const cpu::PerfCounters &counters() const override
    { return active().counters(); }
    void injectRecoveryStall(std::uint32_t cycles) override
    { active().injectRecoveryStall(cycles); }
    void injectPlatformInterrupt() override
    { active().injectPlatformInterrupt(); }
    /** The slot itself never finishes; the driver owns termination. */
    bool finished() const override { return false; }

  private:
    cpu::FastCore &active() { return job_ ? *job_ : *idle_; }
    const cpu::FastCore &active() const { return job_ ? *job_ : *idle_; }

    std::unique_ptr<cpu::FastCore> idle_;
    std::unique_ptr<cpu::FastCore> job_;
    std::size_t jobId_ = 0;
};

} // namespace

OnlineResult
runOnlineBatch(const std::vector<const workload::SpecBenchmark *> &batch,
               const OnlineConfig &cfg, OnlinePolicy policy)
{
    if (batch.empty())
        fatal("runOnlineBatch: empty batch");
    for (const auto *b : batch) {
        if (b == nullptr)
            fatal("runOnlineBatch: null benchmark in batch");
    }

    sim::System sys(cfg.system);
    std::array<SwappableCore *, 2> slots{};
    for (int s = 0; s < 2; ++s) {
        auto core = std::make_unique<SwappableCore>(cfg.seed + 900 + s);
        slots[s] = core.get();
        sys.addCore(std::move(core));
    }

    OnlineResult result;
    result.observedStallRatios.assign(batch.size(), 0.0);

    // Online knowledge: the stall ratio last observed per benchmark
    // name (the counter-driven estimate the paper's scheduler would
    // maintain). Unknown jobs start at the prior 0.5.
    std::vector<double> estimate(batch.size(), 0.5);
    std::vector<bool> known(batch.size(), false);

    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < batch.size(); ++i)
        queue.push_back(i);

    auto sameBench = [&](std::size_t a, std::size_t b) {
        return batch[a]->name == batch[b]->name;
    };

    auto makeJob = [&](std::size_t id) {
        return std::make_unique<cpu::FastCore>(
            workload::scheduleFor(*batch[id], cfg.jobLength,
                                  /*loop=*/false),
            cfg.seed + 31 * id);
    };

    auto dispatch = [&](int slot) {
        if (queue.empty())
            return;
        std::size_t pick_pos = 0;
        if (policy == OnlinePolicy::StallBalance) {
            // Balance against the co-runner: use its *online
            // estimate* (a freshly dispatched job's live counters are
            // still empty), and pick the queued job whose estimate is
            // farthest from it — pair noisy with smooth. Informed
            // estimates win ties over unknown ones.
            const SwappableCore &other = *slots[1 - slot];
            const double peer =
                other.hasJob() ? estimate[other.jobId()] : 0.5;
            double best = -1.0;
            for (std::size_t p = 0; p < queue.size(); ++p) {
                const std::size_t id = queue[p];
                const double score =
                    std::abs(estimate[id] - peer) +
                    (known[id] ? 0.05 : 0.0);
                if (score > best) {
                    best = score;
                    pick_pos = p;
                }
            }
        }
        const std::size_t id = queue[pick_pos];
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(pick_pos));
        slots[slot]->assign(makeJob(id), id);
    };

    dispatch(0);
    dispatch(1);

    const Cycles hard_limit =
        cfg.jobLength * static_cast<Cycles>(batch.size()) * 8 + 1'000'000;
    while (result.jobsCompleted < batch.size()) {
        sys.run(cfg.schedulingInterval);
        for (int s = 0; s < 2; ++s) {
            if (slots[s]->jobDone()) {
                const std::size_t id = slots[s]->jobId();
                const double ratio = slots[s]->jobStallRatio();
                result.observedStallRatios[id] = ratio;
                // Update the estimate for every queued copy of this
                // benchmark.
                for (std::size_t j = 0; j < batch.size(); ++j) {
                    if (sameBench(id, j)) {
                        estimate[j] = ratio;
                        known[j] = true;
                    }
                }
                slots[s]->reap();
                ++result.jobsCompleted;
                dispatch(s);
            } else if (!slots[s]->hasJob()) {
                dispatch(s);
            }
        }
        if (sys.cycles() > hard_limit)
            panic("runOnlineBatch: batch failed to drain (%zu of %zu "
                  "jobs done after %llu cycles)",
                  result.jobsCompleted, batch.size(),
                  (unsigned long long)sys.cycles());
    }

    result.makespan = sys.cycles();
    result.emergencies = sys.emergencies();
    result.droopsPer1k =
        1000.0 * sys.scope().fractionBelow(-sim::kIdleMargin);
    return result;
}

} // namespace vsmooth::sched
