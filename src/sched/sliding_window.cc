#include "sliding_window.hh"

#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "cpu/fast_core.hh"
#include "workload/microbench.hh"

namespace vsmooth::sched {

namespace {

/** Truncate a schedule to its first `cycles` cycles and loop it. */
cpu::PhaseSchedule
windowLoop(const cpu::PhaseSchedule &full, Cycles cycles)
{
    cpu::PhaseSchedule out;
    out.loop = true;
    Cycles remaining = cycles;
    for (const auto &phase : full.phases) {
        if (remaining == 0)
            break;
        cpu::ActivityPhase p = phase;
        p.duration = std::min(p.duration, remaining);
        remaining -= p.duration;
        out.phases.push_back(p);
    }
    if (out.phases.empty())
        fatal("windowLoop: empty window");
    return out;
}

std::vector<double>
runOnce(const workload::SpecBenchmark &progX,
        const cpu::PhaseSchedule &coSchedule, Cycles windowCycles,
        Cycles baseLength, const sim::SystemConfig &cfgIn,
        std::uint64_t seed)
{
    sim::SystemConfig cfg = cfgIn;
    cfg.enableTimeline = true;
    cfg.timelineInterval = windowCycles;

    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(progX, baseLength, /*loop=*/false),
        seed + 1));
    sys.addCore(std::make_unique<cpu::FastCore>(coSchedule, seed + 2));

    // Run until X completes (core 1 loops forever).
    while (!sys.core(0).finished())
        sys.tick();
    return sys.timelineSeries();
}

} // namespace

SlidingWindowResult
slidingWindowExperiment(const workload::SpecBenchmark &progX,
                        const workload::SpecBenchmark &progY,
                        Cycles windowCycles, Cycles baseLength,
                        const sim::SystemConfig &cfg, std::uint64_t seed)
{
    SlidingWindowResult result;
    result.windowCycles = windowCycles;

    const cpu::PhaseSchedule y_window = windowLoop(
        workload::scheduleFor(progY, baseLength, /*loop=*/false),
        windowCycles);

    // The co-scheduled and single-core sweeps are independent full
    // runs of X; fan them out and collect by index.
    auto series = parallelMap<std::vector<double>>(2, [&](std::size_t k) {
        return k == 0
            ? runOnce(progX, y_window, windowCycles, baseLength, cfg,
                      seed)
            : runOnce(progX, workload::idleSchedule(1000), windowCycles,
                      baseLength, cfg, seed + 100);
    });
    result.coScheduled = std::move(series[0]);
    result.singleCore = std::move(series[1]);
    return result;
}

} // namespace vsmooth::sched
