/**
 * @file
 * Typical-case "passing schedules" analysis (Table I and Fig 19).
 *
 * For each recovery cost, the optimal aggressive margin and its
 * expected improvement are derived from the aggregate noise profile
 * of the whole workload population. A co-schedule *passes* if its own
 * improvement at that margin meets the expectation. The paper shows
 * that the number of passing SPECrate schedules collapses as recovery
 * cost grows (Table I), and that noise-aware (Droop) scheduling
 * recovers many of them, increasingly so at coarse recovery costs
 * (Fig 19).
 */

#ifndef VSMOOTH_SCHED_PASS_ANALYSIS_HH
#define VSMOOTH_SCHED_PASS_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "sched/policy.hh"

namespace vsmooth::sched {

/** One row of Table I. */
struct OptimalMarginRow
{
    std::uint32_t recoveryCost = 0;
    double optimalMargin = 0.14;
    double expectedImprovementPercent = 0.0;
    /** SPECrate schedules meeting the expectation. */
    int passingSpecRate = 0;
};

/**
 * Aggregate emergency profile over every pair in the matrix plus the
 * single-core runs — the analogue of the paper's 881-run population.
 */
resilience::EmergencyProfile aggregateProfile(const OracleMatrix &matrix);

/**
 * Does this pair meet the expected improvement at the given margin
 * and recovery cost?
 *
 * @param tolerancePercent slack (percentage points) below the
 *        expectation that still counts as passing
 */
bool pairPasses(const PairProfile &pair, double margin,
                std::uint32_t recoveryCost, double expectedPercent,
                double tolerancePercent = 0.0);

/** Compute Table I over a sweep of recovery costs. */
std::vector<OptimalMarginRow>
optimalMarginTable(const OracleMatrix &matrix,
                   const std::vector<std::uint32_t> &costs,
                   double tolerancePercent = 0.0);

/** Count passing pairs of an arbitrary schedule. */
int countPassing(const Schedule &schedule, const OracleMatrix &matrix,
                 double margin, std::uint32_t recoveryCost,
                 double expectedPercent, double tolerancePercent = 0.0);

} // namespace vsmooth::sched

#endif // VSMOOTH_SCHED_PASS_ANALYSIS_HH
