#include "pass_analysis.hh"

namespace vsmooth::sched {

resilience::EmergencyProfile
aggregateProfile(const OracleMatrix &matrix)
{
    resilience::EmergencyProfile aggregate;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        aggregate.merge(matrix.single(i).emergencies);
        for (std::size_t j = i; j < matrix.size(); ++j)
            aggregate.merge(matrix.pair(i, j).emergencies);
    }
    return aggregate;
}

bool
pairPasses(const PairProfile &pair, double margin,
           std::uint32_t recoveryCost, double expectedPercent,
           double tolerancePercent)
{
    const double imp = resilience::improvementPercent(
        pair.emergencies, margin, recoveryCost);
    return imp >= expectedPercent - tolerancePercent;
}

std::vector<OptimalMarginRow>
optimalMarginTable(const OracleMatrix &matrix,
                   const std::vector<std::uint32_t> &costs,
                   double tolerancePercent)
{
    const resilience::EmergencyProfile aggregate =
        aggregateProfile(matrix);

    std::vector<OptimalMarginRow> table;
    table.reserve(costs.size());
    for (std::uint32_t cost : costs) {
        OptimalMarginRow row;
        row.recoveryCost = cost;
        const auto best = resilience::optimalMargin(aggregate, cost);
        row.optimalMargin = best.margin;
        row.expectedImprovementPercent = best.improvementPercent;

        int passing = 0;
        for (std::size_t i = 0; i < matrix.size(); ++i) {
            if (pairPasses(matrix.specRate(i), best.margin, cost,
                           best.improvementPercent, tolerancePercent))
                ++passing;
        }
        row.passingSpecRate = passing;
        table.push_back(row);
    }
    return table;
}

int
countPassing(const Schedule &schedule, const OracleMatrix &matrix,
             double margin, std::uint32_t recoveryCost,
             double expectedPercent, double tolerancePercent)
{
    int passing = 0;
    for (const auto &pair : schedule) {
        if (pairPasses(matrix.pair(pair.a, pair.b), margin, recoveryCost,
                       expectedPercent, tolerancePercent))
            ++passing;
    }
    return passing;
}

} // namespace vsmooth::sched
