#include "oracle_matrix.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "cpu/fast_core.hh"
#include "sim/lane_group.hh"
#include "workload/microbench.hh"

namespace vsmooth::sched {

OracleMatrix::OracleMatrix(
    const std::vector<workload::SpecBenchmark> &suite,
    const OracleConfig &cfg)
    : suite_(suite), cfg_(cfg), n_(suite.size())
{
    if (n_ == 0)
        fatal("OracleMatrix: empty suite");
    pairs_.resize(n_ * (n_ + 1) / 2);
    singles_.resize(n_);

    // Every measurement is an independent simulation whose seed
    // derives from (i, j) alone, so the matrix can be built in
    // parallel: each task writes its precomputed triangular slot and
    // the result is bit-identical for any job count.
    struct Task
    {
        std::size_t i, j;
        bool idleSecond;
        PairProfile *out;
    };
    std::vector<Task> tasks;
    tasks.reserve(singles_.size() + pairs_.size());
    for (std::size_t i = 0; i < n_; ++i)
        tasks.push_back({i, i, true, &singles_[i]});
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i; j < n_; ++j) {
            tasks.push_back(
                {i, j, false, &pairs_[i * n_ - i * (i + 1) / 2 + j]});
        }
    }

    // Two levels of parallelism: worker threads over groups of K
    // measurements, and within each worker a LaneGroup stepping its K
    // independent simulations through one SIMD kernel in lockstep.
    // Group boundaries derive from the task index alone, and every
    // laned run is bit-identical to a solo measure(), so the matrix is
    // unchanged for any job count and any lane width.
    const std::size_t lanes = simd::defaultLaneWidth();
    const std::size_t nGroups = (tasks.size() + lanes - 1) / lanes;
    parallelFor(0, nGroups, [&](std::size_t g) {
        const std::size_t begin = g * lanes;
        const std::size_t end =
            std::min(tasks.size(), begin + lanes);
        std::vector<sim::System> systems;
        systems.reserve(end - begin);
        std::vector<sim::LanePlan> plans;
        plans.reserve(end - begin);
        for (std::size_t t = begin; t < end; ++t) {
            const Task &task = tasks[t];
            systems.push_back(
                buildMeasure(task.i, task.j, task.idleSecond));
            sim::LanePlan plan;
            plan.system = &systems.back();
            plan.cycles = cfg_.cyclesPerPair;
            plans.push_back(plan);
        }
        sim::LaneGroup group(lanes);
        group.run(plans);
        for (std::size_t t = begin; t < end; ++t) {
            const Task &task = tasks[t];
            *task.out = profileFrom(systems[t - begin], task.i,
                                    task.j, task.idleSecond);
        }
    });
}

const PairProfile &
OracleMatrix::pair(std::size_t i, std::size_t j) const
{
    if (i >= n_ || j >= n_)
        panic("OracleMatrix::pair: index out of range");
    if (i > j)
        std::swap(i, j);
    return pairs_[i * n_ - i * (i + 1) / 2 + j];
}

PairProfile
OracleMatrix::measure(std::size_t i, std::size_t j, bool idleSecond) const
{
    sim::System sys = buildMeasure(i, j, idleSecond);
    sys.run(cfg_.cyclesPerPair);
    return profileFrom(sys, i, j, idleSecond);
}

sim::System
OracleMatrix::buildMeasure(std::size_t i, std::size_t j,
                           bool idleSecond) const
{
    sim::SystemConfig sys_cfg = cfg_.system;
    sys_cfg.osTickInterval = sim::kCompressedOsTick;
    sim::System sys(sys_cfg);
    // Deterministic but distinct seeds per pair and core.
    const std::uint64_t base =
        cfg_.seed + 1000003ULL * (i * n_ + j) + (idleSecond ? 7 : 0);

    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(suite_[i], cfg_.cyclesPerPair, true),
        base + 1));
    if (idleSecond) {
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), base + 2));
    } else {
        // An aligned self-pair reuses the first core's seed: identical
        // schedule + identical seed = lockstep streams whose current
        // transients stack in the same cycle.
        const bool aligned = cfg_.alignedSelfPairs && i == j;
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(suite_[j], cfg_.cyclesPerPair, true),
            aligned ? base + 1 : base + 2));
    }
    return sys;
}

PairProfile
OracleMatrix::profileFrom(sim::System &sys, std::size_t i,
                          std::size_t j, bool idleSecond) const
{
    PairProfile profile;
    profile.droopsPer1k =
        1000.0 * sys.scope().fractionBelow(-cfg_.droopMargin);
    profile.ipc = sys.core(0).counters().ipc() +
        (idleSecond ? 0.0 : sys.core(1).counters().ipc());
    if (!idleSecond) {
        // Shared-L2 / memory-bandwidth contention, modeled at the
        // profile level: two memory-bound programs slow each other
        // down. This is the effect the paper's IPC (cache-aware)
        // scheduling policy exploits.
        const double contention = 0.25 * suite_[i].memoryBoundness *
            suite_[j].memoryBoundness;
        profile.ipc *= 1.0 - contention;
    }
    profile.emergencies =
        resilience::profileFromBank(sys.droopBank(), sys.cycles());
    return profile;
}

} // namespace vsmooth::sched
