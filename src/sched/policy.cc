#include "policy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsmooth::sched {

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Random: return "Random";
      case PolicyKind::Ipc: return "IPC";
      case PolicyKind::Droop: return "Droop";
      case PolicyKind::DroopWorstFirst: return "Droop (worst-first)";
      case PolicyKind::IpcOverDroopN: return "IPC/Droop^n";
      default: return "?";
    }
}

namespace {

/** Policy score: larger is better. */
double
pairScore(const PairProfile &p, PolicyKind kind, double hybridN)
{
    switch (kind) {
      case PolicyKind::Ipc:
        return p.ipc;
      case PolicyKind::Droop:
        return -p.droopsPer1k;
      case PolicyKind::IpcOverDroopN:
        return p.ipc / std::pow(std::max(p.droopsPer1k, 1e-6), hybridN);
      case PolicyKind::Random:
      default:
        panic("pairScore: Random has no score");
    }
}

} // namespace

Schedule
buildSchedule(std::vector<std::size_t> pool, const OracleMatrix &matrix,
              PolicyKind kind, Rng &rng, double hybridN)
{
    if (pool.size() % 2 != 0)
        fatal("buildSchedule: pool size %zu is odd", pool.size());
    for (std::size_t idx : pool) {
        if (idx >= matrix.size())
            fatal("buildSchedule: benchmark index %zu out of range", idx);
    }

    Schedule schedule;
    schedule.reserve(pool.size() / 2);

    // Fisher-Yates shuffle: randomizes Random pairing entirely, and
    // randomizes greedy tie-breaking for the other policies.
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.uniformInt(0, i - 1)]);

    if (kind == PolicyKind::Random) {
        for (std::size_t i = 0; i + 1 < pool.size(); i += 2)
            schedule.push_back({pool[i], pool[i + 1]});
        return schedule;
    }

    if (kind == PolicyKind::DroopWorstFirst) {
        // Commit the noisiest remaining job (by its solo droop rate)
        // together with the partner that minimizes the pair's droops.
        // Post-shuffle pool order breaks ties, like the greedy below.
        std::vector<bool> used(pool.size(), false);
        for (std::size_t round = 0; round < pool.size() / 2; ++round) {
            std::size_t worst = pool.size();
            for (std::size_t i = 0; i < pool.size(); ++i) {
                if (used[i])
                    continue;
                if (worst == pool.size() ||
                    matrix.single(pool[i]).droopsPer1k >
                        matrix.single(pool[worst]).droopsPer1k)
                    worst = i;
            }
            used[worst] = true;
            std::size_t mate = pool.size();
            for (std::size_t j = 0; j < pool.size(); ++j) {
                if (used[j])
                    continue;
                if (mate == pool.size() ||
                    matrix.pair(pool[worst], pool[j]).droopsPer1k <
                        matrix.pair(pool[worst], pool[mate]).droopsPer1k)
                    mate = j;
            }
            used[mate] = true;
            schedule.push_back({pool[worst], pool[mate]});
        }
        return schedule;
    }

    // Greedy maximum-score pairing.
    std::vector<bool> used(pool.size(), false);
    for (std::size_t round = 0; round < pool.size() / 2; ++round) {
        double best = 0.0;
        std::size_t bi = pool.size(), bj = pool.size();
        bool have = false;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (used[i])
                continue;
            for (std::size_t j = i + 1; j < pool.size(); ++j) {
                if (used[j])
                    continue;
                const double score = pairScore(
                    matrix.pair(pool[i], pool[j]), kind, hybridN);
                if (!have || score > best) {
                    best = score;
                    bi = i;
                    bj = j;
                    have = true;
                }
            }
        }
        used[bi] = used[bj] = true;
        schedule.push_back({pool[bi], pool[bj]});
    }
    return schedule;
}

ScheduleMetrics
evaluateSchedule(const Schedule &schedule, const OracleMatrix &matrix)
{
    if (schedule.empty())
        fatal("evaluateSchedule: empty schedule");
    ScheduleMetrics m;
    for (const auto &pair : schedule) {
        const PairProfile &p = matrix.pair(pair.a, pair.b);
        m.meanDroopsPer1k += p.droopsPer1k;
        m.meanIpc += p.ipc;
    }
    const auto n = static_cast<double>(schedule.size());
    m.meanDroopsPer1k /= n;
    m.meanIpc /= n;
    return m;
}

Schedule
specRateSchedule(const OracleMatrix &matrix)
{
    Schedule schedule;
    schedule.reserve(matrix.size());
    for (std::size_t i = 0; i < matrix.size(); ++i)
        schedule.push_back({i, i});
    return schedule;
}

NormalizedMetrics
normalizeAgainstSpecRate(const ScheduleMetrics &metrics,
                         const OracleMatrix &matrix)
{
    const ScheduleMetrics base =
        evaluateSchedule(specRateSchedule(matrix), matrix);
    NormalizedMetrics out;
    out.droops = metrics.meanDroopsPer1k / base.meanDroopsPer1k;
    out.performance = metrics.meanIpc / base.meanIpc;
    return out;
}

} // namespace vsmooth::sched
