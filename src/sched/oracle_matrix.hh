/**
 * @file
 * Oracle co-schedule profiles (paper Sec IV-C).
 *
 * The paper's scheduling study is oracle-based: a pre-run phase
 * measures, for every pair of CPU2006 benchmarks, the droop rate and
 * throughput of running them together on the two cores (the 29x29
 * sweep). Policies then select pairs from a job pool using this
 * matrix. OracleMatrix performs that pre-run phase with the full
 * simulation stack and caches the results.
 */

#ifndef VSMOOTH_SCHED_ORACLE_MATRIX_HH
#define VSMOOTH_SCHED_ORACLE_MATRIX_HH

#include <cstdint>
#include <vector>

#include "resilience/perf_model.hh"
#include "sim/system.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::sched {

/** Measured profile of one co-scheduled benchmark pair. */
struct PairProfile
{
    /** Droops (samples below the idle margin) per 1000 cycles. */
    double droopsPer1k = 0.0;
    /** Combined throughput: sum of both cores' IPC. */
    double ipc = 0.0;
    /** Emergency events per watched margin, for the perf model. */
    resilience::EmergencyProfile emergencies;
};

/** Configuration of the oracle pre-run phase. */
struct OracleConfig
{
    sim::SystemConfig system;
    /** Cycles simulated per pair. */
    Cycles cyclesPerPair = 600'000;
    /** Droop-counting margin (the paper's 2.3 %). */
    double droopMargin = sim::kIdleMargin;
    std::uint64_t seed = 12345;
    /**
     * Model self-pairs (i, i) as phase-aligned: both copies get the
     * same stream seed and run in lockstep, the worst case a
     * SPECrate-style simultaneous launch produces on real hardware.
     * Off by default — the classic matrix treats the two copies as
     * independently phased.
     */
    bool alignedSelfPairs = false;
};

/** The NxN pair-profile matrix over a benchmark suite. */
class OracleMatrix
{
  public:
    /**
     * Run the pre-run measurement phase over all pairs (i <= j; the
     * matrix is symmetric by construction since core order does not
     * matter).
     */
    OracleMatrix(const std::vector<workload::SpecBenchmark> &suite,
                 const OracleConfig &cfg);

    std::size_t size() const { return n_; }
    const workload::SpecBenchmark &benchmark(std::size_t i) const
    { return suite_[i]; }

    /** Profile of co-scheduling benchmarks i and j. */
    const PairProfile &pair(std::size_t i, std::size_t j) const;

    /** Profile of benchmark i running with the other core idle. */
    const PairProfile &single(std::size_t i) const
    { return singles_.at(i); }

    /** SPECrate profile: two copies of benchmark i (= pair(i, i)). */
    const PairProfile &specRate(std::size_t i) const
    { return pair(i, i); }

    const OracleConfig &config() const { return cfg_; }

  private:
    PairProfile measure(std::size_t i, std::size_t j,
                        bool idleSecond) const;
    /** Construct (but do not run) the System for one measurement. */
    sim::System buildMeasure(std::size_t i, std::size_t j,
                             bool idleSecond) const;
    /** Extract the profile from a completed measurement run. */
    PairProfile profileFrom(sim::System &sys, std::size_t i,
                            std::size_t j, bool idleSecond) const;

    std::vector<workload::SpecBenchmark> suite_;
    OracleConfig cfg_;
    std::size_t n_;
    std::vector<PairProfile> pairs_;   // upper triangle, row-major
    std::vector<PairProfile> singles_;
};

} // namespace vsmooth::sched

#endif // VSMOOTH_SCHED_ORACLE_MATRIX_HH
