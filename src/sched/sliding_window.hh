/**
 * @file
 * The sliding-window co-scheduling experiment of Fig 16.
 *
 * Program X runs to completion on core 0. Core 1 repeatedly runs the
 * first `windowCycles` of program Y, restarting each time the window
 * elapses — a convolution of Y's opening window against all of X's
 * voltage-noise phases. The per-window droop rate exposes where the
 * combination interferes constructively (droops amplified) or
 * destructively (droops at or below the single-core level).
 */

#ifndef VSMOOTH_SCHED_SLIDING_WINDOW_HH
#define VSMOOTH_SCHED_SLIDING_WINDOW_HH

#include <vector>

#include "sim/system.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::sched {

/** Result series of the sliding-window experiment. */
struct SlidingWindowResult
{
    /** Window length in cycles (the paper's 60 s, scaled). */
    Cycles windowCycles = 0;
    /** Droops/1K cycles per window with both programs running. */
    std::vector<double> coScheduled;
    /** Droops/1K cycles per window with X alone (core 1 idle). */
    std::vector<double> singleCore;
};

/**
 * Run the experiment.
 *
 * @param progX runs start-to-finish on core 0
 * @param progY its first windowCycles loop on core 1
 * @param windowCycles window / measurement interval length
 * @param baseLength X's run length for relativeLength == 1
 * @param cfg system configuration (the paper uses Proc3 — future
 *        node — for the scheduling study)
 */
SlidingWindowResult
slidingWindowExperiment(const workload::SpecBenchmark &progX,
                        const workload::SpecBenchmark &progY,
                        Cycles windowCycles, Cycles baseLength,
                        const sim::SystemConfig &cfg,
                        std::uint64_t seed = 99);

} // namespace vsmooth::sched

#endif // VSMOOTH_SCHED_SLIDING_WINDOW_HH
