/**
 * @file
 * Thread-scheduling policies (paper Sec IV-C).
 *
 * A batch scheduler pairs jobs from a pool onto the two cores. The
 * paper compares:
 *  - Random: arbitrary pairing (the control).
 *  - Ipc: throughput-aware, maximizes combined IPC (the classic
 *    contention-aware co-scheduling objective).
 *  - Droop: voltage-noise-aware, minimizes chip-wide droops — the
 *    paper's proposal.
 *  - DroopWorstFirst: the same objective placed worst-first — the
 *    noisiest remaining job is committed with whichever partner
 *    smooths it best. Plain greedy banks the quietest pairs early and
 *    strands the noise generators with each other; worst-first spends
 *    the quiet jobs where they buy the most smoothing.
 *  - IpcOverDroopN: the hybrid IPC/Droop^n metric that weighs noise
 *    by the platform's recovery cost (Sec IV-D).
 *
 * Greedy pairing: repeatedly commit the best remaining pair under
 * the policy's score. The pool is a multiset of benchmark indices;
 * the paper constrains how often a program repeats, which the caller
 * controls by the pool's multiplicities.
 */

#ifndef VSMOOTH_SCHED_POLICY_HH
#define VSMOOTH_SCHED_POLICY_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "sched/oracle_matrix.hh"

namespace vsmooth::sched {

/** One co-scheduled pair of benchmark indices. */
struct ScheduledPair
{
    std::size_t a;
    std::size_t b;
};

/** A batch schedule: the list of pairs to run, in order. */
using Schedule = std::vector<ScheduledPair>;

/** Policy kinds the paper evaluates. */
enum class PolicyKind
{
    Random,
    Ipc,
    Droop,
    DroopWorstFirst,
    IpcOverDroopN,
};

std::string policyName(PolicyKind kind);

/**
 * Build a batch schedule from a job pool under a policy.
 *
 * @param pool benchmark indices (multiset), even count
 * @param matrix oracle pair profiles
 * @param kind pairing objective
 * @param rng randomness (Random policy and greedy tie-breaks)
 * @param hybridN the exponent n in IPC/Droop^n (only IpcOverDroopN)
 */
Schedule buildSchedule(std::vector<std::size_t> pool,
                       const OracleMatrix &matrix, PolicyKind kind,
                       Rng &rng, double hybridN = 1.0);

/** Aggregate metrics of a schedule, averaged over its pairs. */
struct ScheduleMetrics
{
    double meanDroopsPer1k = 0.0;
    double meanIpc = 0.0;
};

ScheduleMetrics evaluateSchedule(const Schedule &schedule,
                                 const OracleMatrix &matrix);

/**
 * The SPECrate baseline: every benchmark paired with a second copy
 * of itself (the paper's throughput baseline).
 */
Schedule specRateSchedule(const OracleMatrix &matrix);

/** Metrics normalized against the SPECrate baseline (Fig 18 axes). */
struct NormalizedMetrics
{
    /** Droops relative to SPECrate (1.0 = equal; < 1 is better). */
    double droops = 1.0;
    /** Throughput relative to SPECrate (> 1 is better). */
    double performance = 1.0;
};

NormalizedMetrics normalizeAgainstSpecRate(const ScheduleMetrics &metrics,
                                           const OracleMatrix &matrix);

} // namespace vsmooth::sched

#endif // VSMOOTH_SCHED_POLICY_HH
