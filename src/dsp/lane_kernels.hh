/**
 * @file
 * Cross-lane (K-wide column) forms of the dsp primitives, templated
 * over the vector type V the SIMD translation units supply (width-1
 * scalar, SSE2, AVX2, AVX-512). Each kernel is the blended —
 * branchless — counterpart of the matching sample kernel in
 * dsp/primitives.hh: conditional stages compute both sides and select
 * per lane, which yields the same result bits for finite inputs
 * (DESIGN.md §12 states the full equivalence argument per primitive).
 *
 * Comparison results are V::Mask, not V: through AVX2 a mask is just
 * another vector register (all-ones / all-zeros lanes fed to a
 * blendv), but AVX-512 comparisons return a k mask register, so the
 * lane kernels carry masks in whatever representation the level's
 * blend consumes. Masks are produced by gtMask/ltMask and consumed
 * only by blend — they never enter arithmetic.
 *
 * This header is included from translation units compiled with -mavx2
 * and -mavx512f (common/simd_avx2.cc, common/simd_avx512.cc): keep it
 * templates-only, with no intrinsics and no non-template inline
 * functions, so no AVX-encoded comdat can leak into baseline objects.
 * V supplies elementwise IEEE double operations only — no FMA, no
 * reductions — and instantiations with the TU-local V types have
 * internal linkage.
 */

#ifndef VSMOOTH_DSP_LANE_KERNELS_HH
#define VSMOOTH_DSP_LANE_KERNELS_HH

#include <cstddef>

namespace vsmooth::dsp {

/**
 * Lane form of the fused one-pole + slew chain (smoothSlewSample):
 * the tau > 0 / slew > 0 conditionals become per-lane blends (the
 * untaken side is computed and discarded — same result bits), and the
 * clamp composes as max-then-min exactly like the scalar kernel.
 * Masks and the negated slew bound are precomputed once per block.
 */
template <class V>
struct LaneSmoothSlew
{
    typename V::Mask tauPos;  ///< per-lane mask: tau > 0
    V alpha;
    typename V::Mask slewPos; ///< per-lane mask: slew > 0
    V slew;
    V negSlew; ///< 0 - slew, precomputed

    static LaneSmoothSlew
    make(V tau, V alphaV, V slewV, V zero)
    {
        return {V::gtMask(tau, zero), alphaV, V::gtMask(slewV, zero),
                slewV, zero - slewV};
    }

    /** One sample; `prev` is the caller-held carried value (per core
     *  per slot). */
    V sample(V target, V &prev) const
    {
        const V pr = prev;
        const V sm = pr + alpha * (target - pr);
        target = V::blend(target, sm, tauPos);
        const V lim = V::min(V::max(target - pr, negSlew), slew);
        target = V::blend(target, pr + lim, slewPos);
        prev = target;
        return target;
    }
};

/**
 * Lane form of the triangle ripple (triangleRippleSample): one
 * division per evaluation, phase selected by blend. amp == 0 lanes
 * simply compute amp * tri == ±0, which the trapezoidal average
 * absorbs bit-exactly (vdd + 0.5*(±0 + ±0) == vdd). t must be
 * non-negative (floorNonNeg's contract). The caller supplies the
 * shared numeric constants so they are materialized once per block,
 * not once per call.
 */
template <class V>
struct LaneRipple
{
    V amp;
    V period;

    V at(V t, V one, V three, V four, V half) const
    {
        const V q = t / period;
        const V ph = q - V::floorNonNeg(q);
        const V tri = V::blend(four * ph - three, one - four * ph,
                               V::ltMask(ph, half));
        return amp * tri;
    }
};

/**
 * Lane form of the PDN trapezoidal recurrence (biquadSample), with
 * the input terms formed from the effective supply per sample. The
 * (m·x) + (n·u) grouping is the scalar kernel's exactly.
 */
template <class V>
struct LaneBiquad
{
    V m00, m01, m10, m11;
    V n00, n01, n10, n11;
    V rc;
    V invVdd;

    /** One step; iL/vC/vDie are the caller-held carried state.
     *  Returns the deviation vDie * invVdd - 1. */
    V sample(V &iL, V &vC, V &vDie, V vddEff, V load, V one) const
    {
        const V i0 = iL;
        const V v0 = vC;
        const V niL = (m00 * i0 + m01 * v0) +
            (n00 * vddEff + n01 * load);
        const V nvC = (m10 * i0 + m11 * v0) +
            (n10 * vddEff + n11 * load);
        const V nvDie = nvC + rc * (niL - load);
        iL = niL;
        vC = nvC;
        vDie = nvDie;
        return nvDie * invVdd - one;
    }
};

} // namespace vsmooth::dsp

#endif // VSMOOTH_DSP_LANE_KERNELS_HH
