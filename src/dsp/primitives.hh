/**
 * @file
 * Layer-1 DSP primitives: the loop-carried per-cycle recurrences the
 * whole characterization pipeline bottoms out in — current smoothing
 * (one-pole), slew limiting, the second-order PDN step (biquad
 * recurrence), VRM ripple, and the mitigation ramp — extracted as
 * constexpr-capable, zero-allocation, sample-accurate block
 * processors (DESIGN.md §12).
 *
 * Contract, shared by every primitive here:
 *
 *   - explicit state: all carried state lives in public members of
 *     the primitive struct; copying the struct snapshots the stream
 *     (save/restore round-trips are exact);
 *   - one sample kernel: processBlock() is a plain loop over
 *     sample(), and the free sample functions below ARE the per-cycle
 *     arithmetic — hot paths that keep state in their own layouts
 *     (BlockCursor, BlockStepper) delegate to the same free
 *     functions, so there is exactly one implementation of each
 *     recurrence;
 *   - bit-identity: every function performs a fixed sequence of IEEE
 *     operations; no FMA contraction is assumed and none of the
 *     groupings may be re-associated (the comments on each kernel
 *     state the grouping it must preserve);
 *   - zero allocation: nothing here touches the heap, ever.
 *
 * Keep this header out of the -mavx2 translation unit
 * (common/simd_avx2.cc): the SSE2 block loop below is an inline
 * function, and an AVX-encoded comdat of it could leak into baseline
 * objects. The cross-lane (V-templated) forms of these kernels live
 * in dsp/lane_kernels.hh, which is safe to include there.
 */

#ifndef VSMOOTH_DSP_PRIMITIVES_HH
#define VSMOOTH_DSP_PRIMITIVES_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace vsmooth::dsp {

// ---------------------------------------------------------------------
// Free sample kernels: the single implementation of each per-cycle
// recurrence. State is passed by reference so callers with their own
// state layouts (power::CurrentModel::BlockCursor,
// pdn::SecondOrderPdn::BlockStepper) delegate without copying.
// ---------------------------------------------------------------------

/** One-pole low-pass step: prev += alpha * (target - prev). With
 *  alpha an exact power of two (e.g. 1/256) this is bit-identical to
 *  the divide form `prev += (target - prev) / N`. */
constexpr double
onePoleSample(double &prev, double target, double alpha)
{
    prev = prev + alpha * (target - prev);
    return prev;
}

/** Slew-limit step: prev moves toward target by at most `slew`.
 *  The clamp composes as max-then-min, which compiles branchless
 *  (maxsd/minsd) — the grouping the SIMD lanes reproduce. */
constexpr double
slewLimitSample(double &prev, double target, double slew)
{
    const double delta = std::clamp(target - prev, -slew, slew);
    prev = prev + delta;
    return prev;
}

/**
 * The fused smoothing chain of power::CurrentModel: a one-pole stage
 * (tau > 0 enables) and a slew stage (slew > 0 enables) sharing ONE
 * carried `prev` — both stages measure their delta against the value
 * committed last cycle, and the result commits once at the end.
 * Exactly BlockCursor::smooth()'s operations in its order.
 */
constexpr double
smoothSlewSample(double &prev, double target, double tau, double alpha,
                 double slew)
{
    if (tau > 0.0)
        target = prev + alpha * (target - prev);
    if (slew > 0.0) {
        const double delta = std::clamp(target - prev, -slew, slew);
        target = prev + delta;
    }
    prev = target;
    return target;
}

/**
 * Activity-to-steady-current map (the elementwise, stateless front of
 * the current model): clamp to [0, 2.5] headroom, clock-gating floor,
 * linear dynamic term. min/max composition compiles branchless, which
 * is what lets the block form below vectorize.
 */
constexpr double
activityToCurrentSample(double activity, double leak, double idleClk,
                        double dynMax)
{
    const double a = std::min(std::max(activity, 0.0), 2.5);
    const double clock = idleClk * (0.25 + 0.75 * std::min(a, 1.0));
    return leak + clock + dynMax * a;
}

/** One input term of the biquad step: n0 * drive + n1 * load, the
 *  grouping shared by the hoisted two-pass block form (where
 *  n0 * drive is a loop-invariant CSE, not a reordering). */
constexpr double
biquadInput(double n0, double drive, double n1, double load)
{
    return n0 * drive + n1 * load;
}

/**
 * The PDN trapezoidal recurrence (pdn::SecondOrderPdn's step): a
 * 2-state biquad with precomputed input terms u0/u1. The state terms
 * are grouped apart from the input terms — (m·x) + (u) — which keeps
 * the per-sample input work off the iL/vC carried dependency chain;
 * that grouping is load-bearing for bit-identity and must not be
 * re-associated. Returns the die-voltage deviation.
 */
constexpr double
biquadSample(double &iL, double &vC, double &vDie, double m00, double m01,
             double m10, double m11, double u0, double u1, double load,
             double rc, double invVdd)
{
    const double i0 = iL;
    const double v0 = vC;
    iL = (m00 * i0 + m01 * v0) + u0;
    vC = (m10 * i0 + m11 * v0) + u1;
    vDie = vC + rc * (iL - load);
    return vDie * invVdd - 1.0;
}

/**
 * Triangle VRM ripple at time t (>= 0): phase = t/T - floor(t/T),
 * tri = 1 - 4*phase below 0.5, 4*phase - 3 above. One division per
 * evaluation (the quotient is reused for the floor — same operand
 * bits, so identical to dividing twice). Not constexpr: std::floor
 * is runtime-only in C++20.
 */
inline double
triangleRippleSample(double t, double period, double amp)
{
    if (amp == 0.0)
        return 0.0;
    const double q = t / period;
    const double phase = q - std::floor(q);
    const double tri = phase < 0.5 ? (1.0 - 4.0 * phase)
                                   : (4.0 * phase - 3.0);
    return amp * tri;
}

/**
 * Linear ramp sample: `remaining` of total+1 equal steps left from
 * `from` toward `to` (remaining == total on the first ramp cycle, so
 * the first output already sits below `from`; remaining == 1 on the
 * last). Exactly StallEngine's RampDown arithmetic.
 */
constexpr double
linearRampAt(std::uint32_t remaining, std::uint32_t total, double from,
             double to)
{
    const double frac = static_cast<double>(remaining) /
        static_cast<double>(total + 1);
    return to + (from - to) * frac;
}

// ---------------------------------------------------------------------
// Block-process primitives: explicit state structs over the sample
// kernels, each with the uniform processBlock(in, out, n) interface.
// In-place operation (out == in) is allowed everywhere.
// ---------------------------------------------------------------------

/** First-order low-pass smoother. */
struct OnePoleSmoother
{
    double alpha; ///< blend factor per sample, 1/(1+tau)
    double prev;  ///< carried output

    constexpr double sample(double target)
    {
        return onePoleSample(prev, target, alpha);
    }

    constexpr void processBlock(const double *in, double *out,
                                std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            out[j] = sample(in[j]);
    }
};

/** Per-sample rate limiter. */
struct SlewLimiter
{
    double slew; ///< max |step| per sample (> 0)
    double prev; ///< carried output

    constexpr double sample(double target)
    {
        return slewLimitSample(prev, target, slew);
    }

    constexpr void processBlock(const double *in, double *out,
                                std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            out[j] = sample(in[j]);
    }
};

/**
 * The current model's fused one-pole + slew chain (shared prev;
 * tau <= 0 / slew <= 0 disable their stage). This is the stateful
 * form of smoothSlewSample(); power::CurrentModel::BlockCursor
 * delegates to the same free function.
 */
struct SmoothSlew
{
    double tau;   ///< one-pole time constant (> 0 enables)
    double alpha; ///< 1/(1+tau), precomputed by the owner
    double slew;  ///< max |step| (> 0 enables)
    double prev;  ///< the ONE carried value both stages reference

    constexpr double sample(double target)
    {
        return smoothSlewSample(prev, target, tau, alpha, slew);
    }

    constexpr void processBlock(const double *in, double *out,
                                std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            out[j] = sample(in[j]);
    }
};

/**
 * K SmoothSlew chains advanced in lockstep, their outputs summed in
 * chain order onto a 0.0 seed — the per-cycle chip-current total of
 * System::tickBlock for K cores. K is a compile-time constant so the
 * inner loop unrolls and the K carried chains overlap in the
 * out-of-order window (running the chains one whole block after the
 * other would serialize their latency chains — do not "simplify" to
 * K processBlock calls).
 */
template <std::size_t K>
constexpr void
processSumColumns(SmoothSlew (&chains)[K], const double *const (&in)[K],
                  double *out, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j) {
        double total = 0.0;
        for (std::size_t k = 0; k < K; ++k)
            total += chains[k].sample(in[k][j]);
        out[j] = total;
    }
}

/**
 * The PDN trapezoidal recurrence as a block primitive, for a constant
 * supply drive (no ripple): u0/u1 are formed per sample from vdd —
 * bit-identical to the two-pass form, where n·vdd is hoisted as a
 * common subexpression.
 */
struct BiquadRecurrence
{
    // update matrix M (state) and N (input), row-major
    double m00, m01, m10, m11;
    double n00, n01, n10, n11;
    double vdd;    ///< constant drive term
    double rc;     ///< damping resistance for the vDie output tap
    double invVdd; ///< precomputed 1/vdd for the deviation scaling
    // carried state
    double iL, vC, vDie;

    constexpr double sample(double load)
    {
        return biquadSample(iL, vC, vDie, m00, m01, m10, m11,
                            biquadInput(n00, vdd, n01, load),
                            biquadInput(n10, vdd, n11, load), load, rc,
                            invVdd);
    }

    constexpr void processBlock(const double *load, double *out,
                                std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            out[j] = sample(load[j]);
    }
};

/** Triangle VRM ripple source (pure function of t — no carried
 *  state, so callers may cache evaluations across samples). */
struct RippleOscillator
{
    double amp;    ///< one-sided amplitude in volts (0 disables)
    double period; ///< switching period in seconds (> 0)

    double at(double t) const
    {
        return triangleRippleSample(t, period, amp);
    }

    /** Trapezoidal average of the step endpoints onto vdd. The
     *  amp == 0 short-circuit is exact: vdd + 0.5*(±0 + ±0) == vdd
     *  bitwise. */
    double vddEff(double vdd, double t, double dt) const
    {
        return amp == 0.0 ? vdd : vdd + 0.5 * (at(t) + at(t + dt));
    }

    /** Sample the ripple along t0 + j*dt steps (t accumulated
     *  serially, matching the integrator's time recurrence). */
    void processBlock(double t0, double dt, double *out,
                      std::size_t n) const
    {
        double t = t0;
        for (std::size_t j = 0; j < n; ++j) {
            out[j] = at(t);
            t += dt;
        }
    }
};

/** Finite linear ramp from `from` toward `to` over `total` samples
 *  (the stall engine's RampDown drain). */
struct LinearRamp
{
    double from;
    double to;
    std::uint32_t total;     ///< ramp length in samples
    std::uint32_t remaining; ///< samples left (total on first sample)

    static constexpr double at(std::uint32_t remaining,
                               std::uint32_t total, double from,
                               double to)
    {
        return linearRampAt(remaining, total, from, to);
    }

    constexpr bool done() const { return remaining == 0; }

    constexpr double sample()
    {
        const double y = at(remaining, total, from, to);
        --remaining;
        return y;
    }

    /** Emit min(n, remaining) samples; returns the count emitted. */
    constexpr std::size_t processBlock(double *out, std::size_t n)
    {
        const std::size_t m = std::min<std::size_t>(n, remaining);
        for (std::size_t j = 0; j < m; ++j)
            out[j] = sample();
        return m;
    }
};

/**
 * Elementwise activity-to-steady-current map over a block (stateless,
 * so the lanes vectorize). The SSE2 body spells the clamp out as
 * packed min/max: each SIMD lane performs the same IEEE operations in
 * the same order as the scalar tail (finite activities, so the
 * min/max NaN-operand convention never engages, and clamping -0.0 to
 * +0.0 is absorbed bit-exactly by the additions).
 */
struct ActivityMap
{
    double leak;
    double idleClk;
    double dynMax;

    constexpr double sample(double activity) const
    {
        return activityToCurrentSample(activity, leak, idleClk, dynMax);
    }

    void processBlock(const double *activity, double *out,
                      std::size_t n) const
    {
        std::size_t j = 0;
#if defined(__SSE2__)
        const __m128d vZero = _mm_setzero_pd();
        const __m128d vCeil = _mm_set1_pd(2.5);
        const __m128d vOne = _mm_set1_pd(1.0);
        const __m128d vQuarter = _mm_set1_pd(0.25);
        const __m128d vThreeQ = _mm_set1_pd(0.75);
        const __m128d vLeak = _mm_set1_pd(leak);
        const __m128d vIdle = _mm_set1_pd(idleClk);
        const __m128d vDyn = _mm_set1_pd(dynMax);
        for (; j + 2 <= n; j += 2) {
            __m128d a = _mm_loadu_pd(activity + j);
            a = _mm_min_pd(_mm_max_pd(a, vZero), vCeil);
            const __m128d w = _mm_min_pd(a, vOne);
            const __m128d clock = _mm_mul_pd(
                vIdle, _mm_add_pd(vQuarter, _mm_mul_pd(vThreeQ, w)));
            const __m128d s = _mm_add_pd(_mm_add_pd(vLeak, clock),
                                         _mm_mul_pd(vDyn, a));
            _mm_storeu_pd(out + j, s);
        }
#endif
        for (; j < n; ++j) {
            double a = activity[j];
            a = a < 0.0 ? 0.0 : a;
            a = 2.5 < a ? 2.5 : a;
            const double w = 1.0 < a ? 1.0 : a;
            const double clock = idleClk * (0.25 + 0.75 * w);
            out[j] = leak + clock + dynMax * a;
        }
    }
};

} // namespace vsmooth::dsp

#endif // VSMOOTH_DSP_PRIMITIVES_HH
