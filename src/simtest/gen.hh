/**
 * @file
 * Property-based-testing generators for the simulator stack.
 *
 * The golden harness and the differential unit tests pin behaviour at
 * a handful of hand-picked configurations; the fuzzing layer explores
 * the space *between* them. A Gen<T> is a deterministic combinator
 * that draws a value from an Rng; `fuzzConfigGen()` composes them
 * into random-but-valid whole-simulator scenarios (FuzzConfig):
 * core count and workload mix, decap fraction, PDN R/L scaling
 * inside the mid-frequency resonance band, OS-tick and trace/timeline
 * periods at arbitrary (deliberately non-256-aligned) boundaries,
 * mitigation baselines, run lengths, and sweep job counts.
 *
 * FuzzConfig round-trips through JSON so a failing draw can be
 * written out by the shrinker and replayed verbatim with
 * `vsmooth fuzz --repro <file>`.
 */

#ifndef VSMOOTH_SIMTEST_GEN_HH
#define VSMOOTH_SIMTEST_GEN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"
#include "common/units.hh"

namespace vsmooth::simtest {

/**
 * A deterministic value generator: wraps a draw function so
 * generators compose (map / such-that) without the call sites caring
 * how the underlying value is produced. All randomness flows through
 * the single Rng argument, which keeps every composite draw
 * reproducible from one seed.
 */
template <typename T>
class Gen
{
  public:
    using Fn = std::function<T(Rng &)>;

    Gen(Fn fn) : fn_(std::move(fn)) {}

    T operator()(Rng &rng) const { return fn_(rng); }

    /** Generator of f(draw): transform without re-seeding. */
    template <typename F>
    auto
    map(F f) const
    {
        using U = decltype(f(std::declval<T>()));
        Fn fn = fn_;
        return Gen<U>([fn, f](Rng &rng) { return f(fn(rng)); });
    }

    /**
     * Rejection filter: redraws until pred holds (caller guarantees
     * the predicate is satisfiable with non-trivial probability).
     */
    template <typename P>
    Gen<T>
    suchThat(P pred) const
    {
        Fn fn = fn_;
        return Gen<T>([fn, pred](Rng &rng) {
            for (;;) {
                T v = fn(rng);
                if (pred(v))
                    return v;
            }
        });
    }

  private:
    Fn fn_;
};

/** Always the same value (the degenerate generator). */
template <typename T>
Gen<T>
just(T value)
{
    return Gen<T>([value](Rng &) { return value; });
}

/** Uniform double in [lo, hi). */
Gen<double> uniformGen(double lo, double hi);

/** Log-uniform double in [lo, hi) — for scale-free quantities like
 *  run lengths and periods, where each decade should be equally
 *  likely. */
Gen<double> logUniformGen(double lo, double hi);

/** Uniform integer in [lo, hi] inclusive. */
Gen<std::uint64_t> intGen(std::uint64_t lo, std::uint64_t hi);

/** Bernoulli draw. */
Gen<bool> chanceGen(double probability);

/** Uniformly one of the given values. */
template <typename T>
Gen<T>
elementGen(std::vector<T> values)
{
    return Gen<T>([values](Rng &rng) {
        return values[static_cast<std::size_t>(
            rng.uniformInt(0, values.size() - 1))];
    });
}

/** One simulated core's workload assignment. */
struct FuzzCore
{
    /** Index into workload::specCpu2006(). */
    std::uint32_t bench = 0;
    /** Collapse the benchmark's phase pattern to a single flat phase
     *  (the shrinker's "flatten phases" move). */
    bool flat = false;

    bool operator==(const FuzzCore &) const = default;
};

/**
 * One randomized whole-simulator scenario. Every field has a benign
 * default, and the JSON form omits default-valued fields, so shrunk
 * repro files stay short and readable.
 */
struct FuzzConfig
{
    /** Base seed for the per-core RNG streams. */
    std::uint64_t seed = 1;
    /** Cycles to run. */
    Cycles cycles = 20'000;
    /** Phase-schedule base length (phase boundaries land at
     *  fractions of this, independent of `cycles`, so block/phase
     *  edges rarely align). */
    Cycles baseLength = 20'000;
    /** Cores and their workloads (>= 1). */
    std::vector<FuzzCore> cores{FuzzCore{}};
    /** Looping schedules (run(cycles)) vs finite
     *  (runUntilFinished(cycles)). */
    bool loop = true;

    // --- PDN ------------------------------------------------------------
    /** Package decap fraction (the paper's ProcN knob), in [0, 1]. */
    double decapFraction = 1.0;
    /** Package loop inductance scale: with decapFraction this moves
     *  the tank resonance across the measured 100-200 MHz band. */
    double lScale = 1.0;
    /** Package loop resistance scale (damping). */
    double rScale = 1.0;
    /** One-sided VRM ripple amplitude / Vdd. */
    double rippleFraction = 0.009;

    // --- Periodic boundaries (deliberately not 256-aligned) -------------
    /** OS timer-tick interval in cycles (0 disables). */
    Cycles osTickInterval = 25'000;
    bool enableTrace = false;
    std::uint64_t traceCapacity = 4096;
    bool enableTimeline = false;
    Cycles timelineInterval = 10'000;

    // --- Mitigations / fail-safe (disable the blocked fast path) --------
    /** Operating margin fraction (0 disables the fail-safe). */
    double emergencyMargin = 0.0;
    /** Recovery cost in cycles (>= 1 when emergencyMargin > 0). */
    std::uint32_t recoveryCost = 0;
    bool predictor = false;
    bool damper = false;
    bool split = false;

    // --- Adaptive margin controller (disables the blocked fast path) ----
    /** Closed-loop PI margin trimming (mutually exclusive with
     *  emergencyMargin — one margin authority per chip). */
    bool controller = false;
    double ctrlInitialMargin = 0.08;
    double ctrlMinMargin = 0.02;
    double ctrlMaxMargin = 0.14;
    /** Margin widening per violated droop (0 disables widening). */
    double ctrlWidenStep = 0.01;
    /** Recovery cost in cycles for controller-detected violations
     *  (>= 1 when controller is set). */
    std::uint32_t ctrlRecoveryCost = 200;

    // --- Undervolt fault model (fault_injection_determinism) ------------
    /** Margin the fault model sees; at the default (= the model's safe
     *  margin) the fault probability is exactly zero. */
    double faultMargin = 0.05;
    /** Per-access fault probability at margin 0. */
    double faultRate = 1e-3;

    // --- Sweep parallelism ----------------------------------------------
    /** Worker threads for the parallel==serial property. */
    std::uint64_t jobs = 2;

    // --- Scenario-lane engine (laned_vs_scalar) --------------------------
    /** Lane width for the laned property, 1..simd::kMaxLanes
     *  (0 = derive from the seed, the historical behaviour). */
    std::uint32_t laneWidth = 0;
    /** SIMD level pinned while checking: "", "scalar", "sse2",
     *  "avx2", or "avx512" ("" = the ambient active level). Clamped
     *  to the host's maximum at check time, so repro files written on
     *  a wide host still replay — at the narrower level — anywhere. */
    std::string simdLevel;

    // --- Sampled execution (sampled_within_bounds) ----------------------
    /** Blocks per stationarity-detector window. */
    std::uint32_t samplingWindow = 8;
    /** Consecutive similar windows before a skip. */
    std::uint32_t samplingStable = 2;
    /** Maximum window replays per skip. */
    std::uint32_t samplingSkip = 128;
    /** Droop-detector guard band (absolute deviation units). */
    double samplingGuard = 0.002;

    bool operator==(const FuzzConfig &) const = default;

    /**
     * Serialize; with omitDefaults, fields equal to their
     * default-constructed value are skipped (shrunk repros stay under
     * ~20 lines).
     */
    Json toJson(bool omitDefaults = false) const;

    /** Parse (missing fields keep defaults); false + *error on
     *  schema/validity violations. */
    static bool fromJson(const Json &j, FuzzConfig &out,
                         std::string *error);

    /** Structural validity (what fromJson enforces); false + *why on
     *  violation. */
    bool valid(std::string *why = nullptr) const;
};

/** Generator of random-but-valid FuzzConfigs (the fuzzer's top-level
 *  draw). */
Gen<FuzzConfig> fuzzConfigGen();

} // namespace vsmooth::simtest

#endif // VSMOOTH_SIMTEST_GEN_HH
