/**
 * @file
 * `vsmooth fuzz` — seeded, deterministic property-based fuzzing of
 * the whole simulator stack.
 *
 * Modes (mutually exclusive, checked in this order):
 *   --list            print the property registry and exit
 *   --repro FILE      replay one shrunk repro file
 *   --corpus DIR      replay every *.json repro in a directory
 *   (default)         generate --iters configs from --seed and check
 *                     the selected properties against each
 *
 * On a property failure the driver shrinks the config, writes a
 * replayable repro JSON (--repro-out), reports the failure with the
 * replay command line, and exits nonzero. Runs are deterministic:
 * the same seed and iteration count produce byte-identical summary
 * files, which CI exploits to cross-check two fuzz passes.
 */

#ifndef VSMOOTH_SIMTEST_FUZZ_HH
#define VSMOOTH_SIMTEST_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vsmooth::simtest {

/** Options of one `vsmooth fuzz` invocation. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::uint64_t iters = 1'000;
    /** Property subset by name; empty = every registered property. */
    std::vector<std::string> properties;
    /** Replay a single repro file instead of generating. */
    std::string reproFile;
    /** Replay a directory of repro files instead of generating. */
    std::string corpusDir;
    /** Where a newly shrunk repro is written. */
    std::string reproOut = "vsmooth-fuzz-repro.json";
    /** Optional per-property pass/iteration summary (JSON artifact;
     *  byte-identical across same-seed runs). */
    std::string summaryFile;
    /** Force every generated config's laneWidth (0 = keep the drawn
     *  value) — CI's dedicated widest-lane passes pin 16 here. */
    std::uint32_t forceLanes = 0;
    bool listProperties = false;
    bool verbose = false;
};

/** Process exit code: 0 when every checked property held. */
int runFuzz(const FuzzOptions &opt);

} // namespace vsmooth::simtest

#endif // VSMOOTH_SIMTEST_FUZZ_HH
