#include "fuzz.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "simtest/gen.hh"
#include "simtest/properties.hh"
#include "simtest/shrink.hh"

namespace vsmooth::simtest {

namespace fs = std::filesystem;

namespace {

std::string
knownPropertyNames()
{
    std::string names;
    for (const Property &p : propertyRegistry()) {
        if (!names.empty())
            names += ", ";
        names += p.name;
    }
    return names;
}

std::vector<const Property *>
selectProperties(const FuzzOptions &opt)
{
    std::vector<const Property *> out;
    if (opt.properties.empty()) {
        for (const Property &p : propertyRegistry())
            out.push_back(&p);
        return out;
    }
    for (const std::string &name : opt.properties) {
        const Property *p = findProperty(name);
        if (!p) {
            fatal("unknown property '%s' (known properties: %s)",
                  name.c_str(), knownPropertyNames().c_str());
        }
        out.push_back(p);
    }
    return out;
}

/** Per-property tallies for the summary artifact. */
struct PropertyStats
{
    std::uint64_t checked = 0;
    std::uint64_t failures = 0;
};

/** One repro document: the config plus its optional stored property
 *  name. */
struct Repro
{
    FuzzConfig config;
    std::string property; // empty = run the selected set
};

Repro
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("cannot open repro file '%s' (path typo, or corpus not "
              "checked out?)",
              path.c_str());
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    const Json j = Json::parse(buf.str(), &error);
    if (!error.empty())
        fatal("repro file '%s' is not valid JSON: %s", path.c_str(),
              error.c_str());
    Repro repro;
    if (!FuzzConfig::fromJson(j, repro.config, &error))
        fatal("repro file '%s' is not a valid fuzz config: %s",
              path.c_str(), error.c_str());
    if (const Json *p = j.find("property")) {
        if (!p->isString())
            fatal("repro file '%s': 'property' is not a string",
                  path.c_str());
        repro.property = p->asString();
        if (!findProperty(repro.property)) {
            fatal("repro file '%s' names unknown property '%s' (known "
                  "properties: %s)",
                  path.c_str(), repro.property.c_str(),
                  knownPropertyNames().c_str());
        }
    }
    return repro;
}

/** Check `config` against `props`; prints and tallies failures.
 *  @return true when every property held */
bool
checkConfig(const FuzzConfig &config,
            const std::vector<const Property *> &props,
            const std::string &label,
            std::vector<PropertyStats> &stats, bool verbose)
{
    bool ok = true;
    for (std::size_t i = 0; i < props.size(); ++i) {
        std::string why;
        ++stats[i].checked;
        if (props[i]->check(config, &why)) {
            if (verbose) {
                std::cout << label << " " << props[i]->name
                          << ": ok\n";
            }
            continue;
        }
        ++stats[i].failures;
        ok = false;
        std::cout << label << " " << props[i]->name << ": FAIL — "
                  << why << "\n";
    }
    return ok;
}

void
writeShrunkRepro(const FuzzConfig &failing, const Property &property,
                 const std::string &path)
{
    const ShrinkOutcome shrunk = shrinkConfig(failing, property);
    std::ofstream os(path);
    if (!os) {
        warn("cannot write repro file '%s'; printing instead",
             path.c_str());
        std::cout << reproJson(shrunk.config, property.name).dump(2)
                  << "\n";
        return;
    }
    reproJson(shrunk.config, property.name).write(os, 2);
    os << "\n";
    std::cout << "shrunk repro (" << shrunk.accepted << " reduction(s), "
              << shrunk.attempts << " re-check(s)) written to " << path
              << "\n"
              << "replay with: vsmooth fuzz --repro " << path << "\n";
}

void
printSummary(const std::vector<const Property *> &props,
             const std::vector<PropertyStats> &stats)
{
    TextTable t("fuzz summary");
    t.setHeader({"property", "checked", "failures"});
    for (std::size_t i = 0; i < props.size(); ++i) {
        t.addRow({props[i]->name, TextTable::num(stats[i].checked),
                  TextTable::num(stats[i].failures)});
    }
    t.print(std::cout);
}

void
writeSummaryFile(const FuzzOptions &opt, const std::string &mode,
                 const std::vector<const Property *> &props,
                 const std::vector<PropertyStats> &stats)
{
    if (opt.summaryFile.empty())
        return;
    // Deterministic content only (no timestamps, no host info): two
    // same-seed runs must produce byte-identical artifacts.
    Json j = Json::object();
    j.set("mode", Json(mode));
    j.set("seed", Json(static_cast<double>(opt.seed)));
    j.set("iters", Json(static_cast<double>(opt.iters)));
    Json arr = Json::array();
    for (std::size_t i = 0; i < props.size(); ++i) {
        Json p = Json::object();
        p.set("name", Json(props[i]->name));
        p.set("checked",
              Json(static_cast<double>(stats[i].checked)));
        p.set("failures",
              Json(static_cast<double>(stats[i].failures)));
        arr.push(std::move(p));
    }
    j.set("properties", std::move(arr));
    std::ofstream os(opt.summaryFile);
    if (!os)
        fatal("cannot write summary file '%s'",
              opt.summaryFile.c_str());
    j.write(os, 2);
    os << "\n";
}

int
runReplay(const FuzzOptions &opt,
          const std::vector<std::string> &files, const char *mode)
{
    std::size_t failures = 0;
    // Stored property subsets vary per repro, so replay tallies are
    // kept against the full registry.
    std::vector<const Property *> all;
    for (const Property &p : propertyRegistry())
        all.push_back(&p);
    std::vector<PropertyStats> stats(all.size());

    for (const std::string &file : files) {
        const Repro repro = loadRepro(file);
        std::vector<const Property *> props;
        std::vector<PropertyStats> local;
        if (!repro.property.empty()) {
            props.push_back(findProperty(repro.property));
        } else if (!opt.properties.empty()) {
            props = selectProperties(opt);
        } else {
            props = all;
        }
        local.resize(props.size());
        const bool ok = checkConfig(repro.config, props,
                                    fs::path(file).filename().string(),
                                    local, opt.verbose);
        if (ok)
            std::cout << fs::path(file).filename().string()
                      << ": PASS (" << props.size()
                      << " propert" << (props.size() == 1 ? "y" : "ies")
                      << ")\n";
        else
            ++failures;
        for (std::size_t i = 0; i < props.size(); ++i) {
            for (std::size_t k = 0; k < all.size(); ++k) {
                if (all[k] == props[i]) {
                    stats[k].checked += local[i].checked;
                    stats[k].failures += local[i].failures;
                }
            }
        }
    }
    printSummary(all, stats);
    writeSummaryFile(opt, mode, all, stats);
    std::cout << (files.size() - failures) << "/" << files.size()
              << " repro(s) passed\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
runFuzz(const FuzzOptions &opt)
{
    if (opt.listProperties) {
        // One table per subsystem (groups in first-appearance order,
        // registry order within), with each property's extra
        // generator parameter ranges alongside its invariant.
        std::vector<std::string_view> groups;
        for (const Property &p : propertyRegistry()) {
            if (std::find(groups.begin(), groups.end(),
                          std::string_view(p.subsystem)) == groups.end())
                groups.push_back(p.subsystem);
        }
        for (std::string_view g : groups) {
            TextTable t("properties: " + std::string(g));
            t.setHeader({"property", "checks", "parameter ranges"});
            for (const Property &p : propertyRegistry()) {
                if (std::string_view(p.subsystem) != g)
                    continue;
                t.addRow({p.name, p.summary,
                          p.params ? p.params : "-"});
            }
            t.print(std::cout);
        }
        return 0;
    }

    if (!opt.reproFile.empty())
        return runReplay(opt, {opt.reproFile}, "repro");

    if (!opt.corpusDir.empty()) {
        if (!fs::is_directory(opt.corpusDir)) {
            fatal("corpus directory '%s' does not exist (expected a "
                  "directory of repro .json files, e.g. tests/corpus)",
                  opt.corpusDir.c_str());
        }
        std::vector<std::string> files;
        for (const auto &entry : fs::directory_iterator(opt.corpusDir)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".json") {
                files.push_back(entry.path().string());
            }
        }
        if (files.empty()) {
            fatal("corpus directory '%s' contains no .json repro "
                  "files",
                  opt.corpusDir.c_str());
        }
        std::sort(files.begin(), files.end());
        return runReplay(opt, files, "corpus");
    }

    const auto props = selectProperties(opt);
    std::vector<PropertyStats> stats(props.size());
    Rng rng(opt.seed);
    const Gen<FuzzConfig> gen = fuzzConfigGen();

    for (std::uint64_t iter = 0; iter < opt.iters; ++iter) {
        FuzzConfig config = gen(rng);
        if (opt.forceLanes != 0)
            config.laneWidth = opt.forceLanes;
        const std::string label = "iter " + std::to_string(iter);
        bool ok = true;
        for (std::size_t i = 0; i < props.size(); ++i) {
            std::string why;
            ++stats[i].checked;
            if (props[i]->check(config, &why)) {
                continue;
            }
            ++stats[i].failures;
            ok = false;
            std::cout << label << " " << props[i]->name << ": FAIL — "
                      << why << "\n"
                      << "failing config:\n"
                      << config.toJson(true).dump(2) << "\n";
            writeShrunkRepro(config, *props[i], opt.reproOut);
            break;
        }
        if (!ok) {
            printSummary(props, stats);
            writeSummaryFile(opt, "generate", props, stats);
            return 1;
        }
        if (opt.verbose && (iter + 1) % 100 == 0)
            std::cout << "completed " << (iter + 1) << "/" << opt.iters
                      << " iterations\n";
    }

    printSummary(props, stats);
    writeSummaryFile(opt, "generate", props, stats);
    std::cout << opt.iters << " configs x " << props.size()
              << " properties: all held (seed " << opt.seed << ")\n";
    return 0;
}

} // namespace vsmooth::simtest
