#include "gen.hh"

#include <cmath>

#include "common/simd.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::simtest {

Gen<double>
uniformGen(double lo, double hi)
{
    return Gen<double>(
        [lo, hi](Rng &rng) { return rng.uniform(lo, hi); });
}

Gen<double>
logUniformGen(double lo, double hi)
{
    const double logLo = std::log(lo);
    const double logHi = std::log(hi);
    return Gen<double>([logLo, logHi](Rng &rng) {
        return std::exp(rng.uniform(logLo, logHi));
    });
}

Gen<std::uint64_t>
intGen(std::uint64_t lo, std::uint64_t hi)
{
    return Gen<std::uint64_t>(
        [lo, hi](Rng &rng) { return rng.uniformInt(lo, hi); });
}

Gen<bool>
chanceGen(double probability)
{
    return Gen<bool>(
        [probability](Rng &rng) { return rng.bernoulli(probability); });
}

namespace {

/** Hard validity bounds (generator range and fromJson acceptance). */
constexpr std::size_t kMaxCores = 8;
constexpr Cycles kMaxCycles = 2'000'000;
constexpr std::uint64_t kMaxJobs = 64;

Json
numberArray(const std::vector<FuzzCore> &cores, bool flatField)
{
    Json arr = Json::array();
    for (const FuzzCore &c : cores)
        arr.push(flatField ? Json(c.flat ? 1 : 0)
                           : Json(static_cast<double>(c.bench)));
    return arr;
}

} // namespace

bool
FuzzConfig::valid(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    const std::size_t nBench = workload::specCpu2006().size();
    if (cores.empty() || cores.size() > kMaxCores)
        return fail("cores must have 1.." + std::to_string(kMaxCores) +
                    " entries");
    for (const FuzzCore &c : cores) {
        if (c.bench >= nBench)
            return fail("core bench index " + std::to_string(c.bench) +
                        " out of range [0, " + std::to_string(nBench) +
                        ")");
    }
    if (cycles < 1 || cycles > kMaxCycles)
        return fail("cycles outside [1, " + std::to_string(kMaxCycles) +
                    "]");
    if (baseLength < 1 || baseLength > kMaxCycles)
        return fail("baseLength outside [1, " +
                    std::to_string(kMaxCycles) + "]");
    if (!(decapFraction >= 0.0 && decapFraction <= 1.0))
        return fail("decapFraction outside [0, 1]");
    if (!(lScale > 0.0 && lScale <= 16.0))
        return fail("lScale outside (0, 16]");
    if (!(rScale > 0.0 && rScale <= 16.0))
        return fail("rScale outside (0, 16]");
    if (!(rippleFraction >= 0.0 && rippleFraction <= 0.05))
        return fail("rippleFraction outside [0, 0.05]");
    if (osTickInterval > kMaxCycles)
        return fail("osTickInterval exceeds " +
                    std::to_string(kMaxCycles));
    if (traceCapacity < 1 || traceCapacity > (1u << 20))
        return fail("traceCapacity outside [1, 2^20]");
    if (timelineInterval < 1 || timelineInterval > kMaxCycles)
        return fail("timelineInterval outside [1, " +
                    std::to_string(kMaxCycles) + "]");
    if (!(emergencyMargin >= 0.0 && emergencyMargin <= 0.25))
        return fail("emergencyMargin outside [0, 0.25]");
    if (emergencyMargin > 0.0 && recoveryCost == 0)
        return fail("emergencyMargin > 0 requires recoveryCost >= 1");
    if (controller && emergencyMargin > 0.0)
        return fail("controller and emergencyMargin are mutually "
                    "exclusive");
    if (controller && ctrlRecoveryCost == 0)
        return fail("controller requires ctrlRecoveryCost >= 1");
    if (!(ctrlMinMargin > 0.0 && ctrlMinMargin <= ctrlInitialMargin &&
          ctrlInitialMargin <= ctrlMaxMargin && ctrlMaxMargin <= 0.25))
        return fail("need 0 < ctrlMinMargin <= ctrlInitialMargin <= "
                    "ctrlMaxMargin <= 0.25");
    if (!(ctrlWidenStep >= 0.0 && ctrlWidenStep <= 0.1))
        return fail("ctrlWidenStep outside [0, 0.1]");
    if (!(faultMargin >= 0.0 && faultMargin <= 0.25))
        return fail("faultMargin outside [0, 0.25]");
    if (!(faultRate >= 0.0 && faultRate <= 1.0))
        return fail("faultRate outside [0, 1]");
    if (jobs < 1 || jobs > kMaxJobs)
        return fail("jobs outside [1, " + std::to_string(kMaxJobs) + "]");
    if (laneWidth > simd::kMaxLanes)
        return fail("laneWidth outside [0, " +
                    std::to_string(simd::kMaxLanes) + "]");
    if (simdLevel != "" && simdLevel != "scalar" &&
        simdLevel != "sse2" && simdLevel != "avx2" &&
        simdLevel != "avx512")
        return fail("simdLevel must be one of \"\", scalar, sse2, "
                    "avx2, avx512");
    if (samplingWindow < 1 || samplingWindow > 64)
        return fail("samplingWindow outside [1, 64]");
    if (samplingStable < 1 || samplingStable > 16)
        return fail("samplingStable outside [1, 16]");
    if (samplingSkip < 1 || samplingSkip > 1024)
        return fail("samplingSkip outside [1, 1024]");
    if (!(samplingGuard >= 0.0 && samplingGuard <= 0.05))
        return fail("samplingGuard outside [0, 0.05]");
    return true;
}

Json
FuzzConfig::toJson(bool omitDefaults) const
{
    const FuzzConfig def;
    Json j = Json::object();
    auto num = [&](const char *key, double v, double dv) {
        if (!omitDefaults || v != dv)
            j.set(key, Json(v));
    };
    auto boolean = [&](const char *key, bool v, bool dv) {
        if (!omitDefaults || v != dv)
            j.set(key, Json(v));
    };
    num("seed", static_cast<double>(seed),
        static_cast<double>(def.seed));
    num("cycles", static_cast<double>(cycles),
        static_cast<double>(def.cycles));
    num("baseLength", static_cast<double>(baseLength),
        static_cast<double>(def.baseLength));
    if (!omitDefaults || !(cores == def.cores)) {
        j.set("coreBench", numberArray(cores, false));
        bool anyFlat = false;
        for (const FuzzCore &c : cores)
            anyFlat = anyFlat || c.flat;
        if (!omitDefaults || anyFlat)
            j.set("coreFlat", numberArray(cores, true));
    }
    boolean("loop", loop, def.loop);
    num("decapFraction", decapFraction, def.decapFraction);
    num("lScale", lScale, def.lScale);
    num("rScale", rScale, def.rScale);
    num("rippleFraction", rippleFraction, def.rippleFraction);
    num("osTickInterval", static_cast<double>(osTickInterval),
        static_cast<double>(def.osTickInterval));
    boolean("trace", enableTrace, def.enableTrace);
    num("traceCapacity", static_cast<double>(traceCapacity),
        static_cast<double>(def.traceCapacity));
    boolean("timeline", enableTimeline, def.enableTimeline);
    num("timelineInterval", static_cast<double>(timelineInterval),
        static_cast<double>(def.timelineInterval));
    num("emergencyMargin", emergencyMargin, def.emergencyMargin);
    num("recoveryCost", static_cast<double>(recoveryCost),
        static_cast<double>(def.recoveryCost));
    boolean("predictor", predictor, def.predictor);
    boolean("damper", damper, def.damper);
    boolean("split", split, def.split);
    boolean("controller", controller, def.controller);
    num("ctrlInitialMargin", ctrlInitialMargin, def.ctrlInitialMargin);
    num("ctrlMinMargin", ctrlMinMargin, def.ctrlMinMargin);
    num("ctrlMaxMargin", ctrlMaxMargin, def.ctrlMaxMargin);
    num("ctrlWidenStep", ctrlWidenStep, def.ctrlWidenStep);
    num("ctrlRecoveryCost", static_cast<double>(ctrlRecoveryCost),
        static_cast<double>(def.ctrlRecoveryCost));
    num("faultMargin", faultMargin, def.faultMargin);
    num("faultRate", faultRate, def.faultRate);
    num("jobs", static_cast<double>(jobs),
        static_cast<double>(def.jobs));
    num("laneWidth", static_cast<double>(laneWidth),
        static_cast<double>(def.laneWidth));
    if (!omitDefaults || simdLevel != def.simdLevel)
        j.set("simdLevel", Json(simdLevel));
    num("samplingWindow", static_cast<double>(samplingWindow),
        static_cast<double>(def.samplingWindow));
    num("samplingStable", static_cast<double>(samplingStable),
        static_cast<double>(def.samplingStable));
    num("samplingSkip", static_cast<double>(samplingSkip),
        static_cast<double>(def.samplingSkip));
    num("samplingGuard", samplingGuard, def.samplingGuard);
    return j;
}

bool
FuzzConfig::fromJson(const Json &j, FuzzConfig &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (!j.isObject())
        return fail("fuzz config is not a JSON object");
    out = FuzzConfig{};

    std::vector<std::uint32_t> benches;
    std::vector<bool> flats;
    for (const auto &[key, v] : j.asObject()) {
        auto needNumber = [&]() {
            return v.isNumber();
        };
        if (key == "property" || key == "note") {
            // Repro metadata, consumed by the fuzz driver.
            continue;
        } else if (key == "seed" && needNumber()) {
            out.seed = static_cast<std::uint64_t>(v.asNumber());
        } else if (key == "cycles" && needNumber()) {
            out.cycles = static_cast<Cycles>(v.asNumber());
        } else if (key == "baseLength" && needNumber()) {
            out.baseLength = static_cast<Cycles>(v.asNumber());
        } else if (key == "coreBench" && v.isArray()) {
            for (const Json &e : v.asArray()) {
                if (!e.isNumber())
                    return fail("coreBench has a non-numeric element");
                benches.push_back(
                    static_cast<std::uint32_t>(e.asNumber()));
            }
        } else if (key == "coreFlat" && v.isArray()) {
            for (const Json &e : v.asArray()) {
                if (!e.isNumber())
                    return fail("coreFlat has a non-numeric element");
                flats.push_back(e.asNumber() != 0.0);
            }
        } else if (key == "loop" && v.isBool()) {
            out.loop = v.asBool();
        } else if (key == "decapFraction" && needNumber()) {
            out.decapFraction = v.asNumber();
        } else if (key == "lScale" && needNumber()) {
            out.lScale = v.asNumber();
        } else if (key == "rScale" && needNumber()) {
            out.rScale = v.asNumber();
        } else if (key == "rippleFraction" && needNumber()) {
            out.rippleFraction = v.asNumber();
        } else if (key == "osTickInterval" && needNumber()) {
            out.osTickInterval = static_cast<Cycles>(v.asNumber());
        } else if (key == "trace" && v.isBool()) {
            out.enableTrace = v.asBool();
        } else if (key == "traceCapacity" && needNumber()) {
            out.traceCapacity =
                static_cast<std::uint64_t>(v.asNumber());
        } else if (key == "timeline" && v.isBool()) {
            out.enableTimeline = v.asBool();
        } else if (key == "timelineInterval" && needNumber()) {
            out.timelineInterval = static_cast<Cycles>(v.asNumber());
        } else if (key == "emergencyMargin" && needNumber()) {
            out.emergencyMargin = v.asNumber();
        } else if (key == "recoveryCost" && needNumber()) {
            out.recoveryCost =
                static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "predictor" && v.isBool()) {
            out.predictor = v.asBool();
        } else if (key == "damper" && v.isBool()) {
            out.damper = v.asBool();
        } else if (key == "split" && v.isBool()) {
            out.split = v.asBool();
        } else if (key == "controller" && v.isBool()) {
            out.controller = v.asBool();
        } else if (key == "ctrlInitialMargin" && needNumber()) {
            out.ctrlInitialMargin = v.asNumber();
        } else if (key == "ctrlMinMargin" && needNumber()) {
            out.ctrlMinMargin = v.asNumber();
        } else if (key == "ctrlMaxMargin" && needNumber()) {
            out.ctrlMaxMargin = v.asNumber();
        } else if (key == "ctrlWidenStep" && needNumber()) {
            out.ctrlWidenStep = v.asNumber();
        } else if (key == "ctrlRecoveryCost" && needNumber()) {
            out.ctrlRecoveryCost =
                static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "faultMargin" && needNumber()) {
            out.faultMargin = v.asNumber();
        } else if (key == "faultRate" && needNumber()) {
            out.faultRate = v.asNumber();
        } else if (key == "jobs" && needNumber()) {
            out.jobs = static_cast<std::uint64_t>(v.asNumber());
        } else if (key == "laneWidth" && needNumber()) {
            out.laneWidth = static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "simdLevel" && v.isString()) {
            out.simdLevel = v.asString();
        } else if (key == "samplingWindow" && needNumber()) {
            out.samplingWindow =
                static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "samplingStable" && needNumber()) {
            out.samplingStable =
                static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "samplingSkip" && needNumber()) {
            out.samplingSkip =
                static_cast<std::uint32_t>(v.asNumber());
        } else if (key == "samplingGuard" && needNumber()) {
            out.samplingGuard = v.asNumber();
        } else {
            return fail("unknown or mistyped field '" + key + "'");
        }
    }
    if (!benches.empty()) {
        if (!flats.empty() && flats.size() != benches.size())
            return fail("coreFlat length does not match coreBench");
        out.cores.clear();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            out.cores.push_back(
                {benches[i], !flats.empty() && flats[i]});
        }
    } else if (!flats.empty()) {
        return fail("coreFlat given without coreBench");
    }
    std::string why;
    if (!out.valid(&why))
        return fail(why);
    return true;
}

Gen<FuzzConfig>
fuzzConfigGen()
{
    return Gen<FuzzConfig>([](Rng &rng) {
        const std::size_t nBench = workload::specCpu2006().size();
        FuzzConfig cfg;
        cfg.seed = rng.uniformInt(1, 1u << 30);
        // Log-uniform run lengths: short runs dominate (throughput),
        // but every decade up to ~60k cycles appears. baseLength is
        // drawn separately so phase boundaries land at arbitrary
        // offsets relative to both the run end and the block grid.
        cfg.cycles = static_cast<Cycles>(
            logUniformGen(2'000.0, 60'000.0)(rng));
        cfg.baseLength = static_cast<Cycles>(
            logUniformGen(1'000.0, 80'000.0)(rng));
        const std::size_t nCores = static_cast<std::size_t>(
            elementGen<std::uint64_t>({1, 1, 2, 2, 2, 3, 4})(rng));
        cfg.cores.clear();
        for (std::size_t i = 0; i < nCores; ++i) {
            cfg.cores.push_back(
                {static_cast<std::uint32_t>(
                     rng.uniformInt(0, nBench - 1)),
                 rng.bernoulli(0.1)});
        }
        cfg.loop = rng.bernoulli(0.7);

        // PDN: the ProcN decap ladder plus continuous fractions, and
        // L/R scales that keep the tank resonance inside (roughly)
        // the measured 100-200 MHz band.
        cfg.decapFraction = rng.bernoulli(0.4)
            ? elementGen<double>({1.0, 0.25, 0.03, 0.0})(rng)
            : rng.uniform(0.0, 1.0);
        cfg.lScale = rng.uniform(0.5, 2.0);
        cfg.rScale = rng.uniform(0.5, 2.0);
        // Exact 0.0 carries real weight: it selects the ripple-free
        // fast path in SecondOrderPdn::stepBlock, which a continuous
        // draw would hit with probability zero.
        cfg.rippleFraction = rng.bernoulli(0.6)
            ? elementGen<double>({0.0, 0.0, 0.009})(rng)
            : rng.uniform(0.0, 0.02);

        // Periodic boundaries at arbitrary offsets — the point of the
        // fuzzer is that nothing here is 256-aligned by construction.
        cfg.osTickInterval = rng.bernoulli(0.2)
            ? 0
            : static_cast<Cycles>(rng.uniformInt(500, 50'000));
        cfg.enableTrace = rng.bernoulli(0.3);
        cfg.traceCapacity = rng.uniformInt(16, 8192);
        cfg.enableTimeline = rng.bernoulli(0.3);
        cfg.timelineInterval = rng.uniformInt(500, 30'000);

        // Mitigations and the fail-safe force the scalar path; they
        // appear with low probability so most draws exercise the
        // blocked pipeline, but the scalar-only machinery still gets
        // randomized coverage.
        if (rng.bernoulli(0.15)) {
            cfg.emergencyMargin = rng.uniform(0.02, 0.08);
            cfg.recoveryCost = static_cast<std::uint32_t>(
                rng.uniformInt(1, 2'000));
        }
        cfg.predictor = rng.bernoulli(0.1);
        cfg.damper = rng.bernoulli(0.1);
        cfg.split = rng.bernoulli(0.1);

        // The adaptive margin controller also forces the scalar path;
        // it cannot coexist with the fixed fail-safe (one margin
        // authority), so it only arms on droop-free draws.
        if (!(cfg.emergencyMargin > 0.0) && rng.bernoulli(0.12)) {
            cfg.controller = true;
            cfg.ctrlMinMargin = rng.uniform(0.01, 0.04);
            cfg.ctrlMaxMargin =
                cfg.ctrlMinMargin + rng.uniform(0.02, 0.12);
            cfg.ctrlInitialMargin =
                rng.uniform(cfg.ctrlMinMargin, cfg.ctrlMaxMargin);
            cfg.ctrlWidenStep = rng.bernoulli(0.2)
                ? 0.0
                : rng.uniform(0.002, 0.03);
            cfg.ctrlRecoveryCost = static_cast<std::uint32_t>(
                rng.uniformInt(1, 2'000));
        }

        // Undervolt fault model: the exact safe margin (zero faults)
        // keeps real weight, the rest of the draws thin the margin so
        // the fault paths see traffic.
        cfg.faultMargin = rng.bernoulli(0.4)
            ? 0.05
            : rng.uniform(0.0, 0.06);
        cfg.faultRate = rng.bernoulli(0.3)
            ? 1e-3
            : logUniformGen(1e-4, 0.05)(rng);

        cfg.jobs = rng.uniformInt(1, 6);

        // Scenario-lane dimensions: half the draws keep the
        // seed-derived width, the rest pin 1..kMaxLanes so the
        // 9..16-lane repack and retirement paths see direct traffic.
        // SIMD level candidates are host-gated (generation must never
        // draw a config that is fatal to check here); "" — the
        // ambient active level — keeps most weight.
        cfg.laneWidth = rng.bernoulli(0.5)
            ? 0
            : static_cast<std::uint32_t>(
                  rng.uniformInt(1, simd::kMaxLanes));
        {
            std::vector<std::string> levels{"", "", "", "scalar"};
            const auto host = static_cast<int>(simd::detectHostLevel());
            if (host >= static_cast<int>(simd::IsaLevel::Sse2))
                levels.push_back("sse2");
            if (host >= static_cast<int>(simd::IsaLevel::Avx2))
                levels.push_back("avx2");
            if (host >= static_cast<int>(simd::IsaLevel::Avx512))
                levels.push_back("avx512");
            cfg.simdLevel = elementGen<std::string>(levels)(rng);
        }

        // Sampled-execution knobs: small windows and low stability
        // thresholds make skips likely inside the short fuzz runs;
        // the duplicated 8 weights the production default.
        cfg.samplingWindow = static_cast<std::uint32_t>(
            elementGen<std::uint64_t>({2, 4, 8, 8, 16})(rng));
        cfg.samplingStable =
            static_cast<std::uint32_t>(rng.uniformInt(1, 4));
        cfg.samplingSkip = static_cast<std::uint32_t>(
            elementGen<std::uint64_t>({2, 8, 32, 128})(rng));
        cfg.samplingGuard = logUniformGen(2e-4, 5e-3)(rng);
        return cfg;
    });
}

} // namespace vsmooth::simtest
