#include "shrink.hh"

#include <algorithm>
#include <functional>
#include <vector>

namespace vsmooth::simtest {

namespace {

/** One semantic reduction: mutate the config toward "smaller";
 *  returns false when it does not apply (already minimal). */
using ShrinkMove = std::function<bool(FuzzConfig &)>;

const std::vector<ShrinkMove> &
shrinkMoves()
{
    static const std::vector<ShrinkMove> moves = {
        // Cheapest-to-replay reductions first: runtime, then
        // structure, then instrumentation, then parameters.
        [](FuzzConfig &c) {
            if (c.cycles <= 64)
                return false;
            c.cycles = std::max<Cycles>(64, c.cycles / 2);
            return true;
        },
        [](FuzzConfig &c) {
            if (c.baseLength <= 64)
                return false;
            c.baseLength = std::max<Cycles>(64, c.baseLength / 2);
            return true;
        },
        [](FuzzConfig &c) {
            if (c.cores.size() <= 1)
                return false;
            c.cores.pop_back();
            return true;
        },
        [](FuzzConfig &c) {
            bool changed = false;
            for (FuzzCore &core : c.cores) {
                if (!core.flat) {
                    core.flat = true;
                    changed = true;
                }
            }
            return changed;
        },
        [](FuzzConfig &c) {
            bool changed = false;
            for (FuzzCore &core : c.cores) {
                changed = changed || core.bench != 0;
                core.bench = 0;
            }
            return changed;
        },
        [](FuzzConfig &c) {
            const FuzzConfig def;
            if (!c.enableTrace && c.traceCapacity == def.traceCapacity)
                return false;
            c.enableTrace = false;
            c.traceCapacity = def.traceCapacity;
            return true;
        },
        [](FuzzConfig &c) {
            const FuzzConfig def;
            if (!c.enableTimeline &&
                c.timelineInterval == def.timelineInterval) {
                return false;
            }
            c.enableTimeline = false;
            c.timelineInterval = def.timelineInterval;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.osTickInterval == 0)
                return false;
            c.osTickInterval = 0;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.rippleFraction == 0.0)
                return false;
            c.rippleFraction = 0.0;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.decapFraction == 1.0 && c.lScale == 1.0 &&
                c.rScale == 1.0) {
                return false;
            }
            c.decapFraction = 1.0;
            c.lScale = 1.0;
            c.rScale = 1.0;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.emergencyMargin == 0.0 && !c.predictor && !c.damper &&
                !c.split) {
                return false;
            }
            c.emergencyMargin = 0.0;
            c.recoveryCost = 0;
            c.predictor = false;
            c.damper = false;
            c.split = false;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.loop)
                return false;
            c.loop = true;
            return true;
        },
        // Sampling knobs back to their defaults (one move: they only
        // matter together, and a default-valued repro omits them all).
        [](FuzzConfig &c) {
            const FuzzConfig def;
            if (c.samplingWindow == def.samplingWindow &&
                c.samplingStable == def.samplingStable &&
                c.samplingSkip == def.samplingSkip &&
                c.samplingGuard == def.samplingGuard) {
                return false;
            }
            c.samplingWindow = def.samplingWindow;
            c.samplingStable = def.samplingStable;
            c.samplingSkip = def.samplingSkip;
            c.samplingGuard = def.samplingGuard;
            return true;
        },
        // Keep jobs >= 2 so the parallel property still exercises the
        // pool; 2 is its minimal interesting value.
        [](FuzzConfig &c) {
            if (c.jobs <= 2)
                return false;
            c.jobs = 2;
            return true;
        },
        // Lane dimensions back to their defaults (seed-derived width,
        // ambient SIMD level) — if the failure only reproduces at a
        // pinned width or level, the repro keeps them.
        [](FuzzConfig &c) {
            if (c.laneWidth == 0)
                return false;
            c.laneWidth = 0;
            return true;
        },
        [](FuzzConfig &c) {
            if (c.simdLevel.empty())
                return false;
            c.simdLevel.clear();
            return true;
        },
        [](FuzzConfig &c) {
            if (c.seed == 1)
                return false;
            c.seed = 1;
            return true;
        },
    };
    return moves;
}

} // namespace

ShrinkOutcome
shrinkConfig(const FuzzConfig &failing, const Property &property,
             std::size_t maxAttempts)
{
    ShrinkOutcome out;
    out.config = failing;
    bool progressed = true;
    while (progressed && out.attempts < maxAttempts) {
        progressed = false;
        for (const ShrinkMove &move : shrinkMoves()) {
            if (out.attempts >= maxAttempts)
                break;
            FuzzConfig candidate = out.config;
            if (!move(candidate) || candidate == out.config)
                continue;
            ++out.attempts;
            if (!property.check(candidate, nullptr)) {
                // Still fails: the reduction is irrelevant to the
                // bug — keep it off the repro.
                out.config = candidate;
                ++out.accepted;
                progressed = true;
            }
        }
    }
    return out;
}

Json
reproJson(const FuzzConfig &cfg, const std::string &propertyName)
{
    // Property name first, then the non-default config fields: the
    // repro reads top-down as "what failed, on what".
    Json j = Json::object();
    j.set("property", Json(propertyName));
    const Json fields = cfg.toJson(true);
    for (const auto &[key, value] : fields.asObject())
        j.set(key, value);
    return j;
}

} // namespace vsmooth::simtest
