/**
 * @file
 * Failure minimization for property-based fuzzing.
 *
 * When a property fails on a generated config, the raw draw is a poor
 * bug report: four cores, an odd trace period, a scaled PDN, and 50k
 * cycles of runtime obscure which ingredient matters. The shrinker
 * greedily applies semantic reductions — halve the run, drop cores,
 * flatten phase schedules, disable instrumentation, neutralize the
 * PDN scaling — keeping a reduction only if the property *still
 * fails*, until no reduction applies. The result is written as a
 * replayable JSON repro (default-valued fields omitted, so minimal
 * repros are a handful of lines) for `vsmooth fuzz --repro`.
 */

#ifndef VSMOOTH_SIMTEST_SHRINK_HH
#define VSMOOTH_SIMTEST_SHRINK_HH

#include <cstddef>
#include <string>

#include "simtest/gen.hh"
#include "simtest/properties.hh"

namespace vsmooth::simtest {

/** Result of minimizing a failing config. */
struct ShrinkOutcome
{
    /** The minimized config (still fails the property). */
    FuzzConfig config;
    /** Property re-checks performed. */
    std::size_t attempts = 0;
    /** Reductions that kept the failure and were accepted. */
    std::size_t accepted = 0;
};

/**
 * Minimize `failing` against `property` (which must currently fail
 * on it). Deterministic: the reduction order is fixed, so the same
 * failure always shrinks to the same repro.
 */
ShrinkOutcome shrinkConfig(const FuzzConfig &failing,
                           const Property &property,
                           std::size_t maxAttempts = 400);

/** The replayable repro document: the config (defaults omitted) plus
 *  the failing property's name. */
Json reproJson(const FuzzConfig &cfg, const std::string &propertyName);

} // namespace vsmooth::simtest

#endif // VSMOOTH_SIMTEST_SHRINK_HH
