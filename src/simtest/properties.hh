/**
 * @file
 * Executable invariants checked against randomized configurations.
 *
 * Each Property is a named predicate over a FuzzConfig: it builds
 * whatever simulator state the config describes, runs it, and checks
 * an invariant the codebase promises unconditionally —
 *
 *   - blocked_vs_scalar: the batched tick pipeline is bit-identical
 *     to the per-cycle path at arbitrary block/phase/OS-tick/trace
 *     boundaries (not just the 256-aligned ones unit tests pin);
 *   - run_twice_determinism: the same seed reproduces every
 *     observable exactly;
 *   - parallel_vs_serial: a parallelMap sweep is bit-identical for
 *     any worker-thread count;
 *   - laned_vs_scalar: the scenario-lane SIMD engine (sim::LaneGroup)
 *     is bit-identical to solo runs at any lane width, including
 *     mixed finite/looping schedules that retire mid-sweep;
 *   - pdn_linearity: the second-order PDN is LTI — superposition and
 *     scaling of current stimuli, exact DC gain R·I, and a step
 *     response inside analytic second-order bounds;
 *   - sampled_within_bounds: phase-sampled execution is
 *     deterministic, conserves histogram mass, and lands every
 *     extrapolated metric within the error bound its own report
 *     declares (bit-identical when nothing was extrapolated);
 *   - histogram_invariants: mass conservation, block/scalar feed
 *     identity, merge commutativity/associativity, and
 *     concatenation == merge;
 *   - result_roundtrip: Result -> JSON -> Result is lossless;
 *   - adaptive_margin_invariants: the closed-loop margin controller
 *     stays within its configured bounds, its trajectory is
 *     deterministic, disabling it is bit-identical to the plain
 *     engine regardless of the controller knobs, and a zero-gain
 *     controller is bit-identical to the fixed-margin fail-safe;
 *   - fault_injection_determinism: undervolt fault sets are exactly
 *     nested across margins, exactly zero at the safe margin, and
 *     identical under any shard or blocked/scalar partition.
 *
 * On failure, check() returns false and fills *why with the first
 * divergent observable. The fuzz driver shrinks the config and writes
 * a replayable repro.
 */

#ifndef VSMOOTH_SIMTEST_PROPERTIES_HH
#define VSMOOTH_SIMTEST_PROPERTIES_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simtest/gen.hh"

namespace vsmooth::sim {
class System;
}

namespace vsmooth::simtest {

/** One registered invariant. */
struct Property
{
    const char *name;
    /** Subsystem the invariant guards — the `fuzz --list` grouping
     *  key (e.g. "sim/system", "pdn", "common"). */
    const char *subsystem;
    const char *summary;
    /** Generator parameter ranges the property draws beyond the
     *  common FuzzConfig fields (shown by --list; nullptr = none). */
    const char *params;
    bool (*check)(const FuzzConfig &cfg, std::string *why);
};

/** All registered properties, in stable registry order. */
const std::vector<Property> &propertyRegistry();

/** Look up a property by name; nullptr if unknown. */
const Property *findProperty(std::string_view name);

/**
 * Every observable of one System run, captured for exact comparison
 * (the currency of the differential properties). All counts and
 * doubles are compared bitwise — the simulator's reproducibility
 * guarantees are bit-level, never "close enough".
 */
struct RunSummary
{
    Cycles cycles = 0;
    double dieVoltage = 0.0;
    double deviation = 0.0;
    double totalCurrent = 0.0;
    std::uint64_t emergencies = 0;
    std::uint64_t histTotal = 0;
    std::uint64_t histUnderflow = 0;
    std::uint64_t histOverflow = 0;
    double histMin = 0.0;
    double histMax = 0.0;
    std::vector<std::uint64_t> histBins;
    std::vector<std::uint64_t> bankEvents;
    std::vector<double> bankDeepest;
    std::vector<std::uint64_t> coreInstructions;
    std::vector<std::uint64_t> coreStallCycles;
    std::vector<double> timeline;
    std::vector<double> traceSamples;
    /** Adaptive margin controller observables (all zero, active
     *  false, when no controller is configured). */
    bool controllerActive = false;
    double ctrlFinalMargin = 0.0;
    double ctrlAvgMargin = 0.0;
    double ctrlMinMargin = 0.0;
    double ctrlMaxMargin = 0.0;
    std::uint64_t ctrlUpdates = 0;
    std::uint64_t ctrlWidenings = 0;

    bool operator==(const RunSummary &) const = default;
};

/**
 * Build the System a FuzzConfig describes, run it, and summarize.
 * forceScalar disables the blocked fast path (the scalar reference
 * side of the differential).
 */
RunSummary summarizeRun(const FuzzConfig &cfg, bool forceScalar);

/** Capture the observables of an already-executed System (the laned
 *  side of the differential, where LaneGroup drove the run). */
RunSummary summarizeSystem(sim::System &sys, const FuzzConfig &cfg);

/** Human-readable first difference between two summaries; empty when
 *  identical. */
std::string firstDifference(const RunSummary &a, const RunSummary &b);

/**
 * Observables of one fault-injection rig run (the undervolt scenario
 * family's primitive, shared by the fuzz property, the golden
 * experiment, and the serve batch kind): one DetailedCore driven by a
 * deterministic mixed load/branch stream whose footprint exceeds the
 * L2 and TLB reach, with the margin-dependent fault model attached to
 * l1d/l2/tlb.
 */
struct FaultRigCounts
{
    std::uint64_t l1dFaults = 0;
    std::uint64_t l2Faults = 0;
    std::uint64_t tlbFaults = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t instructions = 0;

    std::uint64_t totalFaults() const
    { return l1dFaults + l2Faults + tlbFaults; }

    bool operator==(const FaultRigCounts &) const = default;
};

/** Run the fault-injection rig for `cycles` at one margin.
 *  forceScalar drives the per-cycle tick path (the conservation
 *  differential's reference side). */
FaultRigCounts runFaultRig(std::uint64_t seed, double margin,
                           double ratePerAccess, Cycles cycles,
                           bool forceScalar = false);

} // namespace vsmooth::simtest

#endif // VSMOOTH_SIMTEST_PROPERTIES_HH
