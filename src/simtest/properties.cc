#include "properties.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/histogram.hh"
#include "common/parallel.hh"
#include "common/result.hh"
#include "common/simd.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "pdn/package_config.hh"
#include "pdn/second_order.hh"
#include "sim/calibration.hh"
#include "sim/lane_group.hh"
#include "sim/system.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::simtest {

namespace {

pdn::PackageConfig
toPackageConfig(const FuzzConfig &cfg)
{
    auto pkg = pdn::PackageConfig::core2duo().withDecapFraction(
        cfg.decapFraction);
    pkg.lPackage *= cfg.lScale;
    pkg.rPackage *= cfg.rScale;
    pkg.esrPackage *= cfg.rScale;
    pkg.rippleFraction = cfg.rippleFraction;
    return pkg;
}

sim::SystemConfig
toSystemConfig(const FuzzConfig &cfg, bool forceScalar)
{
    sim::SystemConfig sys;
    sys.package = toPackageConfig(cfg);
    sys.osTickInterval = cfg.osTickInterval;
    sys.enableTrace = cfg.enableTrace;
    sys.traceCapacity = static_cast<std::size_t>(cfg.traceCapacity);
    sys.enableTimeline = cfg.enableTimeline;
    sys.timelineInterval = cfg.timelineInterval;
    sys.splitSupplies = cfg.split;
    sys.enableEmergencyPredictor = cfg.predictor;
    sys.enableResonanceDamper = cfg.damper;
    if (cfg.emergencyMargin > 0.0) {
        sys.emergencyMargin = cfg.emergencyMargin;
        sys.recoveryCostCycles = cfg.recoveryCost;
    }
    if (cfg.controller) {
        sys.enableMarginController = true;
        sys.marginControllerParams.initialMargin = cfg.ctrlInitialMargin;
        sys.marginControllerParams.minMargin = cfg.ctrlMinMargin;
        sys.marginControllerParams.maxMargin = cfg.ctrlMaxMargin;
        sys.marginControllerParams.widenStep = cfg.ctrlWidenStep;
        sys.recoveryCostCycles = cfg.ctrlRecoveryCost;
    }
    sys.enableBlockedExecution = !forceScalar;
    // The differential properties compare exact execution paths;
    // resolve sampling to Off explicitly so an inherited
    // VSMOOTH_SAMPLING=auto cannot contaminate them. The sampled
    // property opts back in with Mode::Auto.
    sys.sampling.mode = sim::SamplingConfig::Mode::Off;
    return sys;
}

void
addCores(sim::System &sys, const FuzzConfig &cfg)
{
    const auto &suite = workload::specCpu2006();
    for (std::size_t i = 0; i < cfg.cores.size(); ++i) {
        workload::SpecBenchmark bench = suite[cfg.cores[i].bench];
        if (cfg.cores[i].flat) {
            bench.pattern = workload::PhasePattern::Flat;
            bench.stepMultipliers.clear();
        }
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(bench, cfg.baseLength, cfg.loop),
            cfg.seed + i * 7919 + 1));
    }
}

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** First index at which two vectors differ; npos when identical. */
template <typename T>
std::size_t
firstMismatch(const std::vector<T> &a, const std::vector<T> &b)
{
    if (a.size() != b.size())
        return std::min(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i]))
            return i;
    return std::string::npos;
}

template <typename T>
bool
describeVector(const char *what, const std::vector<T> &a,
               const std::vector<T> &b, std::string &out)
{
    if (a == b)
        return false;
    std::ostringstream os;
    if (a.size() != b.size()) {
        os << what << " length " << a.size() << " != " << b.size();
    } else {
        const std::size_t i = firstMismatch(a, b);
        os << what << "[" << i << "] " << num(static_cast<double>(a[i]))
           << " != " << num(static_cast<double>(b[i]));
    }
    out = os.str();
    return true;
}

/** Deterministic mixed load/branch stream over an 8 MiB footprint —
 *  larger than the L2 and the TLB reach, so l1d, l2, and tlb all take
 *  misses the fault model can perturb. */
class MixedStream final : public cpu::InstructionSource
{
  public:
    explicit MixedStream(std::uint64_t seed) : rng_(seed) {}

    cpu::SyntheticInstruction
    next() override
    {
        cpu::SyntheticInstruction in;
        in.pc = pc_;
        pc_ += 4;
        const double p = rng_.uniform();
        if (p < 0.45) {
            in.isMemory = true;
            in.memAddr = rng_.uniformInt(0, kLines - 1) * 64;
        } else if (p < 0.65) {
            in.isBranch = true;
            in.branchTaken = rng_.bernoulli(0.6);
        }
        return in;
    }

  private:
    static constexpr std::uint64_t kLines = (8ull << 20) / 64;

    Rng rng_;
    cpu::Addr pc_ = 0x1000;
};

} // namespace

RunSummary
summarizeRun(const FuzzConfig &cfg, bool forceScalar)
{
    sim::System sys(toSystemConfig(cfg, forceScalar));
    addCores(sys, cfg);
    if (cfg.loop)
        sys.run(cfg.cycles);
    else
        sys.runUntilFinished(cfg.cycles);
    return summarizeSystem(sys, cfg);
}

RunSummary
summarizeSystem(sim::System &sys, const FuzzConfig &cfg)
{
    RunSummary s;
    s.cycles = sys.cycles();
    s.dieVoltage = sys.dieVoltage();
    s.deviation = sys.deviation();
    s.totalCurrent = sys.totalCurrent();
    s.emergencies = sys.emergencies();

    const Histogram &h = sys.scope().histogram();
    s.histTotal = h.totalCount();
    s.histUnderflow = h.underflowCount();
    s.histOverflow = h.overflowCount();
    s.histMin = h.minSample();
    s.histMax = h.maxSample();
    s.histBins.reserve(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        s.histBins.push_back(h.binCount(i));

    const auto &bank = sys.droopBank();
    for (std::size_t i = 0; i < bank.size(); ++i) {
        s.bankEvents.push_back(bank.detector(i).eventCount());
        s.bankDeepest.push_back(bank.detector(i).deepestEvent());
    }

    for (std::size_t i = 0; i < sys.numCores(); ++i) {
        const auto &ctr = sys.core(i).counters();
        s.coreInstructions.push_back(ctr.instructions());
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses; ++c) {
            s.coreStallCycles.push_back(
                ctr.stallCycles(static_cast<cpu::StallCause>(c)));
        }
    }

    if (cfg.enableTimeline)
        s.timeline = sys.timelineSeries();
    if (cfg.enableTrace) {
        for (const auto &t : sys.trace().chronological()) {
            s.traceSamples.push_back(static_cast<double>(t.cycle));
            s.traceSamples.push_back(t.deviation);
            s.traceSamples.push_back(t.currentAmps);
        }
    }

    if (const auto *mc = sys.marginController()) {
        s.controllerActive = true;
        s.ctrlFinalMargin = mc->margin();
        s.ctrlAvgMargin = mc->averageMargin();
        s.ctrlMinMargin = mc->minMarginSeen();
        s.ctrlMaxMargin = mc->maxMarginSeen();
        s.ctrlUpdates = mc->updates();
        s.ctrlWidenings = mc->widenings();
    }
    return s;
}

std::string
firstDifference(const RunSummary &a, const RunSummary &b)
{
    std::string out;
    if (a.cycles != b.cycles)
        return "cycles " + std::to_string(a.cycles) + " != " +
            std::to_string(b.cycles);
    if (a.dieVoltage != b.dieVoltage)
        return "dieVoltage " + num(a.dieVoltage) + " != " +
            num(b.dieVoltage);
    if (a.deviation != b.deviation)
        return "deviation " + num(a.deviation) + " != " +
            num(b.deviation);
    if (a.totalCurrent != b.totalCurrent)
        return "totalCurrent " + num(a.totalCurrent) + " != " +
            num(b.totalCurrent);
    if (a.emergencies != b.emergencies)
        return "emergencies " + std::to_string(a.emergencies) + " != " +
            std::to_string(b.emergencies);
    if (a.controllerActive != b.controllerActive)
        return std::string("controller active ") +
            (a.controllerActive ? "true" : "false") + " != " +
            (b.controllerActive ? "true" : "false");
    if (a.ctrlFinalMargin != b.ctrlFinalMargin)
        return "controller final margin " + num(a.ctrlFinalMargin) +
            " != " + num(b.ctrlFinalMargin);
    if (a.ctrlAvgMargin != b.ctrlAvgMargin)
        return "controller average margin " + num(a.ctrlAvgMargin) +
            " != " + num(b.ctrlAvgMargin);
    if (a.ctrlMinMargin != b.ctrlMinMargin ||
        a.ctrlMaxMargin != b.ctrlMaxMargin) {
        return "controller margin range " + num(a.ctrlMinMargin) + "/" +
            num(a.ctrlMaxMargin) + " != " + num(b.ctrlMinMargin) + "/" +
            num(b.ctrlMaxMargin);
    }
    if (a.ctrlUpdates != b.ctrlUpdates)
        return "controller updates " + std::to_string(a.ctrlUpdates) +
            " != " + std::to_string(b.ctrlUpdates);
    if (a.ctrlWidenings != b.ctrlWidenings)
        return "controller widenings " +
            std::to_string(a.ctrlWidenings) + " != " +
            std::to_string(b.ctrlWidenings);
    if (a.histTotal != b.histTotal)
        return "histogram total " + std::to_string(a.histTotal) +
            " != " + std::to_string(b.histTotal);
    if (a.histUnderflow != b.histUnderflow ||
        a.histOverflow != b.histOverflow) {
        return "histogram under/overflow counts differ";
    }
    if (a.histMin != b.histMin || a.histMax != b.histMax)
        return "histogram min/max " + num(a.histMin) + "/" +
            num(a.histMax) + " != " + num(b.histMin) + "/" +
            num(b.histMax);
    if (describeVector("histogram bin", a.histBins, b.histBins, out))
        return out;
    if (describeVector("droop events", a.bankEvents, b.bankEvents, out))
        return out;
    if (describeVector("deepest event", a.bankDeepest, b.bankDeepest,
                       out))
        return out;
    if (describeVector("instructions", a.coreInstructions,
                       b.coreInstructions, out))
        return out;
    if (describeVector("stall cycles", a.coreStallCycles,
                       b.coreStallCycles, out))
        return out;
    if (describeVector("timeline", a.timeline, b.timeline, out))
        return out;
    if (describeVector("trace sample", a.traceSamples, b.traceSamples,
                       out))
        return out;
    return "";
}

FaultRigCounts
runFaultRig(std::uint64_t seed, double margin, double ratePerAccess,
            Cycles cycles, bool forceScalar)
{
    MixedStream stream(seed);
    cpu::DetailedCoreParams params;
    params.enableFaultInjection = true;
    params.faultModel.rateAtZeroMargin = ratePerAccess;
    params.faultMargin = margin;
    params.faultSeed = seed;

    sim::SystemConfig sc;
    // A deliberately block-unaligned OS tick, so the blocked/scalar
    // conservation differential crosses injection boundaries.
    sc.osTickInterval = Cycles(7'321);
    sc.enableBlockedExecution = !forceScalar;
    sc.sampling.mode = sim::SamplingConfig::Mode::Off;
    sim::System sys(sc);
    auto owned = std::make_unique<cpu::DetailedCore>(params, stream);
    const cpu::DetailedCore *core = owned.get();
    sys.addCore(std::move(owned));
    sys.run(cycles);

    FaultRigCounts counts;
    counts.l1dFaults = core->l1d().faults();
    counts.l2Faults = core->l2().faults();
    counts.tlbFaults = core->tlb().faults();
    counts.l1dMisses = core->l1d().misses();
    counts.l2Misses = core->l2().misses();
    counts.tlbMisses = core->tlb().misses();
    counts.instructions = core->counters().instructions();
    return counts;
}

namespace {

// ---------------------------------------------------------------------
// blocked_vs_scalar
// ---------------------------------------------------------------------

bool
checkBlockedVsScalar(const FuzzConfig &cfg, std::string *why)
{
    const RunSummary blocked = summarizeRun(cfg, false);
    const RunSummary scalar = summarizeRun(cfg, true);
    const std::string diff = firstDifference(blocked, scalar);
    if (diff.empty())
        return true;
    if (why)
        *why = "blocked != scalar: " + diff;
    return false;
}

// ---------------------------------------------------------------------
// run_twice_determinism
// ---------------------------------------------------------------------

bool
checkRunTwiceDeterminism(const FuzzConfig &cfg, std::string *why)
{
    const RunSummary first = summarizeRun(cfg, false);
    const RunSummary second = summarizeRun(cfg, false);
    const std::string diff = firstDifference(first, second);
    if (diff.empty())
        return true;
    if (why)
        *why = "same seed, different run: " + diff;
    return false;
}

// ---------------------------------------------------------------------
// parallel_vs_serial
// ---------------------------------------------------------------------

/** Restore the job-count override on scope exit. */
struct JobsGuard
{
    ~JobsGuard() { setJobs(0); }
};

bool
checkParallelVsSerial(const FuzzConfig &cfg, std::string *why)
{
    // A miniature population sweep: K independent runs derived from
    // the config by seed offset, executed through parallelMap with
    // cfg.jobs workers and again serially. The engine's determinism
    // contract says the two result vectors are bit-identical.
    constexpr std::size_t kRuns = 3;
    auto subConfig = [&](std::size_t i) {
        FuzzConfig c = cfg;
        c.seed = cfg.seed + 1000 + i * 131;
        c.cycles = std::min<Cycles>(cfg.cycles, 8'000);
        return c;
    };
    JobsGuard guard;
    setJobs(static_cast<std::size_t>(cfg.jobs));
    const auto parallel = parallelMap<RunSummary>(
        kRuns,
        [&](std::size_t i) { return summarizeRun(subConfig(i), false); });
    setJobs(1);
    const auto serial = parallelMap<RunSummary>(
        kRuns,
        [&](std::size_t i) { return summarizeRun(subConfig(i), false); });
    for (std::size_t i = 0; i < kRuns; ++i) {
        const std::string diff = firstDifference(parallel[i], serial[i]);
        if (!diff.empty()) {
            if (why) {
                *why = "jobs=" + std::to_string(cfg.jobs) +
                    " != jobs=1 at sweep index " + std::to_string(i) +
                    ": " + diff;
            }
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// laned_vs_scalar
// ---------------------------------------------------------------------

bool
checkLanedVsScalar(const FuzzConfig &cfg, std::string *why)
{
    // K independent scenario variants derived from the config, stepped
    // together through the scenario-lane engine and compared lane by
    // lane against solo runs. Odd lanes flip the loop flag, so a
    // finite-schedule config mixes retiring and looping lanes (and
    // vice versa), exercising mid-sweep retirement and repacking. The
    // lane width comes from the config (laneWidth, or the seed when
    // unset), never the environment, keeping shrunk repro files
    // self-contained; simdLevel pins the kernel dispatch for the
    // check, clamped to the host's maximum so a repro written on a
    // wide host still replays — at the narrower level — anywhere.
    const std::size_t lanes = cfg.laneWidth != 0
        ? cfg.laneWidth
        : 1 + cfg.seed % simd::kMaxLanes;

    struct LevelGuard
    {
        simd::IsaLevel prev = simd::activeLevel();
        ~LevelGuard() { simd::setActiveLevel(prev); }
    } levelGuard;
    if (!cfg.simdLevel.empty()) {
        simd::IsaLevel wanted = simd::IsaLevel::Scalar;
        if (cfg.simdLevel == "sse2")
            wanted = simd::IsaLevel::Sse2;
        else if (cfg.simdLevel == "avx2")
            wanted = simd::IsaLevel::Avx2;
        else if (cfg.simdLevel == "avx512")
            wanted = simd::IsaLevel::Avx512;
        const simd::IsaLevel host = simd::detectHostLevel();
        simd::setActiveLevel(
            static_cast<int>(wanted) <= static_cast<int>(host) ? wanted
                                                               : host);
    }
    auto subConfig = [&](std::size_t i) {
        FuzzConfig c = cfg;
        c.seed = cfg.seed + 257 * i;
        c.cycles = std::min<Cycles>(cfg.cycles, 12'000);
        if (i % 2 == 1)
            c.loop = !cfg.loop;
        return c;
    };

    std::vector<FuzzConfig> cfgs;
    cfgs.reserve(lanes);
    std::vector<sim::System> systems;
    systems.reserve(lanes);
    std::vector<sim::LanePlan> plans;
    plans.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        cfgs.push_back(subConfig(i));
        systems.emplace_back(toSystemConfig(cfgs[i], false));
        addCores(systems.back(), cfgs[i]);
        sim::LanePlan plan;
        plan.system = &systems.back();
        plan.cycles = cfgs[i].cycles;
        plan.untilFinished = !cfgs[i].loop;
        plans.push_back(plan);
    }
    sim::LaneGroup group(lanes);
    group.run(plans);

    for (std::size_t i = 0; i < lanes; ++i) {
        const RunSummary laned = summarizeSystem(systems[i], cfgs[i]);
        const RunSummary solo = summarizeRun(cfgs[i], false);
        const std::string diff = firstDifference(laned, solo);
        if (!diff.empty()) {
            if (why) {
                *why = "laned(width=" + std::to_string(lanes) +
                    ") != solo at lane " + std::to_string(i) + ": " +
                    diff;
            }
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// sampled_within_bounds
// ---------------------------------------------------------------------

bool
checkSampledWithinBounds(const FuzzConfig &cfg, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // The sampler never engages with an active trace; drop it from
    // both arms so they stay comparable, and drive run() directly
    // (sampling applies to run(), never runUntilFinished()).
    FuzzConfig local = cfg;
    local.enableTrace = false;

    auto makeConfig = [&](sim::SamplingConfig::Mode mode) {
        sim::SystemConfig sc = toSystemConfig(local, false);
        sc.sampling.mode = mode;
        sc.sampling.windowBlocks = local.samplingWindow;
        sc.sampling.stableWindows = local.samplingStable;
        sc.sampling.maxSkipWindows = local.samplingSkip;
        sc.sampling.guardBand = local.samplingGuard;
        return sc;
    };
    auto execute = [&](sim::SamplingConfig::Mode mode) {
        auto sys = std::make_unique<sim::System>(makeConfig(mode));
        addCores(*sys, local);
        sys->run(local.cycles);
        return sys;
    };

    auto exact = execute(sim::SamplingConfig::Mode::Off);
    auto sampled = execute(sim::SamplingConfig::Mode::Auto);
    auto sampled2 = execute(sim::SamplingConfig::Mode::Auto);

    const RunSummary se = summarizeSystem(*exact, local);
    const RunSummary ss = summarizeSystem(*sampled, local);
    const RunSummary ss2 = summarizeSystem(*sampled2, local);

    // Sampled execution is deterministic like everything else.
    if (const auto d = firstDifference(ss, ss2); !d.empty())
        return fail("sampled run not deterministic: " + d);

    // run(n) advances exactly n cycles either way, and the scope
    // histogram conserves mass exactly (one sample per cycle —
    // weighted extrapolation must not create or lose counts).
    if (ss.cycles != se.cycles) {
        return fail("sampled cycles " + std::to_string(ss.cycles) +
                    " != exact " + std::to_string(se.cycles));
    }
    if (ss.histTotal != se.histTotal) {
        return fail("sampled histogram mass " +
                    std::to_string(ss.histTotal) + " != exact " +
                    std::to_string(se.histTotal));
    }

    const sim::SamplingReport rep = sampled->samplingReport();
    const double frac = rep.simulatedFraction();
    if (!(std::isfinite(frac) && frac > 0.0 && frac <= 1.0)) {
        return fail("simulated fraction " + num(frac) +
                    " outside (0, 1]");
    }
    for (const auto &[name, bound] : rep.namedBounds()) {
        if (!(std::isfinite(bound) && bound >= 0.0))
            return fail("bound " + name + " = " + num(bound) +
                        " is not a finite non-negative number");
    }

    if (rep.extrapolatedCycles == 0) {
        // Nothing was fast-forwarded (ineligible system, unstable
        // workload, or guard-banded throughout): the sampled run must
        // be bit-identical to the exact one.
        if (const auto d = firstDifference(ss, se); !d.empty())
            return fail("no cycles extrapolated, yet sampled != "
                        "exact: " + d);
        return true;
    }

    // Post-skip execution is a different realization of the same
    // process, so every extrapolated metric is checked against the
    // report's own error bound.
    auto checkBound = [&](const std::string &name, double a, double b,
                          double bound) {
        if (std::abs(a - b) <= bound)
            return true;
        fail(name + ": |sampled " + num(a) + " - exact " + num(b) +
             "| > bound " + num(bound));
        return false;
    };

    if (!checkBound("max droop (hist min)", ss.histMin, se.histMin,
                    rep.maxDroopBound))
        return false;
    if (!checkBound("max overshoot (hist max)", ss.histMax, se.histMax,
                    rep.maxOvershootBound))
        return false;

    if (ss.bankEvents.size() != se.bankEvents.size())
        return fail("detector bank size differs");
    for (std::size_t i = 0; i < ss.bankEvents.size(); ++i) {
        if (!checkBound(
                "droop events at margin " + std::to_string(i),
                static_cast<double>(ss.bankEvents[i]),
                static_cast<double>(se.bankEvents[i]),
                rep.eventCountBound))
            return false;
        const double ds = ss.bankDeepest[i];
        const double de = se.bankDeepest[i];
        if (ds != 0.0 && de != 0.0) {
            if (!checkBound(
                    "deepest event at margin " + std::to_string(i),
                    ds, de, rep.deepestEventBound))
                return false;
        } else if (ds != de) {
            // Exactly one realization crossed this margin at all, so
            // the other's deepest is the no-event sentinel 0 and no
            // dispersion bound relates a full event depth to zero.
            // The sound statement is that such a lone event is
            // marginal: its depth exceeds the armed margin by no more
            // than the bound.
            const double depth = ds != 0.0 ? ds : de;
            const double margin =
                exact->droopBank().detector(i).margin();
            if (std::abs(std::abs(depth) - margin) >
                rep.deepestEventBound) {
                return fail("lone deepest event at margin " +
                            std::to_string(i) + ": depth " +
                            num(depth) + " not within bound " +
                            num(rep.deepestEventBound) +
                            " of margin " + num(margin));
            }
        }
    }

    if (local.enableTimeline) {
        if (ss.timeline.size() != se.timeline.size()) {
            return fail("timeline length " +
                        std::to_string(ss.timeline.size()) +
                        " != exact " +
                        std::to_string(se.timeline.size()));
        }
        for (std::size_t i = 0; i < ss.timeline.size(); ++i) {
            if (!checkBound("timeline[" + std::to_string(i) + "]",
                            ss.timeline[i], se.timeline[i],
                            rep.timelineElementBound))
                return false;
        }
    }

    for (std::size_t i = 0; i < local.cores.size(); ++i) {
        if (!checkBound(
                "core " + std::to_string(i) + " instructions",
                static_cast<double>(ss.coreInstructions[i]),
                static_cast<double>(se.coreInstructions[i]),
                rep.coreInstructionBound))
            return false;
        // The bound covers the per-core *total* stall count; the
        // per-cause split is a realization detail.
        std::uint64_t stallS = 0;
        std::uint64_t stallE = 0;
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses;
             ++c) {
            stallS += ss.coreStallCycles[
                i * cpu::PerfCounters::kNumCauses + c];
            stallE += se.coreStallCycles[
                i * cpu::PerfCounters::kNumCauses + c];
        }
        if (!checkBound("core " + std::to_string(i) + " stall cycles",
                        static_cast<double>(stallS),
                        static_cast<double>(stallE),
                        rep.coreStallCycleBound))
            return false;
    }

    // CDF fraction queries through the merged histogram (the fig07
    // observables).
    if (!checkBound("fraction below idle margin",
                    sampled->scope().fractionBelow(-sim::kIdleMargin),
                    exact->scope().fractionBelow(-sim::kIdleMargin),
                    rep.histFractionBound))
        return false;
    if (!checkBound(
            "fraction outside typical band",
            sampled->scope().fractionOutside(sim::kTypicalCaseBand),
            exact->scope().fractionOutside(sim::kTypicalCaseBand),
            rep.histFractionBound))
        return false;
    return true;
}

// ---------------------------------------------------------------------
// pdn_linearity
// ---------------------------------------------------------------------

/** Transient die-voltage response to a load waveform, from the
 *  zero-load DC operating point, ripple off. */
std::vector<double>
pdnResponse(const pdn::SecondOrderParams &params,
            const std::vector<double> &load)
{
    pdn::SecondOrderPdn pdn(params, sim::clockPeriod());
    pdn.reset(0.0);
    std::vector<double> v(load.size());
    for (std::size_t i = 0; i < load.size(); ++i)
        v[i] = pdn.step(load[i]);
    return v;
}

bool
checkPdnLinearity(const FuzzConfig &cfg, std::string *why)
{
    const auto params = pdn::secondOrderEquivalent(toPackageConfig(cfg));
    const double vdd = params.vdd.value();
    Rng rng(cfg.seed ^ 0x70646e6cULL); // "pdnl"

    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Random piecewise-constant stimuli (10-100-cycle segments, up to
    // ~30 A — the scale of a few cores' di/dt events).
    constexpr std::size_t kSteps = 2'000;
    auto stimulus = [&]() {
        std::vector<double> u(kSteps);
        std::size_t i = 0;
        while (i < kSteps) {
            const std::size_t len = static_cast<std::size_t>(
                rng.uniformInt(10, 100));
            const double amps = rng.uniform(0.0, 30.0);
            for (std::size_t k = 0; k < len && i < kSteps; ++k, ++i)
                u[i] = amps;
        }
        return u;
    };

    const auto u1 = stimulus();
    const auto u2 = stimulus();
    std::vector<double> u12(kSteps);
    std::vector<double> u1x2(kSteps);
    for (std::size_t i = 0; i < kSteps; ++i) {
        u12[i] = u1[i] + u2[i];
        u1x2[i] = 2.0 * u1[i];
    }

    const auto y1 = pdnResponse(params, u1);
    const auto y2 = pdnResponse(params, u2);
    const auto y12 = pdnResponse(params, u12);
    const auto y1x2 = pdnResponse(params, u1x2);

    // Superposition: with the zero-load response identically vdd,
    // y(u1+u2) - vdd == (y(u1) - vdd) + (y(u2) - vdd) up to bounded
    // floating-point drift of the stable recurrence.
    constexpr double kTol = 1e-8;
    for (std::size_t i = 0; i < kSteps; ++i) {
        const double lhs = y12[i] - vdd;
        const double rhs = (y1[i] - vdd) + (y2[i] - vdd);
        if (std::abs(lhs - rhs) > kTol) {
            return fail("superposition violated at step " +
                        std::to_string(i) + ": " + num(lhs) + " vs " +
                        num(rhs));
        }
        const double sl = y1x2[i] - vdd;
        const double sr = 2.0 * (y1[i] - vdd);
        if (std::abs(sl - sr) > kTol) {
            return fail("scaling violated at step " +
                        std::to_string(i) + ": " + num(sl) + " vs " +
                        num(sr));
        }
    }

    // DC gain: the trapezoidal update's fixed point matches the
    // continuous DC solution exactly — droop == rSeries * I.
    const double amps = rng.uniform(1.0, 40.0);
    pdn::SecondOrderPdn pdn(params, sim::clockPeriod());
    pdn.reset(0.0);
    constexpr std::size_t kSettle = 6'000;
    double peak = 0.0;
    for (std::size_t i = 0; i < kSettle; ++i) {
        const double v = pdn.step(amps);
        peak = std::max(peak, vdd - v);
    }
    const double dcDroop = vdd - pdn.voltage();
    const double expected = params.rSeries.value() * amps;
    if (std::abs(dcDroop - expected) > 1e-9 + 1e-9 * expected) {
        return fail("DC gain: droop " + num(dcDroop) + " != R*I " +
                    num(expected));
    }

    // Step-response bound: a second-order tank driven by a current
    // step cannot droop deeper than the resistive drop plus one
    // characteristic-impedance swing (I * (Rs + Rd + sqrt(L/C))),
    // with headroom for the discrete-time peak.
    const double zc =
        std::sqrt(params.l.value() / params.c.value());
    const double bound = amps *
        (params.rSeries.value() + params.rDamp.value() + zc) * 1.2;
    if (peak > bound) {
        return fail("step-response peak droop " + num(peak) +
                    " exceeds second-order bound " + num(bound));
    }
    return true;
}

// ---------------------------------------------------------------------
// histogram_invariants
// ---------------------------------------------------------------------

std::string
histDifference(const Histogram &a, const Histogram &b)
{
    if (a.totalCount() != b.totalCount())
        return "total " + std::to_string(a.totalCount()) + " != " +
            std::to_string(b.totalCount());
    if (a.underflowCount() != b.underflowCount())
        return "underflow differs";
    if (a.overflowCount() != b.overflowCount())
        return "overflow differs";
    if (a.totalCount() > 0 &&
        (a.minSample() != b.minSample() ||
         a.maxSample() != b.maxSample())) {
        return "min/max differ";
    }
    for (std::size_t i = 0; i < a.numBins(); ++i) {
        if (a.binCount(i) != b.binCount(i))
            return "bin " + std::to_string(i) + " differs";
    }
    return "";
}

bool
checkHistogramInvariants(const FuzzConfig &cfg, std::string *why)
{
    Rng rng(cfg.seed ^ 0x68697374ULL); // "hist"
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    const double lo = rng.uniform(-0.3, 0.0);
    const double hi = lo + rng.uniform(0.01, 0.5);
    const std::size_t bins =
        static_cast<std::size_t>(rng.uniformInt(1, 64));

    // Three sample sets mixing in-range bulk, out-of-range tails, and
    // exact-edge values (lo itself, and just under hi).
    auto drawSamples = [&]() {
        std::vector<double> xs(
            static_cast<std::size_t>(rng.uniformInt(0, 300)));
        for (double &x : xs) {
            const double p = rng.uniform();
            if (p < 0.75)
                x = rng.uniform(lo, hi);
            else if (p < 0.85)
                x = rng.uniform(lo - 0.5, hi + 0.5);
            else if (p < 0.95)
                x = lo;
            else
                x = std::nextafter(hi, lo);
        }
        return xs;
    };
    const auto s1 = drawSamples();
    const auto s2 = drawSamples();
    const auto s3 = drawSamples();

    auto fill = [&](const std::vector<double> &xs) {
        Histogram h(lo, hi, bins);
        for (double x : xs)
            h.add(x);
        return h;
    };
    const Histogram h1 = fill(s1);
    const Histogram h2 = fill(s2);
    const Histogram h3 = fill(s3);

    // Mass conservation: every sample is counted exactly once.
    std::uint64_t binned = 0;
    for (std::size_t i = 0; i < h1.numBins(); ++i)
        binned += h1.binCount(i);
    if (h1.totalCount() != s1.size() ||
        binned + h1.underflowCount() + h1.overflowCount() !=
            h1.totalCount()) {
        return fail("histogram mass not conserved: " +
                    std::to_string(binned) + " binned + " +
                    std::to_string(h1.underflowCount()) + " under + " +
                    std::to_string(h1.overflowCount()) + " over != " +
                    std::to_string(h1.totalCount()));
    }

    // Block feed == scalar feed.
    Histogram hb(lo, hi, bins);
    hb.addBlock(s1.data(), s1.size());
    if (const auto d = histDifference(h1, hb); !d.empty())
        return fail("addBlock != add: " + d);

    // Quantile extremes are the exact tracked samples.
    if (h1.totalCount() > 0) {
        if (h1.quantile(0.0) != h1.minSample() ||
            h1.quantile(1.0) != h1.maxSample()) {
            return fail("quantile(0)/quantile(1) are not the exact "
                        "min/max samples");
        }
    }

    auto merged = [&](const Histogram &a, const Histogram &b) {
        Histogram m = a;
        m.merge(b);
        return m;
    };

    // Commutativity.
    if (const auto d =
            histDifference(merged(h1, h2), merged(h2, h1));
        !d.empty()) {
        return fail("merge not commutative: " + d);
    }
    // Associativity.
    if (const auto d = histDifference(merged(merged(h1, h2), h3),
                                      merged(h1, merged(h2, h3)));
        !d.empty()) {
        return fail("merge not associative: " + d);
    }
    // Merge == concatenation.
    std::vector<double> concat = s1;
    concat.insert(concat.end(), s2.begin(), s2.end());
    if (const auto d = histDifference(merged(h1, h2), fill(concat));
        !d.empty()) {
        return fail("merge != concatenated samples: " + d);
    }
    return true;
}

// ---------------------------------------------------------------------
// result_roundtrip
// ---------------------------------------------------------------------

bool
checkResultRoundtrip(const FuzzConfig &cfg, std::string *why)
{
    Rng rng(cfg.seed ^ 0x726a736eULL); // "rjsn"
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Values chosen to stress the %.17g round-trip: signed zeros,
    // non-terminating binary fractions, denormal-adjacent and huge
    // magnitudes, plus uniform draws.
    static const double kAwkward[] = {0.0,     -0.0,   1.0 / 3.0,
                                      1.1e-308, 1e308, -9.87654321e300,
                                      6.02214076e23};
    auto value = [&]() {
        if (rng.bernoulli(0.4)) {
            return kAwkward[rng.uniformInt(
                0, std::size(kAwkward) - 1)];
        }
        return rng.uniform(-1e6, 1e6);
    };

    Result r("fuzz_" + std::to_string(cfg.seed));
    r.setSeed(cfg.seed);
    r.setJobs(cfg.jobs);
    const std::size_t nMetrics = rng.uniformInt(0, 12);
    for (std::size_t i = 0; i < nMetrics; ++i)
        r.metric("metric_" + std::to_string(i), value());
    const std::size_t nSeries = rng.uniformInt(0, 4);
    for (std::size_t i = 0; i < nSeries; ++i) {
        std::vector<double> vs(rng.uniformInt(0, 16));
        for (double &v : vs)
            v = value();
        r.series("series_" + std::to_string(i), std::move(vs));
    }

    const std::string text = r.toJson().dump(2);
    std::string error;
    const Json parsed = Json::parse(text, &error);
    if (!error.empty())
        return fail("emitted JSON does not parse: " + error);
    Result back;
    if (!Result::fromJson(parsed, back, &error))
        return fail("emitted JSON does not load as Result: " + error);
    const std::string text2 = back.toJson().dump(2);
    if (text != text2) {
        return fail("Result JSON round-trip not lossless (re-dump "
                    "differs)");
    }
    const auto report = compareResults(r, back, nullptr,
                                       Tolerance{0.0, 0.0});
    if (!report.pass) {
        return fail("round-tripped Result fails zero-tolerance "
                    "comparison at '" +
                    report.diffs.front().name + "'");
    }
    return true;
}

// ---------------------------------------------------------------------
// adaptive_margin_invariants
// ---------------------------------------------------------------------

bool
checkAdaptiveMarginInvariants(const FuzzConfig &cfg, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Arm the controller whatever the draw said, dropping the fixed
    // fail-safe (the two are mutually exclusive margin authorities).
    FuzzConfig on = cfg;
    on.controller = true;
    on.emergencyMargin = 0.0;
    on.recoveryCost = 0;
    on.cycles = std::min<Cycles>(cfg.cycles, 30'000);

    sim::System sys(toSystemConfig(on, false));
    addCores(sys, on);
    if (on.loop)
        sys.run(on.cycles);
    else
        sys.runUntilFinished(on.cycles);

    const auto *mc = sys.marginController();
    if (!mc)
        return fail("controller configured but not constructed");

    // Saturation: every margin ever in force stayed inside the bounds.
    const double lo = on.ctrlMinMargin;
    const double hi = on.ctrlMaxMargin;
    if (!(mc->margin() >= lo && mc->margin() <= hi)) {
        return fail("final margin " + num(mc->margin()) +
                    " outside [" + num(lo) + ", " + num(hi) + "]");
    }
    if (mc->minMarginSeen() < lo || mc->maxMarginSeen() > hi) {
        return fail("margin excursion [" + num(mc->minMarginSeen()) +
                    ", " + num(mc->maxMarginSeen()) +
                    "] outside bounds [" + num(lo) + ", " + num(hi) +
                    "]");
    }
    if (mc->minMarginSeen() > mc->maxMarginSeen())
        return fail("min margin seen exceeds max margin seen");
    const double avg = mc->averageMargin();
    if (avg < mc->minMarginSeen() - 1e-12 ||
        avg > mc->maxMarginSeen() + 1e-12) {
        return fail("average margin " + num(avg) +
                    " outside seen range [" + num(mc->minMarginSeen()) +
                    ", " + num(mc->maxMarginSeen()) + "]");
    }

    // The trajectory is deterministic, controller observables included.
    const RunSummary s1 = summarizeSystem(sys, on);
    if (!s1.controllerActive)
        return fail("summary did not capture the controller");
    if (const auto d = firstDifference(s1, summarizeRun(on, false));
        !d.empty()) {
        return fail("controller trajectory not deterministic: " + d);
    }

    // Controller-off bit-identity: the ctrl knobs must be inert when
    // the controller is off.
    FuzzConfig off = on;
    off.controller = false;
    FuzzConfig plain = off;
    const FuzzConfig defaults;
    plain.ctrlInitialMargin = defaults.ctrlInitialMargin;
    plain.ctrlMinMargin = defaults.ctrlMinMargin;
    plain.ctrlMaxMargin = defaults.ctrlMaxMargin;
    plain.ctrlWidenStep = defaults.ctrlWidenStep;
    plain.ctrlRecoveryCost = defaults.ctrlRecoveryCost;
    if (const auto d = firstDifference(summarizeRun(off, false),
                                       summarizeRun(plain, false));
        !d.empty()) {
        return fail("controller-off run depends on controller params: " +
                    d);
    }

    // Zero-gain identity: a controller frozen at margin m (equal
    // bounds, zero gains, zero widen step) is the fixed-margin
    // emergency engine at m, bit for bit.
    {
        const double m = on.ctrlInitialMargin;

        sim::SystemConfig fixedCfg = toSystemConfig(on, false);
        fixedCfg.enableMarginController = false;
        fixedCfg.marginControllerParams = {};
        fixedCfg.emergencyMargin = m;
        fixedCfg.recoveryCostCycles = on.ctrlRecoveryCost;
        sim::System fixedSys(fixedCfg);
        addCores(fixedSys, on);

        sim::SystemConfig frozenCfg = toSystemConfig(on, false);
        frozenCfg.marginControllerParams.initialMargin = m;
        frozenCfg.marginControllerParams.minMargin = m;
        frozenCfg.marginControllerParams.maxMargin = m;
        frozenCfg.marginControllerParams.kp = 0.0;
        frozenCfg.marginControllerParams.ki = 0.0;
        frozenCfg.marginControllerParams.widenStep = 0.0;
        sim::System frozenSys(frozenCfg);
        addCores(frozenSys, on);

        if (on.loop) {
            fixedSys.run(on.cycles);
            frozenSys.run(on.cycles);
        } else {
            fixedSys.runUntilFinished(on.cycles);
            frozenSys.runUntilFinished(on.cycles);
        }

        const auto *fz = frozenSys.marginController();
        if (!fz || fz->minMarginSeen() != m || fz->maxMarginSeen() != m)
            return fail("zero-gain controller moved its margin");
        if (frozenSys.emergencies() != fz->widenings()) {
            return fail("frozen-controller emergencies " +
                        std::to_string(frozenSys.emergencies()) +
                        " != violations " +
                        std::to_string(fz->widenings()));
        }

        // Compare engine observables only — the frozen side reports
        // controller stats the fixed engine has no counterpart for.
        auto engineOnly = [](RunSummary s) {
            s.controllerActive = false;
            s.ctrlFinalMargin = 0.0;
            s.ctrlAvgMargin = 0.0;
            s.ctrlMinMargin = 0.0;
            s.ctrlMaxMargin = 0.0;
            s.ctrlUpdates = 0;
            s.ctrlWidenings = 0;
            return s;
        };
        if (const auto d = firstDifference(
                engineOnly(summarizeSystem(fixedSys, on)),
                engineOnly(summarizeSystem(frozenSys, on)));
            !d.empty()) {
            return fail("zero-gain controller != fixed margin " +
                        num(m) + ": " + d);
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// fault_injection_determinism
// ---------------------------------------------------------------------

bool
checkFaultInjectionDeterminism(const FuzzConfig &cfg, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    cpu::FaultModelParams fm;
    fm.rateAtZeroMargin = cfg.faultRate;

    // Exactly zero at the safe margin — not "very unlikely", zero.
    {
        cpu::FaultInjector inj(fm, cfg.seed);
        const std::size_t id = inj.registerStructure("probe");
        inj.setMargin(fm.safeMargin);
        if (inj.faultProbability() != 0.0 || inj.threshold() != 0)
            return fail("nonzero fault probability at the safe margin");
        for (std::uint64_t i = 0; i < 4096; ++i)
            if (inj.shouldFault(id, i))
                return fail("fault fired at the safe margin");
    }

    // Decision-level invariants at two margins below safe: replay
    // identity, and exact nesting (every access that faults at the
    // wider margin also faults at the thinner one).
    const double thin = std::min(cfg.faultMargin, 0.6 * fm.safeMargin);
    const double wide = 0.5 * (thin + fm.safeMargin);
    constexpr std::uint64_t kAccesses = 50'000;

    auto decisions = [&](double margin) {
        cpu::FaultInjector inj(fm, cfg.seed);
        const std::size_t id = inj.registerStructure("probe");
        inj.setMargin(margin);
        std::vector<char> out(kAccesses);
        for (std::uint64_t i = 0; i < kAccesses; ++i)
            out[i] = inj.shouldFault(id, i) ? 1 : 0;
        return out;
    };
    const auto thinSeq = decisions(thin);
    if (decisions(thin) != thinSeq)
        return fail("same seed, different fault sequence");
    const auto wideSeq = decisions(wide);
    for (std::uint64_t i = 0; i < kAccesses; ++i) {
        if (wideSeq[i] && !thinSeq[i]) {
            return fail("fault sets not nested: access " +
                        std::to_string(i) + " faults at margin " +
                        num(wide) + " but not at thinner " + num(thin));
        }
    }

    // Shard invariance: the pure decision oracle partitioned across
    // cfg.jobs worker threads reproduces the serial sequence exactly.
    {
        cpu::FaultInjector inj(fm, cfg.seed);
        const std::size_t id = inj.registerStructure("probe");
        inj.setMargin(thin);
        const std::uint64_t threshold = inj.threshold();
        const std::uint64_t seed = cfg.seed;

        constexpr std::size_t kShards = 8;
        JobsGuard guard;
        setJobs(static_cast<std::size_t>(cfg.jobs));
        const auto sharded = parallelMap<std::vector<char>>(
            kShards, [&](std::size_t s) {
                std::vector<char> out;
                for (std::uint64_t i = s; i < kAccesses; i += kShards) {
                    out.push_back(cpu::FaultInjector::wouldFault(
                                      seed, id, i, threshold)
                                      ? 1
                                      : 0);
                }
                return out;
            });
        for (std::uint64_t i = 0; i < kAccesses; ++i) {
            if (sharded[i % kShards][i / kShards] != thinSeq[i]) {
                return fail("sharded decision differs from serial at "
                            "access " + std::to_string(i));
            }
        }
    }

    // System level: the fault rig's per-structure fault/miss counters
    // are conserved between the blocked and per-cycle paths, and
    // replay exactly.
    const Cycles cycles = std::min<Cycles>(cfg.cycles, 20'000);
    const auto blocked =
        runFaultRig(cfg.seed, thin, cfg.faultRate, cycles, false);
    const auto scalar =
        runFaultRig(cfg.seed, thin, cfg.faultRate, cycles, true);
    if (!(blocked == scalar)) {
        return fail("fault rig blocked != scalar: faults l1d " +
                    std::to_string(blocked.l1dFaults) + "/" +
                    std::to_string(scalar.l1dFaults) + ", l2 " +
                    std::to_string(blocked.l2Faults) + "/" +
                    std::to_string(scalar.l2Faults) + ", tlb " +
                    std::to_string(blocked.tlbFaults) + "/" +
                    std::to_string(scalar.tlbFaults) +
                    ", instructions " +
                    std::to_string(blocked.instructions) + "/" +
                    std::to_string(scalar.instructions));
    }
    if (!(runFaultRig(cfg.seed, thin, cfg.faultRate, cycles, false) ==
          blocked)) {
        return fail("fault rig replay differs");
    }
    return true;
}

} // namespace

const std::vector<Property> &
propertyRegistry()
{
    static const std::vector<Property> registry = {
        {"blocked_vs_scalar", "sim/system",
         "batched tick pipeline bit-identical to per-cycle execution",
         nullptr, &checkBlockedVsScalar},
        {"run_twice_determinism", "sim/system",
         "same seed reproduces every observable exactly",
         nullptr, &checkRunTwiceDeterminism},
        {"sampled_within_bounds", "sim/sampler",
         "sampled execution deterministic, mass-conserving, and "
         "within its reported error bounds vs exact",
         "samplingWindow {2,4,8,16} blocks; samplingStable 1..4; "
         "samplingSkip {2,8,32,128}; samplingGuard 2e-4..5e-3",
         &checkSampledWithinBounds},
        {"parallel_vs_serial", "sim/sweep",
         "parallelMap sweep bit-identical for any job count",
         "jobs 1..6", &checkParallelVsSerial},
        {"laned_vs_scalar", "sim/sweep",
         "scenario-lane engine bit-identical to solo runs at any "
         "lane width and SIMD level",
         "laneWidth 0 (seed-derived) or 1..16; simdLevel ambient or "
         "host-clamped scalar/sse2/avx2/avx512",
         &checkLanedVsScalar},
        {"pdn_linearity", "pdn",
         "PDN superposition/scaling, exact DC gain, bounded step "
         "response",
         nullptr, &checkPdnLinearity},
        {"histogram_invariants", "common",
         "mass conservation, block==scalar feed, merge "
         "commutativity/associativity",
         nullptr, &checkHistogramInvariants},
        {"result_roundtrip", "common",
         "Result -> JSON -> Result is lossless",
         nullptr, &checkResultRoundtrip},
        {"adaptive_margin_invariants", "resilience",
         "controller margin bounded and deterministic; controller-off "
         "bit-identical to the plain engine; zero gains == fixed "
         "margin",
         "ctrlMinMargin 0.01..0.04; ctrlMaxMargin +0.02..0.12; "
         "ctrlWidenStep 0 or 0.002..0.03; ctrlRecoveryCost 1..2000",
         &checkAdaptiveMarginInvariants},
        {"fault_injection_determinism", "cpu",
         "fault sets exactly nested across margins, zero at the safe "
         "margin, identical under any shard or blocked/scalar "
         "partition",
         "faultMargin 0..0.06; faultRate 1e-4..0.05",
         &checkFaultInjectionDeterminism},
    };
    return registry;
}

const Property *
findProperty(std::string_view name)
{
    for (const Property &p : propertyRegistry())
        if (name == p.name)
            return &p;
    return nullptr;
}

} // namespace vsmooth::simtest
