#include "simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "logging.hh"
#include "simd_kernels.hh"

namespace vsmooth::simd {

const char *
levelName(IsaLevel level)
{
    switch (level) {
      case IsaLevel::Scalar: return "scalar";
      case IsaLevel::Sse2: return "sse2";
      case IsaLevel::Avx2: return "avx2";
      case IsaLevel::Avx512: return "avx512";
    }
    return "scalar";
}

IsaLevel
detectHostLevel()
{
#if defined(__x86_64__) || defined(_M_X64)
    // The AVX-512 TU is built with -mavx512f -mavx512dq (DQ supplies
    // the 64-bit integer min/extract forms binIndex uses), so both
    // feature bits gate the level.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return IsaLevel::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return IsaLevel::Avx2;
    // SSE2 is architectural on x86-64.
    return IsaLevel::Sse2;
#else
    return IsaLevel::Scalar;
#endif
}

namespace {

std::atomic<int> activeLevelPlusOne{0}; // 0 = not yet resolved

std::size_t
laneWidthFor(IsaLevel level)
{
    const char *env = std::getenv("VSMOOTH_LANES");
    if (env && *env) {
        char *end = nullptr;
        const long lanes = std::strtol(env, &end, 10);
        if (!end || *end != '\0' || lanes < 1 ||
            lanes > static_cast<long>(kMaxLanes)) {
            fatal("VSMOOTH_LANES=%s is invalid; it must be an integer "
                  "in [1, %zu]", env, kMaxLanes);
        }
        return static_cast<std::size_t>(lanes);
    }
    // Two vectors in flight at the wide levels (16 for AVX-512, 8
    // for AVX2), one SSE2 vector pair; the scalar kernel still
    // interleaves 4 dependency chains for ILP.
    switch (level) {
      case IsaLevel::Avx512: return 16;
      case IsaLevel::Avx2: return 8;
      default: return 4;
    }
}

IsaLevel
resolveFromEnvironment()
{
    const IsaLevel host = detectHostLevel();
    const char *env = std::getenv("VSMOOTH_SIMD");
    if (!env || !*env) {
        inform("simd: %s kernels (host maximum), %zu scenario lanes",
               levelName(host), laneWidthFor(host));
        return host;
    }

    IsaLevel wanted;
    if (std::strcmp(env, "scalar") == 0) {
        wanted = IsaLevel::Scalar;
    } else if (std::strcmp(env, "sse2") == 0) {
        wanted = IsaLevel::Sse2;
    } else if (std::strcmp(env, "avx2") == 0) {
        wanted = IsaLevel::Avx2;
    } else if (std::strcmp(env, "avx512") == 0) {
        wanted = IsaLevel::Avx512;
    } else {
        fatal("VSMOOTH_SIMD=%s is not recognised; it must be one of "
              "scalar, sse2, avx2, avx512", env);
    }
    if (static_cast<int>(wanted) > static_cast<int>(host)) {
        fatal("VSMOOTH_SIMD=%s requests a level this host lacks "
              "(host maximum is %s)", env, levelName(host));
    }
    inform("simd: %s kernels (VSMOOTH_SIMD override), "
           "%zu scenario lanes", levelName(wanted), laneWidthFor(wanted));
    return wanted;
}

} // namespace

IsaLevel
activeLevel()
{
    int cached = activeLevelPlusOne.load(std::memory_order_acquire);
    if (cached)
        return static_cast<IsaLevel>(cached - 1);

    static std::once_flag once;
    std::call_once(once, [] {
        const IsaLevel level = resolveFromEnvironment();
        activeLevelPlusOne.store(static_cast<int>(level) + 1,
                                 std::memory_order_release);
    });
    return static_cast<IsaLevel>(
        activeLevelPlusOne.load(std::memory_order_acquire) - 1);
}

void
setActiveLevel(IsaLevel level)
{
    if (static_cast<int>(level) > static_cast<int>(detectHostLevel()))
        fatal("setActiveLevel(%s): host maximum is %s", levelName(level),
              levelName(detectHostLevel()));
    activeLevelPlusOne.store(static_cast<int>(level) + 1,
                             std::memory_order_release);
}

std::size_t
vectorWidth(IsaLevel level)
{
    switch (level) {
      case IsaLevel::Scalar: return 1;
      case IsaLevel::Sse2: return 2;
      case IsaLevel::Avx2: return 4;
      case IsaLevel::Avx512: return 8;
    }
    return 1;
}

std::size_t
defaultLaneWidth()
{
    return laneWidthFor(activeLevel());
}

std::string
description()
{
    return std::string(levelName(activeLevel())) + "x" +
        std::to_string(defaultLaneWidth());
}

const KernelSet &
kernelsFor(IsaLevel level)
{
    switch (level) {
      case IsaLevel::Scalar: return kScalarKernels;
      case IsaLevel::Sse2: return kSse2Kernels;
      case IsaLevel::Avx2: return kAvx2Kernels;
      case IsaLevel::Avx512: return kAvx512Kernels;
    }
    return kScalarKernels;
}

const KernelSet &
kernels()
{
    return kernelsFor(activeLevel());
}

} // namespace vsmooth::simd
