#include "parallel.hh"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace vsmooth {

namespace {

/** Set while a thread is executing pool work (workers always; the
 *  caller while it participates). Nested parallelFor calls from such
 *  a thread run serially inline instead of deadlocking on the pool. */
thread_local bool tl_inPool = false;

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("VSMOOTH_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

constexpr std::size_t kNoChunk = std::numeric_limits<std::size_t>::max();

/**
 * The process-wide pool. Workers are spawned lazily, the first time a
 * parallelFor actually needs them, and then persist. The singleton is
 * intentionally leaked so blocked workers never race static
 * destruction at process exit.
 *
 * One sweep runs at a time (concurrent top-level callers queue on
 * runGate_). A sweep is a generation: task parameters are published
 * under the mutex, workers are woken, and every chunk grab re-checks
 * the generation so a worker that oversleeps a whole sweep can never
 * touch a stale or future task.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool *pool = new ThreadPool;
        return *pool;
    }

    std::size_t
    jobs()
    {
        std::lock_guard lk(m_);
        return jobs_;
    }

    void
    setJobs(std::size_t n)
    {
        std::lock_guard lk(m_);
        jobs_ = n == 0 ? defaultJobs() : n;
    }

    void
    run(std::size_t begin, std::size_t end,
        const std::function<void(std::size_t)> &fn)
    {
        if (end <= begin)
            return;
        const std::size_t count = end - begin;

        std::unique_lock lk(m_);
        const std::size_t chunks = std::min(jobs_, count);
        if (chunks <= 1 || tl_inPool) {
            lk.unlock();
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
            return;
        }

        runGate_.wait(lk, [&] { return !running_; });
        running_ = true;
        begin_ = begin;
        count_ = count;
        chunks_ = chunks;
        fn_ = &fn;
        nextChunk_ = 0;
        activeChunks_ = 0;
        error_ = nullptr;
        errorChunk_ = kNoChunk;
        spawnWorkers(chunks - 1);
        ++generation_;
        const std::uint64_t gen = generation_;
        cv_.notify_all();
        lk.unlock();

        // The calling thread participates instead of just waiting.
        tl_inPool = true;
        workChunks(gen, &fn, begin, count, chunks);
        tl_inPool = false;

        lk.lock();
        doneCv_.wait(lk, [&] {
            return nextChunk_ >= chunks_ && activeChunks_ == 0;
        });
        std::exception_ptr err = error_;
        running_ = false;
        runGate_.notify_one();
        lk.unlock();
        if (err)
            std::rethrow_exception(err);
    }

  private:
    void
    spawnWorkers(std::size_t needed)
    {
        // Called with m_ held; generation_ not yet bumped, so a new
        // worker's first wait matches the sweep being launched.
        while (numWorkers_ < needed) {
            ++numWorkers_;
            std::thread(
                [this, seen = generation_]() mutable { workerLoop(seen); })
                .detach();
        }
    }

    void
    workerLoop(std::uint64_t seen)
    {
        tl_inPool = true;
        std::unique_lock lk(m_);
        for (;;) {
            cv_.wait(lk, [&] { return generation_ != seen; });
            seen = generation_;
            const auto *fn = fn_;
            const std::size_t begin = begin_;
            const std::size_t count = count_;
            const std::size_t chunks = chunks_;
            lk.unlock();
            workChunks(seen, fn, begin, count, chunks);
            lk.lock();
        }
    }

    std::size_t
    grabChunk(std::uint64_t gen)
    {
        std::lock_guard lk(m_);
        if (generation_ != gen || nextChunk_ >= chunks_)
            return kNoChunk;
        ++activeChunks_;
        return nextChunk_++;
    }

    void
    workChunks(std::uint64_t gen, const std::function<void(std::size_t)> *fn,
               std::size_t begin, std::size_t count, std::size_t chunks)
    {
        for (;;) {
            const std::size_t chunk = grabChunk(gen);
            if (chunk == kNoChunk)
                return;
            // Static chunk boundaries: chunk c owns the contiguous
            // index range below, regardless of which thread runs it.
            const std::size_t lo = begin + chunk * count / chunks;
            const std::size_t hi = begin + (chunk + 1) * count / chunks;
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    (*fn)(i);
            } catch (...) {
                std::lock_guard lk(m_);
                // Keep the exception from the lowest-indexed throwing
                // chunk, not whichever thread reached this line first:
                // every in-flight chunk drains before the caller
                // rethrows, so the winner is deterministic no matter
                // how threads are scheduled.
                if (!error_ || chunk < errorChunk_) {
                    error_ = std::current_exception();
                    errorChunk_ = chunk;
                }
                nextChunk_ = chunks_; // abandon undispatched chunks
            }
            std::lock_guard lk(m_);
            if (--activeChunks_ == 0 && nextChunk_ >= chunks_)
                doneCv_.notify_all();
        }
    }

    std::mutex m_;
    std::condition_variable cv_;      // wakes workers for a new sweep
    std::condition_variable doneCv_;  // wakes the caller on completion
    std::condition_variable runGate_; // serializes top-level sweeps

    std::size_t jobs_ = defaultJobs();
    std::size_t numWorkers_ = 0;
    bool running_ = false;

    // Current sweep (valid while running_).
    std::uint64_t generation_ = 0;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t begin_ = 0;
    std::size_t count_ = 0;
    std::size_t chunks_ = 0;
    std::size_t nextChunk_ = 0;
    std::size_t activeChunks_ = 0;
    std::exception_ptr error_;
    std::size_t errorChunk_ = kNoChunk; // chunk index that set error_
};

} // namespace

std::size_t
numJobs()
{
    return ThreadPool::instance().jobs();
}

void
setJobs(std::size_t n)
{
    ThreadPool::instance().setJobs(n);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &fn)
{
    ThreadPool::instance().run(begin, end, fn);
}

} // namespace vsmooth
