/**
 * @file
 * AVX2 (width-4) instantiation of the lane-step kernel, plus the two
 * wider helper kernels (steady-current conversion and histogram bin
 * classification) that only pay off at 256-bit width — at scalar/SSE2
 * the built-in code paths are already the reference implementations.
 *
 * This is the only translation unit compiled with -mavx2; everything
 * here must stay intrinsics-only (no inline functions from shared
 * headers get *instantiated* here that could be comdat-merged into
 * baseline objects with AVX encodings). FMA is never enabled: -mavx2
 * does not imply -mfma, and the build adds -ffp-contract=off as
 * belt-and-braces, so every multiply and add rounds separately exactly
 * like the scalar pipeline.
 */

#include "simd_kernels.hh"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace vsmooth::simd {
namespace {

struct VecAvx2
{
    static constexpr std::size_t width = 4;
    /** Masks are all-ones/all-zeros vectors, fed to blendv. */
    using Mask = VecAvx2;

    __m256d v;

    static VecAvx2 set1(double x) { return {_mm256_set1_pd(x)}; }
    static VecAvx2 load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static void store(double *p, VecAvx2 a) { _mm256_storeu_pd(p, a.v); }

    /** Sample j of each of the `width` lane streams in p[]. */
    static VecAvx2 gather(const double *const *p, std::size_t j)
    {
        return {_mm256_set_pd(p[3][j], p[2][j], p[1][j], p[0][j])};
    }
    static void scatter(double *const *p, std::size_t j, VecAvx2 a)
    {
        const __m128d lo = _mm256_castpd256_pd128(a.v);
        const __m128d hi = _mm256_extractf128_pd(a.v, 1);
        _mm_storel_pd(p[0] + j, lo);
        _mm_storeh_pd(p[1] + j, lo);
        _mm_storel_pd(p[2] + j, hi);
        _mm_storeh_pd(p[3] + j, hi);
    }

    /** Samples j..j+3 of the four lane streams as a 4x4 register
     *  transpose (4 loads + 8 shuffles, vs 16 scalar loads for four
     *  gather() calls): out[k] holds sample j+k across lanes. */
    static void gatherT(const double *const *p, std::size_t j,
                        VecAvx2 *out)
    {
        const __m256d r0 = _mm256_loadu_pd(p[0] + j);
        const __m256d r1 = _mm256_loadu_pd(p[1] + j);
        const __m256d r2 = _mm256_loadu_pd(p[2] + j);
        const __m256d r3 = _mm256_loadu_pd(p[3] + j);
        const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
        const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
        const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
        const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
        out[0].v = _mm256_permute2f128_pd(t0, t2, 0x20);
        out[1].v = _mm256_permute2f128_pd(t1, t3, 0x20);
        out[2].v = _mm256_permute2f128_pd(t0, t2, 0x31);
        out[3].v = _mm256_permute2f128_pd(t1, t3, 0x31);
    }
    static void scatterT(double *const *p, std::size_t j,
                         const VecAvx2 *in)
    {
        const __m256d t0 = _mm256_unpacklo_pd(in[0].v, in[1].v);
        const __m256d t1 = _mm256_unpackhi_pd(in[0].v, in[1].v);
        const __m256d t2 = _mm256_unpacklo_pd(in[2].v, in[3].v);
        const __m256d t3 = _mm256_unpackhi_pd(in[2].v, in[3].v);
        _mm256_storeu_pd(p[0] + j, _mm256_permute2f128_pd(t0, t2, 0x20));
        _mm256_storeu_pd(p[1] + j, _mm256_permute2f128_pd(t1, t3, 0x20));
        _mm256_storeu_pd(p[2] + j, _mm256_permute2f128_pd(t0, t2, 0x31));
        _mm256_storeu_pd(p[3] + j, _mm256_permute2f128_pd(t1, t3, 0x31));
    }

    friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }

    static VecAvx2 min(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_min_pd(a.v, b.v)};
    }
    static VecAvx2 max(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_max_pd(a.v, b.v)};
    }

    static VecAvx2 gtMask(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
    }
    static VecAvx2 ltMask(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
    }
    /** Select b where the mask is set, else a. */
    static VecAvx2 blend(VecAvx2 a, VecAvx2 b, VecAvx2 mask)
    {
        return {_mm256_blendv_pd(a.v, b.v, mask.v)};
    }

    static VecAvx2 floorNonNeg(VecAvx2 a)
    {
        return {_mm256_floor_pd(a.v)};
    }
};

void
laneStepAvx2(LaneStepArgs &args)
{
    laneStepKernel<VecAvx2>(args);
}

/**
 * CurrentModel::steadyBlock at 4-wide: the identical IEEE operations
 * in the identical order as the built-in 2-wide/scalar loops, so the
 * output bits match for every element regardless of which path (or
 * tail) produced it.
 */
void
steadyAvx2(double leak, double idleClk, double dynMax,
           const double *activity, double *steady, std::size_t n)
{
    const __m256d vZero = _mm256_setzero_pd();
    const __m256d vCeil = _mm256_set1_pd(2.5);
    const __m256d vOne = _mm256_set1_pd(1.0);
    const __m256d vQuarter = _mm256_set1_pd(0.25);
    const __m256d vThreeQ = _mm256_set1_pd(0.75);
    const __m256d vLeak = _mm256_set1_pd(leak);
    const __m256d vIdle = _mm256_set1_pd(idleClk);
    const __m256d vDyn = _mm256_set1_pd(dynMax);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256d a = _mm256_loadu_pd(activity + j);
        a = _mm256_min_pd(_mm256_max_pd(a, vZero), vCeil);
        const __m256d w = _mm256_min_pd(a, vOne);
        const __m256d clock = _mm256_mul_pd(
            vIdle, _mm256_add_pd(vQuarter, _mm256_mul_pd(vThreeQ, w)));
        const __m256d s = _mm256_add_pd(_mm256_add_pd(vLeak, clock),
                                        _mm256_mul_pd(vDyn, a));
        _mm256_storeu_pd(steady + j, s);
    }
    for (; j < n; ++j) {
        double a = activity[j];
        a = a < 0.0 ? 0.0 : a;
        a = 2.5 < a ? 2.5 : a;
        const double w = 1.0 < a ? 1.0 : a;
        const double clock_current = idleClk * (0.25 + 0.75 * w);
        steady[j] = leak + clock_current + dynMax * a;
    }
}

/**
 * Histogram bin classification at 4-wide. In-range indices use the
 * exact add() arithmetic — truncating conversion of (x - lo) *
 * invWidth, clamped to `last` — via cvttpd; out-of-range lanes (rare
 * for the voltage-deviation histograms) are patched to the sentinels
 * from the comparison movemasks.
 */
void
binIndexAvx2(const double *xs, std::size_t n, double lo, double hi,
             double invWidth, std::uint32_t last, std::uint32_t *idx)
{
    const __m256d vLo = _mm256_set1_pd(lo);
    const __m256d vHi = _mm256_set1_pd(hi);
    const __m256d vInv = _mm256_set1_pd(invWidth);
    const __m128i vLast = _mm_set1_epi32(static_cast<int>(last));
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256d x = _mm256_loadu_pd(xs + j);
        const int under =
            _mm256_movemask_pd(_mm256_cmp_pd(x, vLo, _CMP_LT_OQ));
        const int over =
            _mm256_movemask_pd(_mm256_cmp_pd(x, vHi, _CMP_GE_OQ));
        // Out-of-range lanes produce an indeterminate (not undefined)
        // cvttpd result; they are overwritten below.
        const __m128i raw =
            _mm256_cvttpd_epi32(_mm256_mul_pd(_mm256_sub_pd(x, vLo),
                                              vInv));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(idx + j),
                         _mm_min_epu32(raw, vLast));
        if (under | over) {
            for (int l = 0; l < 4; ++l) {
                if (under & (1 << l))
                    idx[j + l] = kBinUnderflow;
                else if (over & (1 << l))
                    idx[j + l] = kBinOverflow;
            }
        }
    }
    for (; j < n; ++j) {
        const double x = xs[j];
        if (x < lo) {
            idx[j] = kBinUnderflow;
        } else if (x >= hi) {
            idx[j] = kBinOverflow;
        } else {
            const auto raw =
                static_cast<std::uint32_t>((x - lo) * invWidth);
            idx[j] = raw < last ? raw : last;
        }
    }
}

} // namespace

const KernelSet kAvx2Kernels = {laneStepAvx2, steadyAvx2, binIndexAvx2};

} // namespace vsmooth::simd

#else // !x86-64

namespace vsmooth::simd {

// Non-x86 hosts never dispatch above Scalar; keep the symbol defined.
const KernelSet kAvx2Kernels = {nullptr, nullptr, nullptr};

} // namespace vsmooth::simd

#endif
