#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace vsmooth {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo (%llu) > hi (%llu)",
              (unsigned long long)lo, (unsigned long long)hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full range
        return (*this)();
    // Rejection-free Lemire-style bounded sample is overkill here;
    // simple modulo bias is negligible for our span sizes, but avoid
    // it anyway via rejection for correctness.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + v % span;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: rate must be positive (got %g)", rate);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0)
        return ~std::uint64_t(0); // effectively never
    if (p >= 1.0)
        return 1;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    const double k = std::ceil(std::log(u) / std::log1p(-p));
    return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace vsmooth
