#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace vsmooth {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo (%llu) > hi (%llu)",
              (unsigned long long)lo, (unsigned long long)hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full range
        return (*this)();
    // Rejection-free Lemire-style bounded sample is overkill here;
    // simple modulo bias is negligible for our span sizes, but avoid
    // it anyway via rejection for correctness.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + v % span;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: rate must be positive (got %g)", rate);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0)
        return ~std::uint64_t(0); // effectively never
    if (p >= 1.0)
        return 1;
    return geometric(p, std::log1p(-p));
}

std::uint64_t
Rng::geometric(double p, double logq)
{
    if (p <= 0.0)
        return ~std::uint64_t(0); // effectively never
    if (p >= 1.0)
        return 1;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    const double k = std::ceil(std::log(u) / logq);
    return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace vsmooth
