/**
 * @file
 * Strict scalar parsing for command-line options.
 *
 * The CLI historically pushed integer flags through strtod and a
 * cast, which silently loses precision above 2^53 and accepts
 * "1e6"-style or partially-numeric garbage. These helpers parse
 * exactly one well-formed value and reject everything else; callers
 * that want to abort on bad input wrap them with fatal().
 */

#ifndef VSMOOTH_COMMON_ARGPARSE_HH
#define VSMOOTH_COMMON_ARGPARSE_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace vsmooth {

/**
 * Parse an unsigned 64-bit decimal integer. Rejects empty input,
 * signs, whitespace, trailing characters (so "1e6", "12abc", "3.5"
 * all fail), and out-of-range values.
 */
std::optional<std::uint64_t> tryParseU64(std::string_view text);

/**
 * Parse a finite double. Rejects empty input, leading whitespace,
 * trailing characters, and inf/nan spellings.
 */
std::optional<double> tryParseDouble(std::string_view text);

} // namespace vsmooth

#endif // VSMOOTH_COMMON_ARGPARSE_HH
