#include "result.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "logging.hh"

namespace vsmooth {

void
Result::metric(std::string_view name, double value)
{
    // Overwriting with a plain double demotes a former count metric.
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {
        if (it->first == name) {
            counts_.erase(it);
            break;
        }
    }
    for (auto &[n, v] : metrics_) {
        if (n == name) {
            v = value;
            return;
        }
    }
    metrics_.emplace_back(std::string(name), value);
}

void
Result::metricCount(std::string_view name, std::uint64_t value)
{
    metric(name, static_cast<double>(value));
    counts_.emplace_back(std::string(name), value);
}

bool
Result::hasCount(std::string_view name) const
{
    for (const auto &[n, v] : counts_) {
        if (n == name)
            return true;
    }
    return false;
}

std::uint64_t
Result::countValue(std::string_view name) const
{
    for (const auto &[n, v] : counts_) {
        if (n == name)
            return v;
    }
    panic("Result: no count metric '%s'", std::string(name).c_str());
}

void
Result::series(std::string_view name, std::vector<double> values)
{
    for (auto &[n, v] : series_) {
        if (n == name) {
            v = std::move(values);
            return;
        }
    }
    series_.emplace_back(std::string(name), std::move(values));
}

void
Result::seriesPoint(std::string_view name, double value)
{
    for (auto &[n, v] : series_) {
        if (n == name) {
            v.push_back(value);
            return;
        }
    }
    series_.emplace_back(std::string(name),
                         std::vector<double>{value});
}

bool
Result::hasMetric(std::string_view name) const
{
    for (const auto &[n, v] : metrics_) {
        if (n == name)
            return true;
    }
    return false;
}

double
Result::metricValue(std::string_view name) const
{
    for (const auto &[n, v] : metrics_) {
        if (n == name)
            return v;
    }
    panic("Result: no metric '%s'", std::string(name).c_str());
}

Json
Result::toJson() const
{
    Json j = Json::object();
    j.set("experiment", experiment_);
    j.set("git", git_);
    // Integer tokens: byte-identical to the old %.0f form for every
    // value that fits a double, exact for full-64-bit seeds/counters.
    j.set("seed", Json(seed_));
    j.set("jobs", Json(jobs_));
    // Omitted when not recorded, which keeps pre-existing goldens
    // (and their round-trip tests) byte-stable.
    if (!simd_.empty())
        j.set("simd", simd_);
    if (hasSampling_) {
        Json sj = Json::object();
        sj.set("mode", sampling_.mode);
        sj.set("simulated_fraction", Json(sampling_.simulatedFraction));
        Json bj = Json::object();
        for (const auto &[n, b] : sampling_.bounds)
            bj.set(n, Json(b));
        sj.set("bounds", std::move(bj));
        j.set("sampling", std::move(sj));
    }
    Json m = Json::object();
    for (const auto &[n, v] : metrics_) {
        if (hasCount(n))
            m.set(n, Json(countValue(n)));
        else
            m.set(n, Json(v));
    }
    j.set("metrics", std::move(m));
    Json s = Json::object();
    for (const auto &[n, vs] : series_) {
        Json arr = Json::array();
        for (double v : vs)
            arr.push(Json(v));
        s.set(n, std::move(arr));
    }
    j.set("series", std::move(s));
    return j;
}

bool
Result::fromJson(const Json &j, Result &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (!j.isObject())
        return fail("result is not a JSON object");
    const Json *exp = j.find("experiment");
    if (!exp || !exp->isString())
        return fail("missing string field 'experiment'");
    out = Result(exp->asString());
    if (const Json *git = j.find("git"); git && git->isString())
        out.setGitDescribe(git->asString());
    if (const Json *seed = j.find("seed"); seed && seed->isNumber()) {
        std::uint64_t v = 0;
        out.setSeed(seed->exactUint64(&v)
                        ? v
                        : static_cast<std::uint64_t>(seed->asNumber()));
    }
    if (const Json *jobs = j.find("jobs"); jobs && jobs->isNumber()) {
        std::uint64_t v = 0;
        out.setJobs(jobs->exactUint64(&v)
                        ? v
                        : static_cast<std::uint64_t>(jobs->asNumber()));
    }
    if (const Json *simd = j.find("simd"); simd && simd->isString())
        out.setSimd(simd->asString());
    if (const Json *sj = j.find("sampling")) {
        if (!sj->isObject())
            return fail("'sampling' is not an object");
        ResultSampling s;
        if (const Json *m = sj->find("mode"); m && m->isString())
            s.mode = m->asString();
        const Json *frac = sj->find("simulated_fraction");
        if (!frac || !frac->isNumber())
            return fail("'sampling' lacks numeric 'simulated_fraction'");
        s.simulatedFraction = frac->asNumber();
        const Json *bj = sj->find("bounds");
        if (!bj || !bj->isObject())
            return fail("'sampling' lacks object 'bounds'");
        for (const auto &[name, v] : bj->asObject()) {
            if (!v.isNumber())
                return fail("sampling bound '" + name +
                            "' is not a number");
            s.bounds.emplace_back(name, v.asNumber());
        }
        out.setSampling(std::move(s));
    }
    if (const Json *m = j.find("metrics")) {
        if (!m->isObject())
            return fail("'metrics' is not an object");
        for (const auto &[name, v] : m->asObject()) {
            if (!v.isNumber())
                return fail("metric '" + name + "' is not a number");
            // A non-negative integer token is a count metric: its
            // exact 64-bit value survives the round trip and compares
            // exactly. Everything else stays a tolerance-checked
            // double.
            if (v.isUint())
                out.metricCount(name, v.asUint64());
            else
                out.metric(name, v.asNumber());
        }
    }
    if (const Json *s = j.find("series")) {
        if (!s->isObject())
            return fail("'series' is not an object");
        for (const auto &[name, arr] : s->asObject()) {
            if (!arr.isArray())
                return fail("series '" + name + "' is not an array");
            std::vector<double> vs;
            vs.reserve(arr.asArray().size());
            for (const Json &v : arr.asArray()) {
                if (!v.isNumber())
                    return fail("series '" + name +
                                "' has a non-numeric element");
                vs.push_back(v.asNumber());
            }
            out.series(name, std::move(vs));
        }
    }
    return true;
}

namespace {

bool
hasExplicitTolerance(std::string_view name, const Json *tolerances)
{
    if (!tolerances || !tolerances->isObject())
        return false;
    const Json *t = tolerances->find(name);
    return t && t->isObject();
}

Tolerance
toleranceFor(std::string_view name, const Json *tolerances,
             Tolerance fallback)
{
    if (!tolerances || !tolerances->isObject())
        return fallback;
    const Json *t = tolerances->find(name);
    if (!t || !t->isObject())
        return fallback;
    Tolerance tol = fallback;
    if (const Json *a = t->find("abs"); a && a->isNumber())
        tol.abs = a->asNumber();
    if (const Json *r = t->find("rel"); r && r->isNumber())
        tol.rel = r->asNumber();
    return tol;
}

bool
withinTolerance(double golden, double actual, Tolerance tol)
{
    // Non-finite values never pass: NaN-golden vs NaN-actual used to
    // compare equal, which let a broken metric producer hide behind an
    // equally broken golden. Callers detect non-finite inputs first
    // and report them as named structural failures.
    if (!std::isfinite(golden) || !std::isfinite(actual))
        return false;
    return std::abs(actual - golden) <=
        tol.abs + tol.rel * std::abs(golden);
}

/** Non-empty diagnostic when either value is NaN/Inf. */
std::string
nonFiniteNote(double golden, double actual)
{
    if (std::isfinite(golden) && std::isfinite(actual))
        return "";
    std::ostringstream os;
    os << "non-finite value (golden " << golden << ", actual " << actual
       << "): NaN/Inf never passes; fix the producer or regenerate "
          "the golden";
    return os.str();
}

} // namespace

CompareReport
compareResults(const Result &golden, const Result &actual,
               const Json *goldenTolerances, Tolerance fallback)
{
    CompareReport report;
    auto structural = [&](std::string name, std::string note) {
        MetricDiff d;
        d.name = std::move(name);
        d.note = std::move(note);
        report.diffs.push_back(std::move(d));
        report.pass = false;
    };

    auto findSeries =
        [](const Result &r,
           std::string_view name) -> const std::vector<double> * {
        for (const auto &[n, vs] : r.allSeries()) {
            if (n == name)
                return &vs;
        }
        return nullptr;
    };

    // Sampled-execution bound annotations: a bound-annotated metric
    // (or series) is tolerance-checked with abs = the largest declared
    // bound and rel = 0 instead of exactly. The annotations themselves
    // are validated structurally first — a non-finite bound, a bound
    // naming nothing, or a non-finite simulated fraction means the
    // producer is broken, and must not silently widen (or skip) the
    // comparison.
    auto boundFor = [](const Result &r,
                       std::string_view name) -> const double * {
        if (!r.hasSampling())
            return nullptr;
        for (const auto &[n, b] : r.sampling().bounds) {
            if (n == name)
                return &b;
        }
        return nullptr;
    };
    for (const auto *r : {&golden, &actual}) {
        if (!r->hasSampling())
            continue;
        const char *side = r == &golden ? "golden" : "actual";
        const ResultSampling &s = r->sampling();
        if (!std::isfinite(s.simulatedFraction)) {
            structural(std::string("sampling.simulated_fraction (") +
                           side + ")",
                       "non-finite simulated fraction");
        }
        for (const auto &[n, b] : s.bounds) {
            if (!std::isfinite(b)) {
                structural("sampling.bounds." + n + " (" + side + ")",
                           "non-finite error bound");
            }
            if (!r->hasMetric(n) && !findSeries(*r, n)) {
                structural("sampling.bounds." + n + " (" + side + ")",
                           "bound annotates no metric or series");
            }
        }
    }
    auto boundBroken = [&](std::string_view name) {
        const double *gb = boundFor(golden, name);
        const double *ab = boundFor(actual, name);
        return (gb && !std::isfinite(*gb)) ||
            (ab && !std::isfinite(*ab));
    };
    auto widenForBounds = [&](std::string_view name, Tolerance tol) {
        const double *gb = boundFor(golden, name);
        const double *ab = boundFor(actual, name);
        if (!gb && !ab)
            return tol;
        tol.abs = std::max({tol.abs, gb ? *gb : 0.0, ab ? *ab : 0.0});
        tol.rel = 0.0;
        return tol;
    };

    for (const auto &[name, gv] : golden.metrics()) {
        ++report.checked;
        if (!actual.hasMetric(name)) {
            structural(name, "metric missing from run output");
            continue;
        }
        const double av = actual.metricValue(name);
        if (const std::string note = nonFiniteNote(gv, av);
            !note.empty()) {
            structural(name, note);
            continue;
        }
        if (boundBroken(name))
            continue; // its structural failure is already recorded
        if (golden.hasCount(name) && actual.hasCount(name)) {
            // Exact 64-bit comparison: equal or fail, unless an
            // explicit tolerance or sampling bound widens it — then
            // the band applies to the exact integer difference (the
            // doubles would already have collapsed distinct counts
            // above 2^53 into "equal").
            const std::uint64_t gc = golden.countValue(name);
            const std::uint64_t ac = actual.countValue(name);
            const bool widened =
                hasExplicitTolerance(name, goldenTolerances) ||
                boundFor(golden, name) || boundFor(actual, name);
            if (!widened) {
                if (gc != ac) {
                    MetricDiff d;
                    d.name = name;
                    d.golden = gv;
                    d.actual = av;
                    d.note = "exact count mismatch: golden " +
                        std::to_string(gc) + " != actual " +
                        std::to_string(ac);
                    report.diffs.push_back(std::move(d));
                    report.pass = false;
                }
                continue;
            }
            const std::uint64_t delta = gc > ac ? gc - ac : ac - gc;
            const Tolerance tol = widenForBounds(
                name, toleranceFor(name, goldenTolerances, fallback));
            if (static_cast<double>(delta) >
                tol.abs + tol.rel * static_cast<double>(gc)) {
                report.diffs.push_back({name, gv, av, ""});
                report.pass = false;
            }
            continue;
        }
        if (!withinTolerance(gv, av,
                             widenForBounds(
                                 name, toleranceFor(name,
                                                    goldenTolerances,
                                                    fallback)))) {
            report.diffs.push_back({name, gv, av, ""});
            report.pass = false;
        }
    }
    for (const auto &[name, av] : actual.metrics()) {
        if (!golden.hasMetric(name))
            structural(name, "metric absent from golden "
                             "(regenerate goldens?)");
    }

    for (const auto &[name, gvs] : golden.allSeries()) {
        ++report.checked;
        const std::vector<double> *avs = findSeries(actual, name);
        if (!avs) {
            structural(name, "series missing from run output");
            continue;
        }
        if (avs->size() != gvs.size()) {
            structural(name, "series length " +
                                 std::to_string(avs->size()) +
                                 " != golden " +
                                 std::to_string(gvs.size()));
            continue;
        }
        if (boundBroken(name))
            continue; // its structural failure is already recorded
        const Tolerance tol = widenForBounds(
            name, toleranceFor(name, goldenTolerances, fallback));
        for (std::size_t i = 0; i < gvs.size(); ++i) {
            const std::string elem = name + "[" + std::to_string(i) +
                "]";
            if (const std::string note =
                    nonFiniteNote(gvs[i], (*avs)[i]);
                !note.empty()) {
                // One structural failure names the first bad element;
                // a fully-NaN series should not flood the report.
                structural(elem, note);
                break;
            }
            if (!withinTolerance(gvs[i], (*avs)[i], tol)) {
                report.diffs.push_back({elem, gvs[i], (*avs)[i], ""});
                report.pass = false;
            }
        }
    }
    for (const auto &[name, avs] : actual.allSeries()) {
        if (!findSeries(golden, name))
            structural(name, "series absent from golden "
                             "(regenerate goldens?)");
    }
    return report;
}

} // namespace vsmooth
