/**
 * @file
 * Fixed-bin streaming histogram and cumulative-distribution helpers.
 *
 * This is the software model of the oscilloscope's "highly compressed
 * histogram format" the paper relied on (Sec II-A): billions of voltage
 * samples reduce to a small fixed-size array, from which CDFs (Fig 7,
 * Fig 9), tail fractions (0.06 % beyond -4 %), and extreme droop /
 * overshoot values are recovered.
 */

#ifndef VSMOOTH_COMMON_HISTOGRAM_HH
#define VSMOOTH_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace vsmooth {

/**
 * Histogram over a fixed range [lo, hi) with uniform bins.
 *
 * Samples outside the range are counted in explicit underflow /
 * overflow buckets so no sample is ever silently dropped (extreme
 * droops are precisely the interesting ones) and no out-of-range mass
 * is misattributed to the edge bins — clamping them there distorted
 * the within-bin interpolation behind the deep-droop tail fractions
 * (Fig 7/9). Exact min/max are tracked separately.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower edge of the binned range
     * @param hi exclusive upper edge of the binned range
     * @param bins number of uniform bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /**
     * Add one sample. Defined in the header so the per-cycle scalar
     * path and the block path (addBlock) inline the same in-range bin
     * computation — a compare pair plus one multiply by the
     * precomputed 1/binWidth — and stay bit-identical to each other.
     */
    void
    add(double x)
    {
        if (x < lo_)
            ++underflow_;
        else if (x >= hi_)
            ++overflow_;
        else
            ++counts_[binIndex(x)];
        ++total_;
        min_ = x < min_ ? x : min_;
        max_ = x > max_ ? x : max_;
    }

    /** Add a sample with a given multiplicity (weight >= 1). */
    void add(double x, std::uint64_t count);

    /**
     * Weighted add: exactly `weight` copies of x, with weight 0 a
     * strict no-op (no min/max update — a zero-mass sample was never
     * observed). Total mass grows by exactly `weight`, so repeated
     * addScaled calls conserve sample counts bit-exactly.
     */
    void
    addScaled(double x, std::uint64_t weight)
    {
        if (weight == 0)
            return;
        add(x, weight);
    }

    /**
     * Add a block of samples: the same per-sample arithmetic as add()
     * with the range bounds, reciprocal bin width, and min/max
     * tracking hoisted into locals for the duration of the block.
     */
    void addBlock(const double *xs, std::size_t n);

    /** Merge a compatible histogram (same lo/hi/bins). */
    void merge(const Histogram &other);

    /**
     * Merge `weight` copies of a compatible histogram: every bin,
     * the under/overflow tails, and the total grow by exactly
     * weight * other's count, so mass is conserved with integer
     * arithmetic (no rounding). Min/max merge like merge() — the
     * extremes of a scaled copy are the extremes of the original —
     * except that weight 0 merges nothing at all.
     */
    void mergeScaled(const Histogram &other, std::uint64_t weight);

    /** Reset all counts. */
    void clear();

    std::uint64_t totalCount() const { return total_; }
    std::size_t numBins() const { return counts_.size(); }
    double lowerEdge() const { return lo_; }
    double upperEdge() const { return hi_; }
    /** Samples below the binned range (counted, never binned). */
    std::uint64_t underflowCount() const { return underflow_; }
    /** Samples at or above the binned range. */
    std::uint64_t overflowCount() const { return overflow_; }
    /** Exact minimum sample seen (not bin-quantized). */
    double minSample() const { return min_; }
    /** Exact maximum sample seen (not bin-quantized). */
    double maxSample() const { return max_; }

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of samples strictly below x (bin-resolution accurate). */
    double fractionBelow(double x) const;
    /**
     * Fraction of samples at or above x, computed directly from the
     * at-or-above bin counts plus the overflow bucket — never as
     * 1.0 - fractionBelow(x), which catastrophically cancels for the
     * deep-tail queries droop-margin CDFs serve (a 1e-12 tail of a
     * billion-sample histogram would come back with only ~4 correct
     * digits).
     */
    double fractionAtOrAbove(double x) const;

    /**
     * Inverse CDF: smallest bin center v such that at least fraction q
     * of samples are <= v, clamped to the exact sample extremes.
     * quantile(0) and quantile(1) return the tracked min/max samples.
     * q in [0, 1].
     */
    double quantile(double q) const;

    /**
     * CDF evaluated at each bin's upper edge, as (value, cumulative
     * fraction) pairs — directly plottable as the paper's Fig 7/9.
     * Underflow mass is included from the first edge on; with
     * overflow present the final fraction is 1 - overflow/total.
     */
    std::vector<std::pair<double, double>> cdf() const;

  private:
    /**
     * Bin index for in-range x (lo_ <= x < hi_). Multiplies by the
     * precomputed reciprocal bin width instead of dividing; the
     * conditional guards the floating-point edge case where
     * x == hi_ - ulp maps to numBins().
     */
    std::size_t
    binIndex(double x) const
    {
        const auto raw = static_cast<std::size_t>((x - lo_) * invWidth_);
        const std::size_t last = counts_.size() - 1;
        return raw < last ? raw : last;
    }

    double lo_;
    double hi_;
    double width_;
    double invWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double min_;
    double max_;
};

} // namespace vsmooth

#endif // VSMOOTH_COMMON_HISTOGRAM_HH
