/**
 * @file
 * Fixed-bin streaming histogram and cumulative-distribution helpers.
 *
 * This is the software model of the oscilloscope's "highly compressed
 * histogram format" the paper relied on (Sec II-A): billions of voltage
 * samples reduce to a small fixed-size array, from which CDFs (Fig 7,
 * Fig 9), tail fractions (0.06 % beyond -4 %), and extreme droop /
 * overshoot values are recovered.
 */

#ifndef VSMOOTH_COMMON_HISTOGRAM_HH
#define VSMOOTH_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace vsmooth {

/**
 * Histogram over a fixed range [lo, hi) with uniform bins.
 *
 * Samples outside the range are counted in explicit underflow /
 * overflow buckets so no sample is ever silently dropped (extreme
 * droops are precisely the interesting ones) and no out-of-range mass
 * is misattributed to the edge bins — clamping them there distorted
 * the within-bin interpolation behind the deep-droop tail fractions
 * (Fig 7/9). Exact min/max are tracked separately.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower edge of the binned range
     * @param hi exclusive upper edge of the binned range
     * @param bins number of uniform bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Add a sample with a given multiplicity (weight >= 1). */
    void add(double x, std::uint64_t count);

    /** Merge a compatible histogram (same lo/hi/bins). */
    void merge(const Histogram &other);

    /** Reset all counts. */
    void clear();

    std::uint64_t totalCount() const { return total_; }
    std::size_t numBins() const { return counts_.size(); }
    double lowerEdge() const { return lo_; }
    double upperEdge() const { return hi_; }
    /** Samples below the binned range (counted, never binned). */
    std::uint64_t underflowCount() const { return underflow_; }
    /** Samples at or above the binned range. */
    std::uint64_t overflowCount() const { return overflow_; }
    /** Exact minimum sample seen (not bin-quantized). */
    double minSample() const { return min_; }
    /** Exact maximum sample seen (not bin-quantized). */
    double maxSample() const { return max_; }

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of samples strictly below x (bin-resolution accurate). */
    double fractionBelow(double x) const;
    /** Fraction of samples at or above x. */
    double fractionAtOrAbove(double x) const { return 1.0 - fractionBelow(x); }

    /**
     * Inverse CDF: smallest bin center v such that at least fraction q
     * of samples are <= v, clamped to the exact sample extremes.
     * quantile(0) and quantile(1) return the tracked min/max samples.
     * q in [0, 1].
     */
    double quantile(double q) const;

    /**
     * CDF evaluated at each bin's upper edge, as (value, cumulative
     * fraction) pairs — directly plottable as the paper's Fig 7/9.
     * Underflow mass is included from the first edge on; with
     * overflow present the final fraction is 1 - overflow/total.
     */
    std::vector<std::pair<double, double>> cdf() const;

  private:
    std::size_t binIndex(double x) const;

    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double min_;
    double max_;
};

} // namespace vsmooth

#endif // VSMOOTH_COMMON_HISTOGRAM_HH
