/**
 * @file
 * gem5-style status and error reporting: inform / warn / fatal / panic.
 *
 * fatal() is for user errors (bad configuration, invalid arguments) and
 * exits cleanly; panic() is for internal invariant violations and
 * aborts. Both accept printf-style format strings.
 */

#ifndef VSMOOTH_COMMON_LOGGING_HH
#define VSMOOTH_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vsmooth {

/** Print an informational status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable-but-survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable *user* error (bad config, invalid argument)
 * and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a vsmooth bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Runtime toggle for inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace vsmooth

#endif // VSMOOTH_COMMON_LOGGING_HH
