/**
 * @file
 * Deterministic pseudo-random number generation for all vsmooth
 * stochastic processes.
 *
 * Every simulator component that needs randomness takes an Rng (or a
 * seed) explicitly, so whole experiments are reproducible bit-for-bit.
 * The generator is xoshiro256++ (Blackman & Vigna), which is fast,
 * high-quality, and trivially seedable via splitmix64.
 */

#ifndef VSMOOTH_COMMON_RNG_HH
#define VSMOOTH_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace vsmooth {

/**
 * xoshiro256++ pseudo-random generator with distribution helpers.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /**
     * Next raw 64-bit value. Inline: the core models draw uniforms on
     * every running cycle, so the xoshiro step belongs in their loop.
     */
    result_type operator()()
    {
        const std::uint64_t result =
            rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 random mantissa bits -> double in [0, 1).
        return ((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential variate with given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Geometric inter-arrival sample: number of trials until the first
     * success for per-trial probability p (>= 1). Used for event
     * processes like "next cache miss in k cycles".
     */
    std::uint64_t geometric(double p);

    /**
     * geometric() with the denominator log1p(-p) supplied by the
     * caller. Event processes draw inter-arrivals repeatedly at a
     * rate that only changes with the workload phase, so hoisting the
     * constant log halves the libm cost per draw. The quotient is the
     * same division as geometric(p) — same bits — provided logq is
     * exactly std::log1p(-p).
     */
    std::uint64_t geometric(double p, double logq);

    /** Fork a statistically independent child generator. */
    Rng fork();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace vsmooth

#endif // VSMOOTH_COMMON_RNG_HH
