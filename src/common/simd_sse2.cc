/**
 * @file
 * SSE2 (width-2) instantiation of the lane-step kernel. SSE2 is
 * architectural on x86-64, so this is the vector baseline. The one
 * instruction SSE2 lacks is roundpd: floorNonNeg() uses the 2^52
 * round-to-integer trick with a conditional correction, exact for all
 * non-negative inputs (the kernel only floors t / period with t >= 0).
 */

#include "simd_kernels.hh"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

namespace vsmooth::simd {
namespace {

struct VecSse2
{
    static constexpr std::size_t width = 2;
    /** Masks are all-ones/all-zeros vectors, fed to and/andnot. */
    using Mask = VecSse2;

    __m128d v;

    static VecSse2 set1(double x) { return {_mm_set1_pd(x)}; }
    static VecSse2 load(const double *p) { return {_mm_loadu_pd(p)}; }
    static void store(double *p, VecSse2 a) { _mm_storeu_pd(p, a.v); }

    /** Sample j of each of the `width` lane streams in p[]. */
    static VecSse2 gather(const double *const *p, std::size_t j)
    {
        return {_mm_set_pd(p[1][j], p[0][j])};
    }
    static void scatter(double *const *p, std::size_t j, VecSse2 a)
    {
        _mm_storel_pd(p[0] + j, a.v);
        _mm_storeh_pd(p[1] + j, a.v);
    }

    /** Samples j..j+1 of both lane streams as a 2x2 register
     *  transpose: out[k] holds sample j+k across lanes. */
    static void gatherT(const double *const *p, std::size_t j,
                        VecSse2 *out)
    {
        const __m128d r0 = _mm_loadu_pd(p[0] + j);
        const __m128d r1 = _mm_loadu_pd(p[1] + j);
        out[0].v = _mm_unpacklo_pd(r0, r1);
        out[1].v = _mm_unpackhi_pd(r0, r1);
    }
    static void scatterT(double *const *p, std::size_t j,
                         const VecSse2 *in)
    {
        _mm_storeu_pd(p[0] + j, _mm_unpacklo_pd(in[0].v, in[1].v));
        _mm_storeu_pd(p[1] + j, _mm_unpackhi_pd(in[0].v, in[1].v));
    }

    friend VecSse2 operator+(VecSse2 a, VecSse2 b)
    {
        return {_mm_add_pd(a.v, b.v)};
    }
    friend VecSse2 operator-(VecSse2 a, VecSse2 b)
    {
        return {_mm_sub_pd(a.v, b.v)};
    }
    friend VecSse2 operator*(VecSse2 a, VecSse2 b)
    {
        return {_mm_mul_pd(a.v, b.v)};
    }
    friend VecSse2 operator/(VecSse2 a, VecSse2 b)
    {
        return {_mm_div_pd(a.v, b.v)};
    }

    static VecSse2 min(VecSse2 a, VecSse2 b)
    {
        return {_mm_min_pd(a.v, b.v)};
    }
    static VecSse2 max(VecSse2 a, VecSse2 b)
    {
        return {_mm_max_pd(a.v, b.v)};
    }

    static VecSse2 gtMask(VecSse2 a, VecSse2 b)
    {
        return {_mm_cmpgt_pd(a.v, b.v)};
    }
    static VecSse2 ltMask(VecSse2 a, VecSse2 b)
    {
        return {_mm_cmplt_pd(a.v, b.v)};
    }
    /** Select b where the mask is set, else a. */
    static VecSse2 blend(VecSse2 a, VecSse2 b, VecSse2 mask)
    {
        return {_mm_or_pd(_mm_and_pd(mask.v, b.v),
                          _mm_andnot_pd(mask.v, a.v))};
    }

    static VecSse2 floorNonNeg(VecSse2 a)
    {
        // q + 2^52 - 2^52 rounds q to the nearest integer (ties to
        // even); subtract 1 where rounding went up, and pass q through
        // untouched when q >= 2^52 (already an exact integer).
        const __m128d magic = _mm_set1_pd(4503599627370496.0); // 2^52
        const __m128d one = _mm_set1_pd(1.0);
        const __m128d rounded =
            _mm_sub_pd(_mm_add_pd(a.v, magic), magic);
        const __m128d tooBig = _mm_cmpgt_pd(rounded, a.v);
        const __m128d floored =
            _mm_sub_pd(rounded, _mm_and_pd(tooBig, one));
        const __m128d huge = _mm_cmpge_pd(a.v, magic);
        return {_mm_or_pd(_mm_and_pd(huge, a.v),
                          _mm_andnot_pd(huge, floored))};
    }
};

void
laneStepSse2(LaneStepArgs &args)
{
    laneStepKernel<VecSse2>(args);
}

} // namespace

const KernelSet kSse2Kernels = {laneStepSse2, nullptr, nullptr};

} // namespace vsmooth::simd

#else // !x86-64

namespace vsmooth::simd {

// Non-x86 hosts never dispatch above Scalar; keep the symbol defined.
const KernelSet kSse2Kernels = {nullptr, nullptr, nullptr};

} // namespace vsmooth::simd

#endif
