/**
 * @file
 * Descriptive statistics used throughout the characterization and
 * scheduling studies: running (Welford) accumulators, percentiles,
 * Pearson correlation, least-squares regression, and five-number
 * boxplot summaries (Fig 17 of the paper is a boxplot).
 */

#ifndef VSMOOTH_COMMON_STATISTICS_HH
#define VSMOOTH_COMMON_STATISTICS_HH

#include <cstddef>
#include <span>
#include <vector>

namespace vsmooth {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 * O(1) memory; numerically stable for billions of samples.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of samples added. */
    std::size_t count() const { return count_; }
    /** Sample mean; 0 if empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 if fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    /** max - min. */
    double range() const { return count_ ? max_ - min_ : 0.0; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a sample; 0 if empty. */
double mean(std::span<const double> xs);

/** Unbiased sample standard deviation; 0 if fewer than two samples. */
double stddev(std::span<const double> xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * Sorts a copy; O(n log n).
 */
double percentile(std::span<const double> xs, double p);

/**
 * Linear-interpolated percentile of an already ascending-sorted
 * sample, p in [0, 100]. O(1); lets callers that need several
 * percentiles (boxplot, Fig 17's per-benchmark spreads) sort once
 * instead of once per query.
 */
double percentileOfSorted(std::span<const double> sorted, double p);

/** Pearson linear correlation coefficient; 0 if degenerate. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/** Least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Fit a line through (xs, ys); sizes must match and be >= 2. */
LinearFit linearFit(std::span<const double> xs, std::span<const double> ys);

/**
 * Five-number summary for boxplots: min, first quartile, median, third
 * quartile, max (plus mean for convenience).
 */
struct BoxplotSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
};

/** Compute the five-number summary of a (non-empty) sample. */
BoxplotSummary boxplot(std::span<const double> xs);

} // namespace vsmooth

#endif // VSMOOTH_COMMON_STATISTICS_HH
