/**
 * @file
 * Minimal JSON value, writer, and parser (no third-party deps).
 *
 * Backs the structured-results subsystem: every bench binary emits a
 * machine-readable record of its paper observables, and `vsmooth
 * verify` reads those records back and diffs them against checked-in
 * goldens. Objects preserve insertion order so emitted files are
 * stable and diffable; doubles round-trip exactly (%.17g), and
 * integer tokens round-trip as exact 64-bit integers — a uint64 cycle
 * count or histogram mass above 2^53 never loses low bits to a double
 * detour.
 */

#ifndef VSMOOTH_COMMON_JSON_HH
#define VSMOOTH_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vsmooth {

/**
 * A JSON value: null, bool, number, string, array, or object.
 * Objects keep their members in insertion order.
 *
 * Numbers carry a kind: integer-constructed values (and parsed
 * integer tokens that fit) are stored as exact int64/uint64 and
 * serialize as integer tokens, so 64-bit counters survive a
 * write/parse round trip bit-for-bit. asNumber() still works on any
 * number (integers convert, possibly with the usual > 2^53 rounding);
 * the exact accessors recover the integer losslessly.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int i)
        : type_(Type::Number), numKind_(NumKind::Int),
          num_(static_cast<double>(i)), int_(i) {}
    Json(std::int64_t i)
        : type_(Type::Number), numKind_(NumKind::Int),
          num_(static_cast<double>(i)), int_(i) {}
    Json(std::uint64_t u)
        : type_(Type::Number), numKind_(NumKind::Uint),
          num_(static_cast<double>(u)), uint_(u) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array / object, for incremental building. */
    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Number stored as an exact non-negative 64-bit integer. */
    bool isUint() const
    {
        return type_ == Type::Number && numKind_ == NumKind::Uint;
    }
    /** Number stored as an exact signed 64-bit integer. */
    bool isInt() const
    {
        return type_ == Type::Number && numKind_ == NumKind::Int;
    }

    /** Typed accessors; panic on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /**
     * Exact uint64 of this number, when it has one: an integer-kind
     * value in range, or a double that is integral and exactly
     * representable (|d| <= 2^53). Returns false otherwise — never a
     * silently rounded value.
     */
    bool exactUint64(std::uint64_t *out) const;
    /** exactUint64 or panic — for values already validated. */
    std::uint64_t asUint64() const;

    /** Append to an array value (panics if not an array). */
    void push(Json v);
    /** Set (append or overwrite) an object member. */
    void set(std::string key, Json v);
    /** Member lookup; nullptr if absent or not an object. */
    const Json *find(std::string_view key) const;
    /** Member lookup; panics if absent. */
    const Json &at(std::string_view key) const;
    bool contains(std::string_view key) const { return find(key); }

    /** Serialize. `indent` > 0 pretty-prints with that step. */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /**
     * Parse a complete JSON document. On failure returns a Null value
     * and, if `error` is given, stores a human-readable message.
     */
    static Json parse(std::string_view text, std::string *error = nullptr);

  private:
    enum class NumKind { Double, Int, Uint };

    void writeValue(std::ostream &os, int indent, int depth) const;

    Type type_;
    NumKind numKind_ = NumKind::Double;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace vsmooth

#endif // VSMOOTH_COMMON_JSON_HH
