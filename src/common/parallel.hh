/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * Every headline experiment is a population of independent
 * simulations (the 29x29 oracle matrix, the Fig 7/9 CDF populations,
 * the interference grids). parallelFor() fans such a sweep out over a
 * lazily-started, process-wide thread pool while preserving the
 * repo's bit-for-bit reproducibility invariant (DESIGN.md):
 *
 *   - every task derives its own seed from its *index*, never from
 *     execution order;
 *   - results are written into pre-sized slots by index, so the
 *     output is identical for any job count;
 *   - reductions (histogram / profile merges) happen after the join,
 *     in index order, on the calling thread.
 *
 * The pool size defaults to std::thread::hardware_concurrency(), can
 * be pinned via the VSMOOTH_JOBS environment variable, and overridden
 * at runtime with setJobs(). Jobs == 1 degenerates to the plain
 * serial loop on the calling thread (no pool threads are started), so
 * `VSMOOTH_JOBS=1` reproduces the historical single-threaded runs
 * exactly — including their execution order.
 */

#ifndef VSMOOTH_COMMON_PARALLEL_HH
#define VSMOOTH_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace vsmooth {

/**
 * Effective job count used by the next parallelFor (>= 1): the
 * setJobs() override if set, else VSMOOTH_JOBS, else
 * hardware_concurrency.
 */
std::size_t numJobs();

/**
 * Override the pool size. 0 restores the default (VSMOOTH_JOBS env
 * var, else hardware_concurrency). Thread-safe; takes effect on the
 * next parallelFor.
 */
void setJobs(std::size_t n);

/**
 * Run fn(i) for every i in [begin, end) across the pool.
 *
 * The range is split into at most numJobs() statically-sized
 * contiguous chunks; each index is executed exactly once. The call
 * returns after every index has completed. The first exception thrown
 * by fn is rethrown on the calling thread (remaining undispatched
 * chunks are abandoned). Nested calls — fn itself calling
 * parallelFor — run serially inline on the worker, so they are safe
 * but gain no extra parallelism.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn);

/**
 * Evaluate fn(i) for i in [0, n) and collect the results in order.
 *
 * Each result is written into its pre-sized slot by index, so the
 * returned vector is identical for any job count. T must be
 * default-constructible and assignable.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, Fn fn)
{
    std::vector<T> out(n);
    parallelFor(0, n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace vsmooth

#endif // VSMOOTH_COMMON_PARALLEL_HH
