/**
 * @file
 * Scalar (width-1) instantiation of the lane-step kernel. This is the
 * portable reference every wider level must match bit-for-bit; the
 * interleaved per-slot chains still buy instruction-level parallelism
 * on the carried recurrences even without vector registers.
 */

#include <cmath>

#include "simd_kernels.hh"

namespace vsmooth::simd {
namespace {

struct VecScalar
{
    static constexpr std::size_t width = 1;
    /** Masks are just vectors up to AVX2 (1.0 / 0.0 here). */
    using Mask = VecScalar;

    double v;

    static VecScalar set1(double x) { return {x}; }
    static VecScalar load(const double *p) { return {*p}; }
    static void store(double *p, VecScalar a) { *p = a.v; }

    /** Sample j of each of the `width` lane streams in p[]. */
    static VecScalar gather(const double *const *p, std::size_t j)
    {
        return {p[0][j]};
    }
    static void scatter(double *const *p, std::size_t j, VecScalar a)
    {
        p[0][j] = a.v;
    }

    /** Samples j..j+width-1 of the lane streams, transposed so
     *  out[k] holds sample j+k across lanes. */
    static void gatherT(const double *const *p, std::size_t j,
                        VecScalar *out)
    {
        out[0].v = p[0][j];
    }
    static void scatterT(double *const *p, std::size_t j,
                         const VecScalar *in)
    {
        p[0][j] = in[0].v;
    }

    friend VecScalar operator+(VecScalar a, VecScalar b)
    {
        return {a.v + b.v};
    }
    friend VecScalar operator-(VecScalar a, VecScalar b)
    {
        return {a.v - b.v};
    }
    friend VecScalar operator*(VecScalar a, VecScalar b)
    {
        return {a.v * b.v};
    }
    friend VecScalar operator/(VecScalar a, VecScalar b)
    {
        return {a.v / b.v};
    }

    static VecScalar min(VecScalar a, VecScalar b)
    {
        // minpd/maxpd semantics: the second operand is returned on
        // equality. Equal finite doubles are the same bits, and the
        // kernel's clamp guards slew > 0, so ±0 never reaches the
        // equal case — every level returns identical bits.
        return {a.v < b.v ? a.v : b.v};
    }
    static VecScalar max(VecScalar a, VecScalar b)
    {
        return {a.v > b.v ? a.v : b.v};
    }

    static VecScalar gtMask(VecScalar a, VecScalar b)
    {
        return {a.v > b.v ? 1.0 : 0.0};
    }
    static VecScalar ltMask(VecScalar a, VecScalar b)
    {
        return {a.v < b.v ? 1.0 : 0.0};
    }
    /** Select b where the mask is set, else a. */
    static VecScalar blend(VecScalar a, VecScalar b, VecScalar mask)
    {
        return {mask.v != 0.0 ? b.v : a.v};
    }

    static VecScalar floorNonNeg(VecScalar a)
    {
        return {std::floor(a.v)};
    }
};

void
laneStepScalar(LaneStepArgs &args)
{
    laneStepKernel<VecScalar>(args);
}

} // namespace

const KernelSet kScalarKernels = {laneStepScalar, nullptr, nullptr};

} // namespace vsmooth::simd
