/**
 * @file
 * Text table and CSV emission for bench harness output.
 *
 * Every figure/table bench prints its series through TextTable so the
 * reproduction output is uniform and diffable. Cells are stored as
 * strings; numeric helpers format with a fixed precision.
 */

#ifndef VSMOOTH_COMMON_TABLE_HH
#define VSMOOTH_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vsmooth {

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format an integer. */
    static std::string num(std::uint64_t v);
    static std::string num(std::uint32_t v);
    static std::string num(int v);

    /** Render the table, column-aligned, to a stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows, no title). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vsmooth

#endif // VSMOOTH_COMMON_TABLE_HH
