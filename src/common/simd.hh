/**
 * @file
 * Runtime CPU-dispatched SIMD kernels for the scenario-lane engine.
 *
 * The sweep workloads (oracle matrix, population studies, figure
 * grids) run hundreds of *independent* simulations; the lane engine
 * (sim::LaneGroup) steps K of them in lockstep and hands the carried
 * per-cycle chains — current smoothing, PDN recurrence, VRM ripple —
 * to one of the kernels registered here, packed across the lane
 * dimension. Every kernel performs, per lane, exactly the scalar
 * pipeline's IEEE operations in the same order (vdivpd/vmulpd/vaddpd
 * are elementwise, no FMA contraction is ever enabled), so per-lane
 * results are bit-identical to a solo run at any lane width.
 *
 * Dispatch picks the widest level the host supports at startup;
 * VSMOOTH_SIMD=scalar|sse2|avx2|avx512 overrides it (unknown values
 * are fatal, listing the accepted set), and setActiveLevel() is the
 * equivalent test hook.
 *
 * This header is included from translation units compiled with -mavx2
 * and -mavx512f: keep it free of inline function bodies and
 * intrinsics so no AVX-encoded comdat can leak into baseline objects.
 */

#ifndef VSMOOTH_COMMON_SIMD_HH
#define VSMOOTH_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace vsmooth::simd {

/** Instruction-set levels the kernels are built for, widest last. */
enum class IsaLevel : int
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** Lowercase name, as accepted by VSMOOTH_SIMD. */
const char *levelName(IsaLevel level);

/** Widest level the host CPU supports. */
IsaLevel detectHostLevel();

/**
 * The level in effect: the host's widest, unless VSMOOTH_SIMD or
 * setActiveLevel() narrowed it. First call parses the environment
 * (fatal on unknown values or levels the host lacks) and reports the
 * selection once via inform().
 */
IsaLevel activeLevel();

/** Test hook: force a level (must not exceed the host's). */
void setActiveLevel(IsaLevel level);

/** Doubles per vector register at a level (1 / 2 / 4 / 8). */
std::size_t vectorWidth(IsaLevel level);

/**
 * Default scenario-lane count for LaneGroup: two vectors in flight at
 * the active level (16 for AVX-512, 8 for AVX2, 4 for SSE2), and 4
 * for scalar — the interleaved scalar chains still overlap in the
 * out-of-order window. VSMOOTH_LANES=1..16 overrides (fatal outside
 * that range).
 */
std::size_t defaultLaneWidth();

/** Compact stamp for Result metadata, e.g. "avx512x16". */
std::string description();

/** Hard bounds the kernel argument blocks are sized for. */
inline constexpr std::size_t kMaxLanes = 16;
inline constexpr std::size_t kMaxLaneCores = 8;

/**
 * Argument block for one fused lane-step call: n cycles of the
 * smoothing + PDN pipeline across `lanes` scenarios. Per-cycle data
 * stays in per-lane contiguous buffers — the kernels assemble and
 * disassemble vectors across the lane dimension in registers
 * (gather/scatter of `lanes` parallel streams), so no transposed
 * copy of the block ever exists and every memory stream is
 * sequential. Pointer and parameter arrays are indexed by lane and
 * padded with benign values up to `stride` (the lane count rounded
 * up to the vector width; pad pointers must reference valid,
 * finite-valued storage — their outputs are never read back). State
 * members (prev, iL, vC, vDie, tTime) are read at entry and written
 * back at exit.
 */
struct LaneStepArgs
{
    std::size_t n = 0;
    std::size_t lanes = 0;
    std::size_t stride = 0;
    std::size_t cores = 0;

    /** Per-core, per-lane contiguous steady-current inputs
     *  (post-steadyBlock), n samples each. */
    const double *steady[kMaxLaneCores][kMaxLanes] = {};
    /** Out: per-lane contiguous per-cycle chip current. */
    double *total[kMaxLanes] = {};
    /** Out: per-lane contiguous per-cycle voltage deviation. */
    double *deviation[kMaxLanes] = {};

    // Current-model smoothing (params shared by a lane's cores).
    double tau[kMaxLanes] = {};
    double alpha[kMaxLanes] = {};
    double slew[kMaxLanes] = {};
    double prev[kMaxLaneCores][kMaxLanes] = {};

    // PDN trapezoidal update coefficients and state, per lane.
    double m00[kMaxLanes] = {}, m01[kMaxLanes] = {};
    double m10[kMaxLanes] = {}, m11[kMaxLanes] = {};
    double n00[kMaxLanes] = {}, n01[kMaxLanes] = {};
    double n10[kMaxLanes] = {}, n11[kMaxLanes] = {};
    double vdd[kMaxLanes] = {};
    double invVdd[kMaxLanes] = {};
    double rcDamp[kMaxLanes] = {};
    double dtStep[kMaxLanes] = {};
    double rippleAmp[kMaxLanes] = {};
    double ripplePeriod[kMaxLanes] = {};
    double iL[kMaxLanes] = {};
    double vC[kMaxLanes] = {};
    double vDie[kMaxLanes] = {};
    double tTime[kMaxLanes] = {};
};

using LaneStepFn = void (*)(LaneStepArgs &args);

/**
 * Elementwise steady-current conversion (CurrentModel::steadyBlock's
 * arithmetic) over a contiguous lane; in-place allowed.
 */
using SteadyFn = void (*)(double leak, double idleClk, double dynMax,
                          const double *activity, double *steady,
                          std::size_t n);

/** Sentinels binIndexFn writes for out-of-range samples. */
inline constexpr std::uint32_t kBinUnderflow = 0xFFFFFFFFu;
inline constexpr std::uint32_t kBinOverflow = 0xFFFFFFFEu;

/**
 * Histogram bin classification for a contiguous block: idx[j] is the
 * clamped bin index of xs[j], or a sentinel for out-of-range samples.
 * Index arithmetic is Histogram::add()'s exactly (truncating cast of
 * (x - lo) * invWidth, clamped to `last`).
 */
using BinIndexFn = void (*)(const double *xs, std::size_t n, double lo,
                            double hi, double invWidth,
                            std::uint32_t last, std::uint32_t *idx);

/**
 * Kernels for one level. Null members mean "no kernel at this level";
 * callers fall back to their built-in path (for steady/binIndex the
 * baseline code is already the scalar/SSE2 reference, so only AVX2
 * registers wider versions).
 */
struct KernelSet
{
    LaneStepFn laneStep = nullptr;
    SteadyFn steady = nullptr;
    BinIndexFn binIndex = nullptr;
};

/** Kernels registered for a specific level. */
const KernelSet &kernelsFor(IsaLevel level);

/** Kernels for activeLevel(). */
const KernelSet &kernels();

} // namespace vsmooth::simd

#endif // VSMOOTH_COMMON_SIMD_HH
