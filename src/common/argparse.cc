#include "argparse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace vsmooth {

std::optional<std::uint64_t>
tryParseU64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // strtoull silently accepts leading whitespace and negative
    // numbers (wrapping them); forbid both, plus explicit '+'.
    const char first = text.front();
    if (!std::isdigit(static_cast<unsigned char>(first)))
        return std::nullopt;
    const std::string buf(text);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (errno == ERANGE)
        return std::nullopt;
    if (end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<double>
tryParseDouble(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    if (std::isspace(static_cast<unsigned char>(text.front())))
        return std::nullopt;
    const std::string buf(text);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size())
        return std::nullopt;
    if (!std::isfinite(v))
        return std::nullopt;
    return v;
}

} // namespace vsmooth
