#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace vsmooth {

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json: not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        panic("Json: not a number");
    return num_;
}

bool
Json::exactUint64(std::uint64_t *out) const
{
    if (type_ != Type::Number)
        return false;
    switch (numKind_) {
      case NumKind::Uint:
        *out = uint_;
        return true;
      case NumKind::Int:
        if (int_ < 0)
            return false;
        *out = static_cast<std::uint64_t>(int_);
        return true;
      case NumKind::Double:
        // A double carries an exact integer only up to 2^53; beyond
        // that the low bits are already gone and no cast recovers
        // them.
        if (!(num_ >= 0.0) || num_ != std::floor(num_) ||
            num_ > 9007199254740992.0) {
            return false;
        }
        *out = static_cast<std::uint64_t>(num_);
        return true;
    }
    return false;
}

std::uint64_t
Json::asUint64() const
{
    std::uint64_t v = 0;
    if (!exactUint64(&v))
        panic("Json: number has no exact uint64 value");
    return v;
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json: not a string");
    return str_;
}

const Json::Array &
Json::asArray() const
{
    if (type_ != Type::Array)
        panic("Json: not an array");
    return arr_;
}

const Json::Object &
Json::asObject() const
{
    if (type_ != Type::Object)
        panic("Json: not an object");
    return obj_;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        panic("Json::push on non-array");
    arr_.push_back(std::move(v));
}

void
Json::set(std::string key, Json v)
{
    if (type_ != Type::Object)
        panic("Json::set on non-object");
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::move(key), std::move(v));
}

const Json *
Json::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json &
Json::at(std::string_view key) const
{
    const Json *v = find(key);
    if (!v)
        panic("Json: missing key '%s'", std::string(key).c_str());
    return *v;
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; emit null (readers treat it as absent).
        os << "null";
        return;
    }
    // Integers print without exponent/decimals; everything else with
    // enough digits to round-trip a double exactly.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        os << buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os << buf;
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    if (indent <= 0)
        return;
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::writeValue(std::ostream &os, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        // Integer-kind numbers print all 64 bits exactly; the decimal
        // text matches what %.0f produced for the same values when
        // they fit a double, so pre-existing files stay byte-stable.
        if (numKind_ == NumKind::Uint) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(uint_));
            os << buf;
        } else if (numKind_ == NumKind::Int) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(int_));
            os << buf;
        } else {
            writeNumber(os, num_);
        }
        break;
      case Type::String:
        writeEscaped(os, str_);
        break;
      case Type::Array:
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            if (indent > 0 && !arr_[i].isNumber())
                newlineIndent(os, indent, depth + 1);
            else if (indent > 0 && i)
                os << ' ';
            arr_[i].writeValue(os, indent, depth + 1);
        }
        os << ']';
        break;
      case Type::Object:
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            writeEscaped(os, obj_[i].first);
            os << (indent > 0 ? ": " : ":");
            obj_[i].second.writeValue(os, indent, depth + 1);
        }
        if (!obj_.empty())
            newlineIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeValue(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
            return Json();
        }
        return v;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string &msg)
    {
        if (!failed_ && error_)
            *error_ = msg + " at offset " + std::to_string(pos_);
        failed_ = true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (text_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (consumeWord("true"))
            return Json(true);
        if (consumeWord("false"))
            return Json(false);
        if (consumeWord("null"))
            return Json();
        return parseNumber();
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return out;
                    }
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return out;
                        }
                    }
                    // Basic-multilingual-plane only; encode as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("bad escape character");
                    return out;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
        }
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end != tok.c_str() + tok.size()) {
            fail("bad number '" + tok + "'");
            return Json();
        }
        // A pure integer token keeps its exact 64-bit value (counters
        // above 2^53 must not detour through a double). "-0" stays a
        // double so it round-trips as written, and tokens beyond the
        // 64-bit ranges fall back to the double approximation.
        if (tok.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            if (tok[0] == '-') {
                const long long i = std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size() &&
                    i != 0) {
                    return Json(static_cast<std::int64_t>(i));
                }
            } else {
                const unsigned long long u =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size())
                    return Json(static_cast<std::uint64_t>(u));
            }
        }
        return Json(v);
    }

    Json
    parseArray()
    {
        Json arr = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(parseValue());
            if (failed_)
                return arr;
            skipWs();
            if (consume(']'))
                return arr;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return arr;
            }
        }
    }

    Json
    parseObject()
    {
        Json obj = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            std::string key = parseString();
            if (failed_)
                return obj;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return obj;
            }
            obj.set(std::move(key), parseValue());
            if (failed_)
                return obj;
            skipWs();
            if (consume('}'))
                return obj;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return obj;
            }
        }
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::parse(std::string_view text, std::string *error)
{
    Parser p(text, error);
    Json v = p.parseDocument();
    if (p.failed())
        return Json();
    return v;
}

} // namespace vsmooth
