/**
 * @file
 * Structured experiment results and golden-baseline comparison.
 *
 * Every bench binary reduces its paper observables (Fig 7's 0.06 %
 * tail, Fig 15's r = 0.97, Table I's pass counts, ...) to a Result:
 * named scalar metrics plus named numeric series, stamped with the
 * experiment name, RNG seed, worker-thread count, and the source
 * git revision. Results serialize to JSON; `vsmooth verify` re-runs
 * experiments and diffs their Results against checked-in goldens
 * under per-metric absolute/relative tolerances, so a silent change
 * to any calibration constant or model fails CI with a named metric
 * instead of shipping unnoticed.
 */

#ifndef VSMOOTH_COMMON_RESULT_HH
#define VSMOOTH_COMMON_RESULT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json.hh"

namespace vsmooth {

/**
 * Sampled-execution metadata attached to a Result: how the run was
 * produced ("auto"), what fraction of its cycles were simulated at
 * full fidelity, and per-metric absolute error bounds. A bounds entry
 * names a metric (or series) of the same Result; compareResults
 * treats bound-annotated names as tolerance-checked (abs = bound,
 * rel = 0) instead of exact, and fails structurally on a bound that
 * is non-finite or names nothing.
 */
struct ResultSampling
{
    std::string mode = "auto";
    double simulatedFraction = 1.0;
    std::vector<std::pair<std::string, double>> bounds;
};

/** One experiment's machine-readable outcome. */
class Result
{
  public:
    Result() = default;
    explicit Result(std::string experiment)
        : experiment_(std::move(experiment))
    {
    }

    const std::string &experiment() const { return experiment_; }
    void setExperiment(std::string e) { experiment_ = std::move(e); }

    /** git-describe string of the producing build ("unknown" if
     *  built outside a checkout). */
    const std::string &gitDescribe() const { return git_; }
    void setGitDescribe(std::string g) { git_ = std::move(g); }

    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t s) { seed_ = s; }

    /** Worker-thread count the run used (VSMOOTH_JOBS / --jobs). */
    std::uint64_t jobs() const { return jobs_; }
    void setJobs(std::uint64_t j) { jobs_ = j; }

    /** SIMD path stamp, e.g. "avx2x8" (empty = not recorded).
     *  Informational, like seed/jobs/git: runs must be bit-identical
     *  across kernel levels, so it is never compared. */
    const std::string &simd() const { return simd_; }
    void setSimd(std::string s) { simd_ = std::move(s); }

    /** Sampled-execution metadata (absent unless the producing run
     *  used sampling; absent results serialize without the key, so
     *  pre-existing goldens stay byte-stable). */
    bool hasSampling() const { return hasSampling_; }
    const ResultSampling &sampling() const { return sampling_; }
    void
    setSampling(ResultSampling s)
    {
        sampling_ = std::move(s);
        hasSampling_ = true;
    }

    /** Append (or overwrite) a named scalar metric. */
    void metric(std::string_view name, double value);
    /**
     * Append (or overwrite) a named exact integer count metric: cycle
     * totals, histogram masses, event counts. Serializes as an
     * integer JSON token (lossless above 2^53, where a double metric
     * silently rounds) and compares exactly in compareResults unless
     * an explicit tolerance or sampling bound widens it. Also visible
     * through metricValue()/metrics() as a (possibly rounded) double.
     */
    void metricCount(std::string_view name, std::uint64_t value);
    /** Append (or overwrite) a named numeric series. */
    void series(std::string_view name, std::vector<double> values);
    /** Append one point to a named series (creating it on first use). */
    void seriesPoint(std::string_view name, double value);

    bool hasMetric(std::string_view name) const;
    /** Value of a metric; panics if absent. */
    double metricValue(std::string_view name) const;
    /** True when `name` is an exact integer count metric. */
    bool hasCount(std::string_view name) const;
    /** Exact value of a count metric; panics if absent. */
    std::uint64_t countValue(std::string_view name) const;

    const std::vector<std::pair<std::string, double>> &
    metrics() const { return metrics_; }
    const std::vector<std::pair<std::string, std::vector<double>>> &
    allSeries() const { return series_; }

    Json toJson() const;
    /** Parse a Result; returns false (with *error set) on schema
     *  violations. */
    static bool fromJson(const Json &j, Result &out, std::string *error);

  private:
    std::string experiment_;
    std::string git_ = "unknown";
    std::string simd_;
    std::uint64_t seed_ = 1;
    std::uint64_t jobs_ = 1;
    bool hasSampling_ = false;
    ResultSampling sampling_;
    std::vector<std::pair<std::string, double>> metrics_;
    /** Exact values of the metrics that are integer counts (each name
     *  also appears in metrics_ with the rounded double). */
    std::vector<std::pair<std::string, std::uint64_t>> counts_;
    std::vector<std::pair<std::string, std::vector<double>>> series_;
};

/** Absolute/relative acceptance band for one metric or series. A
 *  value passes when |actual - golden| <= abs + rel * |golden|. */
struct Tolerance
{
    double abs = 1e-9;
    double rel = 1e-6;
};

/** One diverging metric (or series element) in a comparison. */
struct MetricDiff
{
    std::string name;      ///< metric name, or "series[idx]"
    double golden = 0.0;
    double actual = 0.0;
    /** Structural problems (missing metric, length mismatch) carry a
     *  message instead of values. */
    std::string note;
};

/** Outcome of diffing an actual Result against a golden one. */
struct CompareReport
{
    bool pass = true;
    std::vector<MetricDiff> diffs;
    /** Metrics/series checked (for the pass/fail report). */
    std::size_t checked = 0;
};

/**
 * Diff `actual` against `golden`. Tolerances come from
 * `goldenTolerances` (the golden file's optional "tolerances" object,
 * keyed by metric/series name), falling back to `fallback`. Metrics
 * present in one Result but not the other fail the comparison; seed,
 * jobs, and git stamps are informational and never compared (runs
 * must be bit-identical across job counts — that is the point).
 *
 * A metric that is an exact count on both sides is compared as 64-bit
 * integers: equal or fail, with no fallback tolerance (rel = 1e-6 on
 * a 1e9-cycle counter would silently allow a drift of 1000 events).
 * An explicit golden tolerance entry or a sampled-execution bound
 * still widens a count comparison, applied to the exact integer
 * difference.
 */
CompareReport compareResults(const Result &golden, const Result &actual,
                             const Json *goldenTolerances = nullptr,
                             Tolerance fallback = {});

} // namespace vsmooth

#endif // VSMOOTH_COMMON_RESULT_HH
