#include "fsio.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace vsmooth {

bool
writeFileAtomic(const std::string &path,
                const std::function<bool(std::ostream &)> &writer,
                std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    // The pid suffix keeps concurrent updaters off each other's temp
    // files; same-directory placement keeps the rename atomic (no
    // cross-filesystem fallback copy).
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return fail("cannot open temp file '" + tmp + "'");
        if (!writer(os)) {
            os.close();
            std::remove(tmp.c_str());
            return fail("writer aborted for '" + path + "'");
        }
        os.flush();
        if (!os.good()) {
            os.close();
            std::remove(tmp.c_str());
            return fail("write error on temp file '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail("cannot rename '" + tmp + "' over '" + path + "'");
    }
    return true;
}

} // namespace vsmooth
