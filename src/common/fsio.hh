/**
 * @file
 * Small filesystem helpers shared by the CLI tools.
 *
 * The one that matters is writeFileAtomic: golden baselines and other
 * checked-in artifacts must never be half-written — a Ctrl-C (or a
 * crashing writer) in the middle of `vsmooth verify --update` used to
 * leave a truncated golden in place, which the next verify run then
 * reported as unparseable drift. Writing to a temp file in the same
 * directory and rename(2)-ing over the target makes the replacement
 * all-or-nothing.
 */

#ifndef VSMOOTH_COMMON_FSIO_HH
#define VSMOOTH_COMMON_FSIO_HH

#include <functional>
#include <ostream>
#include <string>

namespace vsmooth {

/**
 * Atomically replace (or create) `path` with content produced by
 * `writer`. The writer streams into a `<path>.tmp.<pid>` sibling; only
 * after it returns true and every byte is flushed is the temp file
 * renamed over `path`. On any failure — temp unopenable, writer
 * returned false, flush error, rename error — the original file is
 * left untouched and the temp file is removed.
 *
 * Returns true on success; on failure stores a human-readable message
 * in `*error` when given.
 */
bool writeFileAtomic(const std::string &path,
                     const std::function<bool(std::ostream &)> &writer,
                     std::string *error = nullptr);

} // namespace vsmooth

#endif // VSMOOTH_COMMON_FSIO_HH
