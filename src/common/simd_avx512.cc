/**
 * @file
 * AVX-512 (width-8) instantiation of the lane-step kernel, plus
 * 512-bit versions of the steady-current conversion and histogram bin
 * classification kernels. Requires AVX512F and AVX512DQ (DQ supplies
 * the 64-bit extract forms the scatter paths use); detectHostLevel()
 * gates on both feature bits.
 *
 * Two things differ structurally from the narrower levels:
 *
 *  - Comparisons return a k mask register (__mmask8), not a vector,
 *    so VecAvx512::Mask wraps one and blend() is
 *    _mm512_mask_blend_pd — still one compare + one blend per
 *    conditional stage, and per-lane selection bits identical to the
 *    blendv path.
 *
 *  - gatherT/scatterT move 8x8 blocks: an 8x8 register transpose in
 *    three shuffle layers (unpacklo/hi, then two rounds of
 *    _mm512_shuffle_f64x2), 8 sequential loads + 24 shuffles per
 *    block versus 64 scalar element loads.
 *
 * This is the only translation unit compiled with -mavx512f
 * -mavx512dq; everything here must stay intrinsics-only (no inline
 * functions from shared headers get *instantiated* elsewhere that
 * could be comdat-merged into baseline objects with EVEX encodings).
 * FMA is never enabled: the flags do not include -mfma and the build
 * adds -ffp-contract=off as belt-and-braces, so every multiply and
 * add rounds separately exactly like the scalar pipeline.
 */

#include "simd_kernels.hh"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace vsmooth::simd {
namespace {

struct VecAvx512
{
    static constexpr std::size_t width = 8;

    __m512d v;

    /** AVX-512 comparisons land in k registers, not vectors. */
    struct Mask
    {
        __mmask8 k;
    };

    static VecAvx512 set1(double x) { return {_mm512_set1_pd(x)}; }
    static VecAvx512 load(const double *p)
    {
        return {_mm512_loadu_pd(p)};
    }
    static void store(double *p, VecAvx512 a)
    {
        _mm512_storeu_pd(p, a.v);
    }

    /** Sample j of each of the `width` lane streams in p[]. */
    static VecAvx512 gather(const double *const *p, std::size_t j)
    {
        return {_mm512_set_pd(p[7][j], p[6][j], p[5][j], p[4][j],
                              p[3][j], p[2][j], p[1][j], p[0][j])};
    }
    static void scatter(double *const *p, std::size_t j, VecAvx512 a)
    {
        const __m128d q0 = _mm512_extractf64x2_pd(a.v, 0);
        const __m128d q1 = _mm512_extractf64x2_pd(a.v, 1);
        const __m128d q2 = _mm512_extractf64x2_pd(a.v, 2);
        const __m128d q3 = _mm512_extractf64x2_pd(a.v, 3);
        _mm_storel_pd(p[0] + j, q0);
        _mm_storeh_pd(p[1] + j, q0);
        _mm_storel_pd(p[2] + j, q1);
        _mm_storeh_pd(p[3] + j, q1);
        _mm_storel_pd(p[4] + j, q2);
        _mm_storeh_pd(p[5] + j, q2);
        _mm_storel_pd(p[6] + j, q3);
        _mm_storeh_pd(p[7] + j, q3);
    }

    /**
     * 8x8 transpose core, shared by gatherT and scatterT (the
     * transpose is its own inverse). Layer 1 interleaves row pairs
     * within 128-bit columns; layers 2 and 3 gather 128-bit chunks
     * across rows (imm 0x88 picks chunks {0,2} of each source, 0xDD
     * picks {1,3}). out[k] holds element k of every input row.
     */
    static void transpose8(const __m512d r[8], __m512d out[8])
    {
        const __m512d t0 = _mm512_unpacklo_pd(r[0], r[1]);
        const __m512d t1 = _mm512_unpackhi_pd(r[0], r[1]);
        const __m512d t2 = _mm512_unpacklo_pd(r[2], r[3]);
        const __m512d t3 = _mm512_unpackhi_pd(r[2], r[3]);
        const __m512d t4 = _mm512_unpacklo_pd(r[4], r[5]);
        const __m512d t5 = _mm512_unpackhi_pd(r[4], r[5]);
        const __m512d t6 = _mm512_unpacklo_pd(r[6], r[7]);
        const __m512d t7 = _mm512_unpackhi_pd(r[6], r[7]);
        const __m512d s0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
        const __m512d s1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
        const __m512d s2 = _mm512_shuffle_f64x2(t0, t2, 0xDD);
        const __m512d s3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);
        const __m512d s4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
        const __m512d s5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
        const __m512d s6 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
        const __m512d s7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);
        out[0] = _mm512_shuffle_f64x2(s0, s4, 0x88);
        out[1] = _mm512_shuffle_f64x2(s1, s5, 0x88);
        out[2] = _mm512_shuffle_f64x2(s2, s6, 0x88);
        out[3] = _mm512_shuffle_f64x2(s3, s7, 0x88);
        out[4] = _mm512_shuffle_f64x2(s0, s4, 0xDD);
        out[5] = _mm512_shuffle_f64x2(s1, s5, 0xDD);
        out[6] = _mm512_shuffle_f64x2(s2, s6, 0xDD);
        out[7] = _mm512_shuffle_f64x2(s3, s7, 0xDD);
    }

    /** Samples j..j+7 of the eight lane streams as an 8x8 register
     *  transpose: out[k] holds sample j+k across lanes. */
    static void gatherT(const double *const *p, std::size_t j,
                        VecAvx512 *out)
    {
        __m512d rows[8];
        for (int l = 0; l < 8; ++l)
            rows[l] = _mm512_loadu_pd(p[l] + j);
        __m512d cols[8];
        transpose8(rows, cols);
        for (int k = 0; k < 8; ++k)
            out[k].v = cols[k];
    }
    static void scatterT(double *const *p, std::size_t j,
                         const VecAvx512 *in)
    {
        __m512d cols[8];
        for (int k = 0; k < 8; ++k)
            cols[k] = in[k].v;
        __m512d rows[8];
        transpose8(cols, rows);
        for (int l = 0; l < 8; ++l)
            _mm512_storeu_pd(p[l] + j, rows[l]);
    }

    friend VecAvx512 operator+(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_add_pd(a.v, b.v)};
    }
    friend VecAvx512 operator-(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_sub_pd(a.v, b.v)};
    }
    friend VecAvx512 operator*(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_mul_pd(a.v, b.v)};
    }
    friend VecAvx512 operator/(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_div_pd(a.v, b.v)};
    }

    static VecAvx512 min(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_min_pd(a.v, b.v)};
    }
    static VecAvx512 max(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_max_pd(a.v, b.v)};
    }

    static Mask gtMask(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)};
    }
    static Mask ltMask(VecAvx512 a, VecAvx512 b)
    {
        return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ)};
    }
    /** Select b where the mask is set, else a. */
    static VecAvx512 blend(VecAvx512 a, VecAvx512 b, Mask mask)
    {
        return {_mm512_mask_blend_pd(mask.k, a.v, b.v)};
    }

    static VecAvx512 floorNonNeg(VecAvx512 a)
    {
        return {_mm512_roundscale_pd(
            a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
    }
};

void
laneStepAvx512(LaneStepArgs &args)
{
    laneStepKernel<VecAvx512>(args);
}

/**
 * CurrentModel::steadyBlock at 8-wide: the identical IEEE operations
 * in the identical order as the built-in loops, so the output bits
 * match for every element regardless of which path (or tail) produced
 * it.
 */
void
steadyAvx512(double leak, double idleClk, double dynMax,
             const double *activity, double *steady, std::size_t n)
{
    const __m512d vZero = _mm512_setzero_pd();
    const __m512d vCeil = _mm512_set1_pd(2.5);
    const __m512d vOne = _mm512_set1_pd(1.0);
    const __m512d vQuarter = _mm512_set1_pd(0.25);
    const __m512d vThreeQ = _mm512_set1_pd(0.75);
    const __m512d vLeak = _mm512_set1_pd(leak);
    const __m512d vIdle = _mm512_set1_pd(idleClk);
    const __m512d vDyn = _mm512_set1_pd(dynMax);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        __m512d a = _mm512_loadu_pd(activity + j);
        a = _mm512_min_pd(_mm512_max_pd(a, vZero), vCeil);
        const __m512d w = _mm512_min_pd(a, vOne);
        const __m512d clock = _mm512_mul_pd(
            vIdle, _mm512_add_pd(vQuarter, _mm512_mul_pd(vThreeQ, w)));
        const __m512d s = _mm512_add_pd(_mm512_add_pd(vLeak, clock),
                                        _mm512_mul_pd(vDyn, a));
        _mm512_storeu_pd(steady + j, s);
    }
    for (; j < n; ++j) {
        double a = activity[j];
        a = a < 0.0 ? 0.0 : a;
        a = 2.5 < a ? 2.5 : a;
        const double w = 1.0 < a ? 1.0 : a;
        const double clock_current = idleClk * (0.25 + 0.75 * w);
        steady[j] = leak + clock_current + dynMax * a;
    }
}

/**
 * Histogram bin classification at 8-wide. In-range indices use the
 * exact add() arithmetic — truncating conversion of (x - lo) *
 * invWidth, clamped to `last` — via cvttpd; out-of-range lanes (rare
 * for the voltage-deviation histograms) are patched to the sentinels
 * from the comparison k masks.
 */
void
binIndexAvx512(const double *xs, std::size_t n, double lo, double hi,
               double invWidth, std::uint32_t last, std::uint32_t *idx)
{
    const __m512d vLo = _mm512_set1_pd(lo);
    const __m512d vHi = _mm512_set1_pd(hi);
    const __m512d vInv = _mm512_set1_pd(invWidth);
    const __m256i vLast = _mm256_set1_epi32(static_cast<int>(last));
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512d x = _mm512_loadu_pd(xs + j);
        const unsigned under = _mm512_cmp_pd_mask(x, vLo, _CMP_LT_OQ);
        const unsigned over = _mm512_cmp_pd_mask(x, vHi, _CMP_GE_OQ);
        // Out-of-range lanes produce an indeterminate (not undefined)
        // cvttpd result; they are overwritten below.
        const __m256i raw = _mm512_cvttpd_epi32(
            _mm512_mul_pd(_mm512_sub_pd(x, vLo), vInv));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(idx + j),
                            _mm256_min_epu32(raw, vLast));
        if (under | over) {
            for (int l = 0; l < 8; ++l) {
                if (under & (1u << l))
                    idx[j + l] = kBinUnderflow;
                else if (over & (1u << l))
                    idx[j + l] = kBinOverflow;
            }
        }
    }
    for (; j < n; ++j) {
        const double x = xs[j];
        if (x < lo) {
            idx[j] = kBinUnderflow;
        } else if (x >= hi) {
            idx[j] = kBinOverflow;
        } else {
            const auto raw =
                static_cast<std::uint32_t>((x - lo) * invWidth);
            idx[j] = raw < last ? raw : last;
        }
    }
}

} // namespace

const KernelSet kAvx512Kernels = {laneStepAvx512, steadyAvx512,
                                  binIndexAvx512};

} // namespace vsmooth::simd

#else // !x86-64

namespace vsmooth::simd {

// Non-x86 hosts never dispatch above Scalar; keep the symbol defined.
const KernelSet kAvx512Kernels = {nullptr, nullptr, nullptr};

} // namespace vsmooth::simd

#endif
