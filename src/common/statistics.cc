#include "statistics.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace vsmooth {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double
percentileOfSorted(std::span<const double> sorted, double p)
{
    if (sorted.empty())
        panic("percentile of an empty sample");
    if (p < 0.0 || p > 100.0)
        panic("percentile p=%g outside [0,100]", p);
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
percentile(std::span<const double> xs, double p)
{
    if (xs.empty())
        panic("percentile of an empty sample");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentileOfSorted(sorted, p);
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        panic("pearson: size mismatch (%zu vs %zu)", xs.size(), ys.size());
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

LinearFit
linearFit(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        panic("linearFit: size mismatch (%zu vs %zu)", xs.size(), ys.size());
    if (xs.size() < 2)
        panic("linearFit needs at least two points (got %zu)", xs.size());
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    LinearFit fit;
    if (sxx == 0.0) {
        fit.slope = 0.0;
        fit.intercept = my;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

BoxplotSummary
boxplot(std::span<const double> xs)
{
    if (xs.empty())
        panic("boxplot of an empty sample");
    // Sort once and reuse for all five quantiles; boxplot used to
    // copy-and-sort per percentile (5x) via percentile(), which Fig 17
    // pays per benchmark over every co-schedule.
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    BoxplotSummary s;
    s.min = percentileOfSorted(sorted, 0.0);
    s.q1 = percentileOfSorted(sorted, 25.0);
    s.median = percentileOfSorted(sorted, 50.0);
    s.q3 = percentileOfSorted(sorted, 75.0);
    s.max = percentileOfSorted(sorted, 100.0);
    s.mean = mean(xs);
    return s;
}

} // namespace vsmooth
