#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hh"
#include "simd.hh"

namespace vsmooth {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      invWidth_(1.0 / ((hi - lo) / static_cast<double>(bins))),
      counts_(bins, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (!(hi > lo))
        panic("Histogram: hi (%g) must exceed lo (%g)", hi, lo);
    if (bins == 0)
        panic("Histogram: need at least one bin");
}

void
Histogram::add(double x, std::uint64_t count)
{
    if (x < lo_)
        underflow_ += count;
    else if (x >= hi_)
        overflow_ += count;
    else
        counts_[binIndex(x)] += count;
    total_ += count;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Histogram::addBlock(const double *xs, std::size_t n)
{
    // Per-sample arithmetic identical to add(); bounds, reciprocal
    // width, the counts pointer, and the running extremes live in
    // locals so the loop body is branch + multiply + increment.
    const double lo = lo_;
    const double hi = hi_;
    const double inv = invWidth_;
    const std::size_t last = counts_.size() - 1;
    std::uint64_t *const counts = counts_.data();
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    double mn = min_;
    double mx = max_;
    // With an AVX2 bin classifier registered, precompute clamped bin
    // indices (or out-of-range sentinels) a chunk at a time, then
    // apply counts and the running extremes in scalar sample order —
    // the index arithmetic is add()'s exactly, and min/max keep their
    // first-seen/±0 ordering semantics.
    const simd::BinIndexFn classify = simd::kernels().binIndex;
    if (classify && last < simd::kBinOverflow) {
        constexpr std::size_t kChunk = 256;
        std::uint32_t idx[kChunk];
        for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
            const std::size_t m = std::min(kChunk, n - j0);
            classify(xs + j0, m, lo, hi, inv,
                     static_cast<std::uint32_t>(last), idx);
            for (std::size_t j = 0; j < m; ++j) {
                const double x = xs[j0 + j];
                const std::uint32_t b = idx[j];
                if (b == simd::kBinUnderflow)
                    ++under;
                else if (b == simd::kBinOverflow)
                    ++over;
                else
                    ++counts[b];
                mn = x < mn ? x : mn;
                mx = x > mx ? x : mx;
            }
        }
        underflow_ += under;
        overflow_ += over;
        total_ += n;
        min_ = mn;
        max_ = mx;
        return;
    }
    for (std::size_t j = 0; j < n; ++j) {
        const double x = xs[j];
        if (x < lo) {
            ++under;
        } else if (x >= hi) {
            ++over;
        } else {
            const auto raw = static_cast<std::size_t>((x - lo) * inv);
            const std::size_t bin = raw < last ? raw : last;
            ++counts[bin];
        }
        mn = x < mn ? x : mn;
        mx = x > mx ? x : mx;
    }
    underflow_ += under;
    overflow_ += over;
    total_ += n;
    min_ = mn;
    max_ = mx;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
        other.hi_ != hi_) {
        panic("Histogram::merge: incompatible layouts");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::mergeScaled(const Histogram &other, std::uint64_t weight)
{
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
        other.hi_ != hi_) {
        panic("Histogram::mergeScaled: incompatible layouts");
    }
    if (weight == 0)
        return;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i] * weight;
    total_ += other.total_ * weight;
    underflow_ += other.underflow_ * weight;
    overflow_ += other.overflow_ * weight;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::fractionBelow(double x) const
{
    if (total_ == 0)
        return 0.0;
    if (x <= lo_) {
        // All underflow mass lies below lo_ (its exact positions are
        // not binned); it counts as below any x above the minimum.
        return x > min_
            ? static_cast<double>(underflow_) /
                static_cast<double>(total_)
            : 0.0;
    }
    if (x >= hi_) {
        return x > max_
            ? 1.0
            : 1.0 - static_cast<double>(overflow_) /
                static_cast<double>(total_);
    }
    const std::size_t idx = binIndex(x);
    std::uint64_t below = underflow_;
    for (std::size_t i = 0; i < idx; ++i)
        below += counts_[i];
    // Interpolate within the boundary bin for smoother CDF queries;
    // only in-range mass lives in the bin, so out-of-range samples
    // can no longer leak into the interpolation.
    const double frac_in_bin =
        (x - (lo_ + static_cast<double>(idx) * width_)) / width_;
    const double partial = frac_in_bin * static_cast<double>(counts_[idx]);
    return (static_cast<double>(below) + partial) /
        static_cast<double>(total_);
}

double
Histogram::fractionAtOrAbove(double x) const
{
    if (total_ == 0)
        return 0.0;
    if (x <= lo_) {
        // Underflow mass sits below lo_ at unknown positions; it is at
        // or above x only when x does not exceed the tracked minimum
        // (the mirror of fractionBelow's convention).
        return x > min_
            ? static_cast<double>(total_ - underflow_) /
                static_cast<double>(total_)
            : 1.0;
    }
    if (x >= hi_) {
        // The whole tail is the overflow bucket: one integer count,
        // one division — exact to the half-ulp, however deep the tail.
        return x > max_
            ? 0.0
            : static_cast<double>(overflow_) /
                static_cast<double>(total_);
    }
    const std::size_t idx = binIndex(x);
    std::uint64_t above = overflow_;
    for (std::size_t i = idx + 1; i < counts_.size(); ++i)
        above += counts_[i];
    // The boundary bin contributes the complement of fractionBelow's
    // within-bin interpolation, applied to that bin's count alone —
    // small numbers throughout, so no large-minus-large cancellation.
    const double frac_in_bin =
        (x - (lo_ + static_cast<double>(idx) * width_)) / width_;
    const double partial =
        (1.0 - frac_in_bin) * static_cast<double>(counts_[idx]);
    return (static_cast<double>(above) + partial) /
        static_cast<double>(total_);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        panic("Histogram::quantile on empty histogram");
    if (q < 0.0 || q > 1.0)
        panic("Histogram::quantile q=%g outside [0,1]", q);
    if (q == 0.0)
        return min_;
    if (q == 1.0)
        return max_;
    const auto target = static_cast<double>(total_) * q;
    double cum = static_cast<double>(underflow_);
    if (cum >= target)
        return min_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += static_cast<double>(counts_[i]);
        if (cum >= target)
            return std::clamp(binCenter(i), min_, max_);
    }
    // Remaining mass is overflow, above the binned range.
    return max_;
}

std::vector<std::pair<double, double>>
Histogram::cdf() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(counts_.size());
    std::uint64_t cum = underflow_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        const double edge = lo_ + static_cast<double>(i + 1) * width_;
        const double frac = total_ == 0
            ? 0.0
            : static_cast<double>(cum) / static_cast<double>(total_);
        out.emplace_back(edge, frac);
    }
    return out;
}

} // namespace vsmooth
