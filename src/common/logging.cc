#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vsmooth {

namespace {

std::atomic<bool> informEnabled{true};

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace vsmooth
