/**
 * @file
 * Strong SI-unit types used at vsmooth API boundaries.
 *
 * Inner simulation loops operate on raw doubles for speed; public
 * interfaces accept and return these wrappers so that a caller cannot
 * accidentally pass amps where volts are expected. Each quantity is a
 * thin value type: same-unit addition/subtraction, scalar scaling, and
 * comparison are allowed; cross-unit arithmetic is provided only where
 * it is physically meaningful (V = I * R, f = 1 / t, ...).
 */

#ifndef VSMOOTH_COMMON_UNITS_HH
#define VSMOOTH_COMMON_UNITS_HH

#include <compare>
#include <cstdint>

namespace vsmooth {

/**
 * Generic strongly typed scalar quantity.
 *
 * @tparam Tag phantom type distinguishing units.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Underlying numeric value in the unit's SI base. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator+(Quantity o) const
    { return Quantity(value_ + o.value_); }
    constexpr Quantity operator-(Quantity o) const
    { return Quantity(value_ - o.value_); }
    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator*(double s) const
    { return Quantity(value_ * s); }
    constexpr Quantity operator/(double s) const
    { return Quantity(value_ / s); }
    /** Ratio of two same-unit quantities is dimensionless. */
    constexpr double operator/(Quantity o) const
    { return value_ / o.value_; }

    constexpr Quantity &operator+=(Quantity o)
    { value_ += o.value_; return *this; }
    constexpr Quantity &operator-=(Quantity o)
    { value_ -= o.value_; return *this; }
    constexpr Quantity &operator*=(double s)
    { value_ *= s; return *this; }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double s, Quantity<Tag> q)
{
    return q * s;
}

struct VoltsTag {};
struct AmpsTag {};
struct OhmsTag {};
struct FaradsTag {};
struct HenriesTag {};
struct HertzTag {};
struct SecondsTag {};
struct WattsTag {};

using Volts = Quantity<VoltsTag>;
using Amps = Quantity<AmpsTag>;
using Ohms = Quantity<OhmsTag>;
using Farads = Quantity<FaradsTag>;
using Henries = Quantity<HenriesTag>;
using Hertz = Quantity<HertzTag>;
using Seconds = Quantity<SecondsTag>;
using Watts = Quantity<WattsTag>;

/** Ohm's law: V = I * R. */
constexpr Volts operator*(Amps i, Ohms r) { return Volts(i.value() * r.value()); }
constexpr Volts operator*(Ohms r, Amps i) { return i * r; }
/** I = V / R. */
constexpr Amps operator/(Volts v, Ohms r) { return Amps(v.value() / r.value()); }
/** R = V / I. */
constexpr Ohms operator/(Volts v, Amps i) { return Ohms(v.value() / i.value()); }
/** P = V * I. */
constexpr Watts operator*(Volts v, Amps i) { return Watts(v.value() * i.value()); }
constexpr Watts operator*(Amps i, Volts v) { return v * i; }
/** f = 1 / t and t = 1 / f. */
constexpr Hertz toFrequency(Seconds t) { return Hertz(1.0 / t.value()); }
constexpr Seconds toPeriod(Hertz f) { return Seconds(1.0 / f.value()); }

namespace units {

/** User-facing literal helpers: volts(1.2), milli::ohms(2.1), ... */
constexpr Volts volts(double v) { return Volts(v); }
constexpr Volts millivolts(double v) { return Volts(v * 1e-3); }
constexpr Amps amps(double v) { return Amps(v); }
constexpr Ohms ohms(double v) { return Ohms(v); }
constexpr Ohms milliohms(double v) { return Ohms(v * 1e-3); }
constexpr Farads farads(double v) { return Farads(v); }
constexpr Farads microfarads(double v) { return Farads(v * 1e-6); }
constexpr Farads nanofarads(double v) { return Farads(v * 1e-9); }
constexpr Farads picofarads(double v) { return Farads(v * 1e-12); }
constexpr Henries henries(double v) { return Henries(v); }
constexpr Henries nanohenries(double v) { return Henries(v * 1e-9); }
constexpr Henries picohenries(double v) { return Henries(v * 1e-12); }
constexpr Hertz hertz(double v) { return Hertz(v); }
constexpr Hertz kilohertz(double v) { return Hertz(v * 1e3); }
constexpr Hertz megahertz(double v) { return Hertz(v * 1e6); }
constexpr Hertz gigahertz(double v) { return Hertz(v * 1e9); }
constexpr Seconds seconds(double v) { return Seconds(v); }
constexpr Seconds nanoseconds(double v) { return Seconds(v * 1e-9); }
constexpr Seconds picoseconds(double v) { return Seconds(v * 1e-12); }
constexpr Watts watts(double v) { return Watts(v); }

} // namespace units

/** Simulation cycle count. */
using Cycles = std::uint64_t;

} // namespace vsmooth

#endif // VSMOOTH_COMMON_UNITS_HH
