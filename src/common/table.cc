#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace vsmooth {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::num(std::uint32_t v)
{
    return std::to_string(v);
}

std::string
TextTable::num(int v)
{
    return std::to_string(v);
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace vsmooth
