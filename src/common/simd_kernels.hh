/**
 * @file
 * The lane-step kernel, templated over a vector type V so the scalar,
 * SSE2, AVX2, and AVX-512 translation units instantiate identical
 * source. V supplies elementwise IEEE double operations only (no FMA,
 * no reductions), so each lane of the vector performs exactly the
 * scalar pipeline's operations in the same order — the whole
 * bit-identity argument rests on that (DESIGN.md "Scenario-lane
 * execution"). Comparisons produce V::Mask (the vector type itself up
 * to AVX2, a mask register wrapper on AVX-512) consumed only by
 * V::blend.
 *
 * The per-cycle arithmetic itself lives in dsp/lane_kernels.hh — the
 * cross-lane forms of the same primitives the scalar hot paths
 * delegate to (dsp/primitives.hh) — so this file is composition and
 * data movement only: slot packing, the chip-total accumulation, the
 * ripple cache, and the gatherT/scatterT block transposes.
 *
 * Private to the simd_*.cc translation units; include simd.hh for the
 * public dispatch interface.
 */

#ifndef VSMOOTH_COMMON_SIMD_KERNELS_HH
#define VSMOOTH_COMMON_SIMD_KERNELS_HH

#include <cstddef>

#include "dsp/lane_kernels.hh"
#include "simd.hh"

namespace vsmooth::simd {

// Per-level kernel registries, defined one per translation unit (the
// extern declarations give the const objects external linkage).
extern const KernelSet kScalarKernels;
extern const KernelSet kSse2Kernels;
extern const KernelSet kAvx2Kernels;
extern const KernelSet kAvx512Kernels;

/**
 * n cycles of the fused per-cycle pipeline across all lanes:
 *
 *   target = steady[core][cycle]                (precomputed input)
 *   if (tau > 0)  target = prev + alpha * (target - prev)
 *   if (slew > 0) target = prev + clamp(target - prev, -slew, slew)
 *   total = sum over cores (seeded 0.0, core order)
 *   vddEff = vdd + 0.5 * (ripple(t) + ripple(t + dt))
 *   iL' = (m00*iL + m01*vC) + (n00*vddEff + n01*total)
 *   vC' = (m10*iL + m11*vC) + (n10*vddEff + n11*total)
 *   vDie = vC' + rc * (iL' - total)
 *   deviation = vDie * invVdd - 1.0
 *
 * The smoothing/slew chain, triangle ripple, and PDN recurrence are
 * the dsp lane kernels (dsp::LaneSmoothSlew / dsp::LaneRipple /
 * dsp::LaneBiquad); their headers state the blend-vs-branch and
 * short-circuit equivalences per primitive. ripple(t) is a pure
 * function of the t bits and t advances identically on both paths,
 * so this cycle's ripple(t) is last cycle's cached ripple(t + dt) —
 * one division per cycle instead of two.
 */
template <class V>
void
laneStepKernel(LaneStepArgs &a)
{
    constexpr std::size_t kW = V::width;
    constexpr std::size_t kMaxSlots = kMaxLanes;
    const std::size_t slots = a.stride / kW;
    const std::size_t cores = a.cores;

    const V half = V::set1(0.5);
    const V one = V::set1(1.0);
    const V three = V::set1(3.0);
    const V four = V::set1(4.0);
    const V zero = V::set1(0.0);

    dsp::LaneSmoothSlew<V> smooth[kMaxSlots];
    dsp::LaneRipple<V> ripple[kMaxSlots];
    dsp::LaneBiquad<V> biquad[kMaxSlots];
    V prevV[kMaxLaneCores][kMaxSlots];
    V vddV[kMaxSlots], dtV[kMaxSlots];
    V iLV[kMaxSlots], vCV[kMaxSlots], vDieV[kMaxSlots], tV[kMaxSlots];
    V rPrev[kMaxSlots];

    for (std::size_t s = 0; s < slots; ++s) {
        const std::size_t l = s * kW;
        smooth[s] = dsp::LaneSmoothSlew<V>::make(
            V::load(a.tau + l), V::load(a.alpha + l),
            V::load(a.slew + l), zero);
        for (std::size_t c = 0; c < cores; ++c)
            prevV[c][s] = V::load(a.prev[c] + l);
        biquad[s] = {V::load(a.m00 + l),    V::load(a.m01 + l),
                     V::load(a.m10 + l),    V::load(a.m11 + l),
                     V::load(a.n00 + l),    V::load(a.n01 + l),
                     V::load(a.n10 + l),    V::load(a.n11 + l),
                     V::load(a.rcDamp + l), V::load(a.invVdd + l)};
        vddV[s] = V::load(a.vdd + l);
        dtV[s] = V::load(a.dtStep + l);
        ripple[s] = {V::load(a.rippleAmp + l),
                     V::load(a.ripplePeriod + l)};
        iLV[s] = V::load(a.iL + l);
        vCV[s] = V::load(a.vC + l);
        vDieV[s] = V::load(a.vDie + l);
        tV[s] = V::load(a.tTime + l);
        rPrev[s] = ripple[s].at(tV[s], one, three, four, half);
    }

    // One cycle of one slot: the steady targets for all cores arrive
    // cross-lane-assembled in in[c * inStride]; returns (total,
    // deviation) for the cycle. This is the entire per-cycle
    // composition — both the batched loop and the tail call it, so
    // the operations and their order are identical regardless of
    // which data-movement path fed them.
    struct SlotOut
    {
        V total, dev;
    };
    auto cycleSlot = [&](std::size_t s, const V *in,
                         std::size_t inStride) {
        // Chip total accumulates from a 0.0 seed in core order,
        // matching the scalar loop's summation exactly.
        V total = zero;
        for (std::size_t c = 0; c < cores; ++c)
            total = total + smooth[s].sample(in[c * inStride],
                                             prevV[c][s]);

        const V tNext = tV[s] + dtV[s];
        const V rNext = ripple[s].at(tNext, one, three, four, half);
        const V vddEff = vddV[s] + half * (rPrev[s] + rNext);
        const V dev = biquad[s].sample(iLV[s], vCV[s], vDieV[s], vddEff,
                                       total, one);
        tV[s] = tNext;
        rPrev[s] = rNext;
        return SlotOut{total, dev};
    };

    // Batched body: kW cycles at a time, cross-lane assembly done as
    // register transposes (gatherT/scatterT) so each block of kW
    // samples costs one sequential load/store per lane stream instead
    // of kW element gathers. Pure data movement — per-lane bits are
    // the scalar pipeline's exactly.
    std::size_t j = 0;
    V stIn[kMaxLaneCores][kMaxLanes];
    V outBuf[2][kMaxLanes];
    for (; j + kW <= a.n; j += kW) {
        for (std::size_t s = 0; s < slots; ++s) {
            const std::size_t lane0 = s * kW;
            for (std::size_t c = 0; c < cores; ++c)
                V::gatherT(a.steady[c] + lane0, j, stIn[c] + lane0);
        }
        for (std::size_t k = 0; k < kW; ++k) {
            for (std::size_t s = 0; s < slots; ++s) {
                const SlotOut out =
                    cycleSlot(s, &stIn[0][s * kW + k], kMaxLanes);
                outBuf[0][s * kW + k] = out.total;
                outBuf[1][s * kW + k] = out.dev;
            }
        }
        for (std::size_t s = 0; s < slots; ++s) {
            const std::size_t lane0 = s * kW;
            V::scatterT(a.total + lane0, j, outBuf[0] + lane0);
            V::scatterT(a.deviation + lane0, j, outBuf[1] + lane0);
        }
    }
    // Tail: per-cycle element gathers for n not divisible by kW.
    for (; j < a.n; ++j) {
        for (std::size_t s = 0; s < slots; ++s) {
            const std::size_t lane0 = s * kW;
            V tail[kMaxLaneCores];
            for (std::size_t c = 0; c < cores; ++c)
                tail[c] = V::gather(a.steady[c] + lane0, j);
            const SlotOut out = cycleSlot(s, tail, 1);
            V::scatter(a.total + lane0, j, out.total);
            V::scatter(a.deviation + lane0, j, out.dev);
        }
    }

    for (std::size_t s = 0; s < slots; ++s) {
        const std::size_t l = s * kW;
        for (std::size_t c = 0; c < cores; ++c)
            V::store(a.prev[c] + l, prevV[c][s]);
        V::store(a.iL + l, iLV[s]);
        V::store(a.vC + l, vCV[s]);
        V::store(a.vDie + l, vDieV[s]);
        V::store(a.tTime + l, tV[s]);
    }
}

} // namespace vsmooth::simd

#endif // VSMOOTH_COMMON_SIMD_KERNELS_HH
