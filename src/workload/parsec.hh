/**
 * @file
 * Synthetic PARSEC multi-threaded workloads.
 *
 * The paper's 881-run characterization includes 11 PARSEC programs
 * run multi-threaded (Sec III-A). Each program here yields one phase
 * schedule per thread; threads share the workload's character but
 * run phase-shifted, which is what creates the cross-core current
 * interference multi-threaded programs exhibit.
 */

#ifndef VSMOOTH_WORKLOAD_PARSEC_HH
#define VSMOOTH_WORKLOAD_PARSEC_HH

#include <string>
#include <vector>

#include "cpu/fast_core.hh"

namespace vsmooth::workload {

/** Descriptor of one PARSEC program. */
struct ParsecBenchmark
{
    std::string name;
    double stallRatio;
    double memoryBoundness;
    double ipcRunning;
    /** Fraction of a phase by which worker threads are offset. */
    double threadSkew;
};

/** The 11 PARSEC programs the paper ran. */
const std::vector<ParsecBenchmark> &parsecSuite();

/** Look up by name; fatal if unknown. */
const ParsecBenchmark &parsecByName(std::string_view name);

/**
 * Build the schedule for one thread of a PARSEC program.
 *
 * @param bench the program
 * @param threadIndex which thread (0-based)
 * @param baseLength run length in cycles
 */
cpu::PhaseSchedule parsecThreadSchedule(const ParsecBenchmark &bench,
                                        std::size_t threadIndex,
                                        Cycles baseLength);

} // namespace vsmooth::workload

#endif // VSMOOTH_WORKLOAD_PARSEC_HH
