#include "parsec.hh"

#include "common/logging.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::workload {

const std::vector<ParsecBenchmark> &
parsecSuite()
{
    static const std::vector<ParsecBenchmark> suite = {
        {"blackscholes", 0.30, 0.25, 1.9, 0.10},
        {"bodytrack", 0.45, 0.40, 1.5, 0.25},
        {"canneal", 0.75, 0.92, 0.6, 0.40},
        {"dedup", 0.55, 0.60, 1.1, 0.30},
        {"facesim", 0.50, 0.55, 1.3, 0.20},
        {"ferret", 0.52, 0.50, 1.2, 0.35},
        {"fluidanimate", 0.48, 0.55, 1.4, 0.15},
        {"freqmine", 0.42, 0.40, 1.5, 0.25},
        {"streamcluster", 0.72, 0.90, 0.7, 0.45},
        {"swaptions", 0.26, 0.12, 2.1, 0.05},
        {"x264", 0.38, 0.35, 1.7, 0.30},
    };
    return suite;
}

const ParsecBenchmark &
parsecByName(std::string_view name)
{
    for (const auto &b : parsecSuite()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown PARSEC benchmark '%.*s'",
          static_cast<int>(name.size()), name.data());
}

cpu::PhaseSchedule
parsecThreadSchedule(const ParsecBenchmark &bench, std::size_t threadIndex,
                     Cycles baseLength)
{
    // Parallel sections alternate with (brief) serial/sync sections;
    // worker threads see the same pattern skewed in time.
    constexpr int kSections = 8;
    const Cycles per = std::max<Cycles>(1, baseLength / (kSections * 2));

    cpu::PhaseSchedule schedule;
    // Thread skew: a leading partial section.
    if (threadIndex > 0 && bench.threadSkew > 0.0) {
        const auto skew = static_cast<Cycles>(
            bench.threadSkew * static_cast<double>(per) *
            static_cast<double>(threadIndex));
        if (skew > 0) {
            schedule.phases.push_back(makeSpecPhase(
                bench.stallRatio * 0.3, bench.memoryBoundness,
                bench.ipcRunning * 0.5, skew));
        }
    }
    for (int s = 0; s < kSections; ++s) {
        // Parallel compute section.
        schedule.phases.push_back(makeSpecPhase(
            bench.stallRatio, bench.memoryBoundness, bench.ipcRunning,
            per));
        // Synchronization/serial section: mostly waiting.
        schedule.phases.push_back(makeSpecPhase(
            std::min(0.9, bench.stallRatio * 1.5), bench.memoryBoundness,
            bench.ipcRunning * 0.4, per));
    }
    return schedule;
}

} // namespace vsmooth::workload
