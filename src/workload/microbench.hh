/**
 * @file
 * Hand-crafted microbenchmarks (paper Sec III-C).
 *
 * Each stream stimulates exactly one microarchitectural event class
 * when executed by the DetailedCore, by construction of its address /
 * branch pattern — the software equivalent of the paper's hand-written
 * loops:
 *
 *  - L1Miss: strided loads over a footprint larger than L1 but well
 *    inside L2 (every load: L1 capacity miss, L2 hit).
 *  - L2Miss: strided loads over a footprint far larger than L2.
 *  - TlbMiss: page-strided loads touching more pages than the TLB has
 *    entries, but few enough distinct lines to stay L1-resident.
 *  - BranchMispredict: data-dependent random branches that defeat
 *    gshare.
 *  - Exception: periodic architectural exceptions.
 *  - PowerVirus: CPUBurn — full-width ALU issue, fully predictable
 *    control, no misses (used for stability/stress testing).
 */

#ifndef VSMOOTH_WORKLOAD_MICROBENCH_HH
#define VSMOOTH_WORKLOAD_MICROBENCH_HH

#include <memory>
#include <string_view>

#include "common/rng.hh"
#include "cpu/fast_core.hh"
#include "cpu/instruction.hh"

namespace vsmooth::workload {

/** The microbenchmark kinds of Fig 12/13, plus the power virus. */
enum class MicrobenchKind
{
    PowerVirus,
    L1Miss,
    L2Miss,
    TlbMiss,
    BranchMispredict,
    Exception,
};

/** Display name ("L1", "BR", ...) matching the paper's figures. */
std::string_view microbenchName(MicrobenchKind kind);

/** The five event microbenchmarks in Fig 12/13 order. */
constexpr std::array<MicrobenchKind, 5> kEventMicrobenchmarks = {
    MicrobenchKind::L1Miss, MicrobenchKind::L2Miss,
    MicrobenchKind::TlbMiss, MicrobenchKind::BranchMispredict,
    MicrobenchKind::Exception,
};

/**
 * Build the instruction stream for a microbenchmark (infinite loop,
 * as in the paper: "each microbenchmark is run in a loop").
 *
 * @param kind which event to stimulate
 * @param seed randomness (used by the branch benchmark)
 */
std::unique_ptr<cpu::InstructionSource>
makeMicrobenchmark(MicrobenchKind kind, std::uint64_t seed = 1);

/**
 * FastCore equivalent of a microbenchmark: a single looping phase
 * with the event rate the detailed stream produces.
 */
cpu::PhaseSchedule microbenchmarkSchedule(MicrobenchKind kind,
                                          Cycles duration);

/** OS idle loop: low activity, no events. */
cpu::PhaseSchedule idleSchedule(Cycles duration);

} // namespace vsmooth::workload

#endif // VSMOOTH_WORKLOAD_MICROBENCH_HH
