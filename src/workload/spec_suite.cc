#include "spec_suite.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/stall_engine.hh"

namespace vsmooth::workload {

const std::vector<SpecBenchmark> &
specCpu2006()
{
    // name, stallRatio, memoryBoundness, ipcRunning — plus phase
    // structure for the benchmarks Fig 14/16 single out.
    static const std::vector<SpecBenchmark> suite = [] {
        std::vector<SpecBenchmark> s = {
            {"astar", 0.60, 0.55, 1.1, PhasePattern::Steps,
             {0.90, 1.10, 1.35, 1.10, 0.95}, 0, 0, 0, 1.0},
            {"bwaves", 0.70, 0.85, 1.0, PhasePattern::Flat, {}, 0, 0, 0,
             1.2},
            {"bzip2", 0.45, 0.45, 1.4, PhasePattern::Steps,
             {0.80, 1.20, 0.85, 1.15}, 0, 0, 0, 1.0},
            {"cactusadm", 0.68, 0.80, 0.9, PhasePattern::Flat, {}, 0, 0,
             0, 1.3},
            {"calculix", 0.30, 0.30, 1.9, PhasePattern::Flat, {}, 0, 0, 0,
             1.1},
            {"dealii", 0.50, 0.50, 1.5, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            // 416.gamess: four clean phases, droops swinging 60..100
            // per 1K cycles (Fig 14b).
            {"gamess", 0.55, 0.25, 1.9, PhasePattern::Steps,
             {1.00, 0.62, 1.00, 0.68}, 0, 0, 0, 0.6},
            {"gcc", 0.55, 0.50, 1.2, PhasePattern::Steps,
             {0.90, 1.15, 0.85, 1.10}, 0, 0, 0, 0.9},
            {"gemsfdtd", 0.72, 0.85, 0.9, PhasePattern::Flat, {}, 0, 0, 0,
             1.2},
            {"gobmk", 0.40, 0.20, 1.3, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"gromacs", 0.35, 0.30, 1.8, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"h264ref", 0.30, 0.25, 2.0, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"hmmer", 0.25, 0.15, 2.2, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"lbm", 0.78, 0.95, 0.8, PhasePattern::Flat, {}, 0, 0, 0,
             1.1},
            {"leslie3d", 0.65, 0.80, 1.0, PhasePattern::Flat, {}, 0, 0, 0,
             1.1},
            // Streaming with hardware-prefetch-friendly behaviour:
            // extremely steady (the Fig 17 outlier with no spread).
            {"libquantum", 0.80, 0.98, 0.9, PhasePattern::Flat, {}, 0, 0,
             0, 1.0},
            {"mcf", 0.82, 0.95, 0.45, PhasePattern::Steps, {1.05, 0.95},
             0, 0, 0, 1.2},
            {"milc", 0.70, 0.90, 0.8, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"namd", 0.28, 0.20, 2.0, PhasePattern::Flat, {}, 0, 0, 0,
             1.2},
            {"omnetpp", 0.65, 0.75, 0.8, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"perlbench", 0.45, 0.35, 1.6, PhasePattern::Steps,
             {0.95, 1.10, 0.90}, 0, 0, 0, 1.0},
            {"povray", 0.28, 0.10, 1.9, PhasePattern::Flat, {}, 0, 0, 0,
             0.9},
            {"sjeng", 0.42, 0.15, 1.4, PhasePattern::Flat, {}, 0, 0, 0,
             1.1},
            {"soplex", 0.68, 0.80, 0.9, PhasePattern::Steps, {0.9, 1.1},
             0, 0, 0, 1.0},
            // 482.sphinx: no phases, stable near the top of the droop
            // range (Fig 14a).
            {"sphinx", 0.75, 0.70, 1.0, PhasePattern::Flat, {}, 0, 0, 0,
             1.4},
            // 465.tonto: strong oscillation between 60 and 100 droops
            // per 1K cycles every several intervals (Fig 14c).
            {"tonto", 0.60, 0.40, 1.5, PhasePattern::Oscillating, {},
             0.72, 1.22, 14, 1.6},
            {"wrf", 0.55, 0.60, 1.2, PhasePattern::Flat, {}, 0, 0, 0,
             1.1},
            {"xalan", 0.60, 0.65, 1.1, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
            {"zeusmp", 0.58, 0.60, 1.2, PhasePattern::Flat, {}, 0, 0, 0,
             1.0},
        };
        return s;
    }();
    return suite;
}

const SpecBenchmark &
specByName(std::string_view name)
{
    for (const auto &b : specCpu2006()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown SPEC benchmark '%.*s'",
          static_cast<int>(name.size()), name.data());
}

cpu::ActivityPhase
makeSpecPhase(double stallRatio, double memoryBoundness, double ipcRunning,
              Cycles duration)
{
    if (stallRatio < 0.0 || stallRatio >= 0.95)
        fatal("stall ratio %g outside [0, 0.95)", stallRatio);
    const double mu = std::clamp(memoryBoundness, 0.0, 1.0);

    // Event mix as a function of memory-boundness.
    std::array<double, cpu::kNumEventClasses> weights = {
        0.35 - 0.10 * mu, // L1
        0.15 + 0.45 * mu, // L2
        0.08 + 0.07 * mu, // TLB
        0.40 - 0.40 * mu, // BR
        0.02,             // EXCP
    };
    double sum = 0.0;
    for (double w : weights)
        sum += w;

    cpu::ActivityPhase phase;
    phase.duration = duration;
    phase.baseActivity = 0.62 + 0.25 * std::min(ipcRunning / 2.5, 1.0);
    phase.activityJitter = 0.03;
    phase.ipcWhenRunning = ipcRunning;

    // Event-class selection probabilities: stall *time* splits by the
    // mix weights, so the class probability is weight / blockedCycles
    // (normalized).
    // Memory-level parallelism is already folded into the short
    // default L2 timing; the per-phase scale stays at 1 (kept as an
    // ablation knob — see bench/ablation_mlp).
    phase.l2StallScale = 1.0;

    std::array<double, cpu::kNumEventClasses> probs{};
    std::array<double, cpu::kNumEventClasses> blocked{};
    std::array<double, cpu::kNumEventClasses> surge{};
    double qsum = 0.0;
    for (std::size_t c = 0; c < cpu::kNumEventClasses; ++c) {
        const auto cause = cpu::eventClassCause(c);
        const auto &t = cpu::defaultTiming(cause);
        double stall = static_cast<double>(t.stallCycles);
        double srg = static_cast<double>(t.surgeCycles);
        if (cause == cpu::StallCause::L2Miss) {
            stall = std::max(1.0, stall * phase.l2StallScale);
            srg = std::max(4.0, srg * phase.l2StallScale);
        }
        blocked[c] = static_cast<double>(t.rampDownCycles) + stall;
        surge[c] = srg;
        probs[c] = (weights[c] / sum) / blocked[c];
        qsum += probs[c];
    }
    double mean_blocked = 0.0;
    double mean_surge = 0.0;
    for (std::size_t c = 0; c < cpu::kNumEventClasses; ++c) {
        probs[c] /= qsum;
        mean_blocked += probs[c] * blocked[c];
        mean_surge += probs[c] * surge[c];
    }

    // The FastCore event process only advances while the core is
    // Running, so the steady-state cycle budget per event is
    //   gap + blocked + surge,   gap = 1 / rate.
    // Solve gap so that blocked / (gap + blocked + surge) = stallRatio.
    const double gap = std::max(
        1.5, mean_blocked * (1.0 - stallRatio) / stallRatio - mean_surge);
    const double total_rate_per1k = 1000.0 / gap;
    for (std::size_t c = 0; c < cpu::kNumEventClasses; ++c)
        phase.eventRatesPer1k[c] = total_rate_per1k * probs[c];
    return phase;
}

cpu::PhaseSchedule
scheduleFor(const SpecBenchmark &bench, Cycles baseLength, bool loop)
{
    // Sub-unit baseLength * relativeLength products truncate to 0;
    // clamp so every pattern yields valid (nonzero-length) phases —
    // FastCore rejects zero-length phases, and the sampled-execution
    // phase detector relies on schedules from here being well-formed.
    const auto total = std::max<Cycles>(
        1, static_cast<Cycles>(bench.relativeLength *
                               static_cast<double>(baseLength)));
    cpu::PhaseSchedule schedule;
    schedule.loop = loop;

    auto addPhase = [&](double multiplier, Cycles duration) {
        const double s = std::clamp(bench.stallRatio * multiplier, 0.0,
                                    0.92);
        schedule.phases.push_back(makeSpecPhase(
            s, bench.memoryBoundness, bench.ipcRunning, duration));
    };

    switch (bench.pattern) {
      case PhasePattern::Flat:
        addPhase(1.0, total);
        break;
      case PhasePattern::Steps: {
        if (bench.stepMultipliers.empty())
            fatal("benchmark %s: Steps pattern without multipliers",
                  bench.name.c_str());
        const Cycles per =
            std::max<Cycles>(1, total / bench.stepMultipliers.size());
        for (double m : bench.stepMultipliers)
            addPhase(m, per);
        break;
      }
      case PhasePattern::Oscillating: {
        const int segs = std::max(2, bench.oscSegments);
        const Cycles per = std::max<Cycles>(1, total / segs);
        for (int i = 0; i < segs; ++i)
            addPhase(i % 2 == 0 ? bench.oscHi : bench.oscLo, per);
        break;
      }
    }
    return schedule;
}

} // namespace vsmooth::workload
