/**
 * @file
 * Synthetic SPEC CPU2006 workload suite.
 *
 * The paper characterizes all 29 CPU2006 benchmarks (Fig 15's x-axis)
 * by their stall and droop behaviour. We model each benchmark as a
 * phase schedule whose knobs are:
 *
 *  - stallRatio: fraction of cycles the pipeline waits (the VTune
 *    metric the paper's scheduler reads),
 *  - memoryBoundness: shifts the stall-event mix from branch/L1
 *    dominated (0) to L2/TLB dominated (1),
 *  - ipcRunning: commit rate while the pipeline is not blocked,
 *  - a phase pattern: Flat (482.sphinx), Steps (416.gamess's four
 *    phases), or Oscillating (465.tonto) — Fig 14's three shapes.
 *
 * Per-benchmark values are design inputs calibrated against Fig 15's
 * droop/stall spread, not measurements of real SPEC binaries; the
 * scheduler study only depends on the *diversity* and the
 * stall-to-droop coupling, which the simulation produces emergently.
 */

#ifndef VSMOOTH_WORKLOAD_SPEC_SUITE_HH
#define VSMOOTH_WORKLOAD_SPEC_SUITE_HH

#include <string>
#include <string_view>
#include <vector>

#include "cpu/fast_core.hh"

namespace vsmooth::workload {

/** Phase-structure shapes observed in Fig 14. */
enum class PhasePattern { Flat, Steps, Oscillating };

/** Descriptor of one synthetic benchmark. */
struct SpecBenchmark
{
    std::string name;
    /** Nominal pipeline stall ratio in [0, 1). */
    double stallRatio;
    /** 0 = branch/L1-bound event mix, 1 = L2/TLB-bound. */
    double memoryBoundness;
    /** IPC while issuing. */
    double ipcRunning;
    PhasePattern pattern = PhasePattern::Flat;
    /** Steps: per-phase multipliers applied to stallRatio. */
    std::vector<double> stepMultipliers;
    /** Oscillating: alternating lo/hi multipliers over this many
     *  segments. */
    double oscLo = 0.8;
    double oscHi = 1.2;
    int oscSegments = 12;
    /** Run length relative to the suite's base length. */
    double relativeLength = 1.0;
};

/** All 29 CPU2006 benchmarks, in Fig 15's alphabetical order. */
const std::vector<SpecBenchmark> &specCpu2006();

/** Look up a benchmark by name; fatal if unknown. */
const SpecBenchmark &specByName(std::string_view name);

/**
 * Build one execution phase from the suite knobs.
 *
 * Event rates are derived so the phase's expected stall ratio equals
 * `stallRatio` with the event mix implied by `memoryBoundness` —
 * which is what makes droop rate track stall ratio across the suite
 * (Fig 15's 0.97 correlation).
 */
cpu::ActivityPhase makeSpecPhase(double stallRatio, double memoryBoundness,
                                 double ipcRunning, Cycles duration);

/**
 * Materialize a benchmark's phase schedule.
 *
 * @param bench the benchmark descriptor
 * @param baseLength run length in cycles for relativeLength == 1
 * @param loop repeat the schedule forever (sliding-window studies)
 */
cpu::PhaseSchedule scheduleFor(const SpecBenchmark &bench, Cycles baseLength,
                               bool loop = false);

} // namespace vsmooth::workload

#endif // VSMOOTH_WORKLOAD_SPEC_SUITE_HH
