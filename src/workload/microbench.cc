#include "microbench.hh"

#include "common/logging.hh"

namespace vsmooth::workload {

using cpu::Addr;
using cpu::InstructionSource;
using cpu::SyntheticInstruction;

std::string_view
microbenchName(MicrobenchKind kind)
{
    switch (kind) {
      case MicrobenchKind::PowerVirus: return "VIRUS";
      case MicrobenchKind::L1Miss: return "L1";
      case MicrobenchKind::L2Miss: return "L2";
      case MicrobenchKind::TlbMiss: return "TLB";
      case MicrobenchKind::BranchMispredict: return "BR";
      case MicrobenchKind::Exception: return "EXCP";
      default: return "?";
    }
}

namespace {

/** Base for looping streams: rotates PCs through a small code region. */
class LoopStreamBase : public InstructionSource
{
  protected:
    Addr
    nextPc()
    {
        pc_ += 4;
        if (pc_ >= 0x1000 + 4 * 256)
            pc_ = 0x1000;
        return pc_;
    }

  private:
    Addr pc_ = 0x1000;
};

/** CPUBurn: dense ALU work with perfectly predictable loop control. */
class PowerVirusStream : public LoopStreamBase
{
  public:
    SyntheticInstruction
    next() override
    {
        SyntheticInstruction instr;
        instr.pc = nextPc();
        if (++count_ % 16 == 0) {
            instr.isBranch = true;
            instr.branchTaken = true; // loop backedge, learned quickly
            instr.pc = 0x2000;        // fixed branch PC
        }
        return instr;
    }

  private:
    std::uint64_t count_ = 0;
};

/** Strided loads with `aluPerLoad` fillers between loads. */
class StridedLoadStream : public LoopStreamBase
{
  public:
    StridedLoadStream(Addr base, Addr strideBytes, std::uint64_t footprint,
                      unsigned aluPerLoad, Addr setSpreadStride = 0)
        : base_(base), stride_(strideBytes), footprint_(footprint),
          aluPerLoad_(aluPerLoad), setSpread_(setSpreadStride)
    {
    }

    SyntheticInstruction
    next() override
    {
        SyntheticInstruction instr;
        instr.pc = nextPc();
        if (sinceLoad_ >= aluPerLoad_) {
            sinceLoad_ = 0;
            instr.isMemory = true;
            instr.memAddr = base_ + offset_;
            if (setSpread_ != 0)
                instr.memAddr += (index_ % 64) * setSpread_;
            offset_ += stride_;
            ++index_;
            if (offset_ >= footprint_) {
                offset_ = 0;
                index_ = 0;
            }
        } else {
            ++sinceLoad_;
        }
        return instr;
    }

  private:
    Addr base_;
    Addr stride_;
    std::uint64_t footprint_;
    unsigned aluPerLoad_;
    Addr setSpread_;
    Addr offset_ = 0;
    std::uint64_t index_ = 0;
    unsigned sinceLoad_ = 0;
};

/** Data-dependent random branches: gshare cannot learn them. */
class RandomBranchStream : public LoopStreamBase
{
  public:
    RandomBranchStream(std::uint64_t seed, unsigned instrsPerBranch)
        : rng_(seed), instrsPerBranch_(instrsPerBranch)
    {
    }

    SyntheticInstruction
    next() override
    {
        SyntheticInstruction instr;
        instr.pc = nextPc();
        if (++count_ % instrsPerBranch_ == 0) {
            instr.isBranch = true;
            instr.branchTaken = rng_.bernoulli(0.5);
        }
        return instr;
    }

  private:
    Rng rng_;
    unsigned instrsPerBranch_;
    std::uint64_t count_ = 0;
};

/** Periodic architectural exceptions. */
class ExceptionStream : public LoopStreamBase
{
  public:
    explicit ExceptionStream(std::uint64_t instrsPerException)
        : period_(instrsPerException)
    {
    }

    SyntheticInstruction
    next() override
    {
        SyntheticInstruction instr;
        instr.pc = nextPc();
        if (++count_ % period_ == 0)
            instr.raisesException = true;
        return instr;
    }

  private:
    std::uint64_t period_;
    std::uint64_t count_ = 0;
};

} // namespace

std::unique_ptr<InstructionSource>
makeMicrobenchmark(MicrobenchKind kind, std::uint64_t seed)
{
    switch (kind) {
      case MicrobenchKind::PowerVirus:
        return std::make_unique<PowerVirusStream>();
      case MicrobenchKind::L1Miss:
        // 256 KiB footprint: misses L1 (32 KiB) every line, hits L2.
        return std::make_unique<StridedLoadStream>(
            Addr(0x10000000), 64, 256 * 1024, 10);
      case MicrobenchKind::L2Miss:
        // 16 MiB footprint: misses the 2 MiB L2 every line.
        return std::make_unique<StridedLoadStream>(
            Addr(0x20000000), 64, 16ull * 1024 * 1024, 24);
      case MicrobenchKind::TlbMiss:
        // 384 pages (> 256 TLB entries) but only 384 distinct lines
        // spread over the L1 sets, so data stays L1-resident and the
        // page walk is the only event.
        return std::make_unique<StridedLoadStream>(
            Addr(0x40000000), 4096, 384ull * 4096, 12, /*setSpread=*/64);
      case MicrobenchKind::BranchMispredict:
        return std::make_unique<RandomBranchStream>(seed, 44);
      case MicrobenchKind::Exception:
        return std::make_unique<ExceptionStream>(700);
      default:
        panic("unknown microbenchmark kind");
    }
}

cpu::PhaseSchedule
microbenchmarkSchedule(MicrobenchKind kind, Cycles duration)
{
    cpu::ActivityPhase phase;
    phase.duration = duration;
    phase.baseActivity = 0.95;
    phase.activityJitter = 0.01;
    phase.ipcWhenRunning = 3.2;

    // Event rates per 1000 *running* cycles (the FastCore event
    // process only advances while running), matched to the loop
    // arithmetic of the detailed streams: rate = 1000 / gap where
    // gap = issueCycles between events.
    switch (kind) {
      case MicrobenchKind::PowerVirus:
        phase.baseActivity = 1.0;
        phase.activityJitter = 0.0;
        phase.ipcWhenRunning = 4.0;
        break;
      case MicrobenchKind::L1Miss:
        phase.eventRatesPer1k[0] = 330.0; // load every ~3 issue cycles
        break;
      case MicrobenchKind::L2Miss:
        phase.eventRatesPer1k[1] = 160.0; // load every ~6.25 cycles
        break;
      case MicrobenchKind::TlbMiss:
        phase.eventRatesPer1k[2] = 300.0; // load every ~3.25 cycles
        break;
      case MicrobenchKind::BranchMispredict:
        phase.eventRatesPer1k[3] = 45.0; // mispredict every ~22 cycles
        break;
      case MicrobenchKind::Exception:
        phase.eventRatesPer1k[4] = 5.7; // exception every ~175 cycles
        break;
      default:
        panic("unknown microbenchmark kind");
    }

    cpu::PhaseSchedule schedule;
    schedule.phases.push_back(phase);
    schedule.loop = true;
    return schedule;
}

cpu::PhaseSchedule
idleSchedule(Cycles duration)
{
    cpu::ActivityPhase phase;
    phase.duration = duration;
    phase.baseActivity = 0.12;
    phase.activityJitter = 0.01;
    phase.ipcWhenRunning = 0.2;

    cpu::PhaseSchedule schedule;
    schedule.phases.push_back(phase);
    schedule.loop = true;
    return schedule;
}

} // namespace vsmooth::workload
