#include "verify.hh"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/fsio.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/result.hh"
#include "common/table.hh"

namespace vsmooth::tools {

namespace fs = std::filesystem;

const std::vector<ExperimentInfo> &
experimentRegistry()
{
    // `fast` marks the default verify subset: experiments that finish
    // in a few seconds even single-threaded, chosen to still cover
    // the PDN analysis, the tech-node model, the full simulator stack
    // (fig12), a parallelMap sweep (fig15, so jobs-invariance is
    // exercised end-to-end), and the sliding-window scheduler (fig16).
    static const std::vector<ExperimentInfo> registry = {
        {"fig01_future_swings", true},
        {"fig02_margin_frequency", true},
        {"fig04_impedance", true},
        {"fig05_reset_droops", true},
        {"fig06_decap_swings", true},
        {"fig07_voltage_cdf", false},
        {"fig08_typical_case", false},
        {"fig09_future_cdf", false},
        {"fig10_heatmaps", false},
        {"fig11_tlb_overshoot", false},
        {"fig12_event_swings", true},
        {"fig13_interference", false},
        {"fig14_noise_phases", false},
        {"fig15_stall_correlation", true},
        {"fig16_sliding_window", true},
        {"fig17_coschedule_spread", false},
        {"fig18_policy_scatter", false},
        {"fig19_pass_increase", false},
        {"table1_optimal_margins", false},
        {"ablation_core_scaling", true},
        {"ablation_mitigations", false},
        {"ablation_noise_model", false},
        {"adaptive_margin", false},
        {"fault_injection", true},
    };
    return registry;
}

namespace {

bool
knownExperiment(const std::string &name)
{
    for (const auto &e : experimentRegistry())
        if (name == e.name)
            return true;
    return false;
}

std::vector<std::string>
selectExperiments(const VerifyOptions &opt)
{
    if (!opt.experiments.empty()) {
        for (const auto &name : opt.experiments)
            if (!knownExperiment(name))
                fatal("unknown experiment '%s' (see `vsmooth verify"
                      " --list`)",
                      name.c_str());
        return opt.experiments;
    }
    std::vector<std::string> out;
    for (const auto &e : experimentRegistry())
        if (opt.all || e.fast)
            out.push_back(e.name);
    return out;
}

/** Load <path> as a Result; false (with a report line) on failure. */
bool
loadResult(const std::string &path, Result &out, Json *rawOut)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "  cannot open '" << path << "'\n";
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json j = Json::parse(buf.str(), &error);
    if (!error.empty()) {
        std::cerr << "  " << path << ": " << error << "\n";
        return false;
    }
    if (!Result::fromJson(j, out, &error)) {
        std::cerr << "  " << path << ": " << error << "\n";
        return false;
    }
    if (rawOut)
        *rawOut = std::move(j);
    return true;
}

/** Run one experiment binary with result emission to `resultPath`. */
bool
runExperiment(const VerifyOptions &opt, const std::string &name,
              const std::string &resultPath)
{
    const fs::path binary = fs::path(opt.benchDir) / name;
    if (!fs::exists(binary)) {
        std::cerr << "  missing binary '" << binary.string()
                  << "' (build the bench targets first)\n";
        return false;
    }
    std::string cmd = "VSMOOTH_RESULT_FILE='" + resultPath + "'";
    if (opt.jobs > 0)
        cmd += " VSMOOTH_JOBS=" + std::to_string(opt.jobs);
    cmd += " '" + binary.string() + "'";
    cmd += opt.verbose ? " >&2" : " > /dev/null";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::cerr << "  '" << binary.string() << "' exited with status "
                  << rc << "\n";
        return false;
    }
    return true;
}

/** In --update mode: write the fresh result as the new golden,
 *  preserving a "tolerances" object already present in the old one.
 *  The replacement is atomic (temp + rename): an interrupt mid-update
 *  must never leave a truncated golden where a valid one stood. */
bool
updateGolden(const std::string &goldenPath, const Result &actual)
{
    Json out = actual.toJson();
    std::ifstream in(goldenPath);
    if (in) {
        std::stringstream buf;
        buf << in.rdbuf();
        std::string error;
        const Json old = Json::parse(buf.str(), &error);
        if (error.empty() && old.isObject() && old.contains("tolerances"))
            out.set("tolerances", old.at("tolerances"));
    }
    std::string error;
    if (!writeFileAtomic(
            goldenPath,
            [&](std::ostream &os) {
                out.write(os, 2);
                os << "\n";
                return os.good();
            },
            &error)) {
        std::cerr << "  " << error << "\n";
        return false;
    }
    return true;
}

void
printDiffs(const std::string &name, const CompareReport &report)
{
    TextTable t("drift: " + name);
    t.setHeader({"metric", "golden", "actual", "note"});
    for (const auto &d : report.diffs) {
        t.addRow({d.name,
                  d.note.empty() ? TextTable::num(d.golden, 9) : "",
                  d.note.empty() ? TextTable::num(d.actual, 9) : "",
                  d.note});
    }
    t.print(std::cerr);
}

} // namespace

int
runVerify(const VerifyOptions &opt)
{
    const auto names = selectExperiments(opt);

    std::string workDir = opt.workDir;
    if (workDir.empty()) {
        workDir = (fs::temp_directory_path() /
                   ("vsmooth-verify-" + std::to_string(getpid())))
                      .string();
    }
    std::error_code ec;
    fs::create_directories(workDir, ec);
    if (ec)
        fatal("cannot create work dir '%s': %s", workDir.c_str(),
              ec.message().c_str());
    if (opt.update)
        fs::create_directories(opt.goldenDir, ec);

    std::size_t failures = 0;
    for (const auto &name : names) {
        const std::string resultPath = workDir + "/" + name + ".json";
        const std::string goldenPath =
            opt.goldenDir + "/" + name + ".json";

        if (!runExperiment(opt, name, resultPath)) {
            std::cout << name << ": FAIL (run error)\n";
            ++failures;
            continue;
        }
        Result actual;
        if (!loadResult(resultPath, actual, nullptr)) {
            std::cout << name << ": FAIL (bad result file)\n";
            ++failures;
            continue;
        }

        if (opt.update) {
            if (!updateGolden(goldenPath, actual)) {
                std::cout << name << ": FAIL (cannot update golden)\n";
                ++failures;
            } else {
                std::cout << name << ": golden updated ("
                          << actual.metrics().size() << " metrics, "
                          << actual.allSeries().size() << " series)\n";
            }
            continue;
        }

        Result golden;
        Json goldenRaw;
        if (!loadResult(goldenPath, golden, &goldenRaw)) {
            std::cout << name
                      << ": FAIL (missing/bad golden; run with"
                         " --update to create it)\n";
            ++failures;
            continue;
        }
        const Json *tolerances = goldenRaw.isObject()
                                     ? goldenRaw.find("tolerances")
                                     : nullptr;
        const auto report = compareResults(golden, actual, tolerances);
        if (report.pass) {
            std::cout << name << ": PASS (" << report.checked
                      << " metrics/series checked)\n";
        } else {
            std::cout << name << ": FAIL (" << report.diffs.size()
                      << " drifting value(s) across " << report.checked
                      << " metrics/series)\n";
            printDiffs(name, report);
            ++failures;
        }
    }

    if (opt.update) {
        std::cout << names.size() << " golden(s) written to "
                  << opt.goldenDir << "\n";
        return failures == 0 ? 0 : 1;
    }
    std::cout << (names.size() - failures) << "/" << names.size()
              << " experiments matched their goldens\n";
    return failures == 0 ? 0 : 1;
}

} // namespace vsmooth::tools
