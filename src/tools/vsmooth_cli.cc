/**
 * @file
 * vsmooth — command-line driver for the simulation stack.
 *
 * A downstream user's entry point: run any workload combination on
 * any platform variant and get the noise characterization, the
 * resilient-design analysis, or a raw waveform trace without writing
 * C++.
 *
 * Usage:
 *   vsmooth run [options] <benchmark> [benchmark2]
 *   vsmooth list
 *   vsmooth impedance [--decap F]
 *   vsmooth reset-droop [--decap F]
 *   vsmooth verify [options]
 *   vsmooth fuzz [options]
 *   vsmooth serve [options]
 *   vsmooth client [options]
 *
 * Options for `serve` (sweep-as-a-service daemon):
 *   --socket PATH    listen on a Unix-domain socket
 *   --port N         listen on 127.0.0.1:N (0 = ephemeral)
 *   --workers N      executor threads (default 2)
 *   --cache-bytes N  Result cache budget (default 64 MiB, 0 = off)
 *   --queue N        bounded queue capacity (default 256)
 *   --ready-file F   write "<kind> <address>" here once listening
 *
 * Options for `client` (submit a batch to a daemon):
 *   --socket PATH | --port N   where the daemon listens
 *   --batch FILE     items array (or {"items": [...]}) to submit
 *   --id NAME        batch id echoed in responses (default "cli")
 *   --local          run the batch in-process (offline reference)
 *   --results-only   print one serialized Result per item
 *   --shutdown       ask the daemon to drain and exit
 *   --stats          print cache/queue counters
 *
 * Options for `fuzz` (property-based differential testing):
 *   --seed S         generation seed (default 1)
 *   --iters N        configs to generate and check (default 1000)
 *   --properties L   comma-separated property names (default: all)
 *   --repro FILE     replay one repro file instead of generating
 *   --corpus DIR     replay every *.json repro in DIR
 *   --repro-out F    where a newly shrunk repro is written
 *   --summary FILE   write a deterministic per-property JSON summary
 *   --list           print the property registry and exit
 *   --verbose        per-property progress output
 *
 * Options for `verify` (golden-result regression checking):
 *   --bench-dir D    directory of experiment binaries (build/bench)
 *   --golden-dir D   directory of golden JSONs (bench/golden)
 *   --experiments L  comma-separated experiment names
 *   --all            run every registered experiment
 *   --update         rewrite the goldens from this run
 *   --list           print the experiment registry and exit
 *   --verbose        let experiment output through to stderr
 *
 * Options for `run`:
 *   --decap F        package decap fraction (1.0 = Proc100, default)
 *   --cycles N       cycles to simulate (default 2000000)
 *   --margin M       operating margin fraction; enables the fail-safe
 *   --recovery N     recovery cost in cycles (with --margin)
 *   --predictor      enable the signature emergency predictor
 *   --damper         enable resonance-aware throttling
 *   --split          split per-core supplies
 *   --trace FILE     write a CSV waveform trace of the last 64K cycles
 *   --seed S         RNG seed
 *   --sampling M     off|auto: phase-sampled execution (default:
 *                    the VSMOOTH_SAMPLING environment variable;
 *                    off is bit-identical to exact execution)
 *
 * Global options:
 *   --jobs N         worker threads for parallel sweeps (default: all
 *                    cores; 1 forces the serial path). Equivalent to
 *                    the VSMOOTH_JOBS environment variable; results
 *                    are identical for any job count.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "circuit/ac.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "pdn/droop_analysis.hh"
#include "pdn/ladder.hh"
#include "resilience/perf_model.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/system.hh"
#include "simtest/fuzz.hh"
#include "verify.hh"
#include "workload/microbench.hh"
#include "workload/parsec.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage:\n"
           "  vsmooth run [options] <benchmark> [benchmark2]\n"
           "  vsmooth list\n"
           "  vsmooth impedance [--decap F]\n"
           "  vsmooth reset-droop [--decap F]\n"
           "  vsmooth verify [options]\n"
           "  vsmooth fuzz [options]\n"
           "  vsmooth serve [options]\n"
           "  vsmooth client [options]\n"
           "run options: --decap F --cycles N --margin M --recovery N\n"
           "             --predictor --damper --split --trace FILE"
           " --seed S\n"
           "             --sampling off|auto (default: VSMOOTH_SAMPLING"
           " env)\n"
           "verify options: --bench-dir D --golden-dir D"
           " --experiments a,b,c\n"
           "                --all --update --list --verbose\n"
           "fuzz options: --seed S --iters N --properties a,b,c"
           " --repro FILE\n"
           "              --corpus DIR --repro-out F --summary FILE"
           " --lanes K\n"
           "              --list --verbose\n"
           "serve options: --socket PATH | --port N --workers N\n"
           "               --cache-bytes N --queue N --ready-file F\n"
           "client options: --socket PATH | --port N --batch FILE"
           " --id NAME\n"
           "                --local --results-only --shutdown"
           " --stats\n"
           "global options: --jobs N (worker threads for sweeps;"
           " 1 = serial)\n";
    std::exit(2);
}

double
parseDouble(const char *value, const char *flag)
{
    const auto v = tryParseDouble(value);
    if (!v)
        fatal("bad value '%s' for %s", value, flag);
    return *v;
}

std::uint64_t
parseU64(const char *value, const char *flag)
{
    // Integer flags parse as integers: no silent precision loss for
    // 64-bit seeds, no "1e6"-style or partially-numeric input.
    const auto v = tryParseU64(value);
    if (!v)
        fatal("bad value '%s' for %s (expected an unsigned integer)",
              value, flag);
    return *v;
}

int
cmdList()
{
    TextTable spec("SPEC CPU2006 workloads");
    spec.setHeader({"name", "stall ratio", "memory-bound", "IPC",
                    "phases"});
    for (const auto &b : workload::specCpu2006()) {
        const char *pattern =
            b.pattern == workload::PhasePattern::Flat ? "flat"
            : b.pattern == workload::PhasePattern::Steps ? "steps"
                                                         : "oscillating";
        spec.addRow({b.name, TextTable::num(b.stallRatio, 2),
                     TextTable::num(b.memoryBoundness, 2),
                     TextTable::num(b.ipcRunning, 2), pattern});
    }
    spec.print(std::cout);

    TextTable parsec("PARSEC workloads (multi-threaded)");
    parsec.setHeader({"name", "stall ratio", "memory-bound", "IPC"});
    for (const auto &b : workload::parsecSuite()) {
        parsec.addRow({b.name, TextTable::num(b.stallRatio, 2),
                       TextTable::num(b.memoryBoundness, 2),
                       TextTable::num(b.ipcRunning, 2)});
    }
    std::cout << "\n";
    parsec.print(std::cout);
    return 0;
}

int
cmdImpedance(double decap)
{
    const auto cfg =
        pdn::PackageConfig::core2duo().withDecapFraction(decap);
    auto net = pdn::buildLadder(cfg, 1);
    const auto sweep = circuit::impedanceSweep(net.net, net.dieNode,
                                               Hertz(1e6), Hertz(500e6),
                                               40);
    TextTable t("impedance, decap fraction " + TextTable::num(decap, 2));
    t.setHeader({"freq (MHz)", "|Z| (mOhm)"});
    for (const auto &p : sweep)
        t.addRow({TextTable::num(p.frequencyHz / 1e6, 2),
                  TextTable::num(p.magnitude() * 1e3, 3)});
    t.print(std::cout);
    const auto peak = circuit::resonancePeak(sweep);
    std::cout << "resonance: " << TextTable::num(peak.frequencyHz / 1e6, 0)
              << " MHz, " << TextTable::num(peak.magnitude() * 1e3, 2)
              << " mOhm\n";
    return 0;
}

int
cmdResetDroop(double decap)
{
    const auto cfg =
        pdn::PackageConfig::core2duo().withDecapFraction(decap);
    const auto wf = pdn::simulateReset(cfg);
    std::cout << "decap fraction " << TextTable::num(decap, 2)
              << ": droop " << TextTable::num(wf.maxDroop() * 1e3, 1)
              << " mV, overshoot "
              << TextTable::num(wf.maxOvershoot() * 1e3, 1)
              << " mV, p2p " << TextTable::num(wf.peakToPeak() * 1e3, 1)
              << " mV\n";
    return 0;
}

struct RunOptions
{
    double decap = 1.0;
    Cycles cycles = 2'000'000;
    double margin = 0.0;
    std::uint32_t recovery = 0;
    bool predictor = false;
    bool damper = false;
    bool split = false;
    std::string traceFile;
    std::uint64_t seed = 1;
    /** Resolved sampling mode (Env = defer to VSMOOTH_SAMPLING). */
    sim::SamplingConfig::Mode sampling = sim::SamplingConfig::Mode::Env;
    std::vector<std::string> benchmarks;
};

int
cmdRun(const RunOptions &opt)
{
    if (opt.benchmarks.empty() || opt.benchmarks.size() > 2)
        fatal("run takes one or two benchmark names");

    sim::SystemConfig cfg;
    cfg.package =
        pdn::PackageConfig::core2duo().withDecapFraction(opt.decap);
    cfg.enableTrace = !opt.traceFile.empty();
    cfg.splitSupplies = opt.split;
    cfg.enableEmergencyPredictor = opt.predictor;
    cfg.enableResonanceDamper = opt.damper;
    if (opt.margin > 0.0) {
        cfg.emergencyMargin = opt.margin;
        cfg.recoveryCostCycles = opt.recovery > 0 ? opt.recovery : 1000;
    }
    cfg.sampling.mode = opt.sampling;

    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName(opt.benchmarks[0]),
                              opt.cycles, true),
        opt.seed + 1));
    if (opt.benchmarks.size() == 2) {
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(
                workload::specByName(opt.benchmarks[1]), opt.cycles,
                true),
            opt.seed + 2));
    } else {
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), opt.seed + 2));
    }
    sys.run(opt.cycles);

    TextTable t("vsmooth run");
    t.setHeader({"metric", "value"});
    t.addRow({"cycles", TextTable::num(sys.cycles())});
    t.addRow({"max droop (%)",
              TextTable::num(sys.scope().maxDroop() * 100, 2)});
    t.addRow({"max overshoot (%)",
              TextTable::num(sys.scope().maxOvershoot() * 100, 2)});
    t.addRow({"droops/1K cycles (2.3%)",
              TextTable::num(1000.0 * sys.scope().fractionBelow(-0.023),
                             1)});
    t.addRow({"samples beyond +/-4% (%)",
              TextTable::num(sys.scope().fractionOutside(0.04) * 100,
                             4)});
    for (std::size_t c = 0; c < sys.numCores(); ++c) {
        t.addRow({"core" + TextTable::num(static_cast<int>(c)) + " IPC",
                  TextTable::num(sys.core(c).counters().ipc(), 2)});
        t.addRow({"core" + TextTable::num(static_cast<int>(c)) +
                      " stall ratio",
                  TextTable::num(sys.core(c).counters().stallRatio(),
                                 2)});
    }
    if (opt.margin > 0.0)
        t.addRow({"emergencies", TextTable::num(sys.emergencies())});
    if (sys.predictor()) {
        t.addRow({"predictor throttled cycles",
                  TextTable::num(sys.predictor()->throttledCycles())});
    }
    if (sys.damper()) {
        t.addRow({"damper throttled cycles",
                  TextTable::num(sys.damper()->throttledCycles())});
    }
    if (sys.samplingActive()) {
        const sim::SamplingReport rep = sys.samplingReport();
        t.addRow({"sampling: simulated fraction",
                  TextTable::num(rep.simulatedFraction(), 4)});
        t.addRow({"sampling: fast-forward skips",
                  TextTable::num(rep.skips)});
        t.addRow({"sampling: max droop bound (%)",
                  TextTable::num(rep.maxDroopBound * 100, 3)});
        t.addRow({"sampling: CDF fraction bound",
                  TextTable::num(rep.histFractionBound, 4)});
    }
    t.print(std::cout);

    if (!opt.traceFile.empty()) {
        std::ofstream out(opt.traceFile);
        if (!out)
            fatal("cannot open trace file '%s'", opt.traceFile.c_str());
        sys.trace().writeCsv(out);
        std::cout << "trace written to " << opt.traceFile << "\n";
    }
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    tools::VerifyOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--bench-dir") {
            opt.benchDir = next();
        } else if (arg == "--golden-dir") {
            opt.goldenDir = next();
        } else if (arg == "--work-dir") {
            opt.workDir = next();
        } else if (arg == "--experiments") {
            std::string list = next();
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!name.empty())
                    opt.experiments.push_back(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (arg == "--all") {
            opt.all = true;
        } else if (arg == "--update") {
            opt.update = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseU64(next(), "--jobs");
            if (v < 1)
                fatal("--jobs needs a positive thread count");
            opt.jobs = v;
        } else if (arg == "--list") {
            TextTable t("registered experiments");
            t.setHeader({"experiment", "default subset"});
            for (const auto &e : tools::experimentRegistry())
                t.addRow({e.name, e.fast ? "yes" : "no (--all)"});
            t.print(std::cout);
            return 0;
        } else {
            usage();
        }
    }
    return tools::runVerify(opt);
}

int
cmdFuzz(int argc, char **argv)
{
    simtest::FuzzOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.seed = parseU64(next(), "--seed");
        } else if (arg == "--iters") {
            opt.iters = parseU64(next(), "--iters");
        } else if (arg == "--properties") {
            std::string list = next();
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!name.empty())
                    opt.properties.push_back(name);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (arg == "--repro") {
            opt.reproFile = next();
        } else if (arg == "--corpus") {
            opt.corpusDir = next();
        } else if (arg == "--repro-out") {
            opt.reproOut = next();
        } else if (arg == "--summary") {
            opt.summaryFile = next();
        } else if (arg == "--lanes") {
            const std::uint64_t v = parseU64(next(), "--lanes");
            if (v < 1 || v > simd::kMaxLanes) {
                fatal("--lanes must be in [1, %zu]", simd::kMaxLanes);
            }
            opt.forceLanes = static_cast<std::uint32_t>(v);
        } else if (arg == "--list") {
            opt.listProperties = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseU64(next(), "--jobs");
            if (v < 1)
                fatal("--jobs needs a positive thread count");
            setJobs(static_cast<std::size_t>(v));
        } else {
            usage();
        }
    }
    return simtest::runFuzz(opt);
}

int
cmdServe(int argc, char **argv)
{
    serve::ServeOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socketPath = next();
        } else if (arg == "--port") {
            const std::uint64_t v = parseU64(next(), "--port");
            if (v > 65535)
                fatal("--port %llu out of range",
                      static_cast<unsigned long long>(v));
            opt.port = static_cast<int>(v);
        } else if (arg == "--workers") {
            const std::uint64_t v = parseU64(next(), "--workers");
            if (v < 1)
                fatal("--workers needs a positive thread count");
            opt.workers = static_cast<std::size_t>(v);
        } else if (arg == "--cache-bytes") {
            opt.cacheBytes = static_cast<std::size_t>(
                parseU64(next(), "--cache-bytes"));
        } else if (arg == "--queue") {
            const std::uint64_t v = parseU64(next(), "--queue");
            if (v < 1)
                fatal("--queue needs a positive capacity");
            opt.queueCapacity = static_cast<std::size_t>(v);
        } else if (arg == "--ready-file") {
            opt.readyFile = next();
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseU64(next(), "--jobs");
            if (v < 1)
                fatal("--jobs needs a positive thread count");
            setJobs(static_cast<std::size_t>(v));
        } else {
            usage();
        }
    }
    if (opt.socketPath.empty() && opt.port == 0)
        warn("serve: no --socket or --port given; using an "
             "ephemeral TCP port (see --ready-file)");
    return serve::runServe(opt);
}

int
cmdClient(int argc, char **argv)
{
    serve::ClientOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socketPath = next();
        } else if (arg == "--port") {
            const std::uint64_t v = parseU64(next(), "--port");
            if (v < 1 || v > 65535)
                fatal("--port %llu out of range",
                      static_cast<unsigned long long>(v));
            opt.port = static_cast<int>(v);
        } else if (arg == "--batch") {
            opt.batchFile = next();
        } else if (arg == "--id") {
            opt.batchId = next();
        } else if (arg == "--local") {
            opt.local = true;
        } else if (arg == "--results-only") {
            opt.resultsOnly = true;
        } else if (arg == "--shutdown") {
            opt.shutdown = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseU64(next(), "--jobs");
            if (v < 1)
                fatal("--jobs needs a positive thread count");
            setJobs(static_cast<std::size_t>(v));
        } else {
            usage();
        }
    }
    if (opt.batchFile.empty() && !opt.shutdown && !opt.stats)
        fatal("client needs --batch FILE (or --shutdown / --stats)");
    return serve::runClient(opt);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    // Resolve the SIMD dispatch level up front: a bad VSMOOTH_SIMD or
    // VSMOOTH_LANES value fails before any work starts, and the
    // selected kernel/lane-width report lands once at the top of the
    // output instead of mid-run.
    simd::activeLevel();
    const std::string cmd = argv[1];

    if (cmd == "list")
        return cmdList();
    if (cmd == "verify")
        return cmdVerify(argc, argv);
    if (cmd == "fuzz")
        return cmdFuzz(argc, argv);
    if (cmd == "serve")
        return cmdServe(argc, argv);
    if (cmd == "client")
        return cmdClient(argc, argv);

    double decap = 1.0;
    RunOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--decap") {
            decap = opt.decap = parseDouble(next(), "--decap");
        } else if (arg == "--cycles") {
            opt.cycles = static_cast<Cycles>(
                parseU64(next(), "--cycles"));
        } else if (arg == "--margin") {
            opt.margin = parseDouble(next(), "--margin");
        } else if (arg == "--recovery") {
            const std::uint64_t r = parseU64(next(), "--recovery");
            if (r > UINT32_MAX)
                fatal("--recovery %llu exceeds the 32-bit cycle cap",
                      static_cast<unsigned long long>(r));
            opt.recovery = static_cast<std::uint32_t>(r);
        } else if (arg == "--predictor") {
            opt.predictor = true;
        } else if (arg == "--damper") {
            opt.damper = true;
        } else if (arg == "--split") {
            opt.split = true;
        } else if (arg == "--trace") {
            opt.traceFile = next();
        } else if (arg == "--seed") {
            opt.seed = parseU64(next(), "--seed");
        } else if (arg == "--sampling") {
            const std::string mode = next();
            if (mode == "off")
                opt.sampling = sim::SamplingConfig::Mode::Off;
            else if (mode == "auto")
                opt.sampling = sim::SamplingConfig::Mode::Auto;
            else
                fatal("bad value '%s' for --sampling (off|auto)",
                      mode.c_str());
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseU64(next(), "--jobs");
            if (v < 1)
                fatal("--jobs needs a positive thread count");
            setJobs(static_cast<std::size_t>(v));
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            opt.benchmarks.push_back(arg);
        }
    }

    if (cmd == "impedance")
        return cmdImpedance(decap);
    if (cmd == "reset-droop")
        return cmdResetDroop(decap);
    if (cmd == "run")
        return cmdRun(opt);
    usage();
}
