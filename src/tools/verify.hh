/**
 * @file
 * `vsmooth verify` — golden-result regression checking.
 *
 * Re-runs a subset of the experiment binaries with structured-result
 * emission enabled, parses the JSON each one writes, and diffs it
 * against the checked-in golden under per-metric tolerances. Exits
 * nonzero naming every drifting metric, so a calibration or model
 * change can never silently alter a paper observable.
 */

#ifndef VSMOOTH_TOOLS_VERIFY_HH
#define VSMOOTH_TOOLS_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vsmooth::tools {

/** One golden-checked experiment binary. */
struct ExperimentInfo
{
    const char *name;
    /** In the default verify subset (seconds, not minutes, to run). */
    bool fast;
};

/** Every bench binary that emits a structured Result. */
const std::vector<ExperimentInfo> &experimentRegistry();

struct VerifyOptions
{
    /** Directory holding the experiment binaries. */
    std::string benchDir = "build/bench";
    /** Directory of golden <experiment>.json files. */
    std::string goldenDir = "bench/golden";
    /** Scratch directory for freshly produced results (defaults to a
     *  per-process directory under the system temp dir). */
    std::string workDir;
    /** Explicit experiment subset; empty means the fast default set
     *  (or everything with `all`). */
    std::vector<std::string> experiments;
    bool all = false;
    /** Regenerate the goldens from this run instead of diffing,
     *  carrying over any per-metric tolerances already checked in. */
    bool update = false;
    /** Worker threads for the re-run (0 = inherit VSMOOTH_JOBS). */
    std::uint64_t jobs = 0;
    bool verbose = false;
};

/** Returns the process exit code: 0 if every experiment matched its
 *  golden (or was regenerated), 1 on any drift or run failure. */
int runVerify(const VerifyOptions &opt);

} // namespace vsmooth::tools

#endif // VSMOOTH_TOOLS_VERIFY_HH
