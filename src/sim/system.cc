#include "system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsmooth::sim {

namespace {

std::vector<double>
marginsOrDefault(const SystemConfig &cfg)
{
    return cfg.watchMargins.empty() ? defaultMarginSweep()
                                    : cfg.watchMargins;
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      pdn_(cfg.package, toPeriod(cfg.clockFrequency)),
      bank_(marginsOrDefault(cfg))
{
    if (cfg.emergencyMargin > 0.0) {
        emergencyDetector_.emplace(cfg.emergencyMargin);
        if (cfg.recoveryCostCycles == 0)
            fatal("System: emergency margin set but recovery cost is 0");
    }
    if (cfg.enableTimeline)
        timeline_.emplace(cfg.timelineInterval, cfg.timelineMargin);
    if (cfg.enableTrace)
        trace_.emplace(cfg.traceCapacity);
    if (cfg.enableEmergencyPredictor)
        predictor_.emplace(cfg.predictorParams);
    if (cfg.enableResonanceDamper)
        damper_.emplace(cfg.damperParams);
}

std::size_t
System::addCore(std::unique_ptr<cpu::CoreModel> core)
{
    if (started_)
        fatal("System: cores must be added before the first tick");
    cores_.push_back(std::move(core));
    currents_.emplace_back(cfg_.coreCurrent);
    lastEventCounts_.emplace_back();
    return cores_.size() - 1;
}

void
System::tick()
{
    // tick() runs hundreds of millions of times per sweep: hoist the
    // core count, mitigation handles, and config flags into locals so
    // the loop bodies stay tight.
    const std::size_t nCores = cores_.size();
    if (nCores == 0)
        fatal("System: no cores attached");
    if (!started_) {
        started_ = true;
        coreCurrents_.resize(nCores);
        // Settle the PDN at the initial combined idle current so the
        // first samples are not a spurious power-on transient.
        double idle = 0.0;
        for (auto &cm : currents_)
            idle += cm.idleCurrent();
        pdn_.reset(idle);
        if (cfg_.splitSupplies) {
            // Each rail owns an equal share of the decap (and of the
            // parallel delivery paths, so L and R scale up).
            auto params = pdn::secondOrderEquivalent(cfg_.package);
            const double n = static_cast<double>(nCores);
            params.c = params.c / n;
            params.l = params.l * n;
            params.rSeries = params.rSeries * n;
            params.rDamp = params.rDamp * n;
            rails_.clear();
            for (std::size_t i = 0; i < nCores; ++i) {
                rails_.emplace_back(params,
                                    toPeriod(cfg_.clockFrequency),
                                    cfg_.package.rippleFraction,
                                    cfg_.package.rippleFrequency);
                rails_.back().reset(currents_[i].idleCurrent());
            }
        }
    }

    resilience::EmergencyPredictor *const predictor =
        predictor_ ? &*predictor_ : nullptr;
    resilience::ResonanceDamper *const damper =
        damper_ ? &*damper_ : nullptr;
    const bool split = cfg_.splitSupplies;

    if (cfg_.osTickInterval > 0) {
        // Interrupt delivery is staggered across cores (IPI latency,
        // per-core APIC timers), so one core's restart surge lands
        // while the other is still running its workload — their
        // superposition is what couples deep droops to the
        // co-runner's noise.
        for (std::size_t i = 0; i < nCores; ++i) {
            if ((cycles_ + i * 517) % cfg_.osTickInterval ==
                cfg_.osTickInterval - 1) {
                cores_[i]->injectPlatformInterrupt();
            }
        }
    }

    // Mitigation throttle decision for this cycle (evaluated before
    // the cores advance, from last cycle's observations).
    bool throttle = predictor && predictor->shouldThrottle();
    if (damper && damper->feed(pdn_.voltageDeviation()))
        throttle = true;

    double total = 0.0;
    const double throttleFactor = cfg_.throttleFactor;
    for (std::size_t i = 0; i < nCores; ++i) {
        double activity = cores_[i]->tick();
        if (throttle)
            activity *= throttleFactor;
        coreCurrents_[i] = currents_[i].currentFor(activity);
        total += coreCurrents_[i];
    }
    lastCurrent_ = total;

    // Feed newly started events to the signature predictor: a tight
    // diff of the per-cause counters against the last-seen snapshot.
    if (predictor) {
        for (std::size_t i = 0; i < nCores; ++i) {
            const auto &ctr = cores_[i]->counters();
            auto &last = lastEventCounts_[i];
            for (std::size_t c = 1;
                 c < cpu::PerfCounters::kNumCauses; ++c) {
                const auto cause = static_cast<cpu::StallCause>(c);
                const std::uint64_t n = ctr.eventCount(cause);
                if (n != last[c]) {
                    last[c] = n;
                    predictor->observeEvent(i, cause);
                }
            }
        }
    }

    double dev;
    if (split) {
        // Step each rail with its own core's current; the chip-level
        // deviation sample is the worst rail (a violation anywhere
        // forces a global recovery).
        double worst = 1e9;
        for (std::size_t i = 0; i < nCores; ++i) {
            rails_[i].step(coreCurrents_[i]);
            worst = std::min(worst, rails_[i].voltageDeviation());
        }
        pdn_.step(total); // keep the shared-rail view in sync too
        dev = worst;
    } else {
        pdn_.step(total);
        dev = pdn_.voltageDeviation();
    }

    scope_.record(dev);
    bank_.feed(dev);
    if (timeline_)
        timeline_->feed(dev);
    if (trace_)
        trace_->record(cycles_, dev, total);

    if (emergencyDetector_ && emergencyDetector_->feed(dev)) {
        ++emergencies_;
        if (predictor)
            predictor->observeEmergency();
        for (auto &core : cores_)
            core->injectRecoveryStall(cfg_.recoveryCostCycles);
    }

    ++cycles_;
}

void
System::run(Cycles n)
{
    for (Cycles i = 0; i < n; ++i)
        tick();
}

Cycles
System::runUntilFinished(Cycles maxCycles)
{
    // Cache which cores have reported finished so the per-cycle scan
    // skips their (virtual) finished() calls. A finished core can
    // regress — a later platform interrupt or chip-wide recovery
    // re-enters a stall event — so when the cached count reaches zero
    // the full scan re-runs once as confirmation before breaking.
    const std::size_t nCores = cores_.size();
    std::vector<std::uint8_t> done(nCores, 0);
    std::size_t remaining = nCores;
    Cycles executed = 0;
    while (executed < maxCycles) {
        for (std::size_t i = 0; i < nCores; ++i) {
            if (!done[i] && cores_[i]->finished()) {
                done[i] = 1;
                --remaining;
            }
        }
        if (remaining == 0) {
            for (std::size_t i = 0; i < nCores; ++i) {
                if (!cores_[i]->finished()) {
                    done[i] = 0;
                    ++remaining;
                }
            }
            if (remaining == 0)
                break;
        }
        tick();
        ++executed;
    }
    return executed;
}

const std::vector<double> &
System::timelineSeries()
{
    if (!timeline_)
        fatal("System: timeline was not enabled");
    return timeline_->finish();
}

const noise::TraceWriter &
System::trace() const
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

noise::TraceWriter &
System::trace()
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

} // namespace vsmooth::sim
