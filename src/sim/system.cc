#include "system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsmooth::sim {

namespace {

std::vector<double>
marginsOrDefault(const SystemConfig &cfg)
{
    return cfg.watchMargins.empty() ? defaultMarginSweep()
                                    : cfg.watchMargins;
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      pdn_(cfg.package, toPeriod(cfg.clockFrequency)),
      bank_(marginsOrDefault(cfg))
{
    if (cfg.emergencyMargin > 0.0) {
        emergencyDetector_.emplace(cfg.emergencyMargin);
        if (cfg.recoveryCostCycles == 0)
            fatal("System: emergency margin set but recovery cost is 0");
    }
    if (cfg.enableTimeline)
        timeline_.emplace(cfg.timelineInterval, cfg.timelineMargin);
    if (cfg.enableTrace)
        trace_.emplace(cfg.traceCapacity);
    if (cfg.enableEmergencyPredictor)
        predictor_.emplace(cfg.predictorParams);
    if (cfg.enableResonanceDamper)
        damper_.emplace(cfg.damperParams);
}

std::size_t
System::addCore(std::unique_ptr<cpu::CoreModel> core)
{
    if (started_)
        fatal("System: cores must be added before the first tick");
    cores_.push_back(std::move(core));
    currents_.emplace_back(cfg_.coreCurrent);
    lastEventCounts_.emplace_back();
    return cores_.size() - 1;
}

void
System::tick()
{
    if (cores_.empty())
        fatal("System: no cores attached");
    if (!started_) {
        started_ = true;
        // Settle the PDN at the initial combined idle current so the
        // first samples are not a spurious power-on transient.
        double idle = 0.0;
        for (auto &cm : currents_)
            idle += cm.idleCurrent();
        pdn_.reset(idle);
        if (cfg_.splitSupplies) {
            // Each rail owns an equal share of the decap (and of the
            // parallel delivery paths, so L and R scale up).
            auto params = pdn::secondOrderEquivalent(cfg_.package);
            const double n = static_cast<double>(cores_.size());
            params.c = params.c / n;
            params.l = params.l * n;
            params.rSeries = params.rSeries * n;
            params.rDamp = params.rDamp * n;
            rails_.clear();
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                rails_.emplace_back(params,
                                    toPeriod(cfg_.clockFrequency),
                                    cfg_.package.rippleFraction,
                                    cfg_.package.rippleFrequency);
                rails_.back().reset(currents_[i].idleCurrent());
            }
        }
    }

    if (cfg_.osTickInterval > 0) {
        // Interrupt delivery is staggered across cores (IPI latency,
        // per-core APIC timers), so one core's restart surge lands
        // while the other is still running its workload — their
        // superposition is what couples deep droops to the
        // co-runner's noise.
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if ((cycles_ + i * 517) % cfg_.osTickInterval ==
                cfg_.osTickInterval - 1) {
                cores_[i]->injectPlatformInterrupt();
            }
        }
    }

    // Mitigation throttle decision for this cycle (evaluated before
    // the cores advance, from last cycle's observations).
    bool throttle = false;
    if (predictor_ && predictor_->shouldThrottle())
        throttle = true;
    if (damper_ && damper_->feed(pdn_.voltageDeviation()))
        throttle = true;

    double total = 0.0;
    coreCurrents_.resize(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        double activity = cores_[i]->tick();
        if (throttle)
            activity *= cfg_.throttleFactor;
        coreCurrents_[i] = currents_[i].currentFor(activity);
        total += coreCurrents_[i];
    }
    lastCurrent_ = total;

    // Feed newly started events to the signature predictor.
    if (predictor_) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            const auto &ctr = cores_[i]->counters();
            for (std::size_t c = 1;
                 c < cpu::PerfCounters::kNumCauses; ++c) {
                const auto cause = static_cast<cpu::StallCause>(c);
                const std::uint64_t n = ctr.eventCount(cause);
                if (n != lastEventCounts_[i][c]) {
                    lastEventCounts_[i][c] = n;
                    predictor_->observeEvent(i, cause);
                }
            }
        }
    }

    double dev;
    if (cfg_.splitSupplies) {
        // Step each rail with its own core's current; the chip-level
        // deviation sample is the worst rail (a violation anywhere
        // forces a global recovery).
        double worst = 1e9;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            rails_[i].step(coreCurrents_[i]);
            worst = std::min(worst, rails_[i].voltageDeviation());
        }
        pdn_.step(total); // keep the shared-rail view in sync too
        dev = worst;
    } else {
        pdn_.step(total);
        dev = pdn_.voltageDeviation();
    }

    scope_.record(dev);
    bank_.feed(dev);
    if (timeline_)
        timeline_->feed(dev);
    if (trace_)
        trace_->record(cycles_, dev, total);

    if (emergencyDetector_ && emergencyDetector_->feed(dev)) {
        ++emergencies_;
        if (predictor_)
            predictor_->observeEmergency();
        for (auto &core : cores_)
            core->injectRecoveryStall(cfg_.recoveryCostCycles);
    }

    ++cycles_;
}

void
System::run(Cycles n)
{
    for (Cycles i = 0; i < n; ++i)
        tick();
}

Cycles
System::runUntilFinished(Cycles maxCycles)
{
    Cycles executed = 0;
    while (executed < maxCycles) {
        bool all_done = true;
        for (const auto &core : cores_) {
            if (!core->finished()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        tick();
        ++executed;
    }
    return executed;
}

const std::vector<double> &
System::timelineSeries()
{
    if (!timeline_)
        fatal("System: timeline was not enabled");
    return timeline_->finish();
}

const noise::TraceWriter &
System::trace() const
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

noise::TraceWriter &
System::trace()
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

} // namespace vsmooth::sim
