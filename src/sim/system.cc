#include "system.hh"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/logging.hh"
#include "dsp/primitives.hh"

namespace vsmooth::sim {

namespace {

std::vector<double>
marginsOrDefault(const SystemConfig &cfg)
{
    return cfg.watchMargins.empty() ? defaultMarginSweep()
                                    : cfg.watchMargins;
}

/** Environment escape hatch forcing the per-cycle scalar path, so
 *  golden runs can cross-check blocked vs scalar end to end. */
bool
scalarTickForced()
{
    static const bool forced = [] {
        const char *e = std::getenv("VSMOOTH_SCALAR_TICK");
        return e && *e && *e != '0';
    }();
    return forced;
}

/** Resolve the Env sampling mode from VSMOOTH_SAMPLING. Read per
 *  System start (not cached): benchmarks toggle it between runs
 *  within one process. */
bool
samplingEnvAuto()
{
    const char *e = std::getenv("VSMOOTH_SAMPLING");
    if (!e || !*e)
        return false;
    const std::string_view v(e);
    return v == "auto" || v == "on" || v == "1";
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      pdn_(cfg.package, toPeriod(cfg.clockFrequency)),
      bank_(marginsOrDefault(cfg))
{
    if (cfg.emergencyMargin > 0.0) {
        emergencyDetector_.emplace(cfg.emergencyMargin);
        if (cfg.recoveryCostCycles == 0)
            fatal("System: emergency margin set but recovery cost is 0");
    }
    if (cfg.enableTimeline)
        timeline_.emplace(cfg.timelineInterval, cfg.timelineMargin);
    if (cfg.enableTrace)
        trace_.emplace(cfg.traceCapacity);
    if (cfg.enableEmergencyPredictor)
        predictor_.emplace(cfg.predictorParams);
    if (cfg.enableResonanceDamper)
        damper_.emplace(cfg.damperParams);
    if (cfg.enableMarginController) {
        if (cfg.emergencyMargin > 0.0)
            fatal("System: margin controller and fixed emergency margin "
                  "are mutually exclusive (one margin authority)");
        if (cfg.recoveryCostCycles == 0)
            fatal("System: margin controller set but recovery cost is 0");
        auto params = cfg.marginControllerParams;
        if (params.updateInterval == 0) {
            params.updateInterval =
                cfg.osTickInterval ? cfg.osTickInterval : Cycles(10'000);
        }
        marginController_.emplace(
            params, pdn::secondOrderEquivalent(cfg.package).vdd);
    }

    // The batched fast path is sound only when nothing feeds a
    // per-cycle observation back into execution: the emergency
    // detector and margin controller inject recovery stalls, the
    // predictor and damper throttle, and split rails need per-cycle
    // per-core currents. OS-tick injections are handled by truncating
    // blocks at the injection cycle, so they do not disqualify the
    // fast path.
    blockEligible_ = cfg_.enableBlockedExecution && !scalarTickForced() &&
        !emergencyDetector_ && !predictor_ && !damper_ &&
        !marginController_ && !cfg_.splitSupplies;
}

std::size_t
System::addCore(std::unique_ptr<cpu::CoreModel> core)
{
    if (started_)
        fatal("System: cores must be added before the first tick");
    cores_.push_back(std::move(core));
    currents_.emplace_back(cfg_.coreCurrent);
    lastEventCounts_.emplace_back();
    return cores_.size() - 1;
}

void
System::start()
{
    if (started_)
        return;
    const std::size_t nCores = cores_.size();
    if (nCores == 0)
        fatal("System: no cores attached");
    started_ = true;
    coreCurrents_.resize(nCores);
    // Settle the PDN at the initial combined idle current so the
    // first samples are not a spurious power-on transient.
    double idle = 0.0;
    for (auto &cm : currents_)
        idle += cm.idleCurrent();
    pdn_.reset(idle);
    if (cfg_.splitSupplies) {
        // Each rail owns an equal share of the decap (and of the
        // parallel delivery paths, so L and R scale up).
        auto params = pdn::secondOrderEquivalent(cfg_.package);
        const double n = static_cast<double>(nCores);
        params.c = params.c / n;
        params.l = params.l * n;
        params.rSeries = params.rSeries * n;
        params.rDamp = params.rDamp * n;
        rails_.clear();
        for (std::size_t i = 0; i < nCores; ++i) {
            rails_.emplace_back(params,
                                toPeriod(cfg_.clockFrequency),
                                cfg_.package.rippleFraction,
                                cfg_.package.rippleFrequency);
            rails_.back().reset(currents_[i].idleCurrent());
        }
    }
    if (cfg_.osTickInterval > 0) {
        // Per-core countdowns to the staggered OS-tick injection
        // cycles, replacing a per-core modulo in the per-cycle hot
        // loop. Core i injects on every cycle c with
        // (c + i * 517) % interval == interval - 1; the countdown
        // holds the number of ticks before the next such cycle
        // (0 = the next tick injects).
        const Cycles interval = cfg_.osTickInterval;
        osTickCountdown_.resize(nCores);
        for (std::size_t i = 0; i < nCores; ++i) {
            osTickCountdown_[i] =
                interval - 1 - (cycles_ + i * 517) % interval;
        }
    }
    if (blockEligible_) {
        // One activity lane per core: the cores fill their lanes
        // block-wise, then the fused loop walks all lanes in step.
        blockActivity_.resize(nCores * kBlockCycles);
        blockTotal_.resize(kBlockCycles);
        blockDeviation_.resize(kBlockCycles);
    }
    if (samplingWanted())
        sampler_ = std::make_unique<PhaseSampler>(*this, cfg_.sampling);
}

bool
System::samplingWanted() const
{
    // Sampled execution engages only with the block pipeline active
    // (its windows are built from full blocks) and no trace consumer
    // (a waveform trace cannot be extrapolated soundly — skipped
    // cycles have no waveform).
    const bool wantSampling =
        cfg_.sampling.mode == SamplingConfig::Mode::Auto ||
        (cfg_.sampling.mode == SamplingConfig::Mode::Env &&
         samplingEnvAuto());
    return wantSampling && blockEligible_ && !trace_;
}

void
System::tick()
{
    // tick() runs hundreds of millions of times per sweep: hoist the
    // core count, mitigation handles, and config flags into locals so
    // the loop bodies stay tight.
    start();
    const std::size_t nCores = cores_.size();

    resilience::EmergencyPredictor *const predictor =
        predictor_ ? &*predictor_ : nullptr;
    resilience::ResonanceDamper *const damper =
        damper_ ? &*damper_ : nullptr;
    const bool split = cfg_.splitSupplies;

    if (cfg_.osTickInterval > 0) {
        // Interrupt delivery is staggered across cores (IPI latency,
        // per-core APIC timers), so one core's restart surge lands
        // while the other is still running its workload — their
        // superposition is what couples deep droops to the
        // co-runner's noise.
        for (std::size_t i = 0; i < nCores; ++i) {
            if (osTickCountdown_[i] == 0) {
                cores_[i]->injectPlatformInterrupt();
                osTickCountdown_[i] = cfg_.osTickInterval;
            }
            --osTickCountdown_[i];
        }
    }

    // Mitigation throttle decision for this cycle (evaluated before
    // the cores advance, from last cycle's observations).
    bool throttle = predictor && predictor->shouldThrottle();
    if (damper && damper->feed(pdn_.voltageDeviation()))
        throttle = true;

    double total = 0.0;
    const double throttleFactor = cfg_.throttleFactor;
    for (std::size_t i = 0; i < nCores; ++i) {
        double activity = cores_[i]->tick();
        if (throttle)
            activity *= throttleFactor;
        coreCurrents_[i] = currents_[i].currentFor(activity);
        total += coreCurrents_[i];
    }
    lastCurrent_ = total;

    // Feed newly started events to the signature predictor: a tight
    // diff of the per-cause counters against the last-seen snapshot.
    if (predictor) {
        for (std::size_t i = 0; i < nCores; ++i) {
            const auto &ctr = cores_[i]->counters();
            auto &last = lastEventCounts_[i];
            for (std::size_t c = 1;
                 c < cpu::PerfCounters::kNumCauses; ++c) {
                const auto cause = static_cast<cpu::StallCause>(c);
                const std::uint64_t n = ctr.eventCount(cause);
                if (n != last[c]) {
                    last[c] = n;
                    predictor->observeEvent(i, cause);
                }
            }
        }
    }

    double dev;
    if (split) {
        // Step each rail with its own core's current; the chip-level
        // deviation sample is the worst rail (a violation anywhere
        // forces a global recovery).
        double worst = 1e9;
        for (std::size_t i = 0; i < nCores; ++i) {
            rails_[i].step(coreCurrents_[i]);
            worst = std::min(worst, rails_[i].voltageDeviation());
        }
        pdn_.step(total); // keep the shared-rail view in sync too
        dev = worst;
    } else {
        pdn_.step(total);
        dev = pdn_.voltageDeviation();
    }

    scope_.record(dev);
    bank_.feed(dev);
    if (timeline_)
        timeline_->feed(dev);
    if (trace_)
        trace_->record(cycles_, dev, total);

    if (emergencyDetector_ && emergencyDetector_->feed(dev)) {
        ++emergencies_;
        if (predictor)
            predictor->observeEmergency();
        for (auto &core : cores_)
            core->injectRecoveryStall(cfg_.recoveryCostCycles);
    }

    // A violation of the controller's dynamic margin is an emergency
    // like any other: same chip-wide rollback, same counter. The
    // controller itself widens its margin before returning.
    if (marginController_ && marginController_->feed(dev)) {
        ++emergencies_;
        if (predictor)
            predictor->observeEmergency();
        for (auto &core : cores_)
            core->injectRecoveryStall(cfg_.recoveryCostCycles);
    }

    ++cycles_;
}

Cycles
System::blockLimit(Cycles want) const
{
    Cycles n = std::min<Cycles>(want, kBlockCycles);
    // A block must not contain an OS-tick injection cycle: countdown
    // k means core i injects on the k-th tick from now, so any block
    // of length <= min(k) is injection-free. When a countdown is 0
    // the caller falls back to one per-cycle tick(), which performs
    // the injection.
    for (const Cycles cd : osTickCountdown_)
        n = std::min(n, cd);
    return n;
}

void
System::tickBlock(Cycles n)
{
    // The batched pipeline, stage by stage. Each core fills its
    // activity lane for the whole block (one virtual dispatch per
    // core instead of one per cycle); each current model converts and
    // accumulates its lane onto the chip totals with its smoothing
    // state hoisted into cursor locals; the PDN integrates the whole
    // block the same way; then the scope/detector sinks consume the
    // deviation lane in bulk. Every stage performs exactly the
    // arithmetic the per-cycle path performs, in the same order — see
    // DESIGN.md "Batched execution" for the bit-identity argument.
    const std::size_t nCores = cores_.size();
    const auto nn = static_cast<std::size_t>(n);
    const auto stride = static_cast<std::size_t>(kBlockCycles);
    double *const act = blockActivity_.data();
    double *const total = blockTotal_.data();
    double *const dev = blockDeviation_.data();

    for (std::size_t i = 0; i < nCores; ++i)
        cores_[i]->tickBlock(act + i * stride, nn);

    // Cores accumulate in index order onto a 0.0 seed, matching the
    // scalar loop's summation exactly. The steady-current conversion
    // is elementwise, so it runs (vectorizably) over each lane in
    // place first; only the smoothing/slew chain carries state, and
    // the dominant one- and two-core shapes run those chains through
    // the dsp K-column fused primitive so they overlap in the
    // out-of-order window instead of running one whole block after
    // the other.
    if (nCores == 2) {
        currents_[0].steadyBlock(act, act, nn);
        currents_[1].steadyBlock(act + stride, act + stride, nn);
        auto c0 = currents_[0].cursor();
        auto c1 = currents_[1].cursor();
        dsp::SmoothSlew chains[2] = {
            {c0.tau, c0.alpha, c0.slew, c0.prev},
            {c1.tau, c1.alpha, c1.slew, c1.prev}};
        const double *const cols[2] = {act, act + stride};
        dsp::processSumColumns(chains, cols, total, nn);
        c0.prev = chains[0].prev;
        c1.prev = chains[1].prev;
        currents_[0].commit(c0);
        currents_[1].commit(c1);
    } else if (nCores == 1) {
        currents_[0].steadyBlock(act, act, nn);
        auto c0 = currents_[0].cursor();
        dsp::SmoothSlew chains[1] = {
            {c0.tau, c0.alpha, c0.slew, c0.prev}};
        const double *const cols[1] = {act};
        dsp::processSumColumns(chains, cols, total, nn);
        c0.prev = chains[0].prev;
        currents_[0].commit(c0);
    } else {
        std::fill(total, total + nn, 0.0);
        for (std::size_t i = 0; i < nCores; ++i)
            currents_[i].accumulateBlock(act + i * stride, total, nn);
    }
    pdn_.stepBlock(total, dev, nn);
    lastCurrent_ = total[nn - 1];

    scope_.recordBlock(dev, nn);
    bank_.feedBlock(dev, nn);
    if (timeline_)
        timeline_->feedBlock(dev, nn);
    if (trace_)
        trace_->recordBlock(cycles_, dev, total, nn);

    for (Cycles &cd : osTickCountdown_)
        cd -= n;
    cycles_ += n;
}

void
System::run(Cycles n)
{
    if (!blockEligible_) {
        for (Cycles i = 0; i < n; ++i)
            tick();
        return;
    }
    if (n == 0)
        return;
    start();
    if (sampler_) {
        sampler_->run(n);
        return;
    }
    Cycles remaining = n;
    while (remaining > 0) {
        const Cycles blk = blockLimit(remaining);
        if (blk == 0) {
            // An OS-tick injection is due this cycle: deliver it
            // through the per-cycle path, then resume blocking.
            tick();
            --remaining;
            continue;
        }
        tickBlock(blk);
        remaining -= blk;
    }
}

Cycles
System::runUntilFinished(Cycles maxCycles)
{
    // Cache which cores have reported finished so the per-cycle scan
    // skips their (virtual) finished() calls. A finished core can
    // regress — a later platform interrupt or chip-wide recovery
    // re-enters a stall event — so when the cached count reaches zero
    // the full scan re-runs once as confirmation before breaking.
    const std::size_t nCores = cores_.size();
    std::vector<std::uint8_t> done(nCores, 0);
    std::size_t remaining = nCores;
    Cycles executed = 0;
    while (executed < maxCycles) {
        for (std::size_t i = 0; i < nCores; ++i) {
            if (!done[i] && cores_[i]->finished()) {
                done[i] = 1;
                --remaining;
            }
        }
        if (remaining == 0) {
            for (std::size_t i = 0; i < nCores; ++i) {
                if (!cores_[i]->finished()) {
                    done[i] = 0;
                    ++remaining;
                }
            }
            if (remaining == 0)
                break;
        }
        if (blockEligible_) {
            // The run can only stop once *every* core is finished, so
            // the largest per-core lower bound on ticks-to-finish is
            // a stretch in which no per-cycle finish check is needed.
            Cycles bound = 0;
            for (std::size_t i = 0; i < nCores; ++i) {
                bound = std::max(bound,
                                 cores_[i]->minTicksUntilFinished());
            }
            if (bound > 0) {
                start();
                const Cycles blk =
                    blockLimit(std::min(bound, maxCycles - executed));
                if (blk > 0) {
                    tickBlock(blk);
                    executed += blk;
                    continue;
                }
            }
        }
        tick();
        ++executed;
    }
    return executed;
}

const std::vector<double> &
System::timelineSeries()
{
    if (!timeline_)
        fatal("System: timeline was not enabled");
    return timeline_->finish();
}

const noise::TraceWriter &
System::trace() const
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

noise::TraceWriter &
System::trace()
{
    if (!trace_)
        fatal("System: trace was not enabled");
    return *trace_;
}

} // namespace vsmooth::sim
