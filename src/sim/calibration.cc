#include "calibration.hh"

#include <algorithm>
#include <cmath>
#include <string>

namespace vsmooth::sim {

std::vector<double>
defaultMarginSweep()
{
    std::vector<double> margins;
    for (int i = 2; i <= 28; ++i)
        margins.push_back(static_cast<double>(i) * 0.005);
    margins.push_back(kIdleMargin);
    std::sort(margins.begin(), margins.end());
    return margins;
}

const std::vector<std::uint32_t> &
recoveryCostSweep()
{
    static const std::vector<std::uint32_t> costs = {1,    10,    100,
                                                     1000, 10000, 100000};
    return costs;
}

const std::vector<double> &
procDecapFractions()
{
    static const std::vector<double> fractions = {1.0, 0.75, 0.5,
                                                  0.25, 0.03, 0.0};
    return fractions;
}

std::string
procName(double decapFraction)
{
    const int pct = static_cast<int>(std::lround(decapFraction * 100.0));
    return "Proc" + std::to_string(pct);
}

} // namespace vsmooth::sim
