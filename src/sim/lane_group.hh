/**
 * @file
 * Scenario-lane engine: run K independent System simulations in
 * lockstep, feeding their carried per-cycle chains (current smoothing,
 * PDN recurrence, VRM ripple) to one cross-lane SIMD kernel per block
 * instead of K separate scalar loops.
 *
 * The sweep workloads (oracle matrix, population studies, figure
 * grids) are embarrassingly parallel across *scenarios*; threads
 * already cover the core count, so the remaining idle dimension is the
 * SIMD register width. A LaneGroup owns no simulation state — it
 * drains a list of LanePlans (each "run this System for N cycles" or
 * "run until finished, then pad"), packing up to `width` eligible
 * plans into lanes that advance together through the same 256-cycle
 * block pipeline System::run uses. Lanes that finish retire and the
 * group refills from the remaining plans.
 *
 * Every per-lane result is bit-identical to running that plan alone
 * (see DESIGN.md "Scenario-lane execution"): the fused kernel performs
 * each lane's scalar arithmetic unchanged, block splits are already
 * result-invariant, and plans the fast path cannot fuse (per-cycle
 * feedback consumers, scalar-forced runs, >8-core systems) simply run
 * solo through the existing paths.
 */

#ifndef VSMOOTH_SIM_LANE_GROUP_HH
#define VSMOOTH_SIM_LANE_GROUP_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"
#include "sim/system.hh"

namespace vsmooth::sim {

/** One scenario for LaneGroup::run. */
struct LanePlan
{
    System *system = nullptr;
    /** Cycles to run — the run(n) count, or the runUntilFinished
     *  budget when untilFinished is set. */
    Cycles cycles = 0;
    /** Use runUntilFinished semantics instead of run(cycles). */
    bool untilFinished = false;
    /** After an untilFinished run: pad with run() up to this absolute
     *  cycle count (0 = no padding) — runParsec's shape. */
    Cycles padTo = 0;
    /** Out: cycles the untilFinished phase executed (== what
     *  runUntilFinished would have returned). */
    Cycles executed = 0;
};

/** Lockstep executor for up to `width` concurrent scenarios. */
class LaneGroup
{
  public:
    /** @param width lane count; 0 = simd::defaultLaneWidth(). */
    explicit LaneGroup(std::size_t width = 0);

    std::size_t width() const { return width_; }

    /**
     * Drain all plans: admit up to `width` at a time, step them in
     * lockstep blocks, retire finished lanes and refill. Plans run in
     * order; each one's System ends in exactly the state a standalone
     * run()/runUntilFinished()(+pad) would leave it in.
     */
    void run(std::vector<LanePlan> &plans);

  private:
    struct Lane
    {
        LanePlan *plan = nullptr;
        System *sys = nullptr;
        bool untilFinished = false;
        /** FixedRun mode: cycles left to run. */
        Cycles remaining = 0;
        /** UntilFinished mode: budget and progress. */
        Cycles maxCycles = 0;
        Cycles executed = 0;
    };

    /** Run one plan through the standalone paths (not lane-eligible). */
    static void runSolo(LanePlan &plan);

    /**
     * End a lane's untilFinished phase: record executed cycles and
     * either switch to the padding run or report the lane done.
     * @return true when the lane retires
     */
    static bool finishUntil(Lane &lane);

    /**
     * Advance `count` same-core-count lanes together by n cycles
     * through the fused cross-lane kernel. Bit-identical per lane to
     * that lane running System::tickBlock(n) alone.
     */
    void stepFused(Lane *const *lanes, std::size_t count, Cycles n);

    std::size_t width_;
    /** Active lanes, reused across run() calls so a steady drain
     *  never reallocates (capacity is width_ after the first run). */
    std::vector<Lane> lanes_;
    // stepFused scratch, reused across blocks: per-lane contiguous
    // streams (lane l of core c at column (c*stride + l), columns
    // padded to whole cache lines and the base rounded up so every
    // column starts 64-byte aligned), assembled into vectors by the
    // kernel's register gather/scatter. Grow-only, so warm drains
    // never allocate.
    std::vector<double> steadyL_;
    std::vector<double> totalL_;
    std::vector<double> devL_;
};

} // namespace vsmooth::sim

#endif // VSMOOTH_SIM_LANE_GROUP_HH
