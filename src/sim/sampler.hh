/**
 * @file
 * Phase-sampled execution: error-bounded fast-forward of stationary
 * stretches.
 *
 * Long-horizon population sweeps spend most of their cycles inside
 * phase-stable execution where the PDN output is statistically
 * stationary (the paper's "voltage noise phases", Sec IV-A). The
 * PhaseSampler detects such stretches online — per-core activity and
 * PDN deviation statistics over windows of 256-cycle blocks —
 * simulates a representative window of each at full fidelity, then
 * extrapolates an integer number of window replays into the sinks
 * (histogram mass, droop-event counts, timeline intervals, core
 * counters) with explicit per-metric error bounds. Anything the
 * extrapolation cannot cover soundly falls back to exact block
 * execution: guard-banded proximity to an armed detector margin,
 * phase/OS-tick boundaries, workload completion, an active trace.
 * See DESIGN.md "Sampled execution".
 */

#ifndef VSMOOTH_SIM_SAMPLER_HH
#define VSMOOTH_SIM_SAMPLER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/units.hh"
#include "cpu/core_model.hh"

namespace vsmooth::sim {

class System;

/** Configuration of the sampled-execution engine. */
struct SamplingConfig
{
    /**
     * Off — always exact (bit-identical to pre-sampling behavior).
     * Auto — sample when the System is eligible (blocked pipeline
     * active, no trace). Env — the default — defers to the
     * VSMOOTH_SAMPLING environment variable ("auto"/"on"/"1" enables;
     * unset or anything else is Off), read at System start.
     */
    enum class Mode : std::uint8_t { Env, Off, Auto };
    Mode mode = Mode::Env;

    /** Blocks (of System::kBlockCycles) per detector window. */
    std::uint32_t windowBlocks = 8;
    /** Consecutive reference-similar windows before skipping. */
    std::uint32_t stableWindows = 2;
    /** Maximum window replays per skip (the multiple doubles from
     *  kInitialSkipWindows up to this on consecutive confirms). The
     *  accumulated error bounds scale with the total number of
     *  replayed windows, not the per-skip stride, so a longer stride
     *  costs no accuracy — it only reduces how often a confirmed
     *  phase pays the one-window re-simulation between jumps. */
    std::uint32_t maxSkipWindows = 128;
    /**
     * Guard band (absolute deviation units): a skip is postponed when
     * the boundary deviation sample lies within this band of any
     * armed droop-detector threshold or release level, so detector
     * hysteresis state is never ambiguous across a fast-forward.
     */
    double guardBand = 0.002;
};

/** Realized sampling statistics and error bounds for one System run.
 *  All bounds are absolute, calibrated statistical constructions
 *  (window-to-window dispersion scaled by skip multiples, plus
 *  realization-divergence slack) — see DESIGN.md for the derivation
 *  and tools/ci.sh `fuzz_sampled` for the enforcement. */
struct SamplingReport
{
    /** True when the sampled-execution engine drove run(). */
    bool active = false;
    Cycles simulatedCycles = 0;
    Cycles extrapolatedCycles = 0;
    /** Number of fast-forward jumps taken. */
    std::uint64_t skips = 0;

    double maxDroopBound = 0.0;
    double maxOvershootBound = 0.0;
    /** Uniform bound on any per-margin droop-event count. */
    double eventCountBound = 0.0;
    /** Bound on any per-margin deepest-event depth. When only one
     *  realization records an event at a margin, the bound instead
     *  covers how far past the armed margin that lone event reaches
     *  (||depth| - margin| <= bound) — a depth-vs-zero delta is a
     *  full event depth, which no dispersion bound can cover. */
    double deepestEventBound = 0.0;
    /** Bound on any timeline series element (droops per 1K). */
    double timelineElementBound = 0.0;
    /** Bound on any per-core committed-instruction total. */
    double coreInstructionBound = 0.0;
    /** Bound on any per-core total-stall-cycle count. */
    double coreStallCycleBound = 0.0;
    /** Bound on any histogram CDF fraction query. */
    double histFractionBound = 0.0;

    /** Fraction of the run's cycles simulated at full fidelity
     *  (1.0 when nothing was extrapolated). */
    double simulatedFraction() const;

    /** The bounds as (metric-name, value) pairs, in a fixed order —
     *  the "bounds" object stamped into Result metadata. */
    std::vector<std::pair<std::string, double>> namedBounds() const;

    /** Fold another System's report into this one (population
     *  aggregation): cycles and skips add; extreme-value and
     *  fraction bounds take the max (a merged extreme or
     *  mass-weighted fraction is covered by its worst contributor);
     *  count bounds add (summed counts sum their errors). */
    void merge(const SamplingReport &other);
};

/**
 * Drives a System's run() with online stationarity detection and
 * error-bounded extrapolation. Constructed by System::start() when
 * the resolved sampling mode is Auto and the System is eligible;
 * uses the System's private block pipeline (friend access).
 */
class PhaseSampler
{
  public:
    PhaseSampler(System &sys, const SamplingConfig &cfg);

    /** Advance the System by exactly n cycles (sampled). */
    void run(Cycles n);

    /** Statistics and bounds covering all run() calls so far. */
    SamplingReport report() const;

  private:
    /** Statistics of one completed detector window. */
    struct WindowStats
    {
        double devMean = 0.0;
        double devMin = 0.0;
        double devMax = 0.0;
        /** Per-margin droop-event starts within the window. */
        std::vector<std::uint64_t> bankDelta;
        /** Below-margin timeline samples within the window. */
        std::uint64_t timelineDroops = 0;
        /** Per-core counter deltas over the window. */
        std::vector<cpu::SkipCounters> coreDelta;
        std::vector<std::uint64_t> coreInstr;
        std::vector<std::uint64_t> coreStall;
    };

    void beginWindow();
    void abortWindow();
    void accumulateBlock(const double *dev, std::size_t n);
    WindowStats closeWindow();

    /** Ref/consecutive bookkeeping; true when a skip may follow. */
    bool classify(const WindowStats &w);
    bool similarToRef(const WindowStats &w) const;
    void resetPhase(const WindowStats &w);
    void extendPhase(const WindowStats &w);

    /** Cycles to fast-forward right now (0 = keep simulating). */
    Cycles planSkip(Cycles remaining) const;
    bool nearGuardBand(double deviation) const;
    void applySkip(const WindowStats &w, Cycles skipCycles);

    System &sys_;
    SamplingConfig cfg_;
    Cycles windowCycles_;

    // Window under accumulation.
    std::uint32_t winBlocks_ = 0;
    double winDevSum_ = 0.0;
    double winDevMin_ = 0.0;
    double winDevMax_ = 0.0;
    Histogram winHist_;
    std::vector<std::uint64_t> snapBankEvents_;
    std::uint64_t snapTimelineDroops_ = 0;
    std::vector<cpu::PerfCounters> snapCounters_;

    // Stability state.
    bool hasRef_ = false;
    WindowStats ref_;
    /** The reference window's deviation histogram (the yardstick for
     *  the Kolmogorov-Smirnov dispersion the CDF bound is built
     *  from). */
    Histogram refHist_;
    std::uint32_t consecutive_ = 0;
    Cycles skipWindows_;

    // Current-phase dispersion (reset whenever the reference moves).
    double phaseDevMin_ = 0.0;
    double phaseDevMax_ = 0.0;
    /** Envelope of the per-window extremes: the highest window
     *  minimum and lowest window maximum seen this phase. Their gaps
     *  to phaseDevMin_/phaseDevMax_ measure how much the deepest
     *  window differs from the shallowest — the dispersion that
     *  bounds what an unsimulated stretch could have added. */
    double phaseMinHi_ = 0.0;
    double phaseMaxLo_ = 0.0;
    /** Largest Kolmogorov-Smirnov distance between any window of this
     *  phase and the reference window's histogram. */
    double phaseKsMax_ = 0.0;
    std::vector<std::uint64_t> phaseBankMin_;
    std::vector<std::uint64_t> phaseBankMax_;
    std::uint64_t phaseTlMin_ = 0;
    std::uint64_t phaseTlMax_ = 0;
    std::vector<std::uint64_t> phaseInstrMin_;
    std::vector<std::uint64_t> phaseInstrMax_;
    std::vector<std::uint64_t> phaseStallMin_;
    std::vector<std::uint64_t> phaseStallMax_;

    // Realized totals and accumulated bound terms.
    Cycles simulated_ = 0;
    Cycles extrapolated_ = 0;
    std::uint64_t skips_ = 0;
    double evBound_ = 0.0;
    double instrBound_ = 0.0;
    double stallBound_ = 0.0;
    /** Worst per-window extreme dispersion among phases that actually
     *  fast-forwarded (shallow-vs-deep window minima and maxima). */
    double droopSpreadMax_ = 0.0;
    double overshootSpreadMax_ = 0.0;
    /** Worst window-to-reference Kolmogorov-Smirnov distance among
     *  phases that actually fast-forwarded. */
    double ksSkipMax_ = 0.0;
    double tlSpreadMax_ = 0.0;
};

} // namespace vsmooth::sim

#endif // VSMOOTH_SIM_SAMPLER_HH
