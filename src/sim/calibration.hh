/**
 * @file
 * Central calibration constants, each annotated with the paper value
 * it targets. Everything that ties the simulation to the measured
 * Core 2 Duo platform lives here so the reproduction's assumptions
 * are auditable in one place.
 */

#ifndef VSMOOTH_SIM_CALIBRATION_HH
#define VSMOOTH_SIM_CALIBRATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace vsmooth::sim {

/**
 * Worst-case operating voltage margin of the Core 2 Duo, determined
 * in the paper by undervolting until the power virus fails
 * (Sec II-C): ~14 % below nominal.
 */
constexpr double kWorstCaseMargin = 0.14;

/**
 * The margin under which *all* idle-machine activity falls; the paper
 * counts "droops per 1K cycles" against it to isolate program noise
 * from background OS/VRM activity (Sec IV-A).
 */
constexpr double kIdleMargin = 0.023;

/**
 * The typical-case band: most voltage samples fall within +/- 4 % of
 * nominal on the unmodified processor (Fig 7).
 */
constexpr double kTypicalCaseBand = 0.04;

/** E6300 clock: 1.86 GHz. */
constexpr double kClockHz = 1.86e9;

/** Clock period (the PDN integration step). */
inline Seconds
clockPeriod()
{
    return Seconds(1.0 / kClockHz);
}

/**
 * Margin sweep used by detector banks / heatmaps: 1 % .. 14 % in
 * 0.5 % steps, plus the 2.3 % idle margin.
 */
std::vector<double> defaultMarginSweep();

/** Recovery costs evaluated throughout the paper (Fig 8, Tab I). */
const std::vector<std::uint32_t> &recoveryCostSweep();

/**
 * Default per-benchmark run length (cycles) for suite studies. The
 * paper ran benchmarks for minutes (hundreds of billions of cycles);
 * we default to a statistically sufficient scaled-down length so the
 * full 29x29 co-schedule sweep completes in seconds-to-minutes.
 */
constexpr Cycles kDefaultRunLength = 2'000'000;

/**
 * OS-tick interval for time-compressed population runs: a scaled-down
 * run of a few million cycles stands in for minutes of real execution,
 * so the 1 kHz tick is compressed proportionally to keep the deep-tail
 * event count per run representative.
 */
constexpr Cycles kCompressedOsTick = 25'000;

/**
 * Droop-counting margin for scheduling studies on the Proc3 future
 * node. Decap removal amplifies the whole distribution, so the 2.3 %
 * margin that separates idle from program activity on Proc100 sits
 * deep inside the Proc3 bulk; this value sits at the equivalent
 * quantile of the Proc3 distribution and keeps the droop metric
 * discriminating between co-schedules.
 */
constexpr double kProc3DroopMargin = 0.04;

/** Decap fractions of the paper's modified processors (Fig 5). */
const std::vector<double> &procDecapFractions();

/** "ProcN" label for a decap fraction. */
std::string procName(double decapFraction);

} // namespace vsmooth::sim

#endif // VSMOOTH_SIM_CALIBRATION_HH
